//! The storage engine: WAL + memtable + immutable chunks + compaction.
//!
//! Write path: [`TsStore::append`] stages rows and frames them into the
//! WAL buffer; [`TsStore::commit`] group-commits the buffer (one append,
//! one sync) and only then moves the staged rows into the memtable — a
//! row is *acknowledged* exactly when its commit returns `Ok`. When the
//! memtable crosses `flush_threshold_rows` it is frozen into a compressed
//! chunk ([`crate::chunk`]) and the WAL is truncated. Size-tiered
//! compaction merges chunk sets last-write-wins and drops rows older than
//! the retention cutoff, which is how `RetentionPolicy` finally reaches
//! disk.
//!
//! Crash recovery ([`TsStore::open`]) replays newest chunks first, then
//! overlays the WAL rows. The ordering of flush (chunk synced *before*
//! WAL reset) means a crash between the two leaves rows in both places;
//! the last-write-wins merge in [`TsStore::scan`] makes that harmless.
//!
//! All modeled latencies come from the [`Vfs`]'s [`DiskSpec`] — never the
//! wall clock — so the `pmove.self.wal.*` / `pmove.self.compaction.*`
//! telemetry is bit-reproducible across runs and hosts.

use crate::backup::{BackupAttach, BackupReport, BackupState, BackupStats};
use crate::chunk::{
    chunk_name, parse_chunk_name, probe_chunk, read_chunk_bytes, write_chunk, ChunkInfo,
};
use crate::encode::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};
use crate::error::{StoreError, StoreResult};
use crate::row::{ColumnValue, RowRecord};
use crate::vfs::Vfs;
use crate::wal::{scan_frames, CommitInfo, Wal};
use pmove_hwsim::disk::DiskSpec;
use pmove_obs::{latency_buckets, Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// WAL file name inside the store's [`Vfs`] namespace.
pub const WAL_FILE: &str = "wal.log";

/// Namespace prefix for quarantined chunk files. A chunk that fails its
/// CRC is *moved* here — never deleted — so the damaged bytes stay
/// available as evidence while the live namespace only ever holds files
/// that verified.
pub const QUARANTINE_PREFIX: &str = "quarantine/";

/// Quarantine file name for a chunk sequence number.
pub fn quarantine_name(seq: u64) -> String {
    format!("{QUARANTINE_PREFIX}{}", chunk_name(seq))
}

/// Block size assumed for modeled I/O latency (the group-commit write).
const IO_BLOCK_SIZE: usize = 8192;

/// Tuning knobs for the engine.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Memtable rows that trigger an automatic flush on commit.
    pub flush_threshold_rows: usize,
    /// Chunk-file count that triggers an automatic compaction on flush.
    pub compact_min_chunks: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            flush_threshold_rows: 4096,
            compact_min_chunks: 4,
        }
    }
}

/// What [`TsStore::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Valid chunk files loaded.
    pub chunks_loaded: usize,
    /// Chunk files skipped for structural corruption.
    pub chunks_skipped: usize,
    /// Rows replayed from the WAL into the memtable.
    pub wal_rows: u64,
    /// WAL tail bytes discarded as torn/corrupt.
    pub wal_bytes_dropped: u64,
    /// WAL frames rejected as provably corrupt (CRC mismatch on a fully
    /// present frame, or an absurd length header) — torn tails excluded.
    pub wal_corrupt_frames: u64,
    /// Modeled time to re-read the persisted state, in nanoseconds.
    pub modeled_ns: u64,
}

/// Which read path caught a corrupt chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionSite {
    /// Recovery at [`TsStore::open`].
    Boot,
    /// A query-driven [`TsStore::scan`].
    Scan,
    /// A compaction read.
    Compact,
    /// The background scrubber.
    Scrub,
    /// A backup job verifying a chunk before copying it out.
    Backup,
}

/// One chunk moved to the quarantine namespace. `rows` and `time_range`
/// size the hole the loss leaves: exact when the chunk had been read
/// healthy before (its manifest entry survives), otherwise a best-effort
/// structural probe of the damaged bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedChunk {
    /// Sequence number of the damaged chunk (stays reserved forever).
    pub seq: u64,
    /// Rows the chunk held (or claimed to hold).
    pub rows: u64,
    /// `[min_ts, max_ts]` of the lost rows, if recoverable.
    pub time_range: Option<(i64, i64)>,
    /// Size of the quarantined file in bytes.
    pub bytes: u64,
    /// Which read path caught it.
    pub site: DetectionSite,
}

/// Result of CRC-verifying one live chunk ([`TsStore::verify_chunk`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The chunk's CRC checked out.
    Clean {
        /// File size verified.
        bytes: u64,
    },
    /// The chunk was damaged and has been quarantined.
    Quarantined(QuarantinedChunk),
}

/// Outcome of one WAL integrity scan ([`TsStore::scrub_wal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalScrub {
    /// Bytes of log scanned.
    pub bytes_scanned: u64,
    /// Frames that failed their CRC (provable corruption, torn excluded).
    pub corrupt_frames: u64,
    /// Rows re-framed from the memtable when the log was rewritten.
    pub rows_rewritten: u64,
}

/// Manifest entry for a live chunk, kept in memory so quarantine can
/// report the exact loss without trusting damaged bytes.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    rows: u64,
    time_range: Option<(i64, i64)>,
    bytes: u64,
}

fn meta_of(rows: &[RowRecord], bytes: u64) -> ChunkMeta {
    let mut time_range: Option<(i64, i64)> = None;
    for r in rows {
        time_range = Some(match time_range {
            None => (r.ts, r.ts),
            Some((lo, hi)) => (lo.min(r.ts), hi.max(r.ts)),
        });
    }
    ChunkMeta {
        rows: rows.len() as u64,
        time_range,
        bytes,
    }
}

/// Outcome of one compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Chunk files merged.
    pub chunks_in: usize,
    /// Rows read from those chunks.
    pub rows_in: u64,
    /// Rows surviving into the output chunk.
    pub rows_out: u64,
    /// Rows dropped because a newer chunk rewrote the same cell.
    pub rows_dropped_lww: u64,
    /// Rows dropped by the retention cutoff.
    pub rows_dropped_retention: u64,
    /// Total bytes of the input chunks.
    pub bytes_before: u64,
    /// Bytes of the output chunk (0 when everything was dropped).
    pub bytes_after: u64,
    /// Modeled wall time of the run, in nanoseconds.
    pub modeled_ns: u64,
}

/// Metric handles for the engine, exported under `pmove.self.wal.*` and
/// `pmove.self.compaction.*` by the tsdb self-telemetry exporter.
pub struct StoreObs {
    wal_records_appended: Arc<Counter>,
    wal_commits: Arc<Counter>,
    wal_bytes_committed: Arc<Counter>,
    wal_records_replayed: Arc<Counter>,
    wal_corrupt_frames: Arc<Counter>,
    wal_resets: Arc<Counter>,
    wal_commit_ns: Arc<Histogram>,
    compaction_snapshots: Arc<Counter>,
    compaction_runs: Arc<Counter>,
    compaction_rows_in: Arc<Counter>,
    compaction_rows_out: Arc<Counter>,
    compaction_rows_dropped_lww: Arc<Counter>,
    compaction_rows_dropped_retention: Arc<Counter>,
    compaction_bytes_before: Arc<Counter>,
    compaction_bytes_after: Arc<Counter>,
    compaction_flush_ns: Arc<Histogram>,
    compaction_compact_ns: Arc<Histogram>,
    scrub_chunks_verified: Arc<Counter>,
    scrub_bytes_verified: Arc<Counter>,
    scrub_corruptions: Arc<Counter>,
    scrub_chunks_quarantined: Arc<Counter>,
    scrub_rows_quarantined: Arc<Counter>,
    scrub_wal_rewrites: Arc<Counter>,
    scrub_full_passes: Arc<Counter>,
    scrub_last_full_pass: Arc<Gauge>,
    backup_generations: Arc<Counter>,
    backup_chunks_copied: Arc<Counter>,
    backup_bytes_copied: Arc<Counter>,
    backup_chunks_skipped: Arc<Counter>,
    backup_errors: Arc<Counter>,
    backup_archive_records: Arc<Counter>,
    backup_archive_bytes: Arc<Counter>,
    backup_archive_errors: Arc<Counter>,
    backup_last_success: Arc<Gauge>,
}

impl StoreObs {
    /// Create the handle set against `registry` for database `db`.
    pub fn new(registry: &Registry, db: &str) -> StoreObs {
        let l: &[(&str, &str)] = &[("db", db)];
        StoreObs {
            wal_records_appended: registry.counter("wal.records_appended", l),
            wal_commits: registry.counter("wal.commits", l),
            wal_bytes_committed: registry.counter("wal.bytes_committed", l),
            wal_records_replayed: registry.counter("wal.records_replayed", l),
            wal_corrupt_frames: registry.counter("store.wal.corrupt_frames", l),
            wal_resets: registry.counter("wal.resets", l),
            wal_commit_ns: registry.histogram("wal.commit_ns", l, latency_buckets()),
            compaction_snapshots: registry.counter("compaction.snapshots", l),
            compaction_runs: registry.counter("compaction.runs", l),
            compaction_rows_in: registry.counter("compaction.rows_in", l),
            compaction_rows_out: registry.counter("compaction.rows_out", l),
            compaction_rows_dropped_lww: registry.counter("compaction.rows_dropped_lww", l),
            compaction_rows_dropped_retention: registry
                .counter("compaction.rows_dropped_retention", l),
            compaction_bytes_before: registry.counter("compaction.bytes_before", l),
            compaction_bytes_after: registry.counter("compaction.bytes_after", l),
            compaction_flush_ns: registry.histogram("compaction.flush_ns", l, latency_buckets()),
            compaction_compact_ns: registry.histogram(
                "compaction.compact_ns",
                l,
                latency_buckets(),
            ),
            scrub_chunks_verified: registry.counter("store.scrub.chunks_verified", l),
            scrub_bytes_verified: registry.counter("store.scrub.bytes_verified", l),
            scrub_corruptions: registry.counter("store.scrub.corruptions_detected", l),
            scrub_chunks_quarantined: registry.counter("store.scrub.chunks_quarantined", l),
            scrub_rows_quarantined: registry.counter("store.scrub.rows_quarantined", l),
            scrub_wal_rewrites: registry.counter("store.scrub.wal_rewrites", l),
            scrub_full_passes: registry.counter("store.scrub.full_passes", l),
            scrub_last_full_pass: registry.gauge("store.scrub.last_full_pass", l),
            backup_generations: registry.counter("store.backup.generations", l),
            backup_chunks_copied: registry.counter("store.backup.chunks_copied", l),
            backup_bytes_copied: registry.counter("store.backup.bytes_copied", l),
            backup_chunks_skipped: registry.counter("store.backup.chunks_skipped", l),
            backup_errors: registry.counter("store.backup.errors", l),
            backup_archive_records: registry.counter("store.backup.archive_records", l),
            backup_archive_bytes: registry.counter("store.backup.archive_bytes", l),
            backup_archive_errors: registry.counter("store.backup.archive_errors", l),
            backup_last_success: registry.gauge("store.backup.last_success", l),
        }
    }
}

// --------------------------------------------------------- WAL payloads

/// Encode a row batch into one WAL record payload.
pub fn encode_row_batch(rows: &[RowRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, rows.len() as u64);
    for r in rows {
        put_uvarint(&mut out, r.series.len() as u64);
        out.extend_from_slice(r.series.as_bytes());
        put_uvarint(&mut out, r.field.len() as u64);
        out.extend_from_slice(r.field.as_bytes());
        put_ivarint(&mut out, r.ts);
        out.push(r.value.type_tag());
        match &r.value {
            ColumnValue::F64(v) => out.extend_from_slice(&v.to_bits().to_le_bytes()),
            ColumnValue::I64(v) => put_ivarint(&mut out, *v),
            ColumnValue::Bool(v) => out.push(*v as u8),
            ColumnValue::Str(s) => {
                put_uvarint(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decode a WAL record payload back into rows.
pub fn decode_row_batch(data: &[u8]) -> StoreResult<Vec<RowRecord>> {
    let mut pos = 0usize;
    let read_str = |pos: &mut usize| -> StoreResult<String> {
        let len = get_uvarint(data, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| StoreError::Decode("wal string ran off the end".into()))?;
        let s = std::str::from_utf8(&data[*pos..end])
            .map_err(|_| StoreError::Decode("wal string not UTF-8".into()))?
            .to_string();
        *pos = end;
        Ok(s)
    };
    let count = get_uvarint(data, &mut pos)? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let series = read_str(&mut pos)?;
        let field = read_str(&mut pos)?;
        let ts = get_ivarint(data, &mut pos)?;
        let tag = *data
            .get(pos)
            .ok_or_else(|| StoreError::Decode("wal row missing type tag".into()))?;
        pos += 1;
        let value = match tag {
            0 => {
                let end = pos + 8;
                if end > data.len() {
                    return Err(StoreError::Decode("wal f64 truncated".into()));
                }
                let bits = u64::from_le_bytes(data[pos..end].try_into().unwrap());
                pos = end;
                ColumnValue::F64(f64::from_bits(bits))
            }
            1 => ColumnValue::I64(get_ivarint(data, &mut pos)?),
            2 => {
                let b = *data
                    .get(pos)
                    .ok_or_else(|| StoreError::Decode("wal bool truncated".into()))?;
                pos += 1;
                ColumnValue::Bool(b != 0)
            }
            3 => ColumnValue::Str(read_str(&mut pos)?),
            t => return Err(StoreError::Decode(format!("wal row bad type tag {t}"))),
        };
        rows.push(RowRecord {
            series,
            field,
            ts,
            value,
        });
    }
    Ok(rows)
}

// ----------------------------------------------------------------- store

/// The durable time-series store.
pub struct TsStore {
    vfs: Arc<dyn Vfs>,
    opts: StoreOptions,
    spec: DiskSpec,
    wal: Wal,
    /// Rows framed into the WAL buffer but not yet acknowledged.
    staged: Vec<RowRecord>,
    /// Acknowledged rows awaiting a flush.
    memtable: Vec<RowRecord>,
    /// Sequence numbers of live (valid) chunk files, ascending.
    chunk_seqs: Vec<u64>,
    next_seq: u64,
    /// Manifest of live chunks — exact loss accounting for quarantine.
    chunk_meta: BTreeMap<u64, ChunkMeta>,
    /// Every chunk quarantined over this store's lifetime (boot included).
    quarantined: Vec<QuarantinedChunk>,
    /// Archive + snapshot machinery, present when backups are enabled.
    bk: Option<BackupState>,
    /// Backup stats already mirrored into `obs` (delta tracking).
    bk_synced: BackupStats,
    /// Virtual-clock stamp from [`TsStore::note_time`]; kept on the store
    /// (not just the backup state) so an archiver attached after a
    /// restart resumes at the caller's clock, never at 0.
    vts: i64,
    obs: Option<StoreObs>,
}

impl TsStore {
    /// Open the store in `vfs`, recovering persisted state: valid chunks
    /// are indexed, corrupt ones skipped, and surviving WAL records are
    /// replayed into the memtable.
    pub fn open(vfs: Arc<dyn Vfs>, opts: StoreOptions) -> StoreResult<(TsStore, RecoveryReport)> {
        Self::open_with_obs(vfs, opts, None)
    }

    /// [`TsStore::open`] with metric handles attached.
    pub fn open_with_obs(
        vfs: Arc<dyn Vfs>,
        opts: StoreOptions,
        obs: Option<StoreObs>,
    ) -> StoreResult<(TsStore, RecoveryReport)> {
        let spec = vfs.disk_spec();
        let mut report = RecoveryReport::default();
        let mut chunk_seqs = Vec::new();
        let mut chunk_meta = BTreeMap::new();
        let mut quarantined = Vec::new();
        let mut next_seq = 0u64;
        let mut bytes_read = 0u64;
        for name in vfs.list()? {
            if let Some(seq) = name
                .strip_prefix(QUARANTINE_PREFIX)
                .and_then(parse_chunk_name)
            {
                // A previously quarantined chunk keeps its sequence number
                // reserved across reopens.
                next_seq = next_seq.max(seq + 1);
                continue;
            }
            let Some(seq) = parse_chunk_name(&name) else {
                continue;
            };
            // Even a corrupt chunk reserves its sequence number, so a new
            // chunk never collides with a damaged file.
            next_seq = next_seq.max(seq + 1);
            let data = vfs.read(&name)?;
            match read_chunk_bytes(&name, &data) {
                Ok((_, rows)) => {
                    bytes_read += data.len() as u64;
                    chunk_meta.insert(seq, meta_of(&rows, data.len() as u64));
                    chunk_seqs.push(seq);
                    report.chunks_loaded += 1;
                }
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => {
                    // Move the damaged file out of the live namespace but
                    // keep the bytes as evidence; queries over its range
                    // must surface a gap, not silently shorter series.
                    report.chunks_skipped += 1;
                    let probe = probe_chunk(&data);
                    let mut f = vfs.create(&quarantine_name(seq))?;
                    f.append(&data)?;
                    f.sync()?;
                    vfs.remove(&name)?;
                    quarantined.push(QuarantinedChunk {
                        seq,
                        rows: probe.map(|p| p.rows).unwrap_or(0),
                        time_range: probe.and_then(|p| p.time_range),
                        bytes: data.len() as u64,
                        site: DetectionSite::Boot,
                    });
                }
            }
        }
        chunk_seqs.sort_unstable();
        let (wal, payloads, replay) = Wal::open(vfs.clone(), WAL_FILE)?;
        let mut memtable = Vec::new();
        for payload in &payloads {
            bytes_read += payload.len() as u64 + 8;
            // A payload that deframes but does not decode is treated like
            // a CRC failure: it and everything after it are discarded
            // (decode errors past the CRC can only come from a bit flip).
            match decode_row_batch(payload) {
                Ok(rows) => memtable.extend(rows),
                Err(_) => break,
            }
        }
        report.wal_rows = memtable.len() as u64;
        report.wal_bytes_dropped = replay.bytes_dropped;
        report.wal_corrupt_frames = replay.corrupt_frames;
        report.modeled_ns = (spec.write_time(bytes_read, IO_BLOCK_SIZE) * 1e9) as u64;
        if let Some(obs) = &obs {
            obs.wal_records_replayed.add(replay.records);
            obs.wal_corrupt_frames.add(replay.corrupt_frames);
            for q in &quarantined {
                obs.scrub_corruptions.inc();
                obs.scrub_chunks_quarantined.inc();
                obs.scrub_rows_quarantined.add(q.rows);
            }
        }
        Ok((
            TsStore {
                vfs,
                opts,
                spec,
                wal,
                staged: Vec::new(),
                memtable,
                chunk_seqs,
                next_seq,
                chunk_meta,
                quarantined,
                bk: None,
                bk_synced: BackupStats::default(),
                vts: 0,
                obs,
            },
            report,
        ))
    }

    /// Stage `rows` and frame them as one WAL record. Not durable — and
    /// not visible to [`TsStore::scan`] — until [`TsStore::commit`].
    pub fn append(&mut self, rows: &[RowRecord]) {
        if rows.is_empty() {
            return;
        }
        let payload = encode_row_batch(rows);
        self.wal.append(&payload);
        if let Some(bk) = &mut self.bk {
            bk.stage(payload);
        }
        self.staged.extend_from_slice(rows);
        if let Some(obs) = &self.obs {
            obs.wal_records_appended.add(rows.len() as u64);
        }
    }

    /// [`TsStore::append`] taking ownership of the rows: identical WAL
    /// frame, identical staging semantics, but the records move into the
    /// staging buffer instead of being cloned — the batch ingest path
    /// hands over thousands of rows per call and never reuses them.
    pub fn append_owned(&mut self, rows: Vec<RowRecord>) {
        if rows.is_empty() {
            return;
        }
        let payload = encode_row_batch(&rows);
        self.wal.append(&payload);
        if let Some(bk) = &mut self.bk {
            bk.stage(payload);
        }
        let count = rows.len() as u64;
        self.staged.extend(rows);
        if let Some(obs) = &self.obs {
            obs.wal_records_appended.add(count);
        }
    }

    /// Modeled group-commit latency for a payload of `bytes` on this
    /// store's device spec — the same figure `commit` records into the
    /// `wal.commit_ns` histogram, exposed so tracing callers can stamp a
    /// `store.wal.group_commit` span with a consistent duration.
    ///
    /// The sync is modeled at block granularity: a commit persists whole
    /// `IO_BLOCK_SIZE` device blocks, so a one-row frame pays the same
    /// device time as a block-full frame. This rounding is exactly what
    /// group commit amortizes — many rows riding one synced block
    /// instead of one padded block per row.
    pub fn modeled_commit_ns(&self, bytes: u64) -> u64 {
        let blocks = bytes.div_ceil(IO_BLOCK_SIZE as u64).max(1);
        (self
            .spec
            .write_time(blocks * IO_BLOCK_SIZE as u64, IO_BLOCK_SIZE)
            * 1e9) as u64
    }

    /// Group-commit every staged record; on success the rows are
    /// acknowledged and enter the memtable (flushing if over threshold).
    pub fn commit(&mut self) -> StoreResult<CommitInfo> {
        let info = self.wal.commit()?;
        self.memtable.append(&mut self.staged);
        if let Some(bk) = &mut self.bk {
            // Archive only what the primary acknowledged; archival lag
            // (a slow or crashed backup disk) never fails the commit.
            // Below the group-archival threshold this is a no-op — the
            // backlog drains on the next flush, snapshot, or full group.
            bk.archive_maybe();
        }
        if let Some(obs) = &self.obs {
            if info.records > 0 {
                obs.wal_commits.inc();
                obs.wal_bytes_committed.add(info.bytes);
                obs.wal_commit_ns.record(self.modeled_commit_ns(info.bytes));
            }
        }
        self.sync_backup_obs();
        if self.memtable.len() >= self.opts.flush_threshold_rows {
            self.flush()?;
        }
        Ok(info)
    }

    /// Freeze the memtable into a new immutable chunk and truncate the
    /// WAL. The chunk is written and synced *before* the reset, so a
    /// crash in between duplicates rows instead of losing them.
    pub fn flush(&mut self) -> StoreResult<Option<ChunkInfo>> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let seq = self.next_seq;
        let info = write_chunk(self.vfs.as_ref(), seq, &self.memtable)?
            .expect("non-empty memtable produces a chunk");
        // Time range from the memtable, row count post-dedup from the
        // written chunk — what a quarantine of this file would lose.
        let mut meta = meta_of(&self.memtable, info.bytes);
        meta.rows = info.rows as u64;
        self.chunk_meta.insert(seq, meta);
        self.wal.reset()?;
        self.memtable.clear();
        self.chunk_seqs.push(seq);
        self.next_seq += 1;
        if let Some(bk) = &mut self.bk {
            bk.on_flush();
        }
        if let Some(obs) = &self.obs {
            obs.compaction_snapshots.inc();
            obs.wal_resets.inc();
            obs.compaction_flush_ns
                .record((self.spec.write_time(info.bytes, IO_BLOCK_SIZE) * 1e9) as u64);
        }
        if self.chunk_seqs.len() >= self.opts.compact_min_chunks {
            self.compact(None)?;
        }
        Ok(Some(info))
    }

    /// Merge every live chunk into one, newest write winning duplicate
    /// cells, dropping rows with `ts < retention_cutoff` when a cutoff is
    /// given. No-op (`None`) when fewer than two chunks exist and no
    /// cutoff was requested.
    pub fn compact(
        &mut self,
        retention_cutoff: Option<i64>,
    ) -> StoreResult<Option<CompactionReport>> {
        if self.chunk_seqs.is_empty() || (self.chunk_seqs.len() < 2 && retention_cutoff.is_none()) {
            return Ok(None);
        }
        let mut chunks_in = 0usize;
        let mut merged: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
        let mut rows_in = 0u64;
        let mut bytes_before = 0u64;
        let mut dropped_retention = 0u64;
        for seq in self.chunk_seqs.clone() {
            let name = chunk_name(seq);
            let data = self.vfs.read(&name)?;
            let rows = match read_chunk_bytes(&name, &data) {
                Ok((_, rows)) => rows,
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => {
                    // Checksum-on-read: the input is provably damaged —
                    // quarantine it and merge the survivors; the lost
                    // range is reported, never silently folded in.
                    self.quarantine(seq, &data, DetectionSite::Compact)?;
                    continue;
                }
            };
            chunks_in += 1;
            bytes_before += data.len() as u64;
            rows_in += rows.len() as u64;
            for r in rows {
                if matches!(retention_cutoff, Some(cut) if r.ts < cut) {
                    dropped_retention += 1;
                    // A newer chunk may have rewritten this cell inside
                    // the window; the overwrite below still applies.
                    merged.remove(&(r.series.clone(), r.field.clone(), r.ts));
                    continue;
                }
                merged.insert((r.series, r.field, r.ts), r.value);
            }
        }
        let rows_out = merged.len() as u64;
        let dropped_lww = rows_in - rows_out - dropped_retention;
        let out_rows: Vec<RowRecord> = merged
            .into_iter()
            .map(|((series, field, ts), value)| RowRecord {
                series,
                field,
                ts,
                value,
            })
            .collect();
        let seq = self.next_seq;
        let written = write_chunk(self.vfs.as_ref(), seq, &out_rows)?;
        // Only after the merged chunk is durable do the inputs go away.
        // Inputs pinned by an in-progress backup job outlive the merge:
        // the snapshot fenced them, so their bytes must stay readable
        // until the job's manifest lands (or the job aborts).
        for &old in &self.chunk_seqs.clone() {
            if self.bk.as_ref().is_some_and(|bk| bk.is_pinned(old)) {
                self.bk
                    .as_mut()
                    .expect("pin implies backup state")
                    .defer_delete(chunk_name(old));
            } else {
                self.vfs.remove(&chunk_name(old))?;
            }
            self.chunk_meta.remove(&old);
        }
        self.chunk_seqs.clear();
        let bytes_after = match &written {
            Some(info) => {
                let mut meta = meta_of(&out_rows, info.bytes);
                meta.rows = info.rows as u64;
                self.chunk_meta.insert(seq, meta);
                self.chunk_seqs.push(seq);
                self.next_seq += 1;
                info.bytes
            }
            None => 0,
        };
        let report = CompactionReport {
            chunks_in,
            rows_in,
            rows_out,
            rows_dropped_lww: dropped_lww,
            rows_dropped_retention: dropped_retention,
            bytes_before,
            bytes_after,
            modeled_ns: (self
                .spec
                .write_time(bytes_before + bytes_after, IO_BLOCK_SIZE)
                * 1e9) as u64,
        };
        if let Some(obs) = &self.obs {
            obs.compaction_runs.inc();
            obs.compaction_rows_in.add(report.rows_in);
            obs.compaction_rows_out.add(report.rows_out);
            obs.compaction_rows_dropped_lww.add(report.rows_dropped_lww);
            obs.compaction_rows_dropped_retention
                .add(report.rows_dropped_retention);
            obs.compaction_bytes_before.add(report.bytes_before);
            obs.compaction_bytes_after.add(report.bytes_after);
            obs.compaction_compact_ns.record(report.modeled_ns);
        }
        Ok(Some(report))
    }

    /// Drop every durable row older than `cutoff` (used by retention
    /// enforcement); compacts regardless of chunk count.
    pub fn enforce_retention(&mut self, cutoff: i64) -> StoreResult<Option<CompactionReport>> {
        self.memtable.retain(|r| r.ts >= cutoff);
        self.compact(Some(cutoff))
    }

    /// Merged, deduplicated view of every *acknowledged* row: chunks in
    /// sequence order, memtable on top, last write winning each
    /// (series, field, timestamp) cell. Staged-but-uncommitted rows are
    /// invisible, matching the acknowledgement contract.
    ///
    /// Every chunk is CRC-verified as it is read; a chunk that fails is
    /// quarantined (visible via [`TsStore::quarantined`]) and the scan
    /// continues over the survivors — callers see an explicit loss
    /// record, never a silent error or silently shorter data.
    pub fn scan(&mut self) -> StoreResult<Vec<RowRecord>> {
        let mut merged: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
        for seq in self.chunk_seqs.clone() {
            let name = chunk_name(seq);
            let data = self.vfs.read(&name)?;
            match read_chunk_bytes(&name, &data) {
                Ok((_, rows)) => {
                    for r in rows {
                        merged.insert((r.series, r.field, r.ts), r.value);
                    }
                }
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => {
                    self.quarantine(seq, &data, DetectionSite::Scan)?;
                }
            }
        }
        for r in &self.memtable {
            merged.insert((r.series.clone(), r.field.clone(), r.ts), r.value.clone());
        }
        Ok(merged
            .into_iter()
            .map(|((series, field, ts), value)| RowRecord {
                series,
                field,
                ts,
                value,
            })
            .collect())
    }

    /// Move a corrupt chunk to the quarantine namespace: copy the bytes
    /// under `quarantine/`, remove the live file, and drop the sequence
    /// number from the live set (it stays reserved via `next_seq` and the
    /// quarantine file itself). Returns the loss record.
    fn quarantine(
        &mut self,
        seq: u64,
        raw: &[u8],
        site: DetectionSite,
    ) -> StoreResult<QuarantinedChunk> {
        let mut f = self.vfs.create(&quarantine_name(seq))?;
        f.append(raw)?;
        f.sync()?;
        self.vfs.remove(&chunk_name(seq))?;
        self.chunk_seqs.retain(|&s| s != seq);
        let (rows, time_range) = match self.chunk_meta.remove(&seq) {
            Some(m) => (m.rows, m.time_range),
            None => {
                let probe = probe_chunk(raw);
                (
                    probe.map(|p| p.rows).unwrap_or(0),
                    probe.and_then(|p| p.time_range),
                )
            }
        };
        let q = QuarantinedChunk {
            seq,
            rows,
            time_range,
            bytes: raw.len() as u64,
            site,
        };
        if let Some(obs) = &self.obs {
            obs.scrub_corruptions.inc();
            obs.scrub_chunks_quarantined.inc();
            obs.scrub_rows_quarantined.add(rows);
        }
        self.quarantined.push(q.clone());
        Ok(q)
    }

    /// CRC-verify one live chunk for the scrubber. A clean chunk reports
    /// its byte size; a damaged one is quarantined. `Ok(None)` means the
    /// chunk was flushed away (compacted) between snapshot and visit.
    pub fn verify_chunk(&mut self, seq: u64) -> StoreResult<Option<VerifyOutcome>> {
        if !self.chunk_seqs.contains(&seq) {
            return Ok(None);
        }
        let name = chunk_name(seq);
        let data = self.vfs.read(&name)?;
        if let Some(obs) = &self.obs {
            obs.scrub_chunks_verified.inc();
            obs.scrub_bytes_verified.add(data.len() as u64);
        }
        match read_chunk_bytes(&name, &data) {
            Ok(_) => Ok(Some(VerifyOutcome::Clean {
                bytes: data.len() as u64,
            })),
            Err(StoreError::DiskCrashed) => Err(StoreError::DiskCrashed),
            Err(_) => {
                let q = self.quarantine(seq, &data, DetectionSite::Scrub)?;
                Ok(Some(VerifyOutcome::Quarantined(q)))
            }
        }
    }

    /// Integrity-scan the WAL. Latent rot inside an already-durable frame
    /// is repairable without any replica: the memtable holds exactly the
    /// acknowledged rows of the current log (the WAL resets precisely
    /// when the memtable flushes), so the log is rewritten losslessly
    /// from memory.
    pub fn scrub_wal(&mut self) -> StoreResult<WalScrub> {
        let raw = self.wal.raw_bytes()?;
        let (_, _, corrupt_frames) = scan_frames(&raw);
        let mut out = WalScrub {
            bytes_scanned: raw.len() as u64,
            corrupt_frames,
            rows_rewritten: 0,
        };
        if let Some(obs) = &self.obs {
            obs.scrub_bytes_verified.add(raw.len() as u64);
        }
        if corrupt_frames > 0 {
            let payloads = if self.memtable.is_empty() {
                Vec::new()
            } else {
                vec![encode_row_batch(&self.memtable)]
            };
            self.wal.rewrite(&payloads)?;
            out.rows_rewritten = self.memtable.len() as u64;
            if let Some(obs) = &self.obs {
                obs.scrub_corruptions.inc();
                obs.scrub_wal_rewrites.inc();
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------ backup

    /// Enable backups: attach the archiver to `dest` (its own [`Vfs`] —
    /// a separate disk, so primary disasters never touch the backups)
    /// and re-archive the live WAL contents so rows committed before
    /// enablement, or recovered across a crash, are covered.
    pub fn enable_backup(&mut self, dest: Arc<dyn Vfs>) -> StoreResult<BackupAttach> {
        let vts = self.bk.as_ref().map_or(self.vts, |bk| bk.vts.max(self.vts));
        let (payloads, _, _) = scan_frames(&self.wal.raw_bytes()?);
        let (bk, attach) = BackupState::attach(dest, vts, &payloads)?;
        self.bk = Some(bk);
        self.sync_backup_obs();
        Ok(attach)
    }

    /// Is the backup subsystem attached?
    pub fn backup_enabled(&self) -> bool {
        self.bk.is_some()
    }

    /// Set the archiver's group-archival threshold: commits stage their
    /// payload and the archive write happens once `group` records are
    /// pending (flushes and snapshot fences always drain). `group = 1`
    /// (the default) archives on every commit; the daemon uses a larger
    /// group so archival adds one `Vec` push to the commit fast path.
    pub fn set_archive_group(&mut self, group: u64) {
        if let Some(bk) = &mut self.bk {
            bk.set_group(group);
        }
    }

    /// The backup destination, when backups are enabled.
    pub fn backup_dest(&self) -> Option<Arc<dyn Vfs>> {
        self.bk.as_ref().map(|bk| bk.dest())
    }

    /// Running backup/archive totals, when backups are enabled.
    pub fn backup_stats(&self) -> Option<BackupStats> {
        self.bk.as_ref().map(|bk| bk.stats())
    }

    /// Advance the store's virtual clock (monotonic); archived records
    /// and snapshot fences are stamped with this timestamp.
    pub fn note_time(&mut self, vts: i64) {
        self.vts = self.vts.max(vts);
        if let Some(bk) = &mut self.bk {
            bk.note_time(vts);
        }
    }

    /// Begin an online snapshot generation: fence the archive at the
    /// current sequence, pin the live chunk set against compaction, and
    /// return the generation id. Writes continue concurrently.
    pub fn backup_begin(&mut self) -> StoreResult<u64> {
        let seqs = self.chunk_seqs.clone();
        let bk = self
            .bk
            .as_mut()
            .ok_or_else(|| StoreError::Io("backups not enabled".into()))?;
        bk.begin_job(&seqs)
    }

    /// Copy up to `max_chunks` pending chunks of the active snapshot job
    /// into its generation, verifying each chunk's CRC on the way out.
    /// A chunk that fails verification is quarantined (the job skips it
    /// and the loss is accounted like any other quarantine). Returns
    /// `true` when every chunk has been processed.
    pub fn backup_step(&mut self, max_chunks: usize) -> StoreResult<bool> {
        for _ in 0..max_chunks {
            let Some(seq) = self
                .bk
                .as_mut()
                .ok_or_else(|| StoreError::Io("backups not enabled".into()))?
                .job_todo_pop()
            else {
                return Ok(true);
            };
            let name = chunk_name(seq);
            let data = match self.vfs.read(&name) {
                Ok(d) => d,
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => {
                    // Quarantined (or otherwise gone) mid-job: the
                    // generation proceeds without it.
                    self.bk.as_mut().expect("checked above").job_skip_chunk();
                    continue;
                }
            };
            match read_chunk_bytes(&name, &data) {
                Ok((_, rows)) => {
                    let rows = rows.len() as u64;
                    let res = self
                        .bk
                        .as_mut()
                        .expect("checked above")
                        .job_copy_chunk(seq, &data, rows);
                    self.sync_backup_obs();
                    res?;
                }
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => {
                    // The live chunk itself is damaged: quarantine it
                    // (if still live) and continue the generation over
                    // the survivors.
                    if self.chunk_seqs.contains(&seq) {
                        self.quarantine(seq, &data, DetectionSite::Backup)?;
                    }
                    self.bk.as_mut().expect("checked above").job_skip_chunk();
                }
            }
        }
        Ok(self.bk.as_ref().is_some_and(|bk| bk.job_todo_is_empty()))
    }

    /// Write the active job's manifest — the commit point of the whole
    /// generation — release the pins, and apply deferred deletions.
    pub fn backup_finish(&mut self) -> StoreResult<BackupReport> {
        let bk = self
            .bk
            .as_mut()
            .ok_or_else(|| StoreError::Io("backups not enabled".into()))?;
        let (report, deferred) = bk.finish_job()?;
        if let Some(obs) = &self.obs {
            obs.backup_generations.inc();
            obs.backup_last_success.set(report.fence_vts as f64);
        }
        for name in deferred {
            // Best-effort: these were compaction inputs the pin kept
            // alive; failing to delete them costs bytes, not safety.
            let _ = self.vfs.remove(&name);
        }
        self.sync_backup_obs();
        Ok(report)
    }

    /// Abandon the active snapshot job (pins released, generation id
    /// burned, torn files left without a manifest — invisible to
    /// restore).
    pub fn backup_abort(&mut self) {
        let deferred = match &mut self.bk {
            Some(bk) => bk.abort_job(),
            None => Vec::new(),
        };
        for name in deferred {
            let _ = self.vfs.remove(&name);
        }
        self.sync_backup_obs();
    }

    /// One-shot convenience: begin, copy every chunk, and finish a
    /// snapshot generation. On any error the job is aborted — the torn
    /// generation has no manifest and can never be restored from.
    pub fn backup_now(&mut self) -> StoreResult<BackupReport> {
        self.backup_begin()?;
        let res = (|| -> StoreResult<BackupReport> {
            while !self.backup_step(usize::MAX)? {}
            self.backup_finish()
        })();
        if res.is_err() {
            self.backup_abort();
        }
        res
    }

    /// Mirror backup stat deltas into the metric handles.
    fn sync_backup_obs(&mut self) {
        let (Some(bk), Some(obs)) = (&self.bk, &self.obs) else {
            return;
        };
        let now = bk.stats();
        let was = self.bk_synced;
        obs.backup_chunks_copied
            .add(now.chunks_copied - was.chunks_copied);
        obs.backup_bytes_copied
            .add(now.bytes_copied - was.bytes_copied);
        obs.backup_chunks_skipped
            .add(now.chunks_skipped - was.chunks_skipped);
        obs.backup_errors.add(now.backup_errors - was.backup_errors);
        obs.backup_archive_records
            .add(now.records_archived - was.records_archived);
        obs.backup_archive_bytes
            .add(now.bytes_archived - was.bytes_archived);
        obs.backup_archive_errors
            .add(now.archive_errors - was.archive_errors);
        self.bk_synced = now;
    }

    /// Record a completed full-store scrub pass at virtual time `now_s`
    /// (drives the `store.scrub.last_full_pass` staleness gauge).
    pub fn note_full_scrub_pass(&mut self, now_s: f64) {
        if let Some(obs) = &self.obs {
            obs.scrub_full_passes.inc();
            obs.scrub_last_full_pass.set(now_s * 1e9);
        }
    }

    /// Every chunk quarantined over this store's lifetime, boot included.
    pub fn quarantined(&self) -> &[QuarantinedChunk] {
        &self.quarantined
    }

    /// Byte size of a live chunk from the manifest.
    pub fn chunk_bytes(&self, seq: u64) -> Option<u64> {
        self.chunk_meta.get(&seq).map(|m| m.bytes)
    }

    /// Acknowledged rows not yet flushed to a chunk.
    pub fn memtable_rows(&self) -> usize {
        self.memtable.len()
    }

    /// Rows staged for the next commit.
    pub fn staged_rows(&self) -> usize {
        self.staged.len()
    }

    /// Live chunk files.
    pub fn chunk_count(&self) -> usize {
        self.chunk_seqs.len()
    }

    /// Sequence numbers of the live chunks, ascending.
    pub fn chunk_seqs(&self) -> &[u64] {
        &self.chunk_seqs
    }

    /// Bytes currently occupied by the WAL file.
    pub fn wal_size(&self) -> StoreResult<u64> {
        self.wal.size()
    }

    /// The underlying virtual filesystem.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }
}

impl std::fmt::Debug for TsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsStore")
            .field("chunks", &self.chunk_seqs)
            .field("memtable_rows", &self.memtable.len())
            .field("staged_rows", &self.staged.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{FaultMode, FaultPlan, MemDisk};

    fn row(series: &str, field: &str, ts: i64, v: f64) -> RowRecord {
        RowRecord::new(series, field, ts, ColumnValue::F64(v))
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            flush_threshold_rows: 8,
            compact_min_chunks: 100, // keep compaction manual in tests
        }
    }

    #[test]
    fn row_batch_roundtrip() {
        let rows = vec![
            row("cpu,host=a", "_cpu0", 10, 1.5),
            RowRecord::new("m", "i", 11, ColumnValue::I64(-4)),
            RowRecord::new("m", "b", 12, ColumnValue::Bool(true)),
            RowRecord::new("m", "s", 13, ColumnValue::Str("x=y".into())),
        ];
        let enc = encode_row_batch(&rows);
        assert_eq!(decode_row_batch(&enc).unwrap(), rows);
        assert!(decode_row_batch(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn append_commit_scan_reopen() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(100));
        let (mut store, report) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        // Staged rows are invisible until commit.
        assert!(store.scan().unwrap().is_empty());
        store.commit().unwrap();
        assert_eq!(store.scan().unwrap().len(), 2);
        drop(store);
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.wal_rows, 2);
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]
        );
    }

    #[test]
    fn threshold_flush_truncates_wal_and_keeps_rows() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(101));
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        let rows: Vec<RowRecord> = (0..10).map(|i| row("s", "f", i, i as f64)).collect();
        store.append(&rows);
        store.commit().unwrap();
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(store.memtable_rows(), 0);
        assert_eq!(store.wal_size().unwrap(), 0);
        assert_eq!(store.scan().unwrap().len(), 10);
        // Reopen sees only the chunk.
        drop(store);
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_loaded, 1);
        assert_eq!(report.wal_rows, 0);
        assert_eq!(store.scan().unwrap().len(), 10);
    }

    #[test]
    fn compaction_merges_lww_and_enforces_retention() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(102));
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 5, 5.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "f", 5, 50.0), row("s", "f", 9, 9.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        assert_eq!(store.chunk_count(), 2);
        let report = store.compact(Some(2)).unwrap().unwrap();
        assert_eq!(report.rows_in, 4);
        assert_eq!(report.rows_dropped_retention, 1); // ts=1
        assert_eq!(report.rows_dropped_lww, 1); // older ts=5
        assert_eq!(report.rows_out, 2);
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 5, 50.0), row("s", "f", 9, 9.0)]
        );
        // Old chunk files are gone from disk.
        let names = vfs.list().unwrap();
        assert_eq!(names.iter().filter(|n| n.starts_with("chunk-")).count(), 1);
    }

    #[test]
    fn retention_prunes_memtable_and_disk() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(103));
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "old", 1, 1.0), row("s", "new", 100, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "mem_old", 2, 3.0), row("s", "mem_new", 200, 4.0)]);
        store.commit().unwrap();
        store.enforce_retention(50).unwrap();
        let left = store.scan().unwrap();
        let fields: Vec<&str> = left.iter().map(|r| r.field.as_str()).collect();
        assert_eq!(fields, vec!["mem_new", "new"]);
    }

    #[test]
    fn compact_drop_everything_leaves_no_chunks() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(104));
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        let report = store.enforce_retention(10).unwrap().unwrap();
        assert_eq!(report.rows_out, 0);
        assert_eq!(report.bytes_after, 0);
        assert_eq!(store.chunk_count(), 0);
        assert!(store.scan().unwrap().is_empty());
    }

    #[test]
    fn failed_commit_keeps_rows_staged_and_unacked() {
        let disk = MemDisk::new(105);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 1,
            mode: FaultMode::CleanStop,
        });
        assert!(store.commit().is_err());
        assert_eq!(store.staged_rows(), 1);
        assert!(store.scan().is_err() || store.scan().unwrap().is_empty());
    }

    #[test]
    fn flush_crash_between_chunk_and_reset_duplicates_safely() {
        let disk = MemDisk::new(106);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        // Chunk write is create+append+sync (3 ops); crash on the WAL
        // reset right after, leaving rows in both chunk and WAL.
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 4,
            mode: FaultMode::CleanStop,
        });
        assert!(store.flush().is_err());
        assert!(disk.crashed());
        disk.restart();
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_loaded, 1);
        assert_eq!(report.wal_rows, 2);
        // Scan dedups the double-stored rows.
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]
        );
    }

    #[test]
    fn corrupt_chunk_is_skipped_and_seq_reserved() {
        let disk = MemDisk::new(107);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        // Smash the chunk.
        let name = chunk_name(0);
        let mut data = disk.read(&name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0xFF;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(report.chunks_loaded, 0);
        assert!(store.scan().unwrap().is_empty());
        // New flushes never reuse the damaged file's sequence number.
        store.append(&[row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        assert_eq!(store.chunk_seqs(), &[1]);
    }

    #[test]
    fn scan_quarantines_corrupt_chunk_and_serves_survivors() {
        let disk = MemDisk::new(109);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "f", 3, 3.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        // Rot one payload byte of chunk 0 (keep the magic intact).
        let name = chunk_name(0);
        let mut data = disk.read(&name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0x01;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        // The read path detects, quarantines, and keeps serving.
        let rows = store.scan().unwrap();
        assert_eq!(rows, vec![row("s", "f", 3, 3.0)]);
        let q = store.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].seq, 0);
        assert_eq!(q[0].site, DetectionSite::Scan);
        // The manifest knew the healthy chunk: exact loss accounting.
        assert_eq!(q[0].rows, 2);
        assert_eq!(q[0].time_range, Some((1, 2)));
        // Evidence moved, not deleted.
        assert!(disk.exists(&quarantine_name(0)).unwrap());
        assert!(!disk.exists(&name).unwrap());
        assert_eq!(store.chunk_seqs(), &[1]);
    }

    #[test]
    fn quarantine_reserves_seq_across_reopens() {
        let disk = MemDisk::new(110);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        let name = chunk_name(0);
        let mut data = disk.read(&name).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x02;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        // Boot moves the damaged chunk to quarantine.
        let (store, report) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(store.quarantined()[0].site, DetectionSite::Boot);
        assert!(disk.exists(&quarantine_name(0)).unwrap());
        drop(store);
        // Even with no live chunk left, a later reopen still reserves the
        // quarantined sequence number via the evidence file.
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_skipped, 0);
        store.append(&[row("s", "f", 9, 9.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        assert_eq!(store.chunk_seqs(), &[1]);
    }

    #[test]
    fn observability_counts_commits_and_compactions() {
        let registry = Registry::new();
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(108));
        let obs = StoreObs::new(&registry, "influx");
        let (mut store, _) = TsStore::open_with_obs(vfs, small_opts(), Some(obs)).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "f", 3, 3.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.compact(None).unwrap().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("wal.records_appended"), 3);
        assert_eq!(snap.counter_total("wal.commits"), 2);
        assert_eq!(snap.counter_total("compaction.snapshots"), 2);
        assert_eq!(snap.counter_total("compaction.runs"), 1);
        assert_eq!(snap.counter_total("compaction.rows_in"), 3);
        assert_eq!(snap.counter_total("compaction.rows_out"), 3);
        let h = snap
            .histogram("wal.commit_ns", &[("db", "influx")])
            .unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum > 0, "modeled commit latency must be non-zero");
    }

    #[test]
    fn same_seed_runs_produce_byte_identical_state() {
        let run = |seed: u64| -> Vec<(String, Vec<u8>)> {
            let disk = MemDisk::new(seed);
            let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
            let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
            for i in 0..20i64 {
                store.append(&[row("cpu,host=a", "_cpu0", i * 500, 20.0 + i as f64)]);
                store.commit().unwrap();
            }
            store.flush().unwrap();
            disk.list()
                .unwrap()
                .into_iter()
                .map(|n| {
                    let d = disk.read(&n).unwrap();
                    (n, d)
                })
                .collect()
        };
        assert_eq!(run(1), run(2));
    }
}
