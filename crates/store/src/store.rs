//! The storage engine: WAL + memtable + immutable chunks + compaction.
//!
//! Write path: [`TsStore::append`] stages rows and frames them into the
//! WAL buffer; [`TsStore::commit`] group-commits the buffer (one append,
//! one sync) and only then moves the staged rows into the memtable — a
//! row is *acknowledged* exactly when its commit returns `Ok`. When the
//! memtable crosses `flush_threshold_rows` it is frozen into a compressed
//! chunk ([`crate::chunk`]) and the WAL is truncated. Size-tiered
//! compaction merges chunk sets last-write-wins and drops rows older than
//! the retention cutoff, which is how `RetentionPolicy` finally reaches
//! disk.
//!
//! Crash recovery ([`TsStore::open`]) replays newest chunks first, then
//! overlays the WAL rows. The ordering of flush (chunk synced *before*
//! WAL reset) means a crash between the two leaves rows in both places;
//! the last-write-wins merge in [`TsStore::scan`] makes that harmless.
//!
//! All modeled latencies come from the [`Vfs`]'s [`DiskSpec`] — never the
//! wall clock — so the `pmove.self.wal.*` / `pmove.self.compaction.*`
//! telemetry is bit-reproducible across runs and hosts.

use crate::chunk::{chunk_name, parse_chunk_name, read_chunk, write_chunk, ChunkInfo};
use crate::encode::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};
use crate::error::{StoreError, StoreResult};
use crate::row::{ColumnValue, RowRecord};
use crate::vfs::Vfs;
use crate::wal::{CommitInfo, Wal};
use pmove_hwsim::disk::DiskSpec;
use pmove_obs::{latency_buckets, Counter, Histogram, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// WAL file name inside the store's [`Vfs`] namespace.
pub const WAL_FILE: &str = "wal.log";

/// Block size assumed for modeled I/O latency (the group-commit write).
const IO_BLOCK_SIZE: usize = 8192;

/// Tuning knobs for the engine.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Memtable rows that trigger an automatic flush on commit.
    pub flush_threshold_rows: usize,
    /// Chunk-file count that triggers an automatic compaction on flush.
    pub compact_min_chunks: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            flush_threshold_rows: 4096,
            compact_min_chunks: 4,
        }
    }
}

/// What [`TsStore::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Valid chunk files loaded.
    pub chunks_loaded: usize,
    /// Chunk files skipped for structural corruption.
    pub chunks_skipped: usize,
    /// Rows replayed from the WAL into the memtable.
    pub wal_rows: u64,
    /// WAL tail bytes discarded as torn/corrupt.
    pub wal_bytes_dropped: u64,
    /// WAL frames rejected as provably corrupt (CRC mismatch on a fully
    /// present frame, or an absurd length header) — torn tails excluded.
    pub wal_corrupt_frames: u64,
    /// Modeled time to re-read the persisted state, in nanoseconds.
    pub modeled_ns: u64,
}

/// Outcome of one compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Chunk files merged.
    pub chunks_in: usize,
    /// Rows read from those chunks.
    pub rows_in: u64,
    /// Rows surviving into the output chunk.
    pub rows_out: u64,
    /// Rows dropped because a newer chunk rewrote the same cell.
    pub rows_dropped_lww: u64,
    /// Rows dropped by the retention cutoff.
    pub rows_dropped_retention: u64,
    /// Total bytes of the input chunks.
    pub bytes_before: u64,
    /// Bytes of the output chunk (0 when everything was dropped).
    pub bytes_after: u64,
    /// Modeled wall time of the run, in nanoseconds.
    pub modeled_ns: u64,
}

/// Metric handles for the engine, exported under `pmove.self.wal.*` and
/// `pmove.self.compaction.*` by the tsdb self-telemetry exporter.
pub struct StoreObs {
    wal_records_appended: Arc<Counter>,
    wal_commits: Arc<Counter>,
    wal_bytes_committed: Arc<Counter>,
    wal_records_replayed: Arc<Counter>,
    wal_corrupt_frames: Arc<Counter>,
    wal_resets: Arc<Counter>,
    wal_commit_ns: Arc<Histogram>,
    compaction_snapshots: Arc<Counter>,
    compaction_runs: Arc<Counter>,
    compaction_rows_in: Arc<Counter>,
    compaction_rows_out: Arc<Counter>,
    compaction_rows_dropped_lww: Arc<Counter>,
    compaction_rows_dropped_retention: Arc<Counter>,
    compaction_bytes_before: Arc<Counter>,
    compaction_bytes_after: Arc<Counter>,
    compaction_flush_ns: Arc<Histogram>,
    compaction_compact_ns: Arc<Histogram>,
}

impl StoreObs {
    /// Create the handle set against `registry` for database `db`.
    pub fn new(registry: &Registry, db: &str) -> StoreObs {
        let l: &[(&str, &str)] = &[("db", db)];
        StoreObs {
            wal_records_appended: registry.counter("wal.records_appended", l),
            wal_commits: registry.counter("wal.commits", l),
            wal_bytes_committed: registry.counter("wal.bytes_committed", l),
            wal_records_replayed: registry.counter("wal.records_replayed", l),
            wal_corrupt_frames: registry.counter("store.wal.corrupt_frames", l),
            wal_resets: registry.counter("wal.resets", l),
            wal_commit_ns: registry.histogram("wal.commit_ns", l, latency_buckets()),
            compaction_snapshots: registry.counter("compaction.snapshots", l),
            compaction_runs: registry.counter("compaction.runs", l),
            compaction_rows_in: registry.counter("compaction.rows_in", l),
            compaction_rows_out: registry.counter("compaction.rows_out", l),
            compaction_rows_dropped_lww: registry.counter("compaction.rows_dropped_lww", l),
            compaction_rows_dropped_retention: registry
                .counter("compaction.rows_dropped_retention", l),
            compaction_bytes_before: registry.counter("compaction.bytes_before", l),
            compaction_bytes_after: registry.counter("compaction.bytes_after", l),
            compaction_flush_ns: registry.histogram("compaction.flush_ns", l, latency_buckets()),
            compaction_compact_ns: registry.histogram(
                "compaction.compact_ns",
                l,
                latency_buckets(),
            ),
        }
    }
}

// --------------------------------------------------------- WAL payloads

/// Encode a row batch into one WAL record payload.
pub fn encode_row_batch(rows: &[RowRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, rows.len() as u64);
    for r in rows {
        put_uvarint(&mut out, r.series.len() as u64);
        out.extend_from_slice(r.series.as_bytes());
        put_uvarint(&mut out, r.field.len() as u64);
        out.extend_from_slice(r.field.as_bytes());
        put_ivarint(&mut out, r.ts);
        out.push(r.value.type_tag());
        match &r.value {
            ColumnValue::F64(v) => out.extend_from_slice(&v.to_bits().to_le_bytes()),
            ColumnValue::I64(v) => put_ivarint(&mut out, *v),
            ColumnValue::Bool(v) => out.push(*v as u8),
            ColumnValue::Str(s) => {
                put_uvarint(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decode a WAL record payload back into rows.
pub fn decode_row_batch(data: &[u8]) -> StoreResult<Vec<RowRecord>> {
    let mut pos = 0usize;
    let read_str = |pos: &mut usize| -> StoreResult<String> {
        let len = get_uvarint(data, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| StoreError::Decode("wal string ran off the end".into()))?;
        let s = std::str::from_utf8(&data[*pos..end])
            .map_err(|_| StoreError::Decode("wal string not UTF-8".into()))?
            .to_string();
        *pos = end;
        Ok(s)
    };
    let count = get_uvarint(data, &mut pos)? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let series = read_str(&mut pos)?;
        let field = read_str(&mut pos)?;
        let ts = get_ivarint(data, &mut pos)?;
        let tag = *data
            .get(pos)
            .ok_or_else(|| StoreError::Decode("wal row missing type tag".into()))?;
        pos += 1;
        let value = match tag {
            0 => {
                let end = pos + 8;
                if end > data.len() {
                    return Err(StoreError::Decode("wal f64 truncated".into()));
                }
                let bits = u64::from_le_bytes(data[pos..end].try_into().unwrap());
                pos = end;
                ColumnValue::F64(f64::from_bits(bits))
            }
            1 => ColumnValue::I64(get_ivarint(data, &mut pos)?),
            2 => {
                let b = *data
                    .get(pos)
                    .ok_or_else(|| StoreError::Decode("wal bool truncated".into()))?;
                pos += 1;
                ColumnValue::Bool(b != 0)
            }
            3 => ColumnValue::Str(read_str(&mut pos)?),
            t => return Err(StoreError::Decode(format!("wal row bad type tag {t}"))),
        };
        rows.push(RowRecord {
            series,
            field,
            ts,
            value,
        });
    }
    Ok(rows)
}

// ----------------------------------------------------------------- store

/// The durable time-series store.
pub struct TsStore {
    vfs: Arc<dyn Vfs>,
    opts: StoreOptions,
    spec: DiskSpec,
    wal: Wal,
    /// Rows framed into the WAL buffer but not yet acknowledged.
    staged: Vec<RowRecord>,
    /// Acknowledged rows awaiting a flush.
    memtable: Vec<RowRecord>,
    /// Sequence numbers of live (valid) chunk files, ascending.
    chunk_seqs: Vec<u64>,
    next_seq: u64,
    obs: Option<StoreObs>,
}

impl TsStore {
    /// Open the store in `vfs`, recovering persisted state: valid chunks
    /// are indexed, corrupt ones skipped, and surviving WAL records are
    /// replayed into the memtable.
    pub fn open(vfs: Arc<dyn Vfs>, opts: StoreOptions) -> StoreResult<(TsStore, RecoveryReport)> {
        Self::open_with_obs(vfs, opts, None)
    }

    /// [`TsStore::open`] with metric handles attached.
    pub fn open_with_obs(
        vfs: Arc<dyn Vfs>,
        opts: StoreOptions,
        obs: Option<StoreObs>,
    ) -> StoreResult<(TsStore, RecoveryReport)> {
        let spec = vfs.disk_spec();
        let mut report = RecoveryReport::default();
        let mut chunk_seqs = Vec::new();
        let mut next_seq = 0u64;
        let mut bytes_read = 0u64;
        for name in vfs.list()? {
            let Some(seq) = parse_chunk_name(&name) else {
                continue;
            };
            // Even a corrupt chunk reserves its sequence number, so a new
            // chunk never collides with a damaged file.
            next_seq = next_seq.max(seq + 1);
            match read_chunk(vfs.as_ref(), &name) {
                Ok(_) => {
                    bytes_read += vfs.read(&name)?.len() as u64;
                    chunk_seqs.push(seq);
                    report.chunks_loaded += 1;
                }
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed),
                Err(_) => report.chunks_skipped += 1,
            }
        }
        chunk_seqs.sort_unstable();
        let (wal, payloads, replay) = Wal::open(vfs.clone(), WAL_FILE)?;
        let mut memtable = Vec::new();
        for payload in &payloads {
            bytes_read += payload.len() as u64 + 8;
            // A payload that deframes but does not decode is treated like
            // a CRC failure: it and everything after it are discarded
            // (decode errors past the CRC can only come from a bit flip).
            match decode_row_batch(payload) {
                Ok(rows) => memtable.extend(rows),
                Err(_) => break,
            }
        }
        report.wal_rows = memtable.len() as u64;
        report.wal_bytes_dropped = replay.bytes_dropped;
        report.wal_corrupt_frames = replay.corrupt_frames;
        report.modeled_ns = (spec.write_time(bytes_read, IO_BLOCK_SIZE) * 1e9) as u64;
        if let Some(obs) = &obs {
            obs.wal_records_replayed.add(replay.records);
            obs.wal_corrupt_frames.add(replay.corrupt_frames);
        }
        Ok((
            TsStore {
                vfs,
                opts,
                spec,
                wal,
                staged: Vec::new(),
                memtable,
                chunk_seqs,
                next_seq,
                obs,
            },
            report,
        ))
    }

    /// Stage `rows` and frame them as one WAL record. Not durable — and
    /// not visible to [`TsStore::scan`] — until [`TsStore::commit`].
    pub fn append(&mut self, rows: &[RowRecord]) {
        if rows.is_empty() {
            return;
        }
        self.wal.append(&encode_row_batch(rows));
        self.staged.extend_from_slice(rows);
        if let Some(obs) = &self.obs {
            obs.wal_records_appended.add(rows.len() as u64);
        }
    }

    /// Modeled group-commit latency for a payload of `bytes` on this
    /// store's device spec — the same figure `commit` records into the
    /// `wal.commit_ns` histogram, exposed so tracing callers can stamp a
    /// `store.wal.group_commit` span with a consistent duration.
    pub fn modeled_commit_ns(&self, bytes: u64) -> u64 {
        (self.spec.write_time(bytes, IO_BLOCK_SIZE) * 1e9) as u64
    }

    /// Group-commit every staged record; on success the rows are
    /// acknowledged and enter the memtable (flushing if over threshold).
    pub fn commit(&mut self) -> StoreResult<CommitInfo> {
        let info = self.wal.commit()?;
        self.memtable.append(&mut self.staged);
        if let Some(obs) = &self.obs {
            if info.records > 0 {
                obs.wal_commits.inc();
                obs.wal_bytes_committed.add(info.bytes);
                obs.wal_commit_ns
                    .record((self.spec.write_time(info.bytes, IO_BLOCK_SIZE) * 1e9) as u64);
            }
        }
        if self.memtable.len() >= self.opts.flush_threshold_rows {
            self.flush()?;
        }
        Ok(info)
    }

    /// Freeze the memtable into a new immutable chunk and truncate the
    /// WAL. The chunk is written and synced *before* the reset, so a
    /// crash in between duplicates rows instead of losing them.
    pub fn flush(&mut self) -> StoreResult<Option<ChunkInfo>> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let seq = self.next_seq;
        let info = write_chunk(self.vfs.as_ref(), seq, &self.memtable)?
            .expect("non-empty memtable produces a chunk");
        self.wal.reset()?;
        self.memtable.clear();
        self.chunk_seqs.push(seq);
        self.next_seq += 1;
        if let Some(obs) = &self.obs {
            obs.compaction_snapshots.inc();
            obs.wal_resets.inc();
            obs.compaction_flush_ns
                .record((self.spec.write_time(info.bytes, IO_BLOCK_SIZE) * 1e9) as u64);
        }
        if self.chunk_seqs.len() >= self.opts.compact_min_chunks {
            self.compact(None)?;
        }
        Ok(Some(info))
    }

    /// Merge every live chunk into one, newest write winning duplicate
    /// cells, dropping rows with `ts < retention_cutoff` when a cutoff is
    /// given. No-op (`None`) when fewer than two chunks exist and no
    /// cutoff was requested.
    pub fn compact(
        &mut self,
        retention_cutoff: Option<i64>,
    ) -> StoreResult<Option<CompactionReport>> {
        if self.chunk_seqs.is_empty() || (self.chunk_seqs.len() < 2 && retention_cutoff.is_none()) {
            return Ok(None);
        }
        let chunks_in = self.chunk_seqs.len();
        let mut merged: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
        let mut rows_in = 0u64;
        let mut bytes_before = 0u64;
        let mut dropped_retention = 0u64;
        for &seq in &self.chunk_seqs {
            let name = chunk_name(seq);
            bytes_before += self.vfs.read(&name)?.len() as u64;
            let (_, rows) = read_chunk(self.vfs.as_ref(), &name)?;
            rows_in += rows.len() as u64;
            for r in rows {
                if matches!(retention_cutoff, Some(cut) if r.ts < cut) {
                    dropped_retention += 1;
                    // A newer chunk may have rewritten this cell inside
                    // the window; the overwrite below still applies.
                    merged.remove(&(r.series.clone(), r.field.clone(), r.ts));
                    continue;
                }
                merged.insert((r.series, r.field, r.ts), r.value);
            }
        }
        let rows_out = merged.len() as u64;
        let dropped_lww = rows_in - rows_out - dropped_retention;
        let out_rows: Vec<RowRecord> = merged
            .into_iter()
            .map(|((series, field, ts), value)| RowRecord {
                series,
                field,
                ts,
                value,
            })
            .collect();
        let seq = self.next_seq;
        let written = write_chunk(self.vfs.as_ref(), seq, &out_rows)?;
        // Only after the merged chunk is durable do the inputs go away.
        for &old in &self.chunk_seqs {
            self.vfs.remove(&chunk_name(old))?;
        }
        self.chunk_seqs.clear();
        let bytes_after = match &written {
            Some(info) => {
                self.chunk_seqs.push(seq);
                self.next_seq += 1;
                info.bytes
            }
            None => 0,
        };
        let report = CompactionReport {
            chunks_in,
            rows_in,
            rows_out,
            rows_dropped_lww: dropped_lww,
            rows_dropped_retention: dropped_retention,
            bytes_before,
            bytes_after,
            modeled_ns: (self
                .spec
                .write_time(bytes_before + bytes_after, IO_BLOCK_SIZE)
                * 1e9) as u64,
        };
        if let Some(obs) = &self.obs {
            obs.compaction_runs.inc();
            obs.compaction_rows_in.add(report.rows_in);
            obs.compaction_rows_out.add(report.rows_out);
            obs.compaction_rows_dropped_lww.add(report.rows_dropped_lww);
            obs.compaction_rows_dropped_retention
                .add(report.rows_dropped_retention);
            obs.compaction_bytes_before.add(report.bytes_before);
            obs.compaction_bytes_after.add(report.bytes_after);
            obs.compaction_compact_ns.record(report.modeled_ns);
        }
        Ok(Some(report))
    }

    /// Drop every durable row older than `cutoff` (used by retention
    /// enforcement); compacts regardless of chunk count.
    pub fn enforce_retention(&mut self, cutoff: i64) -> StoreResult<Option<CompactionReport>> {
        self.memtable.retain(|r| r.ts >= cutoff);
        self.compact(Some(cutoff))
    }

    /// Merged, deduplicated view of every *acknowledged* row: chunks in
    /// sequence order, memtable on top, last write winning each
    /// (series, field, timestamp) cell. Staged-but-uncommitted rows are
    /// invisible, matching the acknowledgement contract.
    pub fn scan(&self) -> StoreResult<Vec<RowRecord>> {
        let mut merged: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
        for &seq in &self.chunk_seqs {
            let (_, rows) = read_chunk(self.vfs.as_ref(), &chunk_name(seq))?;
            for r in rows {
                merged.insert((r.series, r.field, r.ts), r.value);
            }
        }
        for r in &self.memtable {
            merged.insert((r.series.clone(), r.field.clone(), r.ts), r.value.clone());
        }
        Ok(merged
            .into_iter()
            .map(|((series, field, ts), value)| RowRecord {
                series,
                field,
                ts,
                value,
            })
            .collect())
    }

    /// Acknowledged rows not yet flushed to a chunk.
    pub fn memtable_rows(&self) -> usize {
        self.memtable.len()
    }

    /// Rows staged for the next commit.
    pub fn staged_rows(&self) -> usize {
        self.staged.len()
    }

    /// Live chunk files.
    pub fn chunk_count(&self) -> usize {
        self.chunk_seqs.len()
    }

    /// Sequence numbers of the live chunks, ascending.
    pub fn chunk_seqs(&self) -> &[u64] {
        &self.chunk_seqs
    }

    /// Bytes currently occupied by the WAL file.
    pub fn wal_size(&self) -> StoreResult<u64> {
        self.wal.size()
    }

    /// The underlying virtual filesystem.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }
}

impl std::fmt::Debug for TsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsStore")
            .field("chunks", &self.chunk_seqs)
            .field("memtable_rows", &self.memtable.len())
            .field("staged_rows", &self.staged.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{FaultMode, FaultPlan, MemDisk};

    fn row(series: &str, field: &str, ts: i64, v: f64) -> RowRecord {
        RowRecord::new(series, field, ts, ColumnValue::F64(v))
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            flush_threshold_rows: 8,
            compact_min_chunks: 100, // keep compaction manual in tests
        }
    }

    #[test]
    fn row_batch_roundtrip() {
        let rows = vec![
            row("cpu,host=a", "_cpu0", 10, 1.5),
            RowRecord::new("m", "i", 11, ColumnValue::I64(-4)),
            RowRecord::new("m", "b", 12, ColumnValue::Bool(true)),
            RowRecord::new("m", "s", 13, ColumnValue::Str("x=y".into())),
        ];
        let enc = encode_row_batch(&rows);
        assert_eq!(decode_row_batch(&enc).unwrap(), rows);
        assert!(decode_row_batch(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn append_commit_scan_reopen() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(100));
        let (mut store, report) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        // Staged rows are invisible until commit.
        assert!(store.scan().unwrap().is_empty());
        store.commit().unwrap();
        assert_eq!(store.scan().unwrap().len(), 2);
        drop(store);
        let (store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.wal_rows, 2);
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]
        );
    }

    #[test]
    fn threshold_flush_truncates_wal_and_keeps_rows() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(101));
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        let rows: Vec<RowRecord> = (0..10).map(|i| row("s", "f", i, i as f64)).collect();
        store.append(&rows);
        store.commit().unwrap();
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(store.memtable_rows(), 0);
        assert_eq!(store.wal_size().unwrap(), 0);
        assert_eq!(store.scan().unwrap().len(), 10);
        // Reopen sees only the chunk.
        drop(store);
        let (store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_loaded, 1);
        assert_eq!(report.wal_rows, 0);
        assert_eq!(store.scan().unwrap().len(), 10);
    }

    #[test]
    fn compaction_merges_lww_and_enforces_retention() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(102));
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 5, 5.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "f", 5, 50.0), row("s", "f", 9, 9.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        assert_eq!(store.chunk_count(), 2);
        let report = store.compact(Some(2)).unwrap().unwrap();
        assert_eq!(report.rows_in, 4);
        assert_eq!(report.rows_dropped_retention, 1); // ts=1
        assert_eq!(report.rows_dropped_lww, 1); // older ts=5
        assert_eq!(report.rows_out, 2);
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 5, 50.0), row("s", "f", 9, 9.0)]
        );
        // Old chunk files are gone from disk.
        let names = vfs.list().unwrap();
        assert_eq!(names.iter().filter(|n| n.starts_with("chunk-")).count(), 1);
    }

    #[test]
    fn retention_prunes_memtable_and_disk() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(103));
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "old", 1, 1.0), row("s", "new", 100, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "mem_old", 2, 3.0), row("s", "mem_new", 200, 4.0)]);
        store.commit().unwrap();
        store.enforce_retention(50).unwrap();
        let left = store.scan().unwrap();
        let fields: Vec<&str> = left.iter().map(|r| r.field.as_str()).collect();
        assert_eq!(fields, vec!["mem_new", "new"]);
    }

    #[test]
    fn compact_drop_everything_leaves_no_chunks() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(104));
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        let report = store.enforce_retention(10).unwrap().unwrap();
        assert_eq!(report.rows_out, 0);
        assert_eq!(report.bytes_after, 0);
        assert_eq!(store.chunk_count(), 0);
        assert!(store.scan().unwrap().is_empty());
    }

    #[test]
    fn failed_commit_keeps_rows_staged_and_unacked() {
        let disk = MemDisk::new(105);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 1,
            mode: FaultMode::CleanStop,
        });
        assert!(store.commit().is_err());
        assert_eq!(store.staged_rows(), 1);
        assert!(store.scan().is_err() || store.scan().unwrap().is_empty());
    }

    #[test]
    fn flush_crash_between_chunk_and_reset_duplicates_safely() {
        let disk = MemDisk::new(106);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        // Chunk write is create+append+sync (3 ops); crash on the WAL
        // reset right after, leaving rows in both chunk and WAL.
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 4,
            mode: FaultMode::CleanStop,
        });
        assert!(store.flush().is_err());
        assert!(disk.crashed());
        disk.restart();
        let (store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_loaded, 1);
        assert_eq!(report.wal_rows, 2);
        // Scan dedups the double-stored rows.
        assert_eq!(
            store.scan().unwrap(),
            vec![row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]
        );
    }

    #[test]
    fn corrupt_chunk_is_skipped_and_seq_reserved() {
        let disk = MemDisk::new(107);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs.clone(), small_opts()).unwrap();
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        // Smash the chunk.
        let name = chunk_name(0);
        let mut data = disk.read(&name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0xFF;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        let (mut store, report) = TsStore::open(vfs, small_opts()).unwrap();
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(report.chunks_loaded, 0);
        assert!(store.scan().unwrap().is_empty());
        // New flushes never reuse the damaged file's sequence number.
        store.append(&[row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        assert_eq!(store.chunk_seqs(), &[1]);
    }

    #[test]
    fn observability_counts_commits_and_compactions() {
        let registry = Registry::new();
        let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(108));
        let obs = StoreObs::new(&registry, "influx");
        let (mut store, _) = TsStore::open_with_obs(vfs, small_opts(), Some(obs)).unwrap();
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.append(&[row("s", "f", 3, 3.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.compact(None).unwrap().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("wal.records_appended"), 3);
        assert_eq!(snap.counter_total("wal.commits"), 2);
        assert_eq!(snap.counter_total("compaction.snapshots"), 2);
        assert_eq!(snap.counter_total("compaction.runs"), 1);
        assert_eq!(snap.counter_total("compaction.rows_in"), 3);
        assert_eq!(snap.counter_total("compaction.rows_out"), 3);
        let h = snap
            .histogram("wal.commit_ns", &[("db", "influx")])
            .unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum > 0, "modeled commit latency must be non-zero");
    }

    #[test]
    fn same_seed_runs_produce_byte_identical_state() {
        let run = |seed: u64| -> Vec<(String, Vec<u8>)> {
            let disk = MemDisk::new(seed);
            let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
            let (mut store, _) = TsStore::open(vfs, small_opts()).unwrap();
            for i in 0..20i64 {
                store.append(&[row("cpu,host=a", "_cpu0", i * 500, 20.0 + i as f64)]);
                store.commit().unwrap();
            }
            store.flush().unwrap();
            disk.list()
                .unwrap()
                .into_iter()
                .map(|n| {
                    let d = disk.read(&n).unwrap();
                    (n, d)
                })
                .collect()
        };
        assert_eq!(run(1), run(2));
    }
}
