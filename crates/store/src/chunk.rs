//! Immutable TSM-style chunk files.
//!
//! A chunk is the durable, compressed form of a batch of rows: one block
//! per (series, field, value-type), timestamps delta-of-delta encoded,
//! float values Gorilla XOR compressed, the whole file sealed with a
//! trailing CRC32. Within a chunk, duplicate (series, field, timestamp)
//! entries are resolved last-write-wins at build time, so a chunk never
//! carries two values for the same cell.
//!
//! Layout:
//!
//! ```text
//! "PMCHUNK1" | seq u64 LE | block_count u32 LE | blocks... | crc32 u32 LE
//! block: series(varint len + bytes) | field(varint len + bytes)
//!        | type u8 | count uvarint | min_ts ivarint | max_ts ivarint
//!        | ts_len uvarint | ts_bytes | val_len uvarint | val_bytes
//! ```
//!
//! Everything is a deterministic function of the input rows (grouping
//! walks a `BTreeMap`), so two same-seed runs emit byte-identical files.

use crate::crc::crc32;
use crate::encode::{
    decode_timestamps, decode_values, encode_timestamps, encode_values, get_ivarint, get_uvarint,
    put_ivarint, put_uvarint,
};
use crate::error::{StoreError, StoreResult};
use crate::row::{ColumnValue, RowRecord};
use crate::vfs::Vfs;
use std::collections::BTreeMap;

/// File magic for chunk files.
pub const CHUNK_MAGIC: &[u8; 8] = b"PMCHUNK1";

/// File name for a chunk sequence number.
pub fn chunk_name(seq: u64) -> String {
    format!("chunk-{seq:08}.tsm")
}

/// Parse a chunk sequence number back out of a file name.
pub fn parse_chunk_name(name: &str) -> Option<u64> {
    name.strip_prefix("chunk-")?
        .strip_suffix(".tsm")?
        .parse()
        .ok()
}

/// Summary of one written chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Chunk sequence number (also encoded in the file name).
    pub seq: u64,
    /// Blocks written.
    pub blocks: usize,
    /// Rows stored (after in-chunk last-write-wins dedup).
    pub rows: usize,
    /// Rows discarded by in-chunk dedup.
    pub rows_deduped: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// Raw in-memory footprint of the stored rows (compression baseline).
    pub raw_bytes: u64,
}

/// Build and persist a chunk from `rows` (in write order — later entries
/// win duplicate cells). Returns `None` when `rows` is empty.
pub fn write_chunk(vfs: &dyn Vfs, seq: u64, rows: &[RowRecord]) -> StoreResult<Option<ChunkInfo>> {
    if rows.is_empty() {
        return Ok(None);
    }
    // Last-write-wins per (series, field, ts) cell first — the winner's
    // type decides its block, so a cell rewritten with a new type cannot
    // survive as two blocks with an order-dependent reader.
    let mut cells: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
    for r in rows {
        cells.insert((r.series.clone(), r.field.clone(), r.ts), r.value.clone());
    }
    // (series, field, type) -> ts -> value, in canonical BTreeMap order.
    let mut groups: BTreeMap<(String, String, u8), BTreeMap<i64, ColumnValue>> = BTreeMap::new();
    for ((series, field, ts), value) in cells {
        groups
            .entry((series, field, value.type_tag()))
            .or_default()
            .insert(ts, value);
    }
    let mut body = Vec::new();
    body.extend_from_slice(CHUNK_MAGIC);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    let mut kept = 0usize;
    let mut raw_bytes = 0u64;
    for ((series, field, tag), cells) in &groups {
        let ts: Vec<i64> = cells.keys().copied().collect();
        let values: Vec<ColumnValue> = cells.values().cloned().collect();
        kept += ts.len();
        for v in &values {
            raw_bytes += RowRecord::new("", "", 0, v.clone()).raw_footprint() as u64;
        }
        let ts_bytes = encode_timestamps(&ts);
        let val_bytes = encode_values(*tag, &values);
        put_uvarint(&mut body, series.len() as u64);
        body.extend_from_slice(series.as_bytes());
        put_uvarint(&mut body, field.len() as u64);
        body.extend_from_slice(field.as_bytes());
        body.push(*tag);
        put_uvarint(&mut body, ts.len() as u64);
        put_ivarint(&mut body, ts[0]);
        put_ivarint(&mut body, *ts.last().unwrap());
        put_uvarint(&mut body, ts_bytes.len() as u64);
        body.extend_from_slice(&ts_bytes);
        put_uvarint(&mut body, val_bytes.len() as u64);
        body.extend_from_slice(&val_bytes);
    }
    body.extend_from_slice(&crc32(&body[..]).to_le_bytes());
    let mut f = vfs.create(&chunk_name(seq))?;
    f.append(&body)?;
    f.sync()?;
    Ok(Some(ChunkInfo {
        seq,
        blocks: groups.len(),
        rows: kept,
        rows_deduped: rows.len() - kept,
        bytes: body.len() as u64,
        raw_bytes,
    }))
}

/// Read and validate the chunk file `name`; returns its sequence number
/// and rows (block order, timestamps ascending within a block). Any
/// structural damage — bad magic, bad CRC, truncated block — is an error;
/// recovery treats such chunks as absent.
pub fn read_chunk(vfs: &dyn Vfs, name: &str) -> StoreResult<(u64, Vec<RowRecord>)> {
    let data = vfs.read(name)?;
    read_chunk_bytes(name, &data)
}

/// [`read_chunk`] over bytes already in hand — the checksum-on-read path
/// reads a file once, validates these bytes, and quarantines exactly them
/// on failure.
pub fn read_chunk_bytes(name: &str, data: &[u8]) -> StoreResult<(u64, Vec<RowRecord>)> {
    if data.len() < CHUNK_MAGIC.len() + 8 + 4 + 4 {
        return Err(StoreError::Corrupt(format!("chunk {name}: too short")));
    }
    if &data[..8] != CHUNK_MAGIC {
        return Err(StoreError::Corrupt(format!("chunk {name}: bad magic")));
    }
    let body_end = data.len() - 4;
    let stored_crc = u32::from_le_bytes(data[body_end..].try_into().unwrap());
    if crc32(&data[..body_end]) != stored_crc {
        return Err(StoreError::Corrupt(format!("chunk {name}: bad crc")));
    }
    let seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let block_count = u32::from_le_bytes(data[16..20].try_into().unwrap());
    let mut pos = 20usize;
    let mut rows = Vec::new();
    let read_str = |data: &[u8], pos: &mut usize| -> StoreResult<String> {
        let len = get_uvarint(data, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| StoreError::Decode("block key ran off the end".into()))?;
        let s = std::str::from_utf8(&data[*pos..end])
            .map_err(|_| StoreError::Decode("block key not UTF-8".into()))?
            .to_string();
        *pos = end;
        Ok(s)
    };
    for _ in 0..block_count {
        let series = read_str(&data[..body_end], &mut pos)?;
        let field = read_str(&data[..body_end], &mut pos)?;
        let tag = *data
            .get(pos)
            .ok_or_else(|| StoreError::Decode("missing type tag".into()))?;
        ColumnValue::check_tag(tag)?;
        pos += 1;
        let count = get_uvarint(&data[..body_end], &mut pos)? as usize;
        let _min_ts = get_ivarint(&data[..body_end], &mut pos)?;
        let _max_ts = get_ivarint(&data[..body_end], &mut pos)?;
        let ts_len = get_uvarint(&data[..body_end], &mut pos)? as usize;
        let ts_end = pos
            .checked_add(ts_len)
            .filter(|&e| e <= body_end)
            .ok_or_else(|| StoreError::Decode("timestamp bytes ran off the end".into()))?;
        let ts = decode_timestamps(&data[pos..ts_end], count)?;
        pos = ts_end;
        let val_len = get_uvarint(&data[..body_end], &mut pos)? as usize;
        let val_end = pos
            .checked_add(val_len)
            .filter(|&e| e <= body_end)
            .ok_or_else(|| StoreError::Decode("value bytes ran off the end".into()))?;
        let values = decode_values(tag, &data[pos..val_end], count)?;
        pos = val_end;
        for (t, v) in ts.into_iter().zip(values) {
            rows.push(RowRecord {
                series: series.clone(),
                field: field.clone(),
                ts: t,
                value: v,
            });
        }
    }
    Ok((seq, rows))
}

/// Best-effort structural summary of a damaged chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProbe {
    /// Sequence number from the header (0 if the header itself is gone).
    pub seq: u64,
    /// Rows claimed by the block headers that still parse.
    pub rows: u64,
    /// `[min_ts, max_ts]` across parseable block headers, if any.
    pub time_range: Option<(i64, i64)>,
}

/// Upper bound on a single block's claimed row count during a probe; a
/// flipped bit inside a count varint must not inflate loss accounting.
const PROBE_MAX_BLOCK_ROWS: u64 = 1 << 32;

/// Probe chunk bytes that failed CRC validation: walk the block headers
/// ignoring the checksum and accumulate how many rows the file claimed to
/// hold and over which time range, stopping at the first structural
/// damage. Quarantine uses this to size the hole a lost chunk leaves —
/// it is an estimate (the damage may be inside a header), never a way to
/// trust the data itself.
pub fn probe_chunk(data: &[u8]) -> Option<ChunkProbe> {
    if data.len() < CHUNK_MAGIC.len() + 8 + 4 || &data[..8] != CHUNK_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let block_count = u32::from_le_bytes(data[16..20].try_into().unwrap());
    let mut pos = 20usize;
    let mut probe = ChunkProbe {
        seq,
        rows: 0,
        time_range: None,
    };
    let skip_bytes = |data: &[u8], pos: &mut usize| -> StoreResult<()> {
        let len = get_uvarint(data, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| StoreError::Decode("probe ran off the end".into()))?;
        *pos = end;
        Ok(())
    };
    let block = |data: &[u8], pos: &mut usize| -> StoreResult<(u64, i64, i64)> {
        skip_bytes(data, pos)?; // series
        skip_bytes(data, pos)?; // field
        let tag = *data
            .get(*pos)
            .ok_or_else(|| StoreError::Decode("probe: missing tag".into()))?;
        ColumnValue::check_tag(tag)?;
        *pos += 1;
        let count = get_uvarint(data, pos)?;
        if count > PROBE_MAX_BLOCK_ROWS {
            return Err(StoreError::Decode("probe: implausible row count".into()));
        }
        let min_ts = get_ivarint(data, pos)?;
        let max_ts = get_ivarint(data, pos)?;
        if min_ts > max_ts {
            return Err(StoreError::Decode("probe: inverted time range".into()));
        }
        skip_bytes(data, pos)?; // ts bytes
        skip_bytes(data, pos)?; // val bytes
        Ok((count, min_ts, max_ts))
    };
    for _ in 0..block_count {
        let Ok((count, min_ts, max_ts)) = block(data, &mut pos) else {
            break;
        };
        probe.rows += count;
        probe.time_range = Some(match probe.time_range {
            None => (min_ts, max_ts),
            Some((lo, hi)) => (lo.min(min_ts), hi.max(max_ts)),
        });
    }
    Some(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    fn rows() -> Vec<RowRecord> {
        let mut out = Vec::new();
        for i in 0..100i64 {
            out.push(RowRecord::new(
                "cpu,host=a",
                "_cpu0",
                i * 500,
                ColumnValue::F64(20.0 + i as f64 * 0.1),
            ));
            out.push(RowRecord::new(
                "cpu,host=a",
                "_cpu1",
                i * 500,
                ColumnValue::I64(i),
            ));
        }
        out.push(RowRecord::new("m,host=b", "ok", 1, ColumnValue::Bool(true)));
        out.push(RowRecord::new(
            "m,host=b",
            "note",
            2,
            ColumnValue::Str("hello".into()),
        ));
        out
    }

    #[test]
    fn chunk_roundtrip_preserves_rows() {
        let disk = MemDisk::new(1);
        let info = write_chunk(&disk, 3, &rows()).unwrap().unwrap();
        assert_eq!(info.seq, 3);
        assert_eq!(info.rows, 202);
        assert_eq!(info.blocks, 4);
        let (seq, back) = read_chunk(&disk, &chunk_name(3)).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(back.len(), 202);
        // Same cells, independent of block ordering.
        let key = |r: &RowRecord| (r.series.clone(), r.field.clone(), r.ts);
        let mut a: Vec<_> = rows().iter().map(|r| (key(r), r.value.clone())).collect();
        let mut b: Vec<_> = back.iter().map(|r| (key(r), r.value.clone())).collect();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_compresses_below_half_raw_footprint() {
        let disk = MemDisk::new(2);
        let info = write_chunk(&disk, 0, &rows()).unwrap().unwrap();
        assert!(
            (info.bytes as f64) < 0.5 * info.raw_bytes as f64,
            "chunk {} B vs raw {} B",
            info.bytes,
            info.raw_bytes
        );
    }

    #[test]
    fn duplicate_cells_resolve_last_write_wins() {
        let disk = MemDisk::new(3);
        let dup = vec![
            RowRecord::new("s", "f", 5, ColumnValue::F64(1.0)),
            RowRecord::new("s", "f", 5, ColumnValue::F64(2.0)),
        ];
        let info = write_chunk(&disk, 0, &dup).unwrap().unwrap();
        assert_eq!(info.rows, 1);
        assert_eq!(info.rows_deduped, 1);
        let (_, back) = read_chunk(&disk, &chunk_name(0)).unwrap();
        assert_eq!(
            back,
            vec![RowRecord::new("s", "f", 5, ColumnValue::F64(2.0))]
        );
    }

    #[test]
    fn lww_holds_when_a_cell_changes_type() {
        let disk = MemDisk::new(7);
        // An i64 rewritten as f64: block order (f64 sorts first) must not
        // resurrect the older value.
        let dup = vec![
            RowRecord::new("s", "f", 5, ColumnValue::I64(1)),
            RowRecord::new("s", "f", 5, ColumnValue::F64(2.0)),
        ];
        write_chunk(&disk, 0, &dup).unwrap().unwrap();
        let (_, back) = read_chunk(&disk, &chunk_name(0)).unwrap();
        assert_eq!(
            back,
            vec![RowRecord::new("s", "f", 5, ColumnValue::F64(2.0))]
        );
    }

    #[test]
    fn empty_input_writes_nothing() {
        let disk = MemDisk::new(4);
        assert_eq!(write_chunk(&disk, 0, &[]).unwrap(), None);
        assert!(!disk.exists(&chunk_name(0)).unwrap());
    }

    #[test]
    fn corrupt_chunks_are_rejected() {
        let disk = MemDisk::new(5);
        write_chunk(&disk, 1, &rows()).unwrap();
        let name = chunk_name(1);
        let mut data = disk.read(&name).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x10;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        assert!(matches!(
            read_chunk(&disk, &name),
            Err(StoreError::Corrupt(_))
        ));
        // Truncated file.
        let mut f = disk.create(&name).unwrap();
        f.append(&data[..10]).unwrap();
        f.sync().unwrap();
        assert!(read_chunk(&disk, &name).is_err());
    }

    #[test]
    fn chunk_files_are_byte_identical_across_runs() {
        let a = MemDisk::new(6);
        let b = MemDisk::new(99); // different disk seed must not matter
        write_chunk(&a, 2, &rows()).unwrap();
        write_chunk(&b, 2, &rows()).unwrap();
        assert_eq!(
            a.read(&chunk_name(2)).unwrap(),
            b.read(&chunk_name(2)).unwrap()
        );
    }

    #[test]
    fn probe_recovers_structure_from_corrupt_chunk() {
        let disk = MemDisk::new(8);
        write_chunk(&disk, 4, &rows()).unwrap().unwrap();
        let name = chunk_name(4);
        let mut data = disk.read(&name).unwrap();
        // Flip a bit inside the last block's value bytes: earlier block
        // headers still parse, so the probe sees the full row count.
        let off = data.len() - 8;
        data[off] ^= 0x01;
        assert!(matches!(
            read_chunk_bytes(&name, &data),
            Err(StoreError::Corrupt(_))
        ));
        let probe = probe_chunk(&data).unwrap();
        assert_eq!(probe.seq, 4);
        assert_eq!(probe.rows, 202);
        let (lo, hi) = probe.time_range.unwrap();
        assert_eq!((lo, hi), (0, 99 * 500));
        // Damage in the magic itself is unprobeable.
        assert_eq!(probe_chunk(b"garbage"), None);
    }

    #[test]
    fn chunk_names_roundtrip() {
        assert_eq!(chunk_name(7), "chunk-00000007.tsm");
        assert_eq!(parse_chunk_name("chunk-00000007.tsm"), Some(7));
        assert_eq!(parse_chunk_name("wal.log"), None);
        assert_eq!(parse_chunk_name("chunk-x.tsm"), None);
    }
}
