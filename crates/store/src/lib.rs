//! # pmove-store — durable storage engine
//!
//! The persistence layer under the P-MoVE stand-in databases: an
//! append-only write-ahead log with CRC-framed records and group commit,
//! immutable TSM-style chunks (delta-of-delta timestamps, Gorilla XOR
//! floats), size-tiered compaction with last-write-wins dedup and
//! retention-cutoff drops, and crash recovery that tolerates torn tails
//! and bit flips.
//!
//! Every byte goes through the [`vfs::Vfs`] abstraction, with two
//! implementations: [`vfs::StdFs`] over the real filesystem, and
//! [`memdisk::MemDisk`], a seeded fault-injecting in-memory disk layered
//! on the `hwsim` block-device model. The latter is what makes the
//! crash-recovery property (`tests/crash_recovery.rs`) deterministic:
//! for any seeded fault schedule, reopening the store recovers exactly a
//! prefix of the offered writes that covers every acknowledged one.
//!
//! Layering, bottom to top:
//!
//! - [`crc`] / [`encode`] — checksums, varints, bit-level codecs
//! - [`vfs`] / [`memdisk`] — where bytes live and how they fail
//! - [`wal`] — durability of recent writes
//! - [`chunk`] — compressed immutable storage of old writes
//! - [`store`] — the engine tying them together ([`store::TsStore`])
//! - [`scrub`] — background integrity verification over the engine

pub mod backup;
pub mod chunk;
pub mod crc;
pub mod encode;
pub mod error;
pub mod memdisk;
pub mod row;
pub mod scrub;
pub mod store;
pub mod vfs;
pub mod wal;

pub use backup::{
    list_generations, restore_at, restore_replay_all, BackupAttach, BackupError, BackupReport,
    BackupStats, Manifest, ManifestChunk, RestoreReport,
};
pub use chunk::{chunk_name, parse_chunk_name, probe_chunk, ChunkInfo, ChunkProbe};
pub use error::{StoreError, StoreResult};
pub use memdisk::{FaultMode, FaultPlan, MemDisk, RotEvent, RotRecord, RotSchedule};
pub use row::{ColumnValue, RowRecord};
pub use scrub::{ScrubConfig, ScrubReport, Scrubber};
pub use store::{
    decode_row_batch, encode_row_batch, quarantine_name, CompactionReport, DetectionSite,
    QuarantinedChunk, RecoveryReport, StoreObs, StoreOptions, TsStore, VerifyOutcome, WalScrub,
    QUARANTINE_PREFIX,
};
pub use vfs::{StdFs, Vfs, VirtualFile};
pub use wal::{CommitInfo, Wal, WalReplay};
