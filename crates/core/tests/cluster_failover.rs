//! Cluster failover, end to end: a node dies mid-run, the supervisor
//! quarantines it after the configured number of missed heartbeats, the
//! survivors keep inserting telemetry, and SUPERDB-level views exclude
//! the dead node while carrying an explicit staleness annotation.

use pmove_core::telemetry::Cluster;

#[test]
fn node_death_mid_run_quarantines_without_stopping_the_fleet() {
    let mut cluster = Cluster::from_presets(&["icl", "csl", "zen3"]).unwrap();
    cluster.heartbeat_miss_limit = 2;

    // Healthy warm-up round: every node reports and fills its store.
    let reports = cluster.monitor_all(10.0, 1.0);
    assert_eq!(reports.len(), 3);
    let rows_before: Vec<usize> = cluster.nodes.iter().map(|d| d.ts.total_rows()).collect();
    assert!(rows_before.iter().all(|&r| r > 0));
    // Global views see all three machines before the failure.
    assert_eq!(
        cluster.superdb.global_level_view("socket").unwrap().len(),
        3
    );

    // csl dies mid-run.
    assert!(cluster.kill_node("csl"));

    // Round 1 after death: one miss, not yet quarantined, survivors run.
    let reports = cluster.monitor_all(10.0, 1.0);
    let keys: Vec<&str> = reports.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["icl", "zen3"]);
    let csl = cluster
        .node_health()
        .into_iter()
        .find(|h| h.key == "csl")
        .unwrap();
    assert!(!csl.alive);
    assert!(!csl.quarantined);
    assert_eq!(csl.missed_heartbeats, 1);

    // Round 2: the miss limit is reached — quarantine.
    cluster.monitor_all(10.0, 1.0);
    let csl = cluster
        .node_health()
        .into_iter()
        .find(|h| h.key == "csl")
        .unwrap();
    assert!(csl.quarantined);
    assert_eq!(cluster.quarantined_nodes(), vec!["csl".to_string()]);

    // Survivors kept inserting across every round...
    for (i, d) in cluster.nodes.iter().enumerate() {
        if d.kb.machine_key == "csl" {
            assert_eq!(d.ts.total_rows(), rows_before[i], "dead node stopped");
        } else {
            assert!(d.ts.total_rows() > rows_before[i], "survivor kept going");
        }
    }
    // ...and their transports stayed lossless.
    let snap = cluster.obs.snapshot();
    assert_eq!(
        snap.counter("cluster.nodes_quarantined", &[("node", "csl")]),
        Some(1)
    );

    // SUPERDB: the level view excludes the dead node; the staleness
    // annotation explains why and points at its last healthy moment.
    let sockets = cluster.superdb.global_level_view("socket").unwrap();
    let machines: Vec<&str> = sockets.iter().map(|(m, _)| m.as_str()).collect();
    assert_eq!(machines, vec!["icl", "zen3"]);
    assert_eq!(cluster.superdb.staleness("csl"), Some(10.0));
    assert_eq!(cluster.superdb.stale_machines(), vec!["csl".to_string()]);
    // The dashboard built on the view drops the dead node's panels too.
    let dash = cluster
        .superdb
        .global_level_dashboard("socket")
        .unwrap()
        .expect("two live machines remain");
    assert!(!dash.panels.iter().any(|p| p.title.starts_with("csl: ")));

    // Operator revives the node: quarantine and staleness clear, and the
    // next round monitors all three again.
    assert!(cluster.revive_node("csl").unwrap());
    assert!(cluster.superdb.staleness("csl").is_none());
    let reports = cluster.monitor_all(10.0, 1.0);
    assert_eq!(reports.len(), 3);
    assert_eq!(
        cluster.superdb.global_level_view("socket").unwrap().len(),
        3
    );
}
