//! Deterministic observation identifiers.
//!
//! The paper tags every observation with a UUID (`278e26c2-3fd3-...`) that
//! links KB entries to their time-series data. For reproducibility the
//! simulator derives UUID-shaped ids deterministically from contextual
//! labels and a per-daemon counter.

use pmove_hwsim::noise::stable_hash;

/// Generate a UUID-shaped id from labels (stable across runs).
pub fn observation_id(labels: &[&str]) -> String {
    let h1 = stable_hash(labels);
    let h2 = stable_hash(&[&h1.to_string(), "second-half"]);
    format!(
        "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
        (h1 >> 32) as u32,
        (h1 >> 16) as u16,
        h1 as u16,
        (h2 >> 48) as u16,
        h2 & 0xffff_ffff_ffff
    )
}

/// A counter-based id factory for one daemon session.
#[derive(Debug, Default)]
pub struct IdFactory {
    prefix: String,
    counter: u64,
}

impl IdFactory {
    /// Factory whose ids derive from a session prefix (machine key etc.).
    pub fn new(prefix: impl Into<String>) -> Self {
        IdFactory {
            prefix: prefix.into(),
            counter: 0,
        }
    }

    /// Next id.
    pub fn next_id(&mut self) -> String {
        let id = observation_id(&[&self.prefix, &self.counter.to_string()]);
        self.counter += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuid_shape() {
        let id = observation_id(&["csl", "spmv", "0"]);
        let parts: Vec<&str> = id.split('-').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0].len(), 8);
        assert_eq!(parts[1].len(), 4);
        assert_eq!(parts[2].len(), 4);
        assert_eq!(parts[3].len(), 4);
        assert_eq!(parts[4].len(), 12);
    }

    #[test]
    fn deterministic_but_distinct() {
        assert_eq!(observation_id(&["a"]), observation_id(&["a"]));
        assert_ne!(observation_id(&["a"]), observation_id(&["b"]));
        let mut f = IdFactory::new("csl");
        let a = f.next_id();
        let b = f.next_id();
        assert_ne!(a, b);
        let mut g = IdFactory::new("csl");
        assert_eq!(g.next_id(), a);
    }
}
