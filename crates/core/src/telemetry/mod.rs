//! Telemetry orchestration — the mechanics of §IV and Fig. 3.

pub mod cluster;
pub mod daemon;
pub mod pinning;
pub mod scenario_a;
pub mod scenario_b;

pub use cluster::{Cluster, NodeHealth};
pub use daemon::{DaemonMode, PMoveDaemon};
pub use pinning::PinningStrategy;
