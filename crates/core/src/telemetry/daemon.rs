//! The P-MoVE daemon: the host-side process owning the databases, the
//! abstraction layer, the KB, and the virtual clock.
//!
//! Construction runs the paper's steps ⓪–③: read the environment
//! (database parameters), probe the target, generate the KB, insert it
//! into the document database. Afterwards "the framework becomes fully
//! functional using only this data structure".

use crate::abstraction::presets::builtin_layer;
use crate::abstraction::AbstractionLayer;
use crate::error::PmoveError;
use crate::ids::IdFactory;
use crate::kb::observation::{BenchmarkInterface, BenchmarkResult};
use crate::kb::{builder, store, DbParams, KnowledgeBase};
use crate::probe::ProbeReport;
use crate::telemetry::scenario_a::{self, ReplicatedOutcome};
use crate::telemetry::scenario_b::{self, ProfileOutcome, ProfileRequest};
use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
use pmove_hwsim::{ExecModel, FaultSchedule, Machine};
use pmove_kernels::hpcg;
use pmove_obs::{
    AlertState, BurnWindow, Objective, Registry, SloEngine, SloSpec, TraceConfig, Tracer,
    Transition,
};
use pmove_pcp::{ResilienceConfig, SamplingReport};
use pmove_serve::{QueryServer, ServeReport, ServeRequest, ServingConfig};
use pmove_tsdb::repl::{RepairReport, ReplConfig, ReplicaSet};
use std::sync::Arc;

/// Convert virtual-clock seconds to integer nanoseconds for span stamps.
fn s_to_ns(s: f64) -> u64 {
    (s * 1e9).round().max(0.0) as u64
}

/// What boot step ④ recovered from the durable stores.
#[derive(Debug, Clone, Copy)]
pub struct BootRecovery {
    /// Time-series store recovery (chunk load + WAL replay).
    pub ts: pmove_tsdb::store::RecoveryReport,
    /// Document-database journal replay.
    pub doc: pmove_docdb::JournalReport,
    /// Modeled recovery time in nanoseconds (the step ④ span length).
    pub modeled_ns: u64,
}

/// How much of the stack the daemon booted with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonMode {
    /// Full stack: every scenario available.
    Normal,
    /// Supervised fallback after a failed durable boot: monitoring keeps
    /// running against in-memory stores, but KB-mutating operations
    /// (profiling, benchmarks) are refused until the operator intervenes.
    DegradedMonitorOnly,
}

/// The daemon.
pub struct PMoveDaemon {
    /// The target machine (host ≠ target in the paper; the daemon holds a
    /// handle to the simulated target).
    pub machine: Machine,
    /// The knowledge base (given to every function as a parameter).
    pub kb: KnowledgeBase,
    /// The abstraction layer (builtin presets + user registrations).
    pub layer: AbstractionLayer,
    /// Host time-series database.
    pub ts: pmove_tsdb::Database,
    /// Host document database.
    pub doc: Arc<pmove_docdb::Database>,
    /// Journal wrapper around `doc` when the daemon is durable; KB
    /// mutations route through it so they survive restarts.
    pub doc_journal: Option<pmove_docdb::DurableDatabase>,
    /// Step ④ recovery outcome; `None` on memory-only daemons.
    pub recovery: Option<BootRecovery>,
    /// Replicated telemetry store (RF durable replicas behind a quorum
    /// coordinator); `None` unless booted via [`PMoveDaemon::new_replicated`].
    pub repl: Option<ReplicaSet>,
    /// Per-replica recovery reports from the replicated boot (empty
    /// otherwise).
    pub repl_recovery: Vec<pmove_tsdb::store::RecoveryReport>,
    /// Observation-id factory.
    pub ids: IdFactory,
    /// Virtual clock (seconds since daemon start).
    pub now_s: f64,
    /// Pinned background load — `(os thread, busy fraction)` pairs of
    /// long-running processes, reflected in Scenario A's SW telemetry.
    pub background_busy: Vec<(u32, f64)>,
    /// Self-observability registry: every subsystem the daemon owns
    /// (transport, pmcd, tsdb, docdb, KB builder) reports into it.
    pub obs: Arc<Registry>,
    /// SLO engine over the registry's metrics; objectives install via
    /// [`PMoveDaemon::install_default_slos`] or [`SloEngine::add`] and
    /// evaluate on the daemon's virtual clock.
    pub slo: SloEngine,
    /// Which stack the daemon booted with (see [`DaemonMode`]).
    pub mode: DaemonMode,
    /// Why the supervisor degraded the boot, when it did.
    pub degraded_reason: Option<String>,
    /// Background integrity scrubber over the durable time-series store;
    /// `None` until [`PMoveDaemon::enable_scrubbing`]. Ticks piggy-back
    /// on the monitoring loop so scrub progress rides the same virtual
    /// clock as everything else.
    pub scrubber: Option<pmove_tsdb::store::Scrubber>,
    /// Cadence the scrubber was enabled with; drives the staleness bound
    /// of the `scrub_staleness` SLO.
    pub scrub_cfg: Option<pmove_tsdb::store::ScrubConfig>,
    /// Backup cadence in virtual seconds; `None` until
    /// [`PMoveDaemon::enable_backups`]. Ticks piggy-back on the
    /// monitoring loop like scrubbing and rollups.
    pub backup_period_s: Option<f64>,
    /// Virtual time of the last completed backup generation.
    pub last_backup_s: f64,
    /// Run an automated restore drill after every this many completed
    /// backup generations (0 disables the drill loop).
    pub drill_every_backups: u64,
    /// Completed generations since the last restore drill.
    backups_since_drill: u64,
    /// Restore drills run so far; seeds each drill's scratch disk.
    drills_run: u64,
}

/// Modeled boot-step durations (virtual ns, deterministic): reading the
/// environment is a fixed cost; probing scales with components found; KB
/// generation with interfaces built; KB insertion with documents written.
const STEP0_ENV_NS: u64 = 150_000;
const STEP1_PER_COMPONENT_NS: u64 = 2_500;
const STEP2_PER_INTERFACE_NS: u64 = 8_000;
const STEP3_PER_DOC_NS: u64 = 12_000;
/// Supervisor decision step (⑤): checking the boot outcome and wiring
/// the chosen mode is a fixed cost.
const STEP5_SUPERVISE_NS: u64 = 40_000;
/// Modeled fixed cost of one anti-entropy repair pass.
const REPAIR_BASE_NS: u64 = 60_000;
/// Modeled per-cell cost of streaming a divergent range during repair.
const REPAIR_PER_CELL_NS: u64 = 700;
/// Degradation reason prefix for replication-driven monitor-only mode;
/// used to recognise (and lift) it when the quorum returns.
const REPL_DEGRADED_REASON: &str = "replication write quorum unreachable";
/// Modeled fixed cost of fencing + committing one backup generation.
const BACKUP_BASE_NS: u64 = 80_000;
/// Modeled per-byte cost of copying chunk bytes to the backup disk.
const BACKUP_PER_BYTE_NS: u64 = 2;
/// Modeled fixed cost of one restore drill (scratch restore + diff).
const DRILL_BASE_NS: u64 = 250_000;

/// Flatten a database's cell space into a diffable map: `(canonical
/// series, timestamp, field) -> value fingerprint`, floats fingerprinted
/// by `f64::to_bits` so the drill comparison is bit-exact (NaN payloads
/// and signed zeros included). Gap-marker annotations are skipped — they
/// are in-memory derivations, deliberately never persisted, so a restored
/// store cannot be expected to reproduce them.
fn drill_cell_map(
    db: &pmove_tsdb::Database,
) -> std::collections::BTreeMap<(String, i64, String), (u8, u64)> {
    use pmove_tsdb::FieldValue as F;
    let mut map = std::collections::BTreeMap::new();
    db.for_each_cell(&mut |key, ts, field, value| {
        let canonical = key.canonical();
        if canonical.starts_with(pmove_tsdb::GAP_MEASUREMENT) {
            return;
        }
        let fp = match value {
            F::Float(x) => (0u8, x.to_bits()),
            F::Int(x) => (1, *x as u64),
            F::Bool(x) => (2, u64::from(*x)),
            F::Str(s) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in s.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (3, h)
            }
        };
        map.insert((canonical, ts, field.to_string()), fp);
    });
    map
}

/// Steps ⓪–②: environment, probe, KB generation. Returns the KB and the
/// boot-timeline position after step ②.
fn boot_steps_0_to_2(
    machine: &Machine,
    env: &DbParams,
    obs: &Registry,
) -> Result<(KnowledgeBase, u64), PmoveError> {
    let mut boot_ns = 0u64; // ⓪ environment
    obs.record_span("daemon.step0.environment", boot_ns, boot_ns + STEP0_ENV_NS);
    boot_ns += STEP0_ENV_NS;

    let report = ProbeReport::collect(machine); // ①
    let probe_ns = report.components().len() as u64 * STEP1_PER_COMPONENT_NS;
    obs.record_span("daemon.step1.probe", boot_ns, boot_ns + probe_ns);
    boot_ns += probe_ns;

    let mut kb = builder::build_kb_observed(&report, Some(obs))?; // ②
    kb.db = env.clone();
    let gen_ns = kb.len() as u64 * STEP2_PER_INTERFACE_NS;
    obs.record_span("daemon.step2.kb_generation", boot_ns, boot_ns + gen_ns);
    boot_ns += gen_ns;
    Ok((kb, boot_ns))
}

impl PMoveDaemon {
    /// Steps ⓪–③: environment, probe, KB generation, KB insertion.
    ///
    /// Each step is stamped as a `daemon.stepN.*` span on a synthetic boot
    /// timeline starting at 0 ns with modeled durations, so the span
    /// record is bit-identical across same-configuration runs. The boot
    /// timeline does not advance the daemon clock (`now_s` stays 0).
    pub fn new(machine: Machine, env: DbParams) -> Result<Self, PmoveError> {
        let obs = Registry::shared();
        let (kb, boot_ns) = boot_steps_0_to_2(&machine, &env, &obs)?;

        let ts = pmove_tsdb::Database::with_obs(&env.influx_db, obs.clone());
        let doc = Arc::new(pmove_docdb::Database::with_obs(&env.mongo_db, obs.clone()));
        doc.collection(store::KB_COLLECTION).create_index("@type");
        let inserted = store::insert_kb(&doc, &kb)?; // ③
        let insert_ns = inserted as u64 * STEP3_PER_DOC_NS;
        obs.record_span("daemon.step3.kb_insert", boot_ns, boot_ns + insert_ns);

        let ids = IdFactory::new(machine.key());
        Ok(PMoveDaemon {
            machine,
            kb,
            layer: builtin_layer(),
            ts,
            doc,
            doc_journal: None,
            recovery: None,
            repl: None,
            repl_recovery: Vec::new(),
            ids,
            now_s: 0.0,
            background_busy: Vec::new(),
            slo: SloEngine::new().with_meta(obs.clone()),
            obs,
            mode: DaemonMode::Normal,
            degraded_reason: None,
            scrubber: None,
            scrub_cfg: None,
            backup_period_s: None,
            last_backup_s: 0.0,
            drill_every_backups: 3,
            backups_since_drill: 0,
            drills_run: 0,
        })
    }

    /// [`PMoveDaemon::new`] over durable storage: the time-series database
    /// opens its WAL/chunk store and the document database replays its
    /// journal from `vfs`, then steps ⓪–③ run as usual (step ③ mutations
    /// are journaled). The replay is stamped as a fourth boot step,
    /// `daemon.step4.recovery`, whose modeled duration is the disk time to
    /// re-read the persisted state.
    pub fn new_durable(
        machine: Machine,
        env: DbParams,
        vfs: Arc<dyn pmove_tsdb::store::Vfs>,
    ) -> Result<Self, PmoveError> {
        let obs = Registry::shared();
        let (kb, boot_ns) = boot_steps_0_to_2(&machine, &env, &obs)?;

        let (ts, ts_rec) = pmove_tsdb::Database::open_with_obs(
            &env.influx_db,
            vfs.clone(),
            pmove_tsdb::store::StoreOptions::default(),
            obs.clone(),
        )?;
        let (doc_journal, doc_rec) =
            pmove_docdb::DurableDatabase::open_with_obs(&env.mongo_db, vfs, obs.clone())?;
        let doc = doc_journal.shared();
        // Indexes are rebuilt on every boot, so they are not journaled.
        doc.collection(store::KB_COLLECTION).create_index("@type");
        let inserted = store::insert_kb_durable(&doc_journal, &kb)?; // ③
        let insert_ns = inserted as u64 * STEP3_PER_DOC_NS;
        obs.record_span("daemon.step3.kb_insert", boot_ns, boot_ns + insert_ns);
        let boot_ns = boot_ns + insert_ns;

        // ④ recovery: replaying WAL + journal over the chunk set.
        let recovery = BootRecovery {
            ts: ts_rec,
            doc: doc_rec,
            modeled_ns: ts_rec.modeled_ns + doc_rec.modeled_ns,
        };
        obs.record_span(
            "daemon.step4.recovery",
            boot_ns,
            boot_ns + recovery.modeled_ns,
        );

        let ids = IdFactory::new(machine.key());
        Ok(PMoveDaemon {
            machine,
            kb,
            layer: builtin_layer(),
            ts,
            doc,
            doc_journal: Some(doc_journal),
            recovery: Some(recovery),
            repl: None,
            repl_recovery: Vec::new(),
            ids,
            now_s: 0.0,
            background_busy: Vec::new(),
            slo: SloEngine::new().with_meta(obs.clone()),
            obs,
            mode: DaemonMode::Normal,
            degraded_reason: None,
            scrubber: None,
            scrub_cfg: None,
            backup_period_s: None,
            last_backup_s: 0.0,
            drill_every_backups: 3,
            backups_since_drill: 0,
            drills_run: 0,
        })
    }

    /// Supervised boot (step ⑤): try the full durable stack first; when
    /// recovery of the tsdb/docdb fails (crashed disk, torn files), fall
    /// back to a memory-only daemon in [`DaemonMode::DegradedMonitorOnly`]
    /// instead of refusing to start — monitoring availability beats
    /// durability when the two conflict. The decision is stamped as a
    /// `daemon.step5.supervise` span, the chosen mode as a `daemon.mode`
    /// gauge (0 = normal, 1 = degraded), and each fallback bumps the
    /// `daemon.supervisor.fallbacks` counter.
    pub fn boot_supervised(
        machine: Machine,
        env: DbParams,
        vfs: Arc<dyn pmove_tsdb::store::Vfs>,
    ) -> Result<Self, PmoveError> {
        let spec = machine.spec.clone();
        let mut daemon = match Self::new_durable(machine, env.clone(), vfs) {
            Ok(d) => d,
            Err(e) => {
                let mut d = Self::new(Machine::new(spec), env)?;
                d.mode = DaemonMode::DegradedMonitorOnly;
                d.degraded_reason = Some(e.to_string());
                d.obs.counter("daemon.supervisor.fallbacks", &[]).inc();
                d
            }
        };
        daemon.stamp_supervise_step();
        Ok(daemon)
    }

    /// Stamp the step ⑤ span right after the last completed boot step and
    /// publish the chosen mode as a gauge.
    fn stamp_supervise_step(&mut self) {
        let snap = self.obs.snapshot();
        let start_ns = ["daemon.step4.recovery", "daemon.step3.kb_insert"]
            .iter()
            .filter_map(|name| snap.span(name))
            .map(|s| s.last_end_ns)
            .max()
            .unwrap_or(0);
        self.obs.record_span(
            "daemon.step5.supervise",
            start_ns,
            start_ns + STEP5_SUPERVISE_NS,
        );
        let mode_value = match self.mode {
            DaemonMode::Normal => 0.0,
            DaemonMode::DegradedMonitorOnly => 1.0,
        };
        self.obs.gauge("daemon.mode", &[]).set(mode_value);
    }

    /// Replicated boot: steps ⓪–③ as usual, then the telemetry store
    /// comes up as `cfg.replication_factor` durable replicas (each on its
    /// own seeded disk) behind a quorum coordinator instead of a single
    /// database. Replica recovery is stamped as the step ④ span (the sum
    /// of the per-replica modeled replay times), and the chosen RF/W/R
    /// are published as `daemon.replication.*` gauges.
    ///
    /// Monitoring then routes through [`PMoveDaemon::monitor_replicated`];
    /// the plain `ts` database stays available for self-telemetry and
    /// non-replicated scenarios.
    pub fn new_replicated(
        machine: Machine,
        env: DbParams,
        cfg: ReplConfig,
        seed: u64,
    ) -> Result<Self, PmoveError> {
        let mut daemon = Self::new(machine, env.clone())?;
        let snap = daemon.obs.snapshot();
        let boot_ns = snap
            .span("daemon.step3.kb_insert")
            .map(|s| s.last_end_ns)
            .unwrap_or(0);
        let (set, reports) = ReplicaSet::durable(
            &env.influx_db,
            cfg,
            seed,
            pmove_tsdb::store::StoreOptions::default(),
        )?;
        let set = set.with_obs(&daemon.obs);
        let recovery_ns: u64 = reports.iter().map(|r| r.modeled_ns).sum();
        daemon
            .obs
            .record_span("daemon.step4.recovery", boot_ns, boot_ns + recovery_ns);
        daemon
            .obs
            .gauge("daemon.replication.rf", &[])
            .set(cfg.replication_factor as f64);
        daemon
            .obs
            .gauge("daemon.replication.write_quorum", &[])
            .set(cfg.write_quorum as f64);
        daemon
            .obs
            .gauge("daemon.replication.read_quorum", &[])
            .set(cfg.read_quorum as f64);
        daemon.repl = Some(set);
        daemon.repl_recovery = reports;
        Ok(daemon)
    }

    /// Convenience: replicated daemon for a preset machine, default env
    /// and quorum config (RF=3, W=2, R=2).
    pub fn for_preset_replicated(key: &str, seed: u64) -> Result<Self, PmoveError> {
        let machine = Machine::preset(key)
            .ok_or_else(|| PmoveError::BadProbeReport(format!("unknown preset {key}")))?;
        Self::new_replicated(machine, DbParams::default(), ReplConfig::default(), seed)
    }

    /// True when the telemetry store is a quorum-replicated set.
    pub fn is_replicated(&self) -> bool {
        self.repl.is_some()
    }

    /// Scenario A through the replication coordinator: quorum writes,
    /// hinted handoff, heartbeat-driven failover. `schedules` carries one
    /// fault schedule per replica (relative to the current daemon clock,
    /// like [`PMoveDaemon::monitor_resilient`]); `None` means no faults.
    ///
    /// Failure handling is graduated: a quarantined primary is *failed
    /// over* (the coordinator promotes the lowest healthy replica) and
    /// the daemon stays fully operational; the daemon drops to
    /// [`DaemonMode::DegradedMonitorOnly`] only when the window ends with
    /// fewer than W replicas reachable — and that degradation lifts by
    /// itself once a later window ends with the quorum restored.
    pub fn monitor_replicated(
        &mut self,
        duration_s: f64,
        freq_hz: f64,
        schedules: Option<Vec<FaultSchedule>>,
    ) -> Result<ReplicatedOutcome, PmoveError> {
        let set = self
            .repl
            .as_ref()
            .ok_or_else(|| PmoveError::Collector("daemon is not replicated".into()))?;
        let start_s = self.now_s;
        let schedules = match schedules {
            Some(list) => list
                .into_iter()
                .map(|schedule| {
                    let mut shifted = FaultSchedule::none();
                    for w in schedule.windows() {
                        shifted =
                            shifted.with_window(start_s + w.start_s, start_s + w.end_s, w.kind);
                    }
                    shifted
                })
                .collect(),
            None => vec![FaultSchedule::none(); set.len()],
        };
        let outcome = scenario_a::monitor_system_replicated(
            &self.machine,
            &self.kb,
            set,
            self.now_s,
            duration_s,
            freq_hz,
            &self.background_busy,
            Some(&self.obs),
            schedules,
        )?;
        self.now_s += duration_s;
        self.obs
            .record_span("daemon.monitor", s_to_ns(start_s), s_to_ns(self.now_s));
        self.apply_replication_health(&outcome);
        Ok(outcome)
    }

    /// Translate the coordinator's end-of-window health into the daemon
    /// mode: degrade to monitor-only exactly while the write quorum is
    /// unreachable, and lift that (and only that) degradation when the
    /// quorum returns. Boot-supervision degradation is never overwritten.
    fn apply_replication_health(&mut self, outcome: &ReplicatedOutcome) {
        let repl_degraded = self
            .degraded_reason
            .as_deref()
            .is_some_and(|r| r.starts_with(REPL_DEGRADED_REASON));
        if outcome.degraded {
            if self.mode == DaemonMode::Normal || repl_degraded {
                self.mode = DaemonMode::DegradedMonitorOnly;
                self.degraded_reason = Some(format!(
                    "{REPL_DEGRADED_REASON}: {} of {} replicas reachable",
                    outcome.healthy,
                    self.repl.as_ref().map(|s| s.len()).unwrap_or(0)
                ));
                self.obs.gauge("daemon.mode", &[]).set(1.0);
                self.obs
                    .counter("daemon.replication.degraded_windows", &[])
                    .inc();
            }
        } else if repl_degraded {
            self.mode = DaemonMode::Normal;
            self.degraded_reason = None;
            self.obs.gauge("daemon.mode", &[]).set(0.0);
        }
    }

    /// Run anti-entropy until the replicas converge bit-identically (or
    /// `max_rounds` is hit), stamped as a `daemon.repair` span whose
    /// modeled length scales with the cells streamed.
    pub fn repair_replicas(&mut self, max_rounds: u64) -> Result<RepairReport, PmoveError> {
        let set = self
            .repl
            .as_ref()
            .ok_or_else(|| PmoveError::Collector("daemon is not replicated".into()))?;
        let report = set.repair_until_converged(max_rounds)?;
        let start_ns = s_to_ns(self.now_s);
        let repair_ns =
            REPAIR_BASE_NS * report.rounds.max(1) + REPAIR_PER_CELL_NS * report.cells_streamed;
        self.obs
            .record_span("daemon.repair", start_ns, start_ns + repair_ns);
        self.now_s += repair_ns as f64 / 1e9;
        Ok(report)
    }

    /// R-quorum read over the replica set (every replica assumed
    /// reachable — post-run analytics path).
    pub fn quorum_query(&self, text: &str) -> Result<pmove_tsdb::QueryResult, PmoveError> {
        let set = self
            .repl
            .as_ref()
            .ok_or_else(|| PmoveError::Collector("daemon is not replicated".into()))?;
        Ok(set.quorum_read(text)?)
    }

    /// Run a multi-tenant serving schedule against the daemon's telemetry
    /// store: the replicated set when the daemon booted replicated (every
    /// replica assumed reachable), the host database otherwise.
    ///
    /// The schedule's `at_ns` values are serving-relative (0 = first
    /// possible arrival); the whole run is stamped as one `daemon.serve`
    /// span on the daemon timeline and advances the virtual clock by the
    /// serving run's length. The daemon's registry is threaded through,
    /// so `pmove.serve.*` metrics (and serve-span trace trees, when
    /// tracing is enabled) land in self-observability, where the
    /// `serving_p99` SLO watches the latency histogram.
    pub fn serve_queries(
        &mut self,
        cfg: ServingConfig,
        schedule: &[ServeRequest],
    ) -> Result<ServeReport, PmoveError> {
        let to_err = |e: pmove_serve::ServeError| PmoveError::Collector(e.to_string());
        let report = match &self.repl {
            Some(set) => QueryServer::new(set, cfg)
                .map_err(to_err)?
                .with_obs(self.obs.clone())
                .run(schedule)
                .map_err(to_err)?,
            None => QueryServer::new(&self.ts, cfg)
                .map_err(to_err)?
                .with_obs(self.obs.clone())
                .run(schedule)
                .map_err(to_err)?,
        };
        let start_ns = s_to_ns(self.now_s);
        self.obs
            .record_span("daemon.serve", start_ns, start_ns + report.end_ns);
        self.now_s += report.end_ns as f64 / 1e9;
        Ok(report)
    }

    /// Guard for operations that mutate the KB: refused while degraded.
    pub fn ensure_writable(&self) -> Result<(), PmoveError> {
        match self.mode {
            DaemonMode::Normal => Ok(()),
            DaemonMode::DegradedMonitorOnly => Err(PmoveError::DegradedMode(
                self.degraded_reason
                    .clone()
                    .unwrap_or_else(|| "supervised fallback".into()),
            )),
        }
    }

    /// Register pinned background load (a long-running process bound to
    /// specific threads); subsequent Scenario A windows reflect it.
    pub fn set_background_load(&mut self, busy: &[(u32, f64)]) {
        self.background_busy = busy.to_vec();
    }

    /// Convenience: daemon for a preset machine with default env.
    pub fn for_preset(key: &str) -> Result<Self, PmoveError> {
        let machine = Machine::preset(key)
            .ok_or_else(|| PmoveError::BadProbeReport(format!("unknown preset {key}")))?;
        Self::new(machine, DbParams::default())
    }

    /// Convenience: durable daemon for a preset machine with default env.
    pub fn for_preset_durable(
        key: &str,
        vfs: Arc<dyn pmove_tsdb::store::Vfs>,
    ) -> Result<Self, PmoveError> {
        let machine = Machine::preset(key)
            .ok_or_else(|| PmoveError::BadProbeReport(format!("unknown preset {key}")))?;
        Self::new_durable(machine, DbParams::default(), vfs)
    }

    /// Convenience: supervised boot for a preset machine with default env.
    pub fn for_preset_supervised(
        key: &str,
        vfs: Arc<dyn pmove_tsdb::store::Vfs>,
    ) -> Result<Self, PmoveError> {
        let machine = Machine::preset(key)
            .ok_or_else(|| PmoveError::BadProbeReport(format!("unknown preset {key}")))?;
        Self::boot_supervised(machine, DbParams::default(), vfs)
    }

    /// True when both databases persist to a VFS.
    pub fn is_durable(&self) -> bool {
        self.doc_journal.is_some() && self.ts.is_durable()
    }

    /// Re-insert the KB (step ③ re-occurs whenever the KB changes).
    pub fn sync_kb(&self) -> Result<usize, PmoveError> {
        match &self.doc_journal {
            Some(journal) => store::insert_kb_durable(journal, &self.kb),
            None => store::insert_kb(&self.doc, &self.kb),
        }
    }

    /// Enable background integrity scrubbing over the durable
    /// time-series store: subsequent monitoring windows each end with one
    /// scrubber tick, so the whole store is CRC-verified within
    /// `cfg.full_pass_period_s` of monitored virtual time. Returns
    /// `false` (and enables nothing) on a memory-only daemon — there are
    /// no on-disk chunks to verify.
    pub fn enable_scrubbing(&mut self, cfg: pmove_tsdb::store::ScrubConfig) -> bool {
        if !self.ts.is_durable() {
            return false;
        }
        self.scrubber = Some(pmove_tsdb::store::Scrubber::new(cfg));
        self.scrub_cfg = Some(cfg);
        true
    }

    /// Enable scheduled backups of the durable time-series store:
    /// committed WAL frames stream continuously into a generation-
    /// addressed archive on a dedicated seeded backup disk, and every
    /// `period_s` of monitored virtual time the monitor loop captures a
    /// complete snapshot generation there ([`PMoveDaemon::backup_tick`]).
    /// Every `drill_every_backups` generations an automated restore
    /// drill restores the newest backup into a scratch store and diffs
    /// it bit-exactly against the live database. Call before
    /// [`PMoveDaemon::install_default_slos`] so the `backup_staleness`
    /// objective (pages when the `store.backup.last_success` heartbeat
    /// falls three periods behind) picks up this cadence. Returns
    /// `false` (and enables nothing) on a memory-only daemon.
    pub fn enable_backups(&mut self, period_s: f64) -> bool {
        assert!(period_s > 0.0, "backup period must be positive");
        if !self.ts.is_durable() {
            return false;
        }
        let seed = Self::trace_seed(self.machine.key()) ^ 0xBACC_BACC_BACC_BACC;
        let dest: Arc<dyn pmove_tsdb::store::Vfs> =
            Arc::new(pmove_tsdb::store::MemDisk::new(seed | 1));
        // Stamp the clock first so catch-up archival of any already-
        // committed WAL tail carries the current time, not 0.
        self.ts.note_time((self.now_s * 1e9).round() as i64);
        if self.ts.enable_backup(dest).is_err() {
            self.obs.counter("daemon.backup.errors", &[]).inc();
            return false;
        }
        // Group archival: the commit fast path stages the payload and the
        // destination write happens every 32 records (or at any flush or
        // snapshot fence), keeping archiver ingest overhead negligible.
        self.ts.set_archive_group(32);
        self.backup_period_s = Some(period_s);
        self.last_backup_s = self.now_s;
        true
    }

    /// One backup-scheduler tick at the current virtual time: stamp the
    /// store's virtual clock (archived records carry it; it is what
    /// point-in-time restore targets), and when a full period has elapsed
    /// capture a snapshot generation, stamped as a `daemon.backup` span.
    /// Every `drill_every_backups` completed generations the tick also
    /// runs [`PMoveDaemon::restore_drill`]. No-op until
    /// [`PMoveDaemon::enable_backups`].
    fn backup_tick(&mut self) {
        let Some(period_s) = self.backup_period_s else {
            return;
        };
        self.ts.note_time((self.now_s * 1e9).round() as i64);
        if self.now_s - self.last_backup_s + 1e-9 < period_s {
            return;
        }
        let start = s_to_ns(self.now_s);
        match self.ts.backup_now() {
            Ok(Some(report)) => {
                self.last_backup_s = self.now_s;
                let modeled = BACKUP_BASE_NS + report.bytes * BACKUP_PER_BYTE_NS;
                self.obs
                    .record_span("daemon.backup", start, start + modeled.max(1));
                self.backups_since_drill += 1;
                if self.drill_every_backups > 0
                    && self.backups_since_drill >= self.drill_every_backups
                {
                    self.backups_since_drill = 0;
                    self.restore_drill();
                }
            }
            Ok(None) => {}
            Err(_) => {
                self.obs.counter("daemon.backup.errors", &[]).inc();
            }
        }
    }

    /// Disaster-recovery drill: restore the newest backup generation (plus
    /// the archived WAL tail) into a scratch store and diff every restored
    /// cell bit-exactly (`f64::to_bits`) against the live database.
    /// Publishes `daemon.drill.*` metrics — `bit_exact` is the pass/fail
    /// gauge an operator alerts on — and stamps a `daemon.restore_drill`
    /// span. Returns `Some(true)` when the restored state matched,
    /// `Some(false)` on any mismatch or restore refusal, `None` when
    /// backups are not enabled.
    pub fn restore_drill(&mut self) -> Option<bool> {
        let src = self.ts.backup_dest()?;
        let start = s_to_ns(self.now_s);
        self.drills_run += 1;
        self.obs.counter("daemon.drill.runs", &[]).inc();
        let seed = Self::trace_seed(self.machine.key()) ^ 0xD1A1_0000_0000_0000 ^ self.drills_run;
        let scratch: Arc<dyn pmove_tsdb::store::Vfs> =
            Arc::new(pmove_tsdb::store::MemDisk::new(seed | 1));
        let restored = pmove_tsdb::Database::restored_at_with_obs(
            format!("{}-drill", self.ts.name()),
            src.as_ref(),
            scratch,
            pmove_tsdb::store::StoreOptions::default(),
            self.obs.clone(),
            i64::MAX,
        );
        let ok = match restored {
            Ok((scratch_db, report)) => {
                let live = drill_cell_map(&self.ts);
                let rest = drill_cell_map(&scratch_db);
                let mismatches = live
                    .iter()
                    .filter(|(k, v)| rest.get(*k) != Some(*v))
                    .count()
                    + rest.iter().filter(|(k, _)| !live.contains_key(*k)).count();
                let c = |name: &str, v: u64| self.obs.counter(name, &[]).add(v);
                c("daemon.drill.cells_compared", live.len() as u64);
                c("daemon.drill.mismatches", mismatches as u64);
                mismatches == 0 && report.conserved()
            }
            Err(_) => {
                self.obs.counter("daemon.drill.restore_errors", &[]).inc();
                false
            }
        };
        self.obs
            .gauge("daemon.drill.bit_exact", &[])
            .set(if ok { 1.0 } else { 0.0 });
        self.obs
            .record_span("daemon.restore_drill", start, start + DRILL_BASE_NS.max(1));
        Some(ok)
    }

    /// Enable continuous-query rollup tiers on the daemon's time-series
    /// store: subsequent monitoring windows each end with one rollup tick
    /// folding freshly written buckets into the configured tiers, so
    /// long-window aggregate queries over monitored history are served
    /// from downsampled cells instead of raw scans.
    pub fn enable_rollups(&mut self, cfg: pmove_tsdb::RollupConfig) {
        self.ts.enable_rollups(cfg);
    }

    /// One rollup materialization tick at the current virtual time,
    /// stamped as a `daemon.rollup` span. No-op until
    /// [`PMoveDaemon::enable_rollups`].
    fn rollup_tick(&mut self) {
        let Some(report) = self.ts.rollup_tick() else {
            return;
        };
        let start = s_to_ns(self.now_s);
        self.obs
            .record_span("daemon.rollup", start, start + report.modeled_ns().max(1));
    }

    /// One scrubber tick at the current virtual time, stamped as a
    /// `daemon.scrub` span. A single-node daemon has no replica to
    /// read-repair from, so a quarantined chunk is handled by rebuilding
    /// the in-memory view from the surviving chunks and annotating the
    /// lost range with `pmove_gap` markers — queries then say "data
    /// missing here" instead of silently returning a hole.
    fn scrub_tick(&mut self) {
        let Some(scrubber) = self.scrubber.as_mut() else {
            return;
        };
        let report = match self.ts.scrub_tick(scrubber, self.now_s) {
            Ok(Some(report)) => report,
            Ok(None) => return,
            Err(_) => {
                self.obs.counter("daemon.scrub.errors", &[]).inc();
                return;
            }
        };
        let start = s_to_ns(self.now_s);
        self.obs
            .record_span("daemon.scrub", start, start + report.modeled_ns.max(1));
        if !report.quarantined.is_empty() && self.ts.rebuild_from_store().is_ok() {
            self.ts.annotate_quarantine_gaps();
        }
    }

    /// Scenario A: monitor system state for `duration_s` at `freq_hz`.
    pub fn monitor(&mut self, duration_s: f64, freq_hz: f64) -> SamplingReport {
        let start_s = self.now_s;
        let report = scenario_a::monitor_system_with_load(
            &self.machine,
            &self.kb,
            &self.ts,
            self.now_s,
            duration_s,
            freq_hz,
            &self.background_busy,
            Some(&self.obs),
        );
        self.now_s += duration_s;
        self.obs
            .record_span("daemon.monitor", s_to_ns(start_s), s_to_ns(self.now_s));
        self.scrub_tick();
        self.rollup_tick();
        self.backup_tick();
        report
    }

    /// [`PMoveDaemon::monitor`] with the self-healing transport enabled
    /// and an optional injected fault schedule (virtual-clock relative to
    /// the current daemon time: a window `[a, b)` in the schedule fires at
    /// `now_s + a`). Monitoring is allowed in every [`DaemonMode`].
    pub fn monitor_resilient(
        &mut self,
        duration_s: f64,
        freq_hz: f64,
        resilience: ResilienceConfig,
        fault: Option<FaultSchedule>,
    ) -> SamplingReport {
        let start_s = self.now_s;
        // Shift the schedule onto the daemon clock so callers can express
        // faults relative to the run they inject them into.
        let fault = fault.map(|schedule| {
            let mut shifted = FaultSchedule::none();
            for w in schedule.windows() {
                shifted = shifted.with_window(start_s + w.start_s, start_s + w.end_s, w.kind);
            }
            shifted
        });
        let report = scenario_a::monitor_system_resilient(
            &self.machine,
            &self.kb,
            &self.ts,
            self.now_s,
            duration_s,
            freq_hz,
            &self.background_busy,
            Some(&self.obs),
            Some(resilience),
            fault,
        );
        self.now_s += duration_s;
        self.obs
            .record_span("daemon.monitor", s_to_ns(start_s), s_to_ns(self.now_s));
        self.scrub_tick();
        self.rollup_tick();
        self.backup_tick();
        report
    }

    /// Scenario B: profile a kernel; appends the observation and syncs
    /// the KB.
    pub fn profile(&mut self, request: &ProfileRequest) -> Result<ProfileOutcome, PmoveError> {
        self.ensure_writable()?;
        let start_s = self.now_s;
        let outcome = scenario_b::profile_kernel(
            &self.machine,
            &mut self.kb,
            &self.layer,
            &self.ts,
            &mut self.ids,
            request,
            self.now_s,
            Some(&self.obs),
        )?;
        self.now_s = outcome.execution.end_s() + 0.1;
        self.sync_kb()?;
        self.obs
            .record_span("daemon.profile", s_to_ns(start_s), s_to_ns(self.now_s));
        Ok(outcome)
    }

    /// Flush the self-observability registry into the daemon's own
    /// time-series database as `pmove.self.*` series stamped at the
    /// current virtual time. Returns the number of points written.
    pub fn export_self_telemetry(&self) -> usize {
        self.publish_trace_meta();
        let snap = self.obs.snapshot();
        pmove_tsdb::export_snapshot(&self.ts, &snap, (self.now_s * 1e9).round() as i64)
    }

    /// Deterministic tracer seed: FNV-1a of the machine key, so two
    /// daemons on the same preset mint identical trace ids.
    fn trace_seed(key: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Attach a deterministic tracer to the registry so every pipeline
    /// stage (transport, replication, tsdb, WAL) records causal trace
    /// trees, and synthesize the boot trace from the already-stamped
    /// `daemon.stepN.*` spans. Returns the tracer for direct inspection;
    /// it is also reachable via `obs.tracer()`.
    pub fn enable_tracing(&mut self, config: TraceConfig) -> Arc<Tracer> {
        let tracer = Arc::new(Tracer::new(Self::trace_seed(self.machine.key()), config));
        self.obs.set_tracer(tracer.clone());
        self.record_boot_trace(&tracer);
        tracer
    }

    /// Replay the boot timeline (steps ⓪–⑤ plus recovery, whichever ran)
    /// into one `daemon.boot` trace so the flight recorder holds the boot
    /// alongside request traces.
    fn record_boot_trace(&self, tracer: &Tracer) {
        let snap = self.obs.snapshot();
        let steps = [
            "daemon.step0.environment",
            "daemon.step1.probe",
            "daemon.step2.kb_generation",
            "daemon.step3.kb_insert",
            "daemon.step4.recovery",
            "daemon.step5.supervise",
        ];
        let present: Vec<(&str, u64, u64)> = steps
            .iter()
            .filter_map(|name| {
                snap.span(name)
                    .map(|s| (*name, s.last_start_ns, s.last_end_ns))
            })
            .collect();
        let Some(&(_, root_start, _)) = present.first() else {
            return;
        };
        let root_end = present
            .iter()
            .map(|&(_, _, e)| e)
            .max()
            .unwrap_or(root_start);
        let ctx = tracer.start_trace("daemon.boot", root_start);
        for (name, start_ns, end_ns) in present {
            let child = tracer.child(ctx, name, start_ns);
            tracer.end_span(child, end_ns);
        }
        tracer.finish_trace(ctx, root_end, "booted");
    }

    /// Publish tracer lifetime counters as `pmove.trace.*` gauges so the
    /// self-dashboard and self-telemetry exports can show them.
    fn publish_trace_meta(&self) {
        if let Some(tracer) = self.obs.tracer() {
            let s = tracer.stats();
            let g = |name: &str, v: u64| self.obs.gauge(name, &[]).set(v as f64);
            g("pmove.trace.started", s.started);
            g("pmove.trace.finished", s.finished);
            g("pmove.trace.retained", s.retained);
            g("pmove.trace.ring_evicted", s.ring_evicted);
            g("pmove.trace.fault_upgrades", s.fault_upgrades);
            g("pmove.trace.spans_recorded", s.spans_recorded);
        }
    }

    /// Human-readable tracing report: the most recently finished trace
    /// tree, its critical path + stage attribution, and the tracer's
    /// lifetime counters. Deterministic for same-seed runs.
    pub fn trace_report(&self) -> String {
        let Some(tracer) = self.obs.tracer() else {
            return "tracing disabled (call enable_tracing first)\n".to_string();
        };
        let mut out = String::new();
        match tracer.last_finished() {
            None => out.push_str("no finished traces recorded\n"),
            Some(tree) => {
                out.push_str(&tree.render());
                out.push_str(&tree.render_critical_path());
            }
        }
        let s = tracer.stats();
        out.push_str(&format!(
            "tracer: started={} finished={} retained={} ring_evicted={} \
             fault_upgrades={} spans_recorded={}\n",
            s.started, s.finished, s.retained, s.ring_evicted, s.fault_upgrades, s.spans_recorded
        ));
        out
    }

    /// Install the default SLO set over metrics the pipeline already
    /// publishes: ingest p99 latency, query p99 latency, serving p99
    /// latency, transport conservation, scrub-pass staleness, and
    /// (meaningful only when replicated) quorum availability. Idempotent:
    /// a non-empty engine is left untouched.
    pub fn install_default_slos(&mut self) {
        if !self.slo.is_empty() {
            return;
        }
        let windows = || {
            vec![
                BurnWindow {
                    name: "fast".into(),
                    window_ns: 10_000_000_000, // 10 s
                    burn_threshold: 8.0,
                    severity: AlertState::Page,
                },
                BurnWindow {
                    name: "slow".into(),
                    window_ns: 60_000_000_000, // 60 s
                    burn_threshold: 2.0,
                    severity: AlertState::Warning,
                },
            ]
        };
        self.slo.add(SloSpec {
            name: "ingest_p99".into(),
            objective: Objective::LatencyBelow {
                histogram: "tsdb.ingest_ns".into(),
                threshold_ns: 100_000,
            },
            target: 0.99,
            windows: windows(),
            clear_evals: 2,
        });
        self.slo.add(SloSpec {
            name: "query_p99".into(),
            objective: Objective::LatencyBelow {
                histogram: "tsdb.query_ns".into(),
                threshold_ns: 2_500_000,
            },
            target: 0.99,
            windows: windows(),
            clear_evals: 2,
        });
        // Serving-latency objective over the multi-tenant query layer;
        // threshold from the default serving config, pinned to a latency
        // bucket bound so budget accounting is exact.
        self.slo
            .add(SloSpec::serving_p99(ServingConfig::default().slo_p99_ns));
        self.slo.add(SloSpec {
            name: "conservation".into(),
            objective: Objective::Conservation {
                offered: "pcp.transport.values_offered".into(),
                accounted: vec![
                    "pcp.transport.values_inserted".into(),
                    "pcp.transport.values_zeroed".into(),
                    "pcp.transport.values_lost".into(),
                    "pcp.resilience.values_evicted".into(),
                ],
                pending_gauges: vec!["pcp.resilience.spill_pending".into()],
            },
            target: 0.999,
            windows: windows(),
            clear_evals: 2,
        });
        self.slo.add(SloSpec {
            name: "quorum_availability".into(),
            objective: Objective::GaugeAtLeast {
                gauge: "tsdb.repl.replicas_healthy".into(),
                min: self
                    .repl
                    .as_ref()
                    .map(|s| s.config().write_quorum as f64)
                    .unwrap_or(2.0),
            },
            target: 0.99,
            windows: windows(),
            clear_evals: 2,
        });
        // Scrub staleness: page when the background scrubber's full-pass
        // heartbeat falls three periods behind. Daemons that never enable
        // scrubbing never publish the gauge and stay vacuously Ok.
        let period_s = self
            .scrub_cfg
            .map(|c| c.full_pass_period_s)
            .unwrap_or_else(|| pmove_tsdb::store::ScrubConfig::default().full_pass_period_s);
        self.slo
            .add(SloSpec::scrub_staleness((period_s * 3.0 * 1e9) as u64));
        // Backup staleness: page when the newest complete generation's
        // fence falls three backup periods behind. Daemons that never
        // enable backups never publish the gauge and stay vacuously Ok.
        let backup_period_s = self.backup_period_s.unwrap_or(60.0);
        self.slo.add(SloSpec::backup_staleness(
            (backup_period_s * 3.0 * 1e9) as u64,
        ));
    }

    /// Evaluate every installed SLO against the current registry state at
    /// the daemon's virtual time; publishes `pmove.slo.*` meta-metrics
    /// and returns the transitions that fired.
    pub fn evaluate_slos(&mut self) -> Vec<Transition> {
        self.publish_trace_meta();
        let snap = self.obs.snapshot();
        self.slo.evaluate(&snap, s_to_ns(self.now_s))
    }

    /// Deterministic text rendering of the alert timeline.
    pub fn slo_timeline_report(&self) -> String {
        self.slo.render_timeline()
    }

    /// Generate the self-observability dashboard (pipeline loss, ingest
    /// latency, per-step span timings) from the current registry state.
    pub fn self_dashboard(&self) -> crate::dashboard::model::Dashboard {
        crate::dashboard::gen::self_dashboard(&self.kb, &self.obs.snapshot())
    }

    /// Summarize one observation's series into an
    /// `AGGObservationInterface` (the SUPERDB volume-control path of
    /// §III-E) straight from the local time-series DB.
    pub fn aggregate_observation(
        &self,
        obs_id: &str,
    ) -> Result<crate::kb::AggObservation, PmoveError> {
        let obs = self
            .kb
            .observation(obs_id)
            .ok_or_else(|| PmoveError::NotInKb(format!("observation {obs_id}")))?;
        let mut series: Vec<(String, String, Vec<f64>)> = Vec::new();
        for m in &obs.metrics {
            for field in &m.fields {
                let q = format!(
                    "SELECT \"{field}\" FROM \"{}\" WHERE tag='{obs_id}'",
                    m.db_name
                );
                let values: Vec<f64> = self
                    .ts
                    .query(&q)?
                    .column_series(field)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                series.push((m.db_name.clone(), field.clone(), values));
            }
        }
        Ok(crate::kb::superdb::SuperDb::aggregate(obs, &series))
    }

    /// Run the STREAM benchmark *on the target* (simulated) and record a
    /// `BenchmarkInterface`. Bandwidths derive from the machine's memory
    /// system via the execution model.
    pub fn run_stream_benchmark(&mut self, n: u64) -> Result<BenchmarkInterface, PmoveError> {
        self.ensure_writable()?;
        let threads = self.machine.spec.total_cores();
        let model = ExecModel::new(self.machine.spec.clone());
        let mut results = Vec::new();
        // (name, flops/elem, loads/elem, stores/elem, vectors)
        let kernels: [(&str, u64, u64, u64, u64); 4] = [
            ("copy", 0, 1, 1, 2),
            ("scale", 1, 1, 1, 2),
            ("add", 1, 2, 1, 3),
            ("triad", 2, 2, 1, 3),
        ];
        for (name, fl, ld, st, vecs) in kernels {
            let profile = KernelProfile::named(format!("stream_{name}"))
                .with_threads(threads)
                .with_flops(self.machine.spec.arch.widest_isa(), Precision::F64, fl * n)
                .with_mem(ld * n, st * n, self.machine.spec.arch.widest_isa())
                .with_working_set(vecs * n * 8)
                // STREAM is built to defeat caching: no reuse at all.
                .with_locality(pmove_hwsim::kernel_profile::LocalityProfile::streaming());
            let exec = model.run(&profile, self.now_s);
            let bw = (ld + st) as f64 * n as f64 * 8.0 / exec.duration_s;
            self.now_s = exec.end_s();
            results.push(BenchmarkResult {
                name: format!("{name}_bandwidth"),
                value: bw,
                unit: "B/s".into(),
            });
        }
        let bench = BenchmarkInterface {
            id: self.ids.next_id(),
            machine: self.machine.key().to_string(),
            benchmark: "stream".into(),
            compiler: "gcc".into(),
            results,
        };
        self.kb.append_benchmark(bench.clone());
        self.sync_kb()?;
        Ok(bench)
    }

    /// Profile a GPU kernel (§III-D): P-MoVE "creates a wrapper script for
    /// initiating the kernel launch and configuring ncu to record runtime
    /// HW performance events. Following these executions, it analyzes the
    /// output from ncu, integrating these comprehensive performance
    /// metrics into the KB through the ObservationInterface."
    pub fn profile_gpu_kernel(
        &mut self,
        device_index: usize,
        kernel: &pmove_hwsim::gpu::GpuKernelProfile,
    ) -> Result<crate::kb::ObservationInterface, PmoveError> {
        self.ensure_writable()?;
        let gpu = self
            .machine
            .spec
            .gpus
            .get(device_index)
            .ok_or_else(|| PmoveError::BadKernelRequest(format!("no GPU at index {device_index}")))?
            .clone();
        let report = pmove_hwsim::gpu::profile_kernel(&gpu, kernel);
        let obs_id = self.ids.next_id();
        let start_s = self.now_s;
        let end_s = start_s + report.duration_us / 1e6;

        // Ingest the ncu metrics as time-series points tagged with the
        // observation (one point per metric, _gpuN field).
        let mut metric_refs = Vec::with_capacity(report.metrics.len());
        for (name, value) in &report.metrics {
            let db_name = format!("ncu_{name}");
            let point = pmove_tsdb::Point::new(&db_name)
                .tag("tag", obs_id.clone())
                .field(format!("_gpu{device_index}"), *value)
                .timestamp((end_s * 1e9) as i64);
            self.ts.write_point(point)?;
            metric_refs.push(crate::kb::observation::MetricRef {
                db_name,
                fields: vec![format!("_gpu{device_index}")],
            });
        }

        let observation = crate::kb::ObservationInterface {
            id: obs_id,
            machine: self.machine.key().to_string(),
            command: format!("ncu --target-processes all ./{}", report.kernel),
            pinning: "gpu".into(),
            affinity: Vec::new(),
            start_s,
            end_s,
            freq_hz: 0.0, // ncu wraps the launch; no periodic sampling
            metrics: metric_refs,
            report: serde_json::json!({
                "device": gpu.model,
                "duration_us": report.duration_us,
                "threads_launched": kernel.threads_launched,
            }),
        };
        self.now_s = end_s + 0.01;
        self.kb.append_observation(observation.clone());
        self.sync_kb()?;
        Ok(observation)
    }

    /// Run HPCG: the real solver provides iterations/residual (numeric
    /// truth), the execution model provides the target-calibrated rate.
    pub fn run_hpcg_benchmark(
        &mut self,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Result<BenchmarkInterface, PmoveError> {
        self.ensure_writable()?;
        let solve = hpcg::run_hpcg(nx, ny, nz, 50, 1e-9);
        // HPCG is memory-bound (AI ≈ 0.2 with scalar-ish access patterns);
        // simulate the same FLOP volume on the target.
        let n = (nx * ny * nz) as u64;
        let profile = KernelProfile::named("hpcg")
            .with_threads(self.machine.spec.total_cores())
            .with_flops(
                pmove_hwsim::vendor::IsaExt::Scalar,
                Precision::F64,
                solve.flops,
            )
            .with_mem(
                solve.flops / 2 * 3,
                n * solve.iterations as u64,
                pmove_hwsim::vendor::IsaExt::Scalar,
            )
            .with_working_set(n * 8 * 6);
        let exec = ExecModel::new(self.machine.spec.clone()).run(&profile, self.now_s);
        self.now_s = exec.end_s();
        let bench = BenchmarkInterface {
            id: self.ids.next_id(),
            machine: self.machine.key().to_string(),
            benchmark: "hpcg".into(),
            compiler: "gcc".into(),
            results: vec![
                BenchmarkResult {
                    name: "hpcg_gflops".into(),
                    value: solve.flops as f64 / exec.duration_s / 1e9,
                    unit: "GF/s".into(),
                },
                BenchmarkResult {
                    name: "iterations".into(),
                    value: solve.iterations as f64,
                    unit: "count".into(),
                },
                BenchmarkResult {
                    name: "final_rel_residual".into(),
                    value: solve.final_rel_residual,
                    unit: "ratio".into(),
                },
            ],
        };
        self.kb.append_benchmark(bench.clone());
        self.sync_kb()?;
        Ok(bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_runs_steps_0_to_3() {
        let d = PMoveDaemon::for_preset("icl").unwrap();
        assert_eq!(d.kb.machine_key, "icl");
        assert!(!d.kb.is_empty());
        // Step ③: KB documents in the doc DB.
        assert_eq!(d.doc.collection(store::KB_COLLECTION).len(), d.kb.len());
        // The abstraction layer knows this PMU.
        assert!(d.layer.pmu("icl").is_some());
        assert!(PMoveDaemon::for_preset("vax").is_err());
    }

    #[test]
    fn durable_daemon_recovers_state_across_restarts() {
        use pmove_tsdb::store::{MemDisk, Vfs};
        let disk = Arc::new(MemDisk::new(11));
        let vfs: Arc<dyn Vfs> = disk.clone();

        let mut d = PMoveDaemon::for_preset_durable("icl", vfs.clone()).unwrap();
        assert!(d.is_durable());
        let rec = d.recovery.expect("durable boot reports recovery");
        assert_eq!(rec.ts.chunks_loaded, 0);
        assert_eq!(rec.ts.wal_rows, 0);
        assert_eq!(rec.doc.records_replayed, 0);
        d.monitor(5.0, 2.0);
        let rows = d.ts.total_rows();
        let kb_len = d.kb.len();
        assert!(rows > 0);
        drop(d);

        // Power-cycle: volatile state is gone, the daemon reboots from
        // the WAL/journal alone.
        disk.restart();
        let d2 = PMoveDaemon::for_preset_durable("icl", vfs).unwrap();
        let rec2 = d2.recovery.unwrap();
        assert!(rec2.ts.wal_rows > 0 || rec2.ts.chunks_loaded > 0);
        assert!(rec2.doc.records_replayed > 0);
        assert!(rec2.modeled_ns > 0);
        assert_eq!(d2.ts.total_rows(), rows, "telemetry survives the restart");
        assert_eq!(d2.doc.collection(store::KB_COLLECTION).len(), kb_len);
        // Step ④ is stamped right after step ③ on the boot timeline.
        let snap = d2.obs.snapshot();
        let s3 = snap.span("daemon.step3.kb_insert").unwrap();
        let s4 = snap.span("daemon.step4.recovery").unwrap();
        assert_eq!(s3.last_end_ns, s4.last_start_ns);
        assert!(s4.last_end_ns > s4.last_start_ns);
        // Recovered series answer queries like before the crash.
        let r = d2
            .ts
            .query("SELECT mean(\"value\") FROM \"kernel_all_load\"")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn scrubbing_daemon_quarantines_rot_and_annotates_gaps() {
        use pmove_tsdb::store::{MemDisk, RotSchedule, ScrubConfig, Vfs};
        let disk = Arc::new(MemDisk::new(41));
        let vfs: Arc<dyn Vfs> = disk.clone();
        let mut d = PMoveDaemon::for_preset_durable("icl", vfs).unwrap();
        assert!(d.enable_scrubbing(ScrubConfig {
            full_pass_period_s: 4.0,
            ..ScrubConfig::default()
        }));
        d.install_default_slos();
        // Memory-only daemons have nothing to scrub and refuse to enable.
        let mut plain = PMoveDaemon::for_preset("icl").unwrap();
        assert!(!plain.enable_scrubbing(ScrubConfig::default()));

        d.monitor(5.0, 2.0);
        d.ts.flush().unwrap();
        // Latent rot: flip a bit inside a durable chunk while running.
        disk.schedule_rot(RotSchedule::none().at(6.0, 1).with_prefix("chunk-"));
        disk.advance_rot(6.0);
        // Every monitor window ends with a scrub tick; within a few
        // windows the pass reaches the damaged chunk and quarantines it.
        let mut quarantined = false;
        for _ in 0..6 {
            d.monitor(5.0, 2.0);
            if !d.ts.quarantined_chunks().is_empty() {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "scrub never found the rotted chunk");
        // The daemon rebuilt from the surviving chunks and marked the
        // lost range, so queries can see where data is missing.
        let gaps =
            d.ts.query(&format!(
                "SELECT \"gap_end_s\" FROM \"{}\"",
                pmove_tsdb::GAP_MEASUREMENT
            ))
            .unwrap();
        assert!(!gaps.rows.is_empty(), "quarantine left no gap markers");
        let snap = d.obs.snapshot();
        assert!(snap.span("daemon.scrub").is_some());
        assert!(
            snap.gauges
                .iter()
                .any(|(k, _)| k.name == "store.scrub.last_full_pass"),
            "full-pass heartbeat gauge missing"
        );
        // The heartbeat is fresh, so the staleness SLO stays quiet.
        d.evaluate_slos();
        assert_eq!(d.slo.state("scrub_staleness"), Some(AlertState::Ok));
    }

    #[test]
    fn backup_daemon_archives_snapshots_and_drills_bit_exactly() {
        use pmove_tsdb::store::{MemDisk, Vfs};
        let disk = Arc::new(MemDisk::new(51));
        let vfs: Arc<dyn Vfs> = disk;
        let mut d = PMoveDaemon::for_preset_durable("icl", vfs).unwrap();
        assert!(d.enable_backups(10.0));
        d.drill_every_backups = 2;
        d.install_default_slos();
        // Memory-only daemons have nothing durable to back up.
        let mut plain = PMoveDaemon::for_preset("icl").unwrap();
        assert!(!plain.enable_backups(10.0));

        // Each monitoring window ends with a backup tick; after 40 s of
        // monitored time at a 10 s period several generations exist and
        // the scheduled drill has run at least once.
        for _ in 0..8 {
            d.monitor(5.0, 2.0);
        }
        let stats = d.ts.backup_stats().expect("backups enabled");
        assert!(
            stats.generations_completed >= 3,
            "40 s / 10 s period produced {} generations",
            stats.generations_completed
        );
        assert!(stats.records_archived > 0, "archiver saw no commits");
        assert_eq!(stats.backup_errors, 0);
        let snap = d.obs.snapshot();
        assert!(snap.span("daemon.backup").is_some());
        assert!(snap.span("daemon.restore_drill").is_some());
        assert_eq!(
            snap.gauge("daemon.drill.bit_exact", &[]),
            Some(1.0),
            "scheduled drill restore diverged from the live store"
        );
        assert!(
            snap.gauges
                .iter()
                .any(|(k, _)| k.name == "store.backup.last_success"),
            "backup heartbeat gauge missing"
        );
        // An explicit drill also passes and counts its cells.
        assert_eq!(d.restore_drill(), Some(true));
        let snap = d.obs.snapshot();
        assert!(
            snap.counter("daemon.drill.cells_compared", &[])
                .unwrap_or(0)
                > 0
        );
        assert_eq!(snap.counter("daemon.drill.mismatches", &[]), Some(0));
        // The heartbeat is fresh, so the staleness SLO stays quiet.
        d.evaluate_slos();
        assert_eq!(d.slo.state("backup_staleness"), Some(AlertState::Ok));
        // The self-dashboard grew the backup & DR panel.
        let dash = d.self_dashboard();
        assert!(
            dash.panels.iter().any(|p| p.title == "backup & DR"),
            "dashboard panels: {:?}",
            dash.panels.iter().map(|p| &p.title).collect::<Vec<_>>()
        );
    }

    #[test]
    fn supervised_boot_uses_full_stack_when_storage_is_healthy() {
        use pmove_tsdb::store::{MemDisk, Vfs};
        let disk = Arc::new(MemDisk::new(21));
        let vfs: Arc<dyn Vfs> = disk;
        let d = PMoveDaemon::for_preset_supervised("icl", vfs).unwrap();
        assert_eq!(d.mode, DaemonMode::Normal);
        assert!(d.is_durable());
        assert!(d.degraded_reason.is_none());
        let snap = d.obs.snapshot();
        // Step ⑤ starts where step ④ ended.
        let s4 = snap.span("daemon.step4.recovery").unwrap();
        let s5 = snap.span("daemon.step5.supervise").unwrap();
        assert_eq!(s4.last_end_ns, s5.last_start_ns);
        assert_eq!(s5.last_end_ns - s5.last_start_ns, STEP5_SUPERVISE_NS);
        assert_eq!(snap.gauge("daemon.mode", &[]), Some(0.0));
        assert_eq!(snap.counter("daemon.supervisor.fallbacks", &[]), None);
    }

    #[test]
    fn supervised_boot_degrades_to_monitor_only_when_recovery_fails() {
        use pmove_tsdb::store::{FaultMode, FaultPlan, MemDisk, Vfs};
        let disk = Arc::new(MemDisk::new(31));
        // The very first write/sync during the durable boot crashes the
        // disk, so WAL/journal recovery cannot complete.
        disk.schedule_fault(FaultPlan {
            crash_at_op: 1,
            mode: FaultMode::CleanStop,
        });
        let vfs: Arc<dyn Vfs> = disk;
        let mut d = PMoveDaemon::for_preset_supervised("icl", vfs).unwrap();
        assert_eq!(d.mode, DaemonMode::DegradedMonitorOnly);
        assert!(!d.is_durable());
        assert!(d.degraded_reason.is_some());
        // Monitoring still runs end to end...
        let r = d.monitor(5.0, 2.0);
        assert_eq!(r.ticks, 10);
        assert!(d.ts.total_rows() > 0);
        // ...while KB-mutating operations are refused with a typed error.
        assert!(matches!(
            d.run_stream_benchmark(1 << 20),
            Err(PmoveError::DegradedMode(_))
        ));
        assert!(matches!(
            d.run_hpcg_benchmark(8, 8, 8),
            Err(PmoveError::DegradedMode(_))
        ));
        let snap = d.obs.snapshot();
        assert_eq!(snap.gauge("daemon.mode", &[]), Some(1.0));
        assert_eq!(snap.counter("daemon.supervisor.fallbacks", &[]), Some(1));
        // The degraded boot has no step ④, so step ⑤ chains off step ③.
        assert!(snap.span("daemon.step4.recovery").is_none());
        let s3 = snap.span("daemon.step3.kb_insert").unwrap();
        let s5 = snap.span("daemon.step5.supervise").unwrap();
        assert_eq!(s3.last_end_ns, s5.last_start_ns);
    }

    #[test]
    fn monitor_resilient_survives_injected_link_outage() {
        use pmove_hwsim::{FaultKind, FaultSchedule};
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        // Warm the clock so the schedule shift is exercised.
        d.monitor(5.0, 1.0);
        let fault = FaultSchedule::none().with_window(10.0, 20.0, FaultKind::LinkDown);
        let r = d.monitor_resilient(40.0, 1.0, ResilienceConfig::default(), Some(fault));
        assert_eq!(r.ticks, 40);
        assert!(r.transport.conserved(), "{:?}", r.transport);
        assert!(r.transport.values_spilled > 0, "outage forced spills");
        assert!(r.transport.values_recovered > 0, "drain recovered spills");
        assert_eq!(r.transport.values_lost, 0, "nothing dropped for good");
        assert!(r.transport.gap_markers >= 1);
        assert_eq!(d.now_s, 45.0);
    }

    #[test]
    fn monitor_advances_clock_and_stores_data() {
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        let r = d.monitor(5.0, 2.0);
        assert_eq!(r.ticks, 10);
        assert_eq!(d.now_s, 5.0);
        assert!(d.ts.total_rows() > 0);
    }

    #[test]
    fn construction_records_contiguous_boot_spans() {
        let d = PMoveDaemon::for_preset("icl").unwrap();
        assert_eq!(d.now_s, 0.0); // boot timeline is synthetic
        let snap = d.obs.snapshot();
        let s0 = snap.span("daemon.step0.environment").unwrap();
        let s1 = snap.span("daemon.step1.probe").unwrap();
        let s2 = snap.span("daemon.step2.kb_generation").unwrap();
        let s3 = snap.span("daemon.step3.kb_insert").unwrap();
        assert_eq!(s0.last_start_ns, 0);
        assert_eq!(s0.last_end_ns, s1.last_start_ns);
        assert_eq!(s1.last_end_ns, s2.last_start_ns);
        assert_eq!(s2.last_end_ns, s3.last_start_ns);
        assert!(s3.last_end_ns > s3.last_start_ns);
        // KB builder counters rode along.
        assert_eq!(
            snap.counter_total("kb.builder.interfaces_built"),
            d.kb.len() as u64
        );
    }

    #[test]
    fn monitor_feeds_self_telemetry_and_conservation_holds() {
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        let r = d.monitor(5.0, 2.0);
        let snap = d.obs.snapshot();
        // Transport counters mirror the report exactly.
        let offered = snap.counter("pcp.transport.values_offered", &[]).unwrap();
        assert_eq!(offered, r.transport.values_offered);
        let inserted = snap.counter("pcp.transport.values_inserted", &[]).unwrap();
        let zeroed = snap.counter("pcp.transport.values_zeroed", &[]).unwrap();
        let lost = snap.counter("pcp.transport.values_lost", &[]).unwrap();
        assert_eq!(offered, inserted + zeroed + lost);
        // The tsdb saw the same inserts the transport claims.
        assert_eq!(snap.counter_total("tsdb.values_inserted"), inserted);
        // Monitor window span on the virtual clock.
        let span = snap.span("daemon.monitor").unwrap();
        assert_eq!(span.last_start_ns, 0);
        assert_eq!(span.last_end_ns, 5_000_000_000);
    }

    #[test]
    fn export_self_telemetry_writes_deterministic_series() {
        let run = || {
            let mut d = PMoveDaemon::for_preset("csl").unwrap();
            d.monitor(5.0, 2.0);
            let n = d.export_self_telemetry();
            assert!(n > 0, "no self points written");
            d
        };
        let a = run();
        let b = run();
        let self_ms: Vec<String> =
            a.ts.measurements()
                .into_iter()
                .filter(|m| m.starts_with(pmove_tsdb::self_export::SELF_PREFIX))
                .collect();
        assert!(self_ms.contains(&"pmove.self.pcp.transport.values_offered".to_string()));
        assert!(self_ms.contains(&"pmove.self.span.daemon.monitor".to_string()));
        // Two same-seed runs produce identical pmove.self.* series.
        for m in &self_ms {
            let q = format!("SELECT * FROM \"{m}\"");
            let ra = a.ts.query(&q).unwrap();
            let rb = b.ts.query(&q).unwrap();
            assert_eq!(ra.rows, rb.rows, "series {m} differs between runs");
        }
    }

    #[test]
    fn stream_benchmark_records_interface() {
        let mut d = PMoveDaemon::for_preset("csl").unwrap();
        let b = d.run_stream_benchmark(1 << 24).unwrap();
        assert_eq!(b.benchmark, "stream");
        let triad = b.result("triad_bandwidth").unwrap();
        // A DRAM-resident STREAM triad should land near (≤) the machine's
        // sustainable DRAM bandwidth and within 2x below it.
        let dram = d.machine.spec.dram_bw_total();
        assert!(triad <= dram * 1.05, "triad {triad} dram {dram}");
        assert!(triad >= dram * 0.4, "triad {triad} dram {dram}");
        assert_eq!(d.kb.benchmarks.len(), 1);
        assert_eq!(d.doc.collection(store::BENCH_COLLECTION).len(), 1);
    }

    #[test]
    fn observation_aggregation_summarizes_series() {
        use crate::profiles::stream_kernel_profile;
        use crate::telemetry::pinning::PinningStrategy;
        use crate::telemetry::scenario_b::ProfileRequest;
        use pmove_hwsim::vendor::IsaExt;
        use pmove_kernels::StreamKernel;

        let mut d = PMoveDaemon::for_preset("csl").unwrap();
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Triad, 1 << 36, 28, IsaExt::Avx512),
            command: "triad".into(),
            generic_events: vec!["TOTAL_DP_FLOPS".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::Balanced,
        };
        let outcome = d.profile(&request).unwrap();
        let agg = d.aggregate_observation(&outcome.observation.id).unwrap();
        assert!(!agg.summaries.is_empty());
        // The per-field sums of means × counts ≈ the recalled FLOP total
        // (÷8 for the 512-bit packed instruction counting).
        let total: f64 = agg
            .summaries
            .iter()
            .filter(|(m, _, _)| m.contains("512B_PACKED"))
            .map(|(_, _, s)| s.sum)
            .sum();
        let truth = (2u64 << 36) as f64 / 8.0;
        assert!((total - truth).abs() / truth < 0.1, "{total} vs {truth}");
        assert!(d.aggregate_observation("no-such").is_err());
    }

    #[test]
    fn gpu_profiling_lands_in_kb_and_tsdb() {
        use pmove_hwsim::gpu::{GpuKernelProfile, GpuSpec};
        let mut spec = pmove_hwsim::MachineSpec::csl();
        spec.gpus.push(GpuSpec::gv100());
        let mut d = PMoveDaemon::new(pmove_hwsim::Machine::new(spec), DbParams::default()).unwrap();
        let kernel = GpuKernelProfile {
            name: "spmv_csr_kernel".into(),
            flops_f64: 1 << 28,
            dram_read_bytes: 1 << 32,
            dram_write_bytes: 1 << 28,
            threads_launched: 1 << 20,
        };
        let obs = d.profile_gpu_kernel(0, &kernel).unwrap();
        assert_eq!(obs.pinning, "gpu");
        assert!(obs.end_s > obs.start_s);
        // The ncu throughput metric is queryable via the Listing-3 query.
        let q = obs
            .queries()
            .into_iter()
            .find(|q| q.contains("ncu_gpu__compute_memory_access_throughput"))
            .expect("ncu metric referenced");
        let r = d.ts.query(&q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows[0].values["_gpu0"].unwrap() > 50.0); // memory-bound
                                                            // No GPU at index 7.
        assert!(d.profile_gpu_kernel(7, &kernel).is_err());
        // Observation persisted.
        assert_eq!(d.kb.observations.len(), 1);
    }

    #[test]
    fn hpcg_benchmark_converges_and_records() {
        let mut d = PMoveDaemon::for_preset("zen3").unwrap();
        let b = d.run_hpcg_benchmark(8, 8, 8).unwrap();
        assert!(b.result("final_rel_residual").unwrap() < 1e-9);
        assert!(b.result("hpcg_gflops").unwrap() > 0.0);
        assert!(b.result("iterations").unwrap() >= 1.0);
    }

    #[test]
    fn tracing_records_boot_and_monitor_traces() {
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        let tracer = d.enable_tracing(TraceConfig::default());
        // The boot trace is synthesized from the recorded step spans.
        let boot = tracer
            .flight_recorder()
            .into_iter()
            .find(|t| t.root().name == "daemon.boot")
            .expect("boot trace recorded");
        assert_eq!(boot.terminal_status(), "booted");
        assert!(boot.spans.len() >= 5, "{}", boot.render());

        d.monitor(5.0, 2.0);
        assert_eq!(tracer.active_count(), 0, "no orphaned traces");
        let s = tracer.stats();
        assert_eq!(s.started, s.finished);
        assert!(s.started > 1);
        let report = d.trace_report();
        assert!(report.contains("pcp.sample"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("tracer: started="), "{report}");

        // Same-seed determinism: the last finished tree renders
        // identically across runs.
        let mut d2 = PMoveDaemon::for_preset("icl").unwrap();
        let t2 = d2.enable_tracing(TraceConfig::default());
        d2.monitor(5.0, 2.0);
        assert_eq!(
            tracer.last_finished().unwrap().render(),
            t2.last_finished().unwrap().render()
        );
    }

    #[test]
    fn traced_monitor_matches_untraced_goldens() {
        // Tracing must not perturb what the pipeline actually does: same
        // report, same rows, same series with and without a tracer.
        let mut plain = PMoveDaemon::for_preset("icl").unwrap();
        let r_plain = plain.monitor(5.0, 2.0);
        let mut traced = PMoveDaemon::for_preset("icl").unwrap();
        traced.enable_tracing(TraceConfig::default());
        let r_traced = traced.monitor(5.0, 2.0);
        assert_eq!(r_plain.transport, r_traced.transport);
        assert_eq!(plain.ts.total_rows(), traced.ts.total_rows());
        let q = "SELECT \"value\" FROM \"kernel_all_load\"";
        assert_eq!(
            plain.ts.query(q).unwrap().rows,
            traced.ts.query(q).unwrap().rows
        );
    }

    #[test]
    fn default_slos_stay_quiet_on_healthy_runs() {
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        d.install_default_slos();
        assert_eq!(d.slo.len(), 7);
        d.install_default_slos(); // idempotent
        assert_eq!(d.slo.len(), 7);
        d.monitor(5.0, 2.0);
        let fired = d.evaluate_slos();
        assert!(fired.is_empty(), "{fired:?}");
        assert_eq!(d.slo.state("ingest_p99"), Some(AlertState::Ok));
        assert_eq!(d.slo.state("conservation"), Some(AlertState::Ok));
        // No serving traffic yet: the serving SLO idles at Ok.
        assert_eq!(d.slo.state("serving_p99"), Some(AlertState::Ok));
        // No backups configured: the staleness SLO is vacuously healthy.
        assert_eq!(d.slo.state("backup_staleness"), Some(AlertState::Ok));
        // Meta-gauges are published under the pmove.slo.* namespace.
        let snap = d.obs.snapshot();
        assert!(snap.gauges.iter().any(|(k, _)| k.name == "pmove.slo.state"));
        assert!(snap
            .gauges
            .iter()
            .any(|(k, _)| k.name == "pmove.slo.burn_rate"));
    }

    #[test]
    fn induced_ingest_regression_pages_at_the_same_virtual_time() {
        let run = || {
            let mut d = PMoveDaemon::for_preset("icl").unwrap();
            d.install_default_slos();
            d.monitor(2.0, 2.0);
            d.evaluate_slos();
            // Regress the ingest path: a burst of samples far above the
            // objective threshold.
            let h = d
                .obs
                .histogram("tsdb.ingest_ns", &[], pmove_obs::latency_buckets());
            for _ in 0..500 {
                h.record(2_000_000);
            }
            d.now_s += 1.0;
            let fired = d.evaluate_slos();
            (fired, d.slo_timeline_report())
        };
        let (fired_a, timeline_a) = run();
        let (fired_b, timeline_b) = run();
        assert!(
            fired_a
                .iter()
                .any(|t| t.slo == "ingest_p99" && t.to == AlertState::Page),
            "{fired_a:?}"
        );
        assert_eq!(fired_a, fired_b, "fired transitions are deterministic");
        assert_eq!(timeline_a, timeline_b, "alert timeline is deterministic");
        assert!(timeline_a.contains("ingest_p99 ok -> page"), "{timeline_a}");
        assert!(timeline_a.contains("t=3000000000ns"), "{timeline_a}");
    }

    #[test]
    fn replicated_boot_brings_up_a_quorum_set() {
        let mut d = PMoveDaemon::for_preset_replicated("icl", 7).unwrap();
        assert!(d.is_replicated());
        let set = d.repl.as_ref().unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(d.repl_recovery.len(), 3);
        // Fresh disks: nothing to replay on any replica.
        assert!(d.repl_recovery.iter().all(|r| r.wal_rows == 0));
        let snap = d.obs.snapshot();
        assert_eq!(snap.gauge("daemon.replication.rf", &[]), Some(3.0));
        assert_eq!(
            snap.gauge("daemon.replication.write_quorum", &[]),
            Some(2.0)
        );
        assert_eq!(snap.gauge("daemon.replication.read_quorum", &[]), Some(2.0));
        // Replica recovery is stamped as the step ④ span off step ③.
        let s3 = snap.span("daemon.step3.kb_insert").unwrap();
        let s4 = snap.span("daemon.step4.recovery").unwrap();
        assert_eq!(s3.last_end_ns, s4.last_start_ns);

        // A fault-free window quorum-writes everywhere: replicas converge
        // with no repair, and the quorum read answers like a local one.
        let out = d.monitor_replicated(10.0, 1.0, None).unwrap();
        assert_eq!(out.report.ticks, 10);
        assert!(!out.degraded);
        assert_eq!(out.primary, 0);
        assert_eq!(out.healthy, 3);
        assert!(
            out.report.transport.conserved(),
            "{:?}",
            out.report.transport
        );
        assert_eq!(out.report.transport.values_lost, 0);
        assert_eq!(d.now_s, 10.0);
        assert!(d.repl.as_ref().unwrap().converged());
        let r = d
            .quorum_query("SELECT mean(\"value\") FROM \"kernel_all_load\"")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Plain (non-replicated) daemons refuse the quorum paths.
        let plain = PMoveDaemon::for_preset("icl").unwrap();
        assert!(!plain.is_replicated());
        assert!(plain.quorum_query("SELECT 1").is_err());
    }

    #[test]
    fn replicated_monitor_fails_over_and_repairs_to_convergence() {
        use pmove_hwsim::{FaultKind, FaultSchedule};
        let mut d = PMoveDaemon::for_preset_replicated("icl", 13).unwrap();
        // Warm the clock so the per-replica schedule shift is exercised.
        d.monitor_replicated(5.0, 1.0, None).unwrap();
        // Primary down for the whole second window: the coordinator must
        // promote a healthy replica and keep the quorum writable.
        let mut schedules = vec![FaultSchedule::none(); 3];
        schedules[0] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        let out = d.monitor_replicated(20.0, 1.0, Some(schedules)).unwrap();
        assert_ne!(out.primary, 0, "primary was not failed over");
        assert!(!out.degraded, "W=2 of 3 reachable is not degraded");
        assert_eq!(out.healthy, 2);
        assert_eq!(d.mode, DaemonMode::Normal);
        assert!(
            out.report.transport.conserved(),
            "{:?}",
            out.report.transport
        );
        // The downed replica missed writes; anti-entropy converges the set
        // bit-identically and stamps a repair span.
        let set = d.repl.as_ref().unwrap();
        assert!(!set.converged());
        let before_s = d.now_s;
        let rep = d.repair_replicas(8).unwrap();
        assert!(rep.converged, "{rep:?}");
        assert!(rep.cells_streamed > 0);
        assert!(d.now_s > before_s, "repair consumed modeled time");
        let snap = d.obs.snapshot();
        let span = snap.span("daemon.repair").unwrap();
        assert!(span.last_end_ns > span.last_start_ns);
        assert!(d.repl.as_ref().unwrap().converged());
        // Post-repair quorum reads see the whole window.
        let r = d
            .quorum_query("SELECT \"value\" FROM \"kernel_all_load\"")
            .unwrap();
        assert_eq!(r.rows.len(), 25);
    }

    #[test]
    fn daemon_serves_multi_tenant_queries_over_the_quorum() {
        use pmove_serve::Priority;
        let mut d = PMoveDaemon::for_preset_replicated("icl", 7).unwrap();
        d.monitor_replicated(10.0, 1.0, None).unwrap();
        let before_s = d.now_s;
        let panel = "SELECT mean(\"value\") FROM \"kernel_all_load\"";
        // Eight tenants dashboard the same panel at once: the serving
        // layer coalesces them onto one quorum-read execution each wave.
        let schedule: Vec<ServeRequest> = (0..8u64)
            .map(|i| ServeRequest {
                tenant: (i % 4) as u32,
                priority: Priority::Interactive,
                query: panel.to_string(),
                at_ns: i * 1_000,
            })
            .collect();
        let report = d
            .serve_queries(ServingConfig::default(), &schedule)
            .unwrap();
        assert!(report.conserved(), "{report:?}");
        assert_eq!(report.served, 8);
        assert_eq!(report.errors, 0);
        assert!(
            report.executions < report.served,
            "identical panels must coalesce: {report:?}"
        );
        assert!(d.now_s > before_s, "serving consumed modeled time");
        let snap = d.obs.snapshot();
        assert_eq!(snap.counter("pmove.serve.submitted_total", &[]), Some(8));
        let span = snap.span("daemon.serve").unwrap();
        assert_eq!(span.last_end_ns - span.last_start_ns, report.end_ns);
        // The default SLO set watches the histogram this run just fed; a
        // healthy run evaluates to Ok, not a page.
        d.install_default_slos();
        d.evaluate_slos();
        assert_eq!(d.slo.state("serving_p99"), Some(AlertState::Ok));

        // A plain (non-replicated) daemon serves off its host database.
        let mut plain = PMoveDaemon::for_preset("icl").unwrap();
        plain.monitor(5.0, 1.0);
        let r2 = plain
            .serve_queries(ServingConfig::default(), &schedule)
            .unwrap();
        assert!(r2.conserved(), "{r2:?}");
        assert_eq!(r2.served, 8);
        assert_eq!(r2.errors, 0);
    }

    #[test]
    fn replication_degrades_only_without_quorum_and_lifts_itself() {
        use pmove_hwsim::{FaultKind, FaultSchedule};
        let mut d = PMoveDaemon::for_preset_replicated("icl", 29).unwrap();
        // Two of three replicas unreachable through the end of the window:
        // the write quorum (W=2) is gone, so the daemon degrades.
        let mut schedules = vec![FaultSchedule::none(); 3];
        schedules[1] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        schedules[2] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        let out = d.monitor_replicated(10.0, 1.0, Some(schedules)).unwrap();
        assert!(out.degraded);
        assert_eq!(out.healthy, 1);
        assert_eq!(d.mode, DaemonMode::DegradedMonitorOnly);
        let reason = d.degraded_reason.clone().unwrap();
        assert!(reason.starts_with(REPL_DEGRADED_REASON), "{reason}");
        // Monitor-only: KB mutation is refused while the quorum is gone.
        assert!(matches!(
            d.run_stream_benchmark(1 << 20),
            Err(PmoveError::DegradedMode(_))
        ));
        let snap = d.obs.snapshot();
        assert_eq!(snap.gauge("daemon.mode", &[]), Some(1.0));
        assert_eq!(
            snap.counter("daemon.replication.degraded_windows", &[]),
            Some(1)
        );
        // The replicas come back: the next healthy window lifts the
        // replication degradation on its own.
        let out2 = d.monitor_replicated(10.0, 1.0, None).unwrap();
        assert!(!out2.degraded);
        assert_eq!(d.mode, DaemonMode::Normal);
        assert!(d.degraded_reason.is_none());
        assert_eq!(d.obs.snapshot().gauge("daemon.mode", &[]), Some(0.0));
        // Hints replayed during recovery + one repair pass reconverge.
        let rep = d.repair_replicas(8).unwrap();
        assert!(rep.converged);
    }
}
