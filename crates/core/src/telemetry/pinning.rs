//! Thread-pinning strategies.
//!
//! Scenario B "generates a script to run the requested kernel on the
//! target system. This script bounds the threads to the cores using one of
//! the balanced, compact, numa balanced, numa compact strategies based on
//! the probed target system topology" (§IV).

use pmove_hwsim::topology::ComponentKind;
use pmove_hwsim::Machine;

/// The four pinning strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinningStrategy {
    /// One thread per core, round-robin across sockets before using SMT
    /// siblings.
    Balanced,
    /// Consecutive OS threads (`cpu0, cpu1, ...`): SMT siblings packed,
    /// one socket filled first.
    Compact,
    /// Threads split evenly across NUMA nodes, one per core within a node
    /// before SMT.
    NumaBalanced,
    /// NUMA node 0 filled completely (including SMT) before node 1.
    NumaCompact,
}

impl PinningStrategy {
    /// All strategies.
    pub fn all() -> [PinningStrategy; 4] {
        [
            PinningStrategy::Balanced,
            PinningStrategy::Compact,
            PinningStrategy::NumaBalanced,
            PinningStrategy::NumaCompact,
        ]
    }

    /// Strategy name used in observation metadata.
    pub fn label(&self) -> &'static str {
        match self {
            PinningStrategy::Balanced => "balanced",
            PinningStrategy::Compact => "compact",
            PinningStrategy::NumaBalanced => "numa_balanced",
            PinningStrategy::NumaCompact => "numa_compact",
        }
    }

    /// Parse from a label.
    pub fn parse(label: &str) -> Option<Self> {
        Some(match label {
            "balanced" => PinningStrategy::Balanced,
            "compact" => PinningStrategy::Compact,
            "numa_balanced" => PinningStrategy::NumaBalanced,
            "numa_compact" => PinningStrategy::NumaCompact,
            _ => return None,
        })
    }

    /// Choose `n` OS thread indices on `machine` according to the
    /// strategy. Returns fewer when the machine has fewer threads.
    pub fn assign(&self, machine: &Machine, n: u32) -> Vec<u32> {
        let spec = &machine.spec;
        let total = spec.total_threads();
        let n = n.min(total);
        let tpc = spec.threads_per_core;
        let cps = spec.cores_per_socket;
        let sockets = spec.sockets;

        // OS index of (socket, core, smt) under the build order.
        let os_index = |s: u32, c: u32, t: u32| (s * cps + c) * tpc + t;

        let order: Vec<u32> = match self {
            PinningStrategy::Compact => (0..total).collect(),
            PinningStrategy::Balanced => {
                // smt level, then core, round-robin over sockets.
                let mut v = Vec::with_capacity(total as usize);
                for t in 0..tpc {
                    for c in 0..cps {
                        for s in 0..sockets {
                            v.push(os_index(s, c, t));
                        }
                    }
                }
                v
            }
            PinningStrategy::NumaBalanced => {
                // Alternate nodes; within a node, one per core before SMT.
                let mut per_socket: Vec<Vec<u32>> = (0..sockets)
                    .map(|s| {
                        let mut v = Vec::new();
                        for t in 0..tpc {
                            for c in 0..cps {
                                v.push(os_index(s, c, t));
                            }
                        }
                        v
                    })
                    .collect();
                let mut v = Vec::with_capacity(total as usize);
                'outer: loop {
                    let mut progressed = false;
                    for socket in per_socket.iter_mut() {
                        if !socket.is_empty() {
                            v.push(socket.remove(0));
                            progressed = true;
                        }
                        if v.len() == total as usize {
                            break 'outer;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                v
            }
            PinningStrategy::NumaCompact => {
                // Node by node; within a node, one per core before SMT.
                let mut v = Vec::with_capacity(total as usize);
                for s in 0..sockets {
                    for t in 0..tpc {
                        for c in 0..cps {
                            v.push(os_index(s, c, t));
                        }
                    }
                }
                v
            }
        };
        order.into_iter().take(n as usize).collect()
    }

    /// Generate the launch script of step B2: affinity binding plus the
    /// kernel command line.
    pub fn launch_script(&self, machine: &Machine, n: u32, command: &str) -> String {
        let cpus = self.assign(machine, n);
        let list = cpus
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "#!/bin/sh\n# generated by P-MoVE ({} pinning on {})\nexport OMP_NUM_THREADS={}\nexport OMP_PROC_BIND=true\ntaskset -c {} {}\n",
            self.label(),
            machine.key(),
            cpus.len(),
            list,
            command
        )
    }

    /// NUMA nodes touched by an assignment (for the observation metadata).
    pub fn nodes_touched(machine: &Machine, cpus: &[u32]) -> Vec<u32> {
        let threads = machine.topology.threads();
        let mut nodes: Vec<u32> = cpus
            .iter()
            .filter_map(|&c| {
                let t = threads.get(c as usize)?;
                machine
                    .topology
                    .ancestor_of_kind(t.id, ComponentKind::NumaNode)
                    .and_then(|n| n.name.strip_prefix("node"))
                    .and_then(|s| s.parse().ok())
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skx() -> Machine {
        Machine::preset("skx").unwrap() // 2 sockets × 22 cores × 2 SMT
    }

    #[test]
    fn compact_is_consecutive() {
        let m = skx();
        assert_eq!(PinningStrategy::Compact.assign(&m, 4), vec![0, 1, 2, 3]);
        // cpu0 and cpu1 are SMT siblings of core0.
    }

    #[test]
    fn balanced_round_robins_sockets() {
        let m = skx();
        let v = PinningStrategy::Balanced.assign(&m, 4);
        // core0@socket0, core0@socket1, core1@socket0, core1@socket1.
        assert_eq!(v, vec![0, 44, 2, 46]);
        let nodes = PinningStrategy::nodes_touched(&m, &v);
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn numa_balanced_splits_nodes_one_per_core() {
        let m = skx();
        let v = PinningStrategy::NumaBalanced.assign(&m, 4);
        assert_eq!(v, vec![0, 44, 2, 46]);
        // Beyond core counts it starts using SMT siblings within nodes.
        let many = PinningStrategy::NumaBalanced.assign(&m, 88);
        assert_eq!(many.len(), 88);
        let mut sorted = many.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 88, "no duplicates");
    }

    #[test]
    fn numa_compact_fills_node0_first() {
        let m = skx();
        let v = PinningStrategy::NumaCompact.assign(&m, 4);
        // One per core on socket 0: cpu0, cpu2, cpu4, cpu6.
        assert_eq!(v, vec![0, 2, 4, 6]);
        assert_eq!(PinningStrategy::nodes_touched(&m, &v), vec![0]);
        // 44 threads = all of node 0 (22 cores × 2 SMT).
        let all0 = PinningStrategy::NumaCompact.assign(&m, 44);
        assert_eq!(PinningStrategy::nodes_touched(&m, &all0), vec![0]);
    }

    #[test]
    fn assignments_never_exceed_machine() {
        let m = Machine::preset("icl").unwrap();
        for s in PinningStrategy::all() {
            let v = s.assign(&m, 999);
            assert_eq!(v.len(), 16, "{s:?}");
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 16, "{s:?} produced duplicates");
        }
    }

    #[test]
    fn script_contains_affinity_and_command() {
        let m = skx();
        let s = PinningStrategy::NumaBalanced.launch_script(&m, 4, "triad -n 1048576 -t 4");
        assert!(s.contains("taskset -c 0,44,2,46 triad -n 1048576 -t 4"));
        assert!(s.contains("OMP_NUM_THREADS=4"));
        assert!(s.contains("numa_balanced"));
    }

    #[test]
    fn labels_roundtrip() {
        for s in PinningStrategy::all() {
            assert_eq!(PinningStrategy::parse(s.label()), Some(s));
        }
        assert_eq!(PinningStrategy::parse("bogus"), None);
    }
}
