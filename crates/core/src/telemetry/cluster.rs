//! Cluster-level P-MoVE (the paper's §VI forward-looking design:
//! "a straightforward extension of the framework from single-node servers
//! to clusters").
//!
//! A [`Cluster`] owns one daemon per node, drives Scenario A across all of
//! them in lockstep, uploads to SUPERDB, and answers fleet-level
//! questions: cross-machine level views, slowest-node detection, and
//! cluster-wide retention enforcement.

use crate::error::PmoveError;
use crate::kb::superdb::SuperDb;
use crate::telemetry::daemon::PMoveDaemon;
use pmove_obs::Registry;
use pmove_pcp::SamplingReport;
use pmove_tsdb::RetentionPolicy;
use std::sync::Arc;

/// Liveness view of one cluster node, as the supervisor sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHealth {
    /// Machine key of the node.
    pub key: String,
    /// False once the node has been killed (stops answering heartbeats).
    pub alive: bool,
    /// True once the supervisor has quarantined the node: it is skipped
    /// by `monitor_all` and its SUPERDB data is annotated stale.
    pub quarantined: bool,
    /// Monitoring rounds in a row the node has missed a heartbeat.
    pub missed_heartbeats: u32,
    /// Virtual time of the node's last successful monitoring round.
    pub last_seen_s: f64,
}

/// Internal per-node supervisor state (parallel to `nodes`).
#[derive(Debug, Clone, Copy)]
struct NodeState {
    alive: bool,
    quarantined: bool,
    missed: u32,
    last_seen_s: f64,
}

impl NodeState {
    fn healthy() -> NodeState {
        NodeState {
            alive: true,
            quarantined: false,
            missed: 0,
            last_seen_s: 0.0,
        }
    }
}

/// A monitored cluster: one P-MoVE daemon per node plus the global DB.
pub struct Cluster {
    /// Per-node daemons (host side).
    pub nodes: Vec<PMoveDaemon>,
    /// The global performance database.
    pub superdb: SuperDb,
    /// Whether the cluster retention policy has been installed.
    retention_installed: bool,
    /// Fleet-level observability registry (per-node telemetry lives in
    /// each daemon's own registry; this one holds cluster-wide counters
    /// and the `cluster.monitor_all` span).
    pub obs: Arc<Registry>,
    /// Per-node liveness bookkeeping (parallel to `nodes`).
    health: Vec<NodeState>,
    /// Missed monitoring-round heartbeats before a dead node is
    /// quarantined.
    pub heartbeat_miss_limit: u32,
}

impl Cluster {
    /// Bring up a cluster from preset machine keys; every node's KB is
    /// uploaded to SUPERDB immediately.
    pub fn from_presets(keys: &[&str]) -> Result<Cluster, PmoveError> {
        let obs = Registry::shared();
        let superdb = SuperDb::new();
        let mut nodes = Vec::with_capacity(keys.len());
        for key in keys {
            let daemon = PMoveDaemon::for_preset(key)?;
            superdb.upload_kb(&daemon.kb)?;
            obs.counter("cluster.kb_uploads", &[("node", key)]).inc();
            nodes.push(daemon);
        }
        let health = vec![NodeState::healthy(); nodes.len()];
        Ok(Cluster {
            nodes,
            superdb,
            retention_installed: false,
            obs,
            health,
            heartbeat_miss_limit: 3,
        })
    }

    /// Node daemon by machine key.
    pub fn node(&self, key: &str) -> Option<&PMoveDaemon> {
        self.nodes.iter().find(|d| d.kb.machine_key == key)
    }

    /// Mutable node daemon by machine key.
    pub fn node_mut(&mut self, key: &str) -> Option<&mut PMoveDaemon> {
        self.nodes.iter_mut().find(|d| d.kb.machine_key == key)
    }

    /// Simulate a node death: the node stops answering heartbeats, so the
    /// next monitoring rounds count misses and eventually quarantine it.
    /// Returns false for unknown keys.
    pub fn kill_node(&mut self, key: &str) -> bool {
        match self.nodes.iter().position(|d| d.kb.machine_key == key) {
            Some(i) => {
                self.health[i].alive = false;
                true
            }
            None => false,
        }
    }

    /// Bring a killed node back: liveness and quarantine are reset and the
    /// SUPERDB staleness annotation is cleared, so the next round monitors
    /// it again. Returns false for unknown keys.
    pub fn revive_node(&mut self, key: &str) -> Result<bool, PmoveError> {
        match self.nodes.iter().position(|d| d.kb.machine_key == key) {
            Some(i) => {
                self.health[i].alive = true;
                self.health[i].quarantined = false;
                self.health[i].missed = 0;
                self.superdb.clear_stale(key)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Liveness summary per node, in node order.
    pub fn node_health(&self) -> Vec<NodeHealth> {
        self.nodes
            .iter()
            .zip(&self.health)
            .map(|(d, s)| NodeHealth {
                key: d.kb.machine_key.clone(),
                alive: s.alive,
                quarantined: s.quarantined,
                missed_heartbeats: s.missed,
                last_seen_s: s.last_seen_s,
            })
            .collect()
    }

    /// Machine keys of quarantined nodes.
    pub fn quarantined_nodes(&self) -> Vec<String> {
        self.node_health()
            .into_iter()
            .filter(|h| h.quarantined)
            .map(|h| h.key)
            .collect()
    }

    /// Run Scenario A on every live node for the same window; returns
    /// per-node reports in node order. Dead nodes miss the round's
    /// heartbeat; after [`Cluster::heartbeat_miss_limit`] consecutive
    /// misses the supervisor quarantines them — the node is skipped, its
    /// SUPERDB data is marked stale, and the survivors keep reporting.
    pub fn monitor_all(&mut self, duration_s: f64, freq_hz: f64) -> Vec<(String, SamplingReport)> {
        let start_s = self
            .nodes
            .iter()
            .zip(&self.health)
            .find(|(_, s)| s.alive && !s.quarantined)
            .map(|(d, _)| d.now_s)
            .unwrap_or(0.0);
        let mut reports = Vec::new();
        for (i, d) in self.nodes.iter_mut().enumerate() {
            let state = &mut self.health[i];
            if state.quarantined {
                continue;
            }
            if !state.alive {
                state.missed += 1;
                if state.missed >= self.heartbeat_miss_limit {
                    state.quarantined = true;
                    let key = d.kb.machine_key.as_str();
                    self.obs
                        .counter("cluster.nodes_quarantined", &[("node", key)])
                        .inc();
                    // Flag the node's global data as stale at the time its
                    // silence started, not at quarantine time.
                    let since_s = state.last_seen_s;
                    self.superdb
                        .mark_stale(key, since_s)
                        .expect("in-memory staleness annotation cannot fail");
                }
                continue;
            }
            let report = d.monitor(duration_s, freq_hz);
            state.missed = 0;
            state.last_seen_s = d.now_s;
            reports.push((d.kb.machine_key.clone(), report));
        }
        self.obs
            .counter("cluster.nodes_monitored", &[])
            .add(reports.len() as u64);
        self.obs.record_span(
            "cluster.monitor_all",
            (start_s * 1e9).round().max(0.0) as u64,
            ((start_s + duration_s) * 1e9).round().max(0.0) as u64,
        );
        reports
    }

    /// Cluster-wide load summary at the current virtual time: per node,
    /// the mean 1-minute load recorded in its tsdb.
    pub fn load_summary(&self) -> Vec<(String, f64)> {
        self.nodes
            .iter()
            .map(|d| {
                let mean =
                    d.ts.query("SELECT mean(\"value\") FROM \"kernel_all_load\"")
                        .ok()
                        .and_then(|r| {
                            r.rows
                                .first()
                                .and_then(|row| row.values.values().next().copied().flatten())
                        })
                        .unwrap_or(0.0);
                (d.kb.machine_key.clone(), mean)
            })
            .collect()
    }

    /// The node with the highest normalized load (load per hardware
    /// thread) — the fleet-level hot-spot detector.
    pub fn hottest_node(&self) -> Option<(String, f64)> {
        self.load_summary()
            .into_iter()
            .map(|(key, load)| {
                let threads = self
                    .node(&key)
                    .map(|d| d.machine.spec.total_threads() as f64)
                    .unwrap_or(1.0);
                (key, load / threads)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("loads are finite"))
    }

    /// Install a retention policy on every node and enforce it now;
    /// returns rows removed per node. (§V-B: "we rely on the retention
    /// policy of InfluxDB" when high-frequency sampling would overwhelm
    /// storage.) The policy is installed once; later calls only enforce.
    pub fn enforce_retention(&mut self, keep_ns: i64) -> Vec<(String, usize)> {
        let first_call = !self.retention_installed;
        self.retention_installed = true;
        let removed: Vec<(String, usize)> = self
            .nodes
            .iter()
            .map(|d| {
                if first_call {
                    d.ts.add_retention_policy(RetentionPolicy::keep("cluster", keep_ns));
                }
                let now_ns = (d.now_s * 1e9) as i64;
                let removed =
                    d.ts.enforce_retention(now_ns)
                        .expect("in-memory retention enforcement cannot fail");
                (d.kb.machine_key.clone(), removed)
            })
            .collect();
        let total: u64 = removed.iter().map(|(_, n)| *n as u64).sum();
        self.obs
            .counter("cluster.retention_rows_removed", &[])
            .add(total);
        removed
    }

    /// Total component twins across the fleet (from SUPERDB).
    pub fn fleet_twin_count(&self) -> usize {
        self.superdb
            .machines()
            .iter()
            .map(|m| {
                crate::kb::store::load_interfaces(&self.superdb.doc, m)
                    .map(|v| v.len())
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::from_presets(&["icl", "zen3"]).expect("presets exist")
    }

    #[test]
    fn construction_uploads_all_kbs() {
        let c = cluster();
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(
            c.superdb.machines(),
            vec!["icl".to_string(), "zen3".to_string()]
        );
        assert_eq!(
            c.fleet_twin_count(),
            c.nodes.iter().map(|d| d.kb.len()).sum::<usize>()
        );
        assert!(c.node("icl").is_some());
        assert!(c.node("ghost").is_none());
    }

    #[test]
    fn lockstep_monitoring_fills_every_node() {
        let mut c = cluster();
        let reports = c.monitor_all(10.0, 1.0);
        assert_eq!(reports.len(), 2);
        for (key, r) in &reports {
            assert_eq!(r.ticks, 10, "{key}");
        }
        for d in &c.nodes {
            assert!(d.ts.total_rows() > 0);
        }
        let loads = c.load_summary();
        assert!(loads.iter().all(|(_, l)| *l >= 0.0));
    }

    #[test]
    fn fleet_observability_tracks_uploads_windows_and_retention() {
        let mut c = cluster();
        c.monitor_all(30.0, 2.0);
        c.monitor_all(10.0, 1.0);
        c.enforce_retention(10_000_000_000);
        let snap = c.obs.snapshot();
        assert_eq!(
            snap.counter("cluster.kb_uploads", &[("node", "icl")]),
            Some(1)
        );
        assert_eq!(snap.counter("cluster.nodes_monitored", &[]), Some(4));
        let span = snap.span("cluster.monitor_all").unwrap();
        assert_eq!(span.count, 2);
        assert_eq!(span.last_start_ns, 30_000_000_000);
        assert_eq!(span.last_end_ns, 40_000_000_000);
        assert!(snap.counter("cluster.retention_rows_removed", &[]).unwrap() > 0);
        // Each node's own registry carries its transport counters.
        for d in &c.nodes {
            let node_snap = d.obs.snapshot();
            assert!(node_snap.counter_total("pcp.transport.values_offered") > 0);
        }
    }

    #[test]
    fn dead_node_is_quarantined_after_missed_heartbeats() {
        let mut c = cluster();
        c.monitor_all(10.0, 1.0);
        assert!(c.node_health().iter().all(|h| h.alive && !h.quarantined));
        assert!(c.kill_node("icl"));
        assert!(!c.kill_node("ghost"));

        // Two missed rounds: counted, not yet quarantined.
        for round in 1..=2u32 {
            let reports = c.monitor_all(10.0, 1.0);
            assert_eq!(reports.len(), 1, "only the survivor reports");
            assert_eq!(reports[0].0, "zen3");
            let icl = &c.node_health()[0];
            assert_eq!(icl.missed_heartbeats, round);
            assert!(!icl.quarantined);
        }
        // Third miss crosses the limit: quarantine + SUPERDB staleness.
        c.monitor_all(10.0, 1.0);
        let icl = &c.node_health()[0];
        assert!(icl.quarantined);
        assert_eq!(icl.last_seen_s, 10.0);
        assert_eq!(c.quarantined_nodes(), vec!["icl".to_string()]);
        assert_eq!(c.superdb.staleness("icl"), Some(10.0));
        let snap = c.obs.snapshot();
        assert_eq!(
            snap.counter("cluster.nodes_quarantined", &[("node", "icl")]),
            Some(1)
        );
        // Survivors keep filling their stores; the dead clock froze.
        assert_eq!(c.node("zen3").unwrap().now_s, 40.0);
        assert_eq!(c.node("icl").unwrap().now_s, 10.0);

        // Revival clears quarantine and staleness; monitoring resumes.
        assert!(c.revive_node("icl").unwrap());
        assert!(c.superdb.staleness("icl").is_none());
        let reports = c.monitor_all(10.0, 1.0);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn hottest_node_is_stable_and_normalized() {
        let mut c = cluster();
        c.monitor_all(10.0, 1.0);
        let (key, norm_load) = c.hottest_node().expect("two nodes monitored");
        assert!(["icl", "zen3"].contains(&key.as_str()));
        assert!((0.0..1.0).contains(&norm_load));
    }

    #[test]
    fn retention_prunes_old_rows_cluster_wide() {
        let mut c = cluster();
        c.monitor_all(30.0, 2.0);
        let before: usize = c.nodes.iter().map(|d| d.ts.total_rows()).sum();
        // Keep only the last 10 virtual seconds.
        let removed = c.enforce_retention(10_000_000_000);
        let removed_total: usize = removed.iter().map(|(_, n)| n).sum();
        assert!(removed_total > 0);
        let after: usize = c.nodes.iter().map(|d| d.ts.total_rows()).sum();
        assert_eq!(after + removed_total, before);
        // Fresh data is retained.
        assert!(after > 0);
    }

    #[test]
    fn per_node_scenario_b_still_works_inside_a_cluster() {
        use crate::profiles::stream_kernel_profile;
        use crate::telemetry::pinning::PinningStrategy;
        use crate::telemetry::scenario_b::ProfileRequest;
        use pmove_hwsim::vendor::IsaExt;
        use pmove_kernels::StreamKernel;

        let mut c = cluster();
        let d = c.node_mut("zen3").unwrap();
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Sum, 1 << 30, 8, IsaExt::Scalar),
            command: "sum".into(),
            generic_events: vec!["TOTAL_DP_FLOPS".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::Compact,
        };
        let outcome = d.profile(&request).expect("profiling works per node");
        assert_eq!(d.kb.observations.len(), 1);
        assert!(outcome.execution.duration_s > 0.0);
    }
}
