//! Scenario A (Fig. 3): always-on software telemetry.
//!
//! Using the KB, P-MoVE configures the PCP collectors and samples
//! system-related metrics — CPU/memory usage, NUMA events, energy — at low
//! frequency. The dashboards are generated on the host from the same KB,
//! so they are ready before the target starts reporting (steps A1/A2 run
//! concurrently).

use crate::error::PmoveError;
use crate::kb::KnowledgeBase;
use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::{FaultSchedule, Machine};
use pmove_obs::Registry;
use pmove_pcp::pmda_linux::LinuxAgent;
use pmove_pcp::pmda_proc::{ProcAgent, TrackedProcess};
use pmove_pcp::{
    run_replicated, Pmcd, ReplSamplingReport, ReplShipper, ResilienceConfig, SamplingConfig,
    SamplingLoop, SamplingReport, Shipper,
};
use pmove_tsdb::{Database, ReplicaSet};
use std::sync::Arc;

/// Default SW metric set of Scenario A (≈20 pmdalinux metrics in the
/// paper; this is the modelled subset).
pub fn default_sw_metrics() -> Vec<String> {
    vec![
        "kernel.all.load".into(),
        "kernel.all.nprocs".into(),
        "kernel.all.intr".into(),
        "kernel.all.pswitch".into(),
        "kernel.percpu.cpu.idle".into(),
        "kernel.percpu.cpu.user".into(),
        "kernel.percpu.cpu.sys".into(),
        "mem.util.used".into(),
        "mem.util.free".into(),
        "mem.numa.alloc_hit".into(),
        "disk.dev.write_bytes".into(),
        "disk.dev.read_bytes".into(),
        "network.interface.out.bytes".into(),
        "network.interface.in.bytes".into(),
    ]
}

/// GPU SW metrics sampled when devices are attached (`pcp-pmda-nvidia`
/// "essentially capturing every metric supported by NVML"; this is the
/// always-on subset).
pub fn default_gpu_metrics() -> Vec<String> {
    vec![
        "nvidia.memused".into(),
        "nvidia.gpuactive".into(),
        "nvidia.power".into(),
        "nvidia.temp".into(),
    ]
}

/// Configure collectors from the KB and run the monitoring loop for
/// `duration_s` seconds of virtual time at `freq_hz`.
pub fn monitor_system(
    machine: &Machine,
    kb: &KnowledgeBase,
    ts: &Database,
    start_s: f64,
    duration_s: f64,
    freq_hz: f64,
) -> SamplingReport {
    monitor_system_with_load(machine, kb, ts, start_s, duration_s, freq_hz, &[], None)
}

/// [`monitor_system`] with pinned background load: `busy` lists
/// `(os thread index, busy fraction)` pairs imposed by running processes,
/// which the `pmdalinux` agent reflects in the per-CPU idle metrics.
/// When `obs` is given, the transport, sampler and pmcd report their
/// `pcp.*` self-telemetry into it.
#[allow(clippy::too_many_arguments)]
pub fn monitor_system_with_load(
    machine: &Machine,
    kb: &KnowledgeBase,
    ts: &Database,
    start_s: f64,
    duration_s: f64,
    freq_hz: f64,
    busy: &[(u32, f64)],
    obs: Option<&Arc<Registry>>,
) -> SamplingReport {
    monitor_system_resilient(
        machine, kb, ts, start_s, duration_s, freq_hz, busy, obs, None, None,
    )
}

/// [`monitor_system_with_load`] with the transport's self-healing mode
/// switched on: when `resilience` is given, the shipper spills instead of
/// dropping, retries with backoff behind a circuit breaker, and marks
/// recovery gaps; when `fault` is given, the injected schedule perturbs
/// the link/backend on the virtual clock. Both `None` is bit-identical to
/// the plain path.
#[allow(clippy::too_many_arguments)]
pub fn monitor_system_resilient(
    machine: &Machine,
    kb: &KnowledgeBase,
    ts: &Database,
    start_s: f64,
    duration_s: f64,
    freq_hz: f64,
    busy: &[(u32, f64)],
    obs: Option<&Arc<Registry>>,
    resilience: Option<ResilienceConfig>,
    fault: Option<FaultSchedule>,
) -> SamplingReport {
    let (mut pmcd, metrics) = configure_collectors(machine, kb, busy, obs);

    let mut shipper = Shipper::new(
        ts,
        LinkSpec::mbit_100(),
        1.0 / freq_hz,
        &[machine.key(), "scenario_a"],
    );
    if let Some(reg) = obs {
        shipper = shipper.with_obs(reg.clone());
    }
    if let Some(schedule) = fault {
        shipper = shipper.with_fault_schedule(schedule);
    }
    if let Some(cfg) = resilience {
        shipper = shipper.with_resilience(cfg);
    }
    let config = SamplingConfig::new(metrics, freq_hz, start_s, duration_s);
    SamplingLoop::run(&config, &mut pmcd, &mut shipper)
}

/// Configure the PCP collector stack from the KB: register the agents the
/// machine calls for and select the metrics some twin actually declares
/// as SWTelemetry. Shared by the plain, resilient, and replicated
/// monitoring paths so their collector behaviour is identical.
fn configure_collectors(
    machine: &Machine,
    kb: &KnowledgeBase,
    busy: &[(u32, f64)],
    obs: Option<&Arc<Registry>>,
) -> (Pmcd, Vec<String>) {
    let declared: Vec<String> = kb
        .interfaces
        .iter()
        .flat_map(|i| i.telemetry())
        .filter(|t| t.kind == pmove_jsonld::TelemetryKind::Software)
        .map(|t| t.sampler_name.clone())
        .collect();
    let mut metrics: Vec<String> = default_sw_metrics()
        .into_iter()
        .filter(|m| declared.contains(m))
        .collect();

    let mut pmcd = Pmcd::new();
    let mut linux = LinuxAgent::new(machine.spec.clone());
    linux.state_mut().set_kernel_busy(busy);
    pmcd.register(Box::new(linux));
    if !machine.spec.gpus.is_empty() {
        pmcd.register(Box::new(pmove_pcp::pmda_nvidia::NvidiaAgent::new(
            machine.spec.gpus.clone(),
        )));
        metrics.extend(
            default_gpu_metrics()
                .into_iter()
                .filter(|m| declared.contains(m)),
        );
    }
    pmcd.register(Box::new(ProcAgent::new(vec![TrackedProcess {
        name: "pmcd".into(),
        utime_per_s: 0.002,
        stime_per_s: 0.001,
        rss_bytes: 9.0e6,
        lifetime: None,
    }])));
    if let Some(reg) = obs {
        pmcd.set_obs(reg);
    }
    (pmcd, metrics)
}

/// How a replicated monitoring window left the coordinator: the sampling
/// report plus the cluster-health view the daemon uses for failover and
/// degradation decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicatedOutcome {
    /// The sampling run (ticks, expected values, conservation ledger).
    pub report: ReplSamplingReport,
    /// Replicas the coordinator last saw answering heartbeats.
    pub healthy: usize,
    /// Primary replica index after any failovers.
    pub primary: usize,
    /// True when fewer than W replicas were reachable at the end of the
    /// window — the only condition that degrades the daemon.
    pub degraded: bool,
}

/// [`monitor_system_with_load`] routed through the replication
/// coordinator: samples are quorum-written to `set` (one fault schedule
/// per replica, virtual-clock absolute), misses park as hinted handoffs,
/// and heartbeats drive hint replay, quarantine, and primary failover
/// every tick.
#[allow(clippy::too_many_arguments)]
pub fn monitor_system_replicated(
    machine: &Machine,
    kb: &KnowledgeBase,
    set: &ReplicaSet,
    start_s: f64,
    duration_s: f64,
    freq_hz: f64,
    busy: &[(u32, f64)],
    obs: Option<&Arc<Registry>>,
    schedules: Vec<FaultSchedule>,
) -> Result<ReplicatedOutcome, PmoveError> {
    let (mut pmcd, metrics) = configure_collectors(machine, kb, busy, obs);
    let mut coord = ReplShipper::new(set, schedules, &[machine.key(), "scenario_a", set.name()])?;
    if let Some(reg) = obs {
        coord = coord.with_obs(reg.clone());
    }
    let config = SamplingConfig::new(metrics, freq_hz, start_s, duration_s);
    let report = run_replicated(&config, &mut pmcd, &mut coord);
    Ok(ReplicatedOutcome {
        report,
        healthy: coord.healthy_count(),
        primary: coord.primary(),
        degraded: coord.is_degraded(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::builder::build_kb;
    use crate::probe::ProbeReport;

    #[test]
    fn monitoring_populates_the_tsdb() {
        let machine = Machine::preset("icl").unwrap();
        let kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        let ts = Database::new("pmove");
        let report = monitor_system(&machine, &kb, &ts, 0.0, 10.0, 1.0);
        assert_eq!(report.ticks, 10);
        assert_eq!(report.transport.values_lost, 0);
        // Measurements exist with KB-declared names.
        let ms = ts.measurements();
        assert!(ms.contains(&"kernel_percpu_cpu_idle".to_string()));
        assert!(ms.contains(&"mem_numa_alloc_hit".to_string()));
        // Per-cpu measurement carries 16 fields.
        assert_eq!(ts.field_keys("kernel_percpu_cpu_idle").len(), 16);
        // Queryable through the normal query path.
        let r = ts
            .query("SELECT \"_cpu3\" FROM \"kernel_percpu_cpu_idle\"")
            .unwrap();
        assert_eq!(r.rows.len(), 10);
    }

    #[test]
    fn gpu_telemetry_joins_scenario_a_when_devices_attached() {
        let mut spec = pmove_hwsim::MachineSpec::csl();
        spec.gpus.push(pmove_hwsim::gpu::GpuSpec::gv100());
        let machine = Machine::new(spec);
        let kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        let ts = Database::new("pmove");
        monitor_system(&machine, &kb, &ts, 0.0, 10.0, 1.0);
        let ms = ts.measurements();
        assert!(ms.contains(&"nvidia_memused".to_string()), "{ms:?}");
        assert!(ms.contains(&"nvidia_power".to_string()));
        let r = ts.query("SELECT \"_gpu0\" FROM \"nvidia_power\"").unwrap();
        assert_eq!(r.rows.len(), 10);
        // Idle device: power in the idle band.
        assert!(r.rows.iter().all(|row| {
            let v = row.values["_gpu0"].unwrap();
            (30.0..80.0).contains(&v)
        }));
    }

    #[test]
    fn replicated_monitoring_matches_the_plain_path_bit_for_bit() {
        use pmove_tsdb::repl::ReplConfig;
        // The replicated coordinator with no faults must ingest exactly
        // the series the single-node shipper does: same collector stack,
        // same tick grid, bit-identical values on every replica.
        let machine = Machine::preset("icl").unwrap();
        let kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        let ts = Database::new("pmove");
        let plain = monitor_system(&machine, &kb, &ts, 0.0, 10.0, 1.0);

        let set = ReplicaSet::in_memory("pmove", ReplConfig::default()).unwrap();
        let schedules = vec![FaultSchedule::none(); set.len()];
        let out =
            monitor_system_replicated(&machine, &kb, &set, 0.0, 10.0, 1.0, &[], None, schedules)
                .unwrap();
        assert_eq!(out.report.ticks, plain.ticks);
        assert_eq!(out.report.transport.values_lost, 0);
        assert!(!out.degraded);
        assert!(set.converged());
        for m in ts.measurements() {
            let q = format!("SELECT * FROM \"{m}\"");
            let want = ts.query(&q).unwrap();
            for i in 0..set.len() {
                let got = set.replica(i).query(&q).unwrap();
                assert_eq!(got.rows, want.rows, "series {m} differs on replica {i}");
            }
        }
    }

    #[test]
    fn low_frequency_always_sampled_semantics() {
        // SWTelemetry is "always sampled with a low frequency": a 1 Hz run
        // over 60 s yields 60 ticks, no losses, no zeros.
        let machine = Machine::preset("csl").unwrap();
        let kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        let ts = Database::new("pmove");
        let report = monitor_system(&machine, &kb, &ts, 100.0, 60.0, 1.0);
        assert_eq!(report.ticks, 60);
        assert_eq!(report.transport.loss_plus_zero_pct(), 0.0);
    }
}
