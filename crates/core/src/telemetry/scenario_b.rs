//! Scenario B (Fig. 3): HW performance-event capture around kernel runs.
//!
//! P-MoVE requests an executable and its parameters, configures the PMUs
//! for the requested (generic) metrics through the abstraction layer,
//! generates the pinning script, samples while the kernel runs, stops as
//! the kernel halts, and appends an `ObservationInterface` linking the
//! execution metadata to the time-series data (steps B1–B8).

use crate::abstraction::AbstractionLayer;
use crate::error::PmoveError;
use crate::ids::IdFactory;
use crate::kb::observation::{MetricRef, ObservationInterface};
use crate::kb::KnowledgeBase;
use crate::telemetry::pinning::PinningStrategy;
use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::noise::NoiseSource;
use pmove_hwsim::pmu::Domain;
use pmove_hwsim::{ExecModel, Execution, KernelProfile, Machine};
use pmove_pcp::pmda_perfevent::PerfEventAgent;
use pmove_pcp::{Pmcd, SamplingConfig, SamplingLoop, Shipper};
use pmove_tsdb::Database;
use serde_json::json;

/// A Scenario-B request: what to run and what to measure.
#[derive(Debug, Clone)]
pub struct ProfileRequest {
    /// The kernel's operation profile (derived from the executable).
    pub profile: KernelProfile,
    /// Command line recorded in the observation.
    pub command: String,
    /// Generic event names to capture (resolved via the abstraction layer).
    pub generic_events: Vec<String>,
    /// Sampling frequency.
    pub freq_hz: f64,
    /// Pinning strategy.
    pub pinning: PinningStrategy,
}

/// The outcome: the observation entry plus the raw execution.
#[derive(Debug)]
pub struct ProfileOutcome {
    /// The observation appended to the KB (B8).
    pub observation: ObservationInterface,
    /// The simulated execution (for further analysis, e.g. live-CARM).
    pub execution: Execution,
}

/// Execute Scenario B. Telemetry lands in `ts`, tagged with the new
/// observation id; the observation is appended to `kb`. When `obs` is
/// given, the transport, sampler and pmcd report their `pcp.*`
/// self-telemetry into it.
#[allow(clippy::too_many_arguments)]
pub fn profile_kernel(
    machine: &Machine,
    kb: &mut KnowledgeBase,
    layer: &AbstractionLayer,
    ts: &Database,
    ids: &mut IdFactory,
    request: &ProfileRequest,
    start_s: f64,
    obs: Option<&std::sync::Arc<pmove_obs::Registry>>,
) -> Result<ProfileOutcome, PmoveError> {
    let pmu = kb.pmu_name.clone();

    // B1: resolve generic events to HW events and configure the PMUs.
    let mut hw_events: Vec<String> = Vec::new();
    for generic in &request.generic_events {
        for e in layer.required_hw_events(&pmu, generic)? {
            if !hw_events.contains(&e) {
                hw_events.push(e);
            }
        }
    }
    let hw_refs: Vec<&str> = hw_events.iter().map(String::as_str).collect();
    let mut agent = PerfEventAgent::new(machine.spec.clone(), &hw_refs);
    agent.freq_hz = request.freq_hz;

    // B2: pinning script for the requested executable (recorded in the
    // observation's report as execution metadata).
    let affinity = request.pinning.assign(machine, request.profile.threads);
    let script = request
        .pinning
        .launch_script(machine, request.profile.threads, &request.command);

    // Run the kernel under sampling on the simulated machine.
    let mut noise = NoiseSource::from_labels(&[machine.key(), &request.command, "runtime"]);
    let exec = ExecModel::new(machine.spec.clone()).run_sampled(
        &request.profile,
        start_s,
        request.freq_hz,
        &mut noise,
    );
    // Counts land on the OS threads the pinning script bound the kernel
    // to, so observation queries over the affinity fields recall them.
    agent.attach_pinned(exec.clone(), affinity.clone());

    // Sample while the kernel runs; stop when it halts.
    let obs_id = ids.next_id();
    let mut pmcd = Pmcd::new();
    pmcd.set_tag("tag", obs_id.clone());
    pmcd.register(Box::new(agent));
    // The launched kernel is a process: track it so per-process metrics
    // exist for this observation (the paper treats processes as unique
    // components; Fig. 2c shows their level view).
    let proc_name = format!(
        "_proc_{}",
        request
            .command
            .split_whitespace()
            .next()
            .unwrap_or("kernel")
    );
    pmcd.register(Box::new(pmove_pcp::pmda_proc::ProcAgent::new(vec![
        pmove_pcp::pmda_proc::TrackedProcess {
            name: proc_name.clone(),
            utime_per_s: affinity.len() as f64 * 0.97,
            stime_per_s: affinity.len() as f64 * 0.03,
            rss_bytes: request.profile.working_set_bytes as f64,
            lifetime: Some((start_s, exec.end_s())),
        },
    ])));
    let mut metrics: Vec<String> = hw_events
        .iter()
        .map(|e| format!("perfevent.hwcounters.{e}"))
        .collect();
    metrics.push("proc.psinfo.utime".into());
    metrics.push("proc.psinfo.rss".into());
    let mut shipper = Shipper::new(
        ts,
        LinkSpec::mbit_100(),
        1.0 / request.freq_hz,
        &[machine.key(), &obs_id],
    );
    if let Some(reg) = obs {
        shipper = shipper.with_obs(reg.clone());
        pmcd.set_obs(reg);
    }
    // PCP "stops the sampling as the kernel is halted": even for kernels
    // shorter than one period, a final read covers the full run.
    let duration = (exec.end_s() - start_s).max(1.0 / request.freq_hz);
    let config = SamplingConfig::new(metrics.clone(), request.freq_hz, start_s, duration);
    let sampling = SamplingLoop::run(&config, &mut pmcd, &mut shipper);

    // Metric references: per-thread events carry the pinned cpu fields,
    // per-package events the node fields.
    let catalog = pmove_hwsim::EventCatalog::for_arch(machine.spec.arch);
    let nodes = PinningStrategy::nodes_touched(machine, &affinity);
    let mut metric_refs: Vec<MetricRef> = hw_events
        .iter()
        .map(|e| {
            let per_package = catalog
                .get(e)
                .is_some_and(|d| d.domain == Domain::PerPackage);
            let fields = if per_package {
                nodes.iter().map(|n| format!("_node{n}")).collect()
            } else {
                affinity.iter().map(|c| format!("_cpu{c}")).collect()
            };
            MetricRef {
                db_name: format!("perfevent_hwcounters_{}", e.replace([':', '.'], "_")),
                fields,
            }
        })
        .collect();
    for proc_metric in ["proc_psinfo_utime", "proc_psinfo_rss"] {
        metric_refs.push(MetricRef {
            db_name: proc_metric.into(),
            fields: vec![proc_name.clone()],
        });
    }

    // "A report is generated on the fly and added to the entry before
    // appending to KB" (Listing 2): generic-event totals recalled from
    // the just-written series.
    let mut report = json!({
        "duration_s": exec.duration_s,
        "gflops": exec.gflops(),
        "launch_script": script,
        "sampling": {
            "expected_values": sampling.expected_values,
            "inserted_values": sampling.transport.values_inserted,
            "lost_values": sampling.transport.values_lost,
        },
    });
    for generic in &request.generic_events {
        if let Ok(total) = recall_generic_total(ts, layer, &pmu, generic, &obs_id) {
            report[format!("total_{generic}")] = json!(total);
        }
    }

    let observation = ObservationInterface {
        id: obs_id,
        machine: machine.key().to_string(),
        command: request.command.clone(),
        pinning: request.pinning.label().to_string(),
        affinity,
        start_s,
        end_s: exec.end_s(),
        freq_hz: request.freq_hz,
        metrics: metric_refs,
        report,
    };
    kb.append_observation(observation.clone());

    // "a ProcessInterface is re-instantiated each time it is invoked":
    // every profiled execution adds a process twin carrying its command
    // and telemetry links, powering the process level view (Fig. 2c).
    append_process_twin(kb, &observation, &proc_name)?;

    Ok(ProfileOutcome {
        observation,
        execution: exec,
    })
}

/// Add the per-invocation process twin for an observation.
fn append_process_twin(
    kb: &mut KnowledgeBase,
    obs: &ObservationInterface,
    proc_name: &str,
) -> Result<(), PmoveError> {
    use pmove_jsonld::dtdl::TelemetryBuilder;
    let n = kb.of_type("process").len();
    let root = kb.root_id();
    let id = root
        .child(&format!("process{n}"))
        .map_err(PmoveError::from)?;
    let mut iface = pmove_jsonld::Interface::new(id.clone(), "process", format!("{proc_name}#{n}"));
    iface.add_property("command", serde_json::json!(obs.command));
    iface.add_property("observation", serde_json::json!(obs.id));
    iface.add_property("pinning", serde_json::json!(obs.pinning));
    iface.add_telemetry(TelemetryBuilder::software("utime", "proc.psinfo.utime").field(proc_name));
    iface.add_telemetry(TelemetryBuilder::software("rss", "proc.psinfo.rss").field(proc_name));
    if let Some(root_iface) = kb.get_mut(&root) {
        root_iface.add_relationship("contains", id);
    }
    kb.add_interface(iface, Some(&root));
    Ok(())
}

/// Recall a generic event's total for an observation: sum the sampled
/// series of each HW event in the formula, then evaluate the formula.
pub fn recall_generic_total(
    ts: &Database,
    layer: &AbstractionLayer,
    pmu: &str,
    generic: &str,
    obs_id: &str,
) -> Result<f64, PmoveError> {
    let formula = layer.formula(pmu, generic)?.clone();
    formula.eval(|hw_event| {
        let measurement = format!("perfevent_hwcounters_{}", hw_event.replace([':', '.'], "_"));
        let q = format!("SELECT * FROM \"{measurement}\" WHERE tag='{obs_id}'");
        ts.query(&q).ok().map(|r| r.total())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::presets::builtin_layer;
    use crate::kb::builder::build_kb;
    use crate::probe::ProbeReport;
    use pmove_hwsim::kernel_profile::Precision;
    use pmove_hwsim::vendor::IsaExt;

    fn setup() -> (
        Machine,
        KnowledgeBase,
        AbstractionLayer,
        Database,
        IdFactory,
    ) {
        let machine = Machine::preset("csl").unwrap();
        let kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        (
            machine,
            kb,
            builtin_layer(),
            Database::new("pmove"),
            IdFactory::new("test"),
        )
    }

    fn triad_profile(threads: u32) -> KernelProfile {
        let n: u64 = 1 << 22;
        KernelProfile::named("triad")
            .with_threads(threads)
            .with_flops(IsaExt::Avx512, Precision::F64, 2 * n)
            .with_mem(3 * n, n, IsaExt::Avx512)
            .with_working_set(4 * n * 8)
    }

    fn request() -> ProfileRequest {
        ProfileRequest {
            profile: triad_profile(4),
            command: "triad -n 4194304 -t 4".into(),
            generic_events: vec![
                "TOTAL_MEMORY_OPERATIONS".into(),
                "AVX512_DP_FLOPS".into(),
                "RAPL_ENERGY_PKG".into(),
            ],
            freq_hz: 8.0,
            pinning: PinningStrategy::Compact,
        }
    }

    #[test]
    fn full_scenario_b_flow() {
        let (machine, mut kb, layer, ts, mut ids) = setup();
        let outcome = profile_kernel(
            &machine,
            &mut kb,
            &layer,
            &ts,
            &mut ids,
            &request(),
            5.0,
            None,
        )
        .unwrap();

        // Observation appended to the KB (B8).
        assert_eq!(kb.observations.len(), 1);
        let obs = &kb.observations[0];
        assert_eq!(obs.pinning, "compact");
        assert_eq!(obs.affinity, vec![0, 1, 2, 3]);
        assert!(obs.end_s > obs.start_s);

        // Series landed in the tsdb, tagged with the observation id.
        let q = format!(
            "SELECT \"_cpu0\" FROM \"perfevent_hwcounters_FP_ARITH_512B_PACKED_DOUBLE\" WHERE tag='{}'",
            obs.id
        );
        let r = ts.query(&q).unwrap();
        assert!(!r.rows.is_empty());

        // Listing-3 queries reference exactly the sampled measurements
        // (4 HW events + 2 per-process metrics).
        let queries = obs.queries();
        assert_eq!(queries.len(), 6);
        assert!(queries
            .iter()
            .any(|q| q.contains("proc_psinfo_utime") && q.contains("\"_proc_triad\"")));
        assert!(queries
            .iter()
            .any(|q| q.contains("RAPL_ENERGY_PKG") && q.contains("\"_node0\"")));
        assert!(queries
            .iter()
            .any(|q| q.contains("MEM_INST_RETIRED_ALL_LOADS") && q.contains("\"_cpu0\"")));

        // The on-the-fly report carries generic totals.
        assert!(outcome.observation.report["total_AVX512_DP_FLOPS"].is_number());
        assert!(outcome.observation.report["gflops"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn recalled_totals_approximate_ground_truth() {
        let (machine, mut kb, layer, ts, mut ids) = setup();
        let req = request();
        let outcome =
            profile_kernel(&machine, &mut kb, &layer, &ts, &mut ids, &req, 0.0, None).unwrap();
        // AVX512_DP_FLOPS (scaled by ×8) should recall ≈ the true FLOPs.
        let truth = req.profile.total_flops() as f64;
        let recalled = recall_generic_total(
            &ts,
            &layer,
            "csl",
            "AVX512_DP_FLOPS",
            &outcome.observation.id,
        )
        .unwrap();
        let rel = (recalled - truth).abs() / truth;
        assert!(rel < 0.1, "recalled {recalled} truth {truth} rel {rel}");
    }

    #[test]
    fn unmapped_generic_event_fails() {
        let (machine, mut kb, layer, ts, mut ids) = setup();
        let mut req = request();
        req.generic_events = vec!["L3_HIT".into()]; // Intel: unsupported
        let err = profile_kernel(&machine, &mut kb, &layer, &ts, &mut ids, &req, 0.0, None);
        assert!(matches!(err, Err(PmoveError::UnmappedEvent { .. })));
    }

    #[test]
    fn process_twins_reinstantiated_per_invocation() {
        // Fig. 2(c): the process level view — one twin per profiled run.
        let (machine, mut kb, layer, ts, mut ids) = setup();
        assert!(kb.of_type("process").is_empty());
        profile_kernel(
            &machine,
            &mut kb,
            &layer,
            &ts,
            &mut ids,
            &request(),
            0.0,
            None,
        )
        .unwrap();
        profile_kernel(
            &machine,
            &mut kb,
            &layer,
            &ts,
            &mut ids,
            &request(),
            10.0,
            None,
        )
        .unwrap();
        let procs = kb.of_type("process");
        assert_eq!(procs.len(), 2);
        // Each twin carries its observation id and telemetry links.
        for (p, obs) in procs.iter().zip(&kb.observations) {
            assert_eq!(
                p.property_value("observation"),
                Some(&serde_json::json!(obs.id))
            );
            assert!(p.telemetry().any(|t| t.sampler_name == "proc.psinfo.utime"));
        }
        // The KB still validates and the process level dashboard exists.
        kb.validate().unwrap();
        let dash = crate::dashboard::gen::level_dashboard(&kb, "process").unwrap();
        assert!(dash.panels.iter().any(|p| p.title == "proc_psinfo_utime"));
        // The per-process utime series is recallable and ≈ threads × time.
        let obs = &kb.observations[0];
        let q = format!(
            "SELECT \"_proc_triad\" FROM \"proc_psinfo_utime\" WHERE tag='{}'",
            obs.id
        );
        let total = ts.query(&q).unwrap().total();
        let expect = 4.0 * 0.97 * obs.duration_s();
        assert!(
            (total - expect).abs() / expect < 0.35,
            "utime {total} vs {expect}"
        );
    }

    #[test]
    fn observation_ids_are_unique_per_run() {
        let (machine, mut kb, layer, ts, mut ids) = setup();
        let a = profile_kernel(
            &machine,
            &mut kb,
            &layer,
            &ts,
            &mut ids,
            &request(),
            0.0,
            None,
        )
        .unwrap();
        let b = profile_kernel(
            &machine,
            &mut kb,
            &layer,
            &ts,
            &mut ids,
            &request(),
            10.0,
            None,
        )
        .unwrap();
        assert_ne!(a.observation.id, b.observation.id);
        assert_eq!(kb.observations.len(), 2);
    }
}
