//! Bridges from the software substrates to simulator kernel profiles.
//!
//! Scenario B monitors *executions on the target*; in this reproduction
//! the target is simulated, so each real workload (an SpMV run, a
//! likwid-style kernel) is described to the machine model by a
//! [`KernelProfile`] carrying its exact operation mix, ISA usage and
//! structure-derived locality.

use pmove_hwsim::kernel_profile::{KernelProfile, LocalityProfile, Precision};
use pmove_hwsim::vendor::IsaExt;
use pmove_hwsim::MachineSpec;
use pmove_kernels::StreamKernel;
use pmove_spmv::csr::Csr;
use pmove_spmv::profile::{op_counts, SpmvAlgorithm};

/// Profile of one `y = A x` with a given algorithm on a machine.
///
/// The ISA mix realizes the Fig. 7 contrast: the MKL-like kernel exploits
/// the machine's widest vector extension (AVX-512 on the Intel targets),
/// while merge-path SpMV "only exercises the scalar units". Merge's
/// path-bookkeeping overhead surfaces as extra memory operations, which is
/// exactly how the paper observes it (higher TOTAL_MEMORY_INSTRUCTIONS and
/// package power for Merge).
pub fn spmv_profile(
    matrix: &Csr,
    algo: SpmvAlgorithm,
    machine: &MachineSpec,
    threads: u32,
    iterations: u64,
) -> KernelProfile {
    assert!(iterations >= 1, "need at least one SpMV iteration");
    let isa = match algo {
        SpmvAlgorithm::Mkl => machine.arch.widest_isa(),
        SpmvAlgorithm::Merge => IsaExt::Scalar,
    };
    // Score x-gather locality against the per-core L2.
    let counts = op_counts(matrix, algo, machine.l2_kb as u64 * 1024);
    let loads = (counts.load_elems as f64 * counts.overhead_factor) as u64 * iterations;
    let stores = counts.store_elems * iterations;

    // Locality: the matrix stream (values/indices) and y are streamed;
    // x gathers hit caches according to the structure score. Fractions
    // are per-iteration (iteration count scales volume, not shape).
    let per_iter_total =
        (counts.load_elems as f64 * counts.overhead_factor) + counts.store_elems as f64;
    let x_fraction = matrix.nnz() as f64 / per_iter_total; // one x gather per nnz
    let cached = x_fraction * counts.x_hit_fraction;
    let locality = LocalityProfile::new(
        0.05 * cached, // a sliver of x stays L1-hot
        0.70 * cached, // most cached gathers come from L2
        0.25 * cached, // the rest from L3
        (1.0 - cached).max(0.0),
    );

    KernelProfile::named(format!("spmv_{}", algo.label()))
        .with_threads(threads)
        .with_flops(isa, Precision::F64, counts.flops * iterations)
        .with_mem(loads, stores, isa)
        .with_working_set(matrix.spmv_working_set_bytes())
        .with_locality(locality)
}

/// Profile of a likwid-style stream kernel sized to `n` elements.
/// `isa` selects the vector width the kernel was compiled for.
pub fn stream_kernel_profile(
    kernel: StreamKernel,
    n: u64,
    threads: u32,
    isa: IsaExt,
) -> KernelProfile {
    let ops = kernel.op_counts(n);
    KernelProfile::named(kernel.name())
        .with_threads(threads)
        .with_flops(isa, Precision::F64, ops.flops)
        .with_mem(ops.load_elems, ops.store_elems, isa)
        .with_working_set(ops.working_set_bytes)
}

/// Stream-kernel profile with an explicit cache-level residency, used by
/// the Fig. 9 live-CARM study (Triad sized beyond L1, DDOT within it).
pub fn stream_kernel_profile_at_level(
    kernel: StreamKernel,
    n: u64,
    threads: u32,
    isa: IsaExt,
    level: u8,
) -> KernelProfile {
    let locality = match level {
        1 => LocalityProfile::new(1.0, 0.0, 0.0, 0.0),
        2 => LocalityProfile::new(0.0, 1.0, 0.0, 0.0),
        3 => LocalityProfile::new(0.0, 0.0, 1.0, 0.0),
        _ => LocalityProfile::streaming(),
    };
    stream_kernel_profile(kernel, n, threads, isa).with_locality(locality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::ExecModel;
    use pmove_spmv::reorder::Reordering;
    use pmove_spmv::suite::SuiteMatrix;

    fn csl() -> MachineSpec {
        MachineSpec::csl()
    }

    #[test]
    fn mkl_uses_widest_isa_merge_uses_scalar() {
        let a = SuiteMatrix::Hugetrace00020.generate(0.2);
        let mkl = spmv_profile(&a, SpmvAlgorithm::Mkl, &csl(), 28, 1);
        let merge = spmv_profile(&a, SpmvAlgorithm::Merge, &csl(), 28, 1);
        assert!(mkl.flops_with_isa(IsaExt::Avx512) > 0);
        assert_eq!(mkl.flops_with_isa(IsaExt::Scalar), 0);
        assert!(merge.flops_with_isa(IsaExt::Scalar) > 0);
        assert_eq!(merge.flops_with_isa(IsaExt::Avx512), 0);
        // Merge performs more memory operations (path bookkeeping).
        assert!(merge.load_elems > mkl.load_elems);
        // But the same FP work.
        assert_eq!(mkl.total_flops(), merge.total_flops());
    }

    #[test]
    fn mkl_beats_merge_on_the_machine() {
        // The Fig. 8 headline: MKL SpMV provides higher performance.
        let a = SuiteMatrix::Hugetrace00020.generate(2.0);
        let model = ExecModel::new(csl());
        let mkl = model.run(&spmv_profile(&a, SpmvAlgorithm::Mkl, &csl(), 28, 100), 0.0);
        let merge = model.run(
            &spmv_profile(&a, SpmvAlgorithm::Merge, &csl(), 28, 100),
            0.0,
        );
        assert!(
            mkl.gflops() > merge.gflops() * 1.1,
            "mkl {} vs merge {}",
            mkl.gflops(),
            merge.gflops()
        );
    }

    #[test]
    fn rcm_reordering_speeds_up_spmv() {
        // The Fig. 7/8 headline: RCM improves data locality and runtime.
        let a = SuiteMatrix::Hugetrace00020.generate(2.0);
        let r = Reordering::Rcm.apply(&a);
        let model = ExecModel::new(csl());
        let orig = model.run(&spmv_profile(&a, SpmvAlgorithm::Mkl, &csl(), 28, 100), 0.0);
        let rcm = model.run(&spmv_profile(&r, SpmvAlgorithm::Mkl, &csl(), 28, 100), 0.0);
        assert!(
            rcm.duration_s < orig.duration_s * 0.95,
            "rcm {} vs orig {}",
            rcm.duration_s,
            orig.duration_s
        );
        // Locality visibly improved.
        assert!(rcm.locality.dram < orig.locality.dram);
    }

    #[test]
    fn stream_profiles_keep_analytic_ai() {
        let p = stream_kernel_profile(StreamKernel::Ddot, 1 << 16, 4, IsaExt::Avx2);
        assert!((p.arithmetic_intensity() - 0.125).abs() < 1e-12);
        let p = stream_kernel_profile(StreamKernel::Peakflops, 1 << 16, 4, IsaExt::Avx512);
        assert!((p.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn level_pinned_profiles_behave_like_fig9() {
        let model = ExecModel::new(csl());
        // DDOT from L1 surpasses the L2 roof at its AI. Large op counts
        // (likwid repeats the stream) amortize the launch overhead.
        let ddot = model.run(
            &stream_kernel_profile_at_level(StreamKernel::Ddot, 1 << 31, 28, IsaExt::Avx512, 1),
            0.0,
        );
        let l2_bw = csl().level_bandwidth(2, 28);
        let l2_roof_at_ai = 0.125 * l2_bw / 1e9;
        assert!(
            ddot.gflops() > l2_roof_at_ai,
            "ddot {} vs L2 roof {}",
            ddot.gflops(),
            l2_roof_at_ai
        );
        // Triad from L2 cannot surpass the L2 roof at its AI.
        let triad = model.run(
            &stream_kernel_profile_at_level(StreamKernel::Triad, 1 << 31, 28, IsaExt::Avx512, 2),
            0.0,
        );
        let triad_roof = 0.0625 * l2_bw / 1e9;
        assert!(triad.gflops() <= triad_roof * 1.01);
    }
}
