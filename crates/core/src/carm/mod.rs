//! Cache-Aware Roofline Model (§IV-B).

pub mod live;
pub mod microbench;
pub mod model;
pub mod plot;

pub use live::{LiveCarm, LiveCarmPoint};
pub use model::{CarmModel, FpPeak, MemRoof};
