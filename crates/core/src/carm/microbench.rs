//! CARM microbenchmarks (§IV-B-1).
//!
//! A set of micro-kernels assesses the realistically attainable maximums
//! of a system: sustainable bandwidth per memory level (working sets
//! auto-sized to the probed cache capacities) and peak FP throughput per
//! ISA extension. Cycles come from the virtual TSC; results are cached in
//! the KB so the plot can be re-constructed without re-running.

use crate::carm::model::{CarmModel, FpPeak, MemRoof};
use pmove_hwsim::clock::VirtualClock;
use pmove_hwsim::kernel_profile::{KernelProfile, LocalityProfile, Precision};
use pmove_hwsim::{ExecModel, Machine};

/// The representative thread counts P-MoVE benchmarks instead of the full
/// combinatorial sweep: 1, half socket, one socket, all cores, all
/// threads (deduplicated, sorted).
pub fn representative_thread_counts(machine: &Machine) -> Vec<u32> {
    let spec = &machine.spec;
    let mut v = vec![
        1,
        spec.cores_per_socket / 2,
        spec.cores_per_socket,
        spec.total_cores(),
        spec.total_threads(),
    ];
    v.retain(|&t| t >= 1);
    v.sort_unstable();
    v.dedup();
    v
}

/// Working-set bytes that exercise exactly one memory level.
fn working_set_for_level(machine: &Machine, level: u8, threads: u32) -> u64 {
    let spec = &machine.spec;
    let per_core = |kb: u32| kb as u64 * 1024;
    match level {
        // Half the cache: safely resident.
        1 => per_core(spec.l1_kb) / 2,
        2 => per_core(spec.l2_kb) / 2,
        3 => (spec.l3_kb as u64 * 1024) / 2,
        // 4× L3: forced to stream from DRAM.
        4 => (spec.l3_kb as u64 * 1024) * 4 * (threads as u64).max(1),
        _ => panic!("level must be 1..=4"),
    }
}

/// Measure the sustainable bandwidth of one memory level with a pure
/// load/store streaming kernel, timed by the TSC.
pub fn measure_level_bandwidth(machine: &Machine, level: u8, threads: u32) -> f64 {
    let model = ExecModel::new(machine.spec.clone());
    // Large enough to amortize the fixed launch overhead at any thread
    // count (the microbenchmarks stream gigabytes, like the real ones).
    let elems: u64 = 1 << 31;
    let locality = match level {
        1 => LocalityProfile::new(1.0, 0.0, 0.0, 0.0),
        2 => LocalityProfile::new(0.0, 1.0, 0.0, 0.0),
        3 => LocalityProfile::new(0.0, 0.0, 1.0, 0.0),
        _ => LocalityProfile::new(0.0, 0.0, 0.0, 1.0),
    };
    let profile = KernelProfile::named(format!("carm_bw_l{level}"))
        .with_threads(threads)
        .with_mem(elems, elems / 2, machine.spec.arch.widest_isa())
        .with_working_set(working_set_for_level(machine, level, threads))
        .with_locality(locality);
    // TSC-based timing: cycles elapsed over the run / frequency.
    let mut clock = VirtualClock::for_freq_ghz(machine.spec.freq_ghz);
    let exec = model.run(&profile, 0.0);
    clock.advance_secs(exec.duration_s);
    let seconds = clock.cycles_to_secs(clock.rdtsc());
    profile.total_bytes() as f64 / seconds
}

/// Measure the peak FP throughput of one ISA extension.
pub fn measure_peak_gflops(
    machine: &Machine,
    isa: pmove_hwsim::vendor::IsaExt,
    threads: u32,
) -> f64 {
    let model = ExecModel::new(machine.spec.clone());
    let flops: u64 = 1 << 36;
    let profile = KernelProfile::named(format!("carm_peak_{}", isa.label()))
        .with_threads(threads)
        .with_flops(isa, Precision::F64, flops)
        .with_mem(1 << 12, 0, isa)
        .with_working_set(8 << 10)
        .with_locality(LocalityProfile::l1_resident());
    let exec = model.run(&profile, 0.0);
    flops as f64 / exec.duration_s / 1e9
}

/// Construct CARMs for every representative thread count and cache all of
/// them in the KB as one `BenchmarkInterface` per count — "the KB is also
/// used to store all the microbenchmarking results for each tested
/// system, thus allowing for a re-construction of the CARM plot without
/// the need to re-run all the microbenchmarks" (§IV-B-1).
pub fn construct_carm_sweep(
    machine: &Machine,
    kb: &mut crate::kb::KnowledgeBase,
    ids: &mut crate::ids::IdFactory,
) -> Vec<CarmModel> {
    representative_thread_counts(machine)
        .into_iter()
        .map(|threads| {
            let carm = construct_carm(machine, threads);
            kb.append_benchmark(crate::kb::observation::BenchmarkInterface {
                id: ids.next_id(),
                machine: machine.key().to_string(),
                benchmark: format!("carm_t{threads}"),
                compiler: "gcc".into(),
                results: carm.to_results(),
            });
            carm
        })
        .collect()
}

/// Reconstruct a previously measured CARM from the KB without re-running
/// the microbenchmarks.
pub fn carm_from_kb(kb: &crate::kb::KnowledgeBase, threads: u32) -> Option<CarmModel> {
    kb.benchmarks
        .iter()
        .find(|b| b.benchmark == format!("carm_t{threads}"))
        .and_then(|b| CarmModel::from_results(&kb.machine_key, &b.results))
}

/// Construct the full CARM for a machine at one thread count. The KB
/// supplies cache sizes and available ISAs (auto-configuration of §IV-B).
pub fn construct_carm(machine: &Machine, threads: u32) -> CarmModel {
    let levels = [(1u8, "L1"), (2, "L2"), (3, "L3"), (4, "DRAM")];
    let roofs = levels
        .iter()
        .map(|&(level, name)| MemRoof {
            level: name.to_string(),
            bandwidth_bps: measure_level_bandwidth(machine, level, threads),
        })
        .collect();
    let peaks = machine
        .spec
        .arch
        .isa_extensions()
        .iter()
        .map(|&isa| FpPeak {
            isa: isa.label().to_string(),
            gflops: measure_peak_gflops(machine, isa, threads),
        })
        .collect();
    CarmModel {
        machine: machine.key().to_string(),
        threads,
        roofs,
        peaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::vendor::IsaExt;

    fn csl() -> Machine {
        Machine::preset("csl").unwrap()
    }

    #[test]
    fn thread_subsets_are_representative() {
        let skx = Machine::preset("skx").unwrap();
        let t = representative_thread_counts(&skx);
        assert_eq!(t, vec![1, 11, 22, 44, 88]);
        let icl = Machine::preset("icl").unwrap();
        assert_eq!(representative_thread_counts(&icl), vec![1, 4, 8, 16]);
    }

    #[test]
    fn roofs_are_ordered_l1_to_dram() {
        let m = csl();
        let carm = construct_carm(&m, 28);
        assert_eq!(carm.roofs.len(), 4);
        for w in carm.roofs.windows(2) {
            assert!(
                w[0].bandwidth_bps > w[1].bandwidth_bps,
                "{} !> {}",
                w[0].level,
                w[1].level
            );
        }
        // DRAM roof ≈ machine DRAM bandwidth.
        let dram = carm.bandwidth("DRAM").unwrap();
        assert!((dram / m.spec.dram_bw_total() - 1.0).abs() < 0.15);
    }

    #[test]
    fn peaks_scale_with_isa_width() {
        let m = csl();
        let carm = construct_carm(&m, 28);
        let peak = |isa: &str| carm.peaks.iter().find(|p| p.isa == isa).unwrap().gflops;
        assert!(peak("avx512") > 7.0 * peak("scalar"));
        assert!(peak("avx2") > 1.9 * peak("sse"));
        // Near the theoretical machine peak.
        let theory = m.spec.peak_gflops_f64(IsaExt::Avx512, 28);
        assert!((peak("avx512") / theory - 1.0).abs() < 0.1);
    }

    #[test]
    fn zen3_has_no_avx512_peak() {
        let m = Machine::preset("zen3").unwrap();
        let carm = construct_carm(&m, 16);
        assert!(carm.peaks.iter().all(|p| p.isa != "avx512"));
        assert_eq!(carm.peaks.len(), 3);
    }

    #[test]
    fn bandwidth_grows_with_threads() {
        let m = csl();
        let one = measure_level_bandwidth(&m, 1, 1);
        let many = measure_level_bandwidth(&m, 1, 28);
        assert!(many > 10.0 * one);
    }

    #[test]
    fn carm_roundtrips_through_kb_results() {
        let m = csl();
        let carm = construct_carm(&m, 28);
        let results = carm.to_results();
        let back = CarmModel::from_results("csl", &results).unwrap();
        assert_eq!(back, carm);
    }

    #[test]
    fn sweep_caches_every_thread_count_in_the_kb() {
        let m = csl();
        let mut kb = crate::kb::KnowledgeBase::new("csl", "csl");
        let mut ids = crate::ids::IdFactory::new("carm");
        let models = construct_carm_sweep(&m, &mut kb, &mut ids);
        let expected = representative_thread_counts(&m);
        assert_eq!(models.len(), expected.len());
        assert_eq!(kb.benchmarks.len(), expected.len());
        // Reconstruction without re-running matches the measured model.
        for (threads, model) in expected.iter().zip(&models) {
            let back = carm_from_kb(&kb, *threads).expect("cached");
            assert_eq!(&back, model);
        }
        assert!(carm_from_kb(&kb, 999).is_none());
        // L1 bandwidth never shrinks with more threads, and scales up
        // strongly from 1 thread to all cores (SMT adds no L1 ports, so
        // the last step may be flat).
        let l1: Vec<f64> = models.iter().map(|m| m.bandwidth("L1").unwrap()).collect();
        assert!(l1.windows(2).all(|w| w[0] <= w[1]), "{l1:?}");
        assert!(l1.last().unwrap() > &(l1[0] * 10.0));
    }
}
