//! CARM plot data and text rendering (the live-CARM panel's display).
//!
//! Produces the log-log series Fig. 8/9 draw — one line per memory roof,
//! the top compute roof, and the application's live points — plus an
//! ASCII rendering for terminal examples.

use crate::carm::live::LiveCarmPoint;
use crate::carm::model::CarmModel;

/// A polyline in (AI, GFLOP/s) space.
#[derive(Debug, Clone, PartialEq)]
pub struct RoofSeries {
    /// Roof label (`L1`, `DRAM`, `peak avx512`).
    pub label: String,
    /// Points along the roof, AI ascending.
    pub points: Vec<(f64, f64)>,
}

/// Sample every roof over `[ai_min, ai_max]` (log-spaced, `n` samples).
pub fn roof_series(model: &CarmModel, ai_min: f64, ai_max: f64, n: usize) -> Vec<RoofSeries> {
    assert!(ai_min > 0.0 && ai_max > ai_min && n >= 2, "bad plot range");
    let ais: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            (ai_min.ln() * (1.0 - t) + ai_max.ln() * t).exp()
        })
        .collect();
    let mut out = Vec::new();
    for roof in &model.roofs {
        out.push(RoofSeries {
            label: roof.level.clone(),
            points: ais
                .iter()
                .map(|&ai| (ai, (ai * roof.bandwidth_bps / 1e9).min(model.peak_gflops())))
                .collect(),
        });
    }
    for peak in &model.peaks {
        out.push(RoofSeries {
            label: format!("peak {}", peak.isa),
            points: ais.iter().map(|&ai| (ai, peak.gflops)).collect(),
        });
    }
    out
}

/// ASCII rendering of the CARM with application points overlaid.
/// Both axes are logarithmic; application points render as `●`, roofs as
/// level initials.
pub fn render(model: &CarmModel, points: &[LiveCarmPoint], width: usize, height: usize) -> String {
    let ai_min: f64 = 0.01;
    let ai_max: f64 = 64.0;
    let gf_min: f64 = 0.1;
    let gf_max = model.peak_gflops() * 2.0;
    let x_of = |ai: f64| {
        ((ai.max(ai_min).ln() - ai_min.ln()) / (ai_max.ln() - ai_min.ln()) * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let y_of = |gf: f64| {
        let norm = (gf.max(gf_min).ln() - gf_min.ln()) / (gf_max.ln() - gf_min.ln());
        ((1.0 - norm) * (height - 1) as f64)
            .round()
            .clamp(0.0, (height - 1) as f64) as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    for series in roof_series(model, ai_min, ai_max, width * 2) {
        let marker = series.label.chars().next().unwrap_or('-');
        for (ai, gf) in series.points {
            if gf >= gf_min {
                grid[y_of(gf)][x_of(ai)] = marker.to_ascii_lowercase();
            }
        }
    }
    for p in points {
        if p.gflops >= gf_min && p.ai >= ai_min {
            grid[y_of(p.gflops)][x_of(p.ai)] = '●';
        }
    }

    let mut out = format!(
        "live-CARM: {} ({} threads) — peak {:.0} GF/s\n",
        model.machine,
        model.threads,
        model.peak_gflops()
    );
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "+ AI {ai_min} .. {ai_max} flops/byte (log) — roofs: {}\n",
        model
            .roofs
            .iter()
            .map(|r| r.level.clone())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carm::model::{FpPeak, MemRoof};

    fn model() -> CarmModel {
        CarmModel {
            machine: "csl".into(),
            threads: 28,
            roofs: vec![
                MemRoof {
                    level: "L1".into(),
                    bandwidth_bps: 9.0e12,
                },
                MemRoof {
                    level: "DRAM".into(),
                    bandwidth_bps: 1.2e11,
                },
            ],
            peaks: vec![FpPeak {
                isa: "avx512".into(),
                gflops: 2400.0,
            }],
        }
    }

    #[test]
    fn series_are_monotone_and_capped() {
        let s = roof_series(&model(), 0.01, 100.0, 50);
        assert_eq!(s.len(), 3); // 2 roofs + 1 peak
        let l1 = &s[0];
        for w in l1.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "roof must be non-decreasing");
        }
        // Capped at peak.
        assert!(l1.points.iter().all(|&(_, gf)| gf <= 2400.0));
        assert_eq!(l1.points.len(), 50);
        // Peak line is flat.
        let peak = &s[2];
        assert!(peak.points.iter().all(|&(_, gf)| gf == 2400.0));
    }

    #[test]
    fn render_contains_roofs_and_points() {
        let pts = vec![LiveCarmPoint {
            t_s: 1.0,
            ai: 0.125,
            gflops: 10.0,
        }];
        let out = render(&model(), &pts, 60, 20);
        assert!(out.contains('●'), "application point missing:\n{out}");
        assert!(out.contains('l') || out.contains('d'), "roofs missing");
        assert!(out.contains("peak 2400"));
        assert_eq!(out.lines().count(), 22); // title + 20 rows + axis
    }

    #[test]
    #[should_panic(expected = "bad plot range")]
    fn bad_range_panics() {
        roof_series(&model(), 1.0, 0.5, 10);
    }
}
