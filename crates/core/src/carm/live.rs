//! The live-CARM panel (§IV-B-2).
//!
//! PMU events are sampled on a time-stamp basis and converted into live
//! Arithmetic Intensity and GFLOP/s through abstraction-layer formulas,
//! then plotted against the constructed CARM in real time. The byte
//! volume is inferred from the ratio of FP instruction widths applied to
//! the measured load/store counts on Intel; AMD's `LS_DISPATCH` counts
//! are 8 bytes each.

use crate::abstraction::AbstractionLayer;
use crate::error::PmoveError;
use pmove_tsdb::Database;

/// One live point on the CARM plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveCarmPoint {
    /// Window end time (virtual seconds).
    pub t_s: f64,
    /// Arithmetic intensity (flops/byte) of the window.
    pub ai: f64,
    /// Achieved GFLOP/s of the window.
    pub gflops: f64,
}

/// Live-CARM computation engine for one (machine, PMU) pair.
pub struct LiveCarm<'a> {
    layer: &'a AbstractionLayer,
    pmu: String,
}

impl<'a> LiveCarm<'a> {
    /// Engine for a PMU.
    pub fn new(layer: &'a AbstractionLayer, pmu: impl Into<String>) -> Self {
        LiveCarm {
            layer,
            pmu: pmu.into(),
        }
    }

    /// Average bytes per memory instruction for the window, inferred from
    /// the FP-width mix (§IV-B-2). `resolve` returns summed HW event
    /// counts for the window.
    pub fn bytes_per_mem_op<F>(&self, mut resolve: F) -> f64
    where
        F: FnMut(&str) -> Option<f64>,
    {
        if self.pmu == "zen3" {
            // AMD: LS_DISPATCH operations are counted per element (8 B).
            return 8.0;
        }
        // Intel: weight vector widths by their FP instruction counts.
        let widths = [
            ("FP_ARITH:SCALAR_DOUBLE", 8.0),
            ("FP_ARITH:128B_PACKED_DOUBLE", 16.0),
            ("FP_ARITH:256B_PACKED_DOUBLE", 32.0),
            ("FP_ARITH:512B_PACKED_DOUBLE", 64.0),
        ];
        let mut total_instr = 0.0;
        let mut weighted = 0.0;
        for (ev, w) in widths {
            let c = resolve(ev).unwrap_or(0.0);
            total_instr += c;
            weighted += c * w;
        }
        if total_instr <= 0.0 {
            8.0 // no FP retired in the window: assume scalar traffic
        } else {
            weighted / total_instr
        }
    }

    /// Compute one live point from windowed HW-event sums.
    pub fn point<F>(
        &self,
        t_s: f64,
        window_s: f64,
        mut resolve: F,
    ) -> Result<LiveCarmPoint, PmoveError>
    where
        F: FnMut(&str) -> Option<f64>,
    {
        let flops = self
            .layer
            .evaluate(&self.pmu, "TOTAL_DP_FLOPS", &mut resolve)?;
        let mem_ops = self
            .layer
            .evaluate(&self.pmu, "TOTAL_MEMORY_OPERATIONS", &mut resolve)?;
        let bytes = mem_ops * self.bytes_per_mem_op(&mut resolve);
        let gflops = flops / window_s.max(1e-12) / 1e9;
        let ai = if bytes > 0.0 { flops / bytes } else { 0.0 };
        Ok(LiveCarmPoint { t_s, ai, gflops })
    }

    /// Pull windowed sums for an observation out of the time-series DB and
    /// produce the live trajectory. `window_s` is the panel's refresh
    /// period; timestamps in the DB are nanoseconds.
    pub fn trajectory(
        &self,
        ts: &Database,
        obs_id: &str,
        window_s: f64,
    ) -> Result<Vec<LiveCarmPoint>, PmoveError> {
        let bucket_ns = (window_s * 1e9) as i64;
        // Gather per-bucket sums for every HW event either formula needs.
        let mut events: Vec<String> = Vec::new();
        for generic in ["TOTAL_DP_FLOPS", "TOTAL_MEMORY_OPERATIONS"] {
            for e in self.layer.required_hw_events(&self.pmu, generic)? {
                if !events.contains(&e) {
                    events.push(e);
                }
            }
        }
        if self.pmu != "zen3" {
            for e in [
                "FP_ARITH:SCALAR_DOUBLE",
                "FP_ARITH:128B_PACKED_DOUBLE",
                "FP_ARITH:256B_PACKED_DOUBLE",
                "FP_ARITH:512B_PACKED_DOUBLE",
            ] {
                if !events.contains(&e.to_string()) {
                    events.push(e.to_string());
                }
            }
        }

        use pmove_tsdb::aggregate::AggregateFn;
        use pmove_tsdb::query::Projection;
        use pmove_tsdb::Query;
        use std::collections::BTreeMap;
        let tag_filters = vec![("tag".to_string(), obs_id.to_string())];
        let mut buckets: BTreeMap<i64, BTreeMap<String, f64>> = BTreeMap::new();
        for event in &events {
            let measurement = format!("perfevent_hwcounters_{}", event.replace([':', '.'], "_"));
            // Discover the fields, then aggregate each with a per-bucket
            // sum and add the fields together. Structured queries go
            // straight to the planner (and share the engine's result
            // cache) instead of round-tripping through the parser.
            let discover = Query {
                projections: vec![Projection::Wildcard],
                measurement: measurement.clone(),
                tag_filters: tag_filters.clone(),
                time_start: None,
                time_end: None,
                group_by_time: None,
            };
            let Ok(fields) = ts.query_parsed(&discover).map(|r| r.columns) else {
                continue;
            };
            for field in fields {
                let q = Query {
                    projections: vec![Projection::Aggregate(AggregateFn::Sum, field.clone())],
                    measurement: measurement.clone(),
                    tag_filters: tag_filters.clone(),
                    time_start: None,
                    time_end: None,
                    group_by_time: Some(bucket_ns),
                };
                if let Ok(r) = ts.query_parsed(&q) {
                    for row in r.rows {
                        if let Some(Some(v)) = row.values.values().next() {
                            *buckets
                                .entry(row.timestamp)
                                .or_default()
                                .entry(event.clone())
                                .or_insert(0.0) += v;
                        }
                    }
                }
            }
        }

        let mut points = Vec::with_capacity(buckets.len());
        for (bucket_start, sums) in buckets {
            let t_s = (bucket_start + bucket_ns) as f64 / 1e9;
            let p = self.point(t_s, window_s, |e| sums.get(e).copied())?;
            points.push(p);
        }
        Ok(points)
    }
}

/// Streaming live-CARM: consumes points as the database publishes them
/// (the real-time path of the panel — no polling, no queries).
///
/// Subscribe before the run starts, feed [`LiveCarmStream::drain`]
/// periodically, and it emits one [`LiveCarmPoint`] per completed window.
pub struct LiveCarmStream<'a> {
    engine: LiveCarm<'a>,
    rx: crossbeam::channel::Receiver<pmove_tsdb::Point>,
    window_ns: i64,
    current_window: Option<i64>,
    sums: std::collections::BTreeMap<String, f64>,
    emitted: Vec<LiveCarmPoint>,
}

impl<'a> LiveCarmStream<'a> {
    /// Attach to a database: subscribes to all `perfevent_hwcounters_*`
    /// measurements tagged with `obs_id`.
    pub fn attach(
        layer: &'a AbstractionLayer,
        pmu: impl Into<String>,
        db: &Database,
        obs_id: &str,
        window_s: f64,
    ) -> Self {
        let sub = pmove_tsdb::subscribe::Subscription::measurement("perfevent_hwcounters_")
            .with_tag("tag", obs_id);
        LiveCarmStream {
            engine: LiveCarm::new(layer, pmu),
            rx: db.subscribe(sub),
            window_ns: (window_s * 1e9) as i64,
            current_window: None,
            sums: Default::default(),
            emitted: Vec::new(),
        }
    }

    fn event_of(measurement: &str) -> Option<String> {
        measurement
            .strip_prefix("perfevent_hwcounters_")
            .map(str::to_string)
    }

    fn flush_window(&mut self, window: i64) -> Option<LiveCarmPoint> {
        let sums = std::mem::take(&mut self.sums);
        if sums.is_empty() {
            return None;
        }
        let t_s = ((window + 1) * self.window_ns) as f64 / 1e9;
        let window_s = self.window_ns as f64 / 1e9;
        self.engine
            .point(t_s, window_s, |e| {
                // Measurement names flatten ':' to '_'; match flattened.
                sums.get(&e.replace([':', '.'], "_")).copied()
            })
            .ok()
    }

    /// Drain all pending published points; returns newly completed
    /// windows' live points.
    pub fn drain(&mut self) -> Vec<LiveCarmPoint> {
        let mut fresh = Vec::new();
        while let Ok(p) = self.rx.try_recv() {
            let Some(event) = Self::event_of(&p.measurement) else {
                continue;
            };
            let w = p.timestamp.div_euclid(self.window_ns);
            if let Some(cur) = self.current_window {
                if w != cur {
                    if let Some(point) = self.flush_window(cur) {
                        fresh.push(point);
                    }
                    self.current_window = Some(w);
                }
            } else {
                self.current_window = Some(w);
            }
            let total: f64 = p.fields.values().filter_map(|v| v.as_f64()).sum();
            *self.sums.entry(event).or_insert(0.0) += total;
        }
        self.emitted.extend(fresh.iter().copied());
        fresh
    }

    /// Flush the trailing partial window and return the complete
    /// trajectory (call once the run has halted).
    pub fn finish(mut self) -> Vec<LiveCarmPoint> {
        self.drain();
        if let Some(cur) = self.current_window.take() {
            if let Some(point) = self.flush_window(cur) {
                self.emitted.push(point);
            }
        }
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::presets::builtin_layer;

    #[test]
    fn intel_byte_width_inference() {
        let layer = builtin_layer();
        let lc = LiveCarm::new(&layer, "csl");
        // Pure AVX-512 mix → 64 B per memory op.
        let w = lc.bytes_per_mem_op(|e| (e == "FP_ARITH:512B_PACKED_DOUBLE").then_some(100.0));
        assert_eq!(w, 64.0);
        // Pure scalar → 8 B.
        let w = lc.bytes_per_mem_op(|e| (e == "FP_ARITH:SCALAR_DOUBLE").then_some(10.0));
        assert_eq!(w, 8.0);
        // 50/50 scalar/avx512 instructions → (8+64)/2 = 36 B.
        let w = lc.bytes_per_mem_op(|e| match e {
            "FP_ARITH:SCALAR_DOUBLE" | "FP_ARITH:512B_PACKED_DOUBLE" => Some(50.0),
            _ => None,
        });
        assert_eq!(w, 36.0);
        // No FP: scalar fallback.
        assert_eq!(lc.bytes_per_mem_op(|_| None), 8.0);
    }

    #[test]
    fn amd_uses_fixed_width() {
        let layer = builtin_layer();
        let lc = LiveCarm::new(&layer, "zen3");
        assert_eq!(lc.bytes_per_mem_op(|_| Some(1e9)), 8.0);
    }

    #[test]
    fn point_computation_matches_hand_calculation() {
        let layer = builtin_layer();
        let lc = LiveCarm::new(&layer, "csl");
        // Window: 1e9 AVX-512 FP instr (→ 8e9 flops), 1e9 loads+stores of
        // 64 B each → AI = 8e9 / 64e9 = 0.125; over 1 s → 8 GF/s.
        let p = lc
            .point(1.0, 1.0, |e| {
                Some(match e {
                    "FP_ARITH:512B_PACKED_DOUBLE" => 1e9,
                    "MEM_INST_RETIRED:ALL_LOADS" => 0.75e9,
                    "MEM_INST_RETIRED:ALL_STORES" => 0.25e9,
                    _ => 0.0,
                })
            })
            .unwrap();
        assert!((p.gflops - 8.0).abs() < 1e-9);
        assert!((p.ai - 0.125).abs() < 1e-12);
    }

    #[test]
    fn zen3_point_uses_merged_flops() {
        let layer = builtin_layer();
        let lc = LiveCarm::new(&layer, "zen3");
        let p = lc
            .point(1.0, 2.0, |e| {
                Some(match e {
                    "RETIRED_SSE_AVX_FLOPS:ANY" => 4e9,
                    "LS_DISPATCH:LD_DISPATCH" => 1.5e9,
                    "LS_DISPATCH:STORE_DISPATCH" => 0.5e9,
                    _ => 0.0,
                })
            })
            .unwrap();
        // 4e9 flops / 2 s = 2 GF/s; bytes = 2e9 × 8 = 16e9 → AI 0.25.
        assert!((p.gflops - 2.0).abs() < 1e-9);
        assert!((p.ai - 0.25).abs() < 1e-12);
    }

    #[test]
    fn streaming_panel_matches_query_trajectory() {
        // Run a Scenario-B profile while a LiveCarmStream is subscribed;
        // the streamed points must match the after-the-fact query-based
        // trajectory.
        use crate::profiles::stream_kernel_profile;
        use crate::telemetry::pinning::PinningStrategy;
        use crate::telemetry::scenario_b::ProfileRequest;
        use pmove_hwsim::vendor::IsaExt;
        use pmove_kernels::StreamKernel;

        let mut d = crate::PMoveDaemon::for_preset("csl").unwrap();
        let layer = d.layer.clone();
        // The observation id is deterministic: first id of this factory.
        let obs_id = crate::ids::IdFactory::new("csl").next_id();
        let stream = LiveCarmStream::attach(&layer, "csl", &d.ts, &obs_id, 0.5);

        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Triad, 1 << 36, 28, IsaExt::Avx512),
            command: "triad".into(),
            generic_events: vec!["TOTAL_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::Compact,
        };
        let outcome = d.profile(&request).unwrap();
        assert_eq!(outcome.observation.id, obs_id, "deterministic ids");

        let streamed = stream.finish();
        assert!(!streamed.is_empty());
        let queried = LiveCarm::new(&layer, "csl")
            .trajectory(&d.ts, &obs_id, 0.5)
            .unwrap();
        assert_eq!(streamed.len(), queried.len());
        for (s, q) in streamed.iter().zip(&queried) {
            assert!((s.ai - q.ai).abs() < 1e-9, "{s:?} vs {q:?}");
            assert!((s.gflops - q.gflops).abs() < 1e-6);
        }
        // Triad AI ≈ 0.0625 shows up live.
        let mid = &streamed[streamed.len() / 2];
        assert!((mid.ai - 0.0625).abs() < 0.01, "ai {}", mid.ai);
    }

    #[test]
    fn stream_ignores_unrelated_measurements() {
        let layer = builtin_layer();
        let db = Database::new("t");
        let mut stream = LiveCarmStream::attach(&layer, "csl", &db, "obs-x", 1.0);
        // Unrelated measurement and wrong tag: no points.
        db.write_point(
            pmove_tsdb::Point::new("kernel_all_load")
                .tag("tag", "obs-x")
                .field("value", 1.0)
                .timestamp(0),
        )
        .unwrap();
        db.write_point(
            pmove_tsdb::Point::new("perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE")
                .tag("tag", "other")
                .field("_cpu0", 5.0)
                .timestamp(0),
        )
        .unwrap();
        assert!(stream.drain().is_empty());
        assert!(stream.finish().is_empty());
    }

    #[test]
    fn zero_window_and_zero_bytes_are_safe() {
        let layer = builtin_layer();
        let lc = LiveCarm::new(&layer, "csl");
        let p = lc.point(0.0, 0.0, |_| Some(0.0)).unwrap();
        assert_eq!(p.ai, 0.0);
        assert!(p.gflops.is_finite() || p.gflops == 0.0);
    }
}
