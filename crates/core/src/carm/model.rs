//! The CARM model: per-memory-level bandwidth roofs and per-ISA compute
//! peaks, with attainability queries.
//!
//! CARM characterizes the entire system by considering all memory levels
//! (the reason the paper picks it over the classic DRAM-only roofline):
//! for arithmetic intensity `ai`, the attainable performance under the
//! roof of level L is `min(peak_flops, ai × bandwidth_L)`.

use serde::{Deserialize, Serialize};

/// One memory-level roof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemRoof {
    /// Level name (`L1`, `L2`, `L3`, `DRAM`).
    pub level: String,
    /// Sustainable bandwidth in bytes/s at the model's thread count.
    pub bandwidth_bps: f64,
}

/// One compute peak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpPeak {
    /// ISA label (`scalar`, `sse`, `avx2`, `avx512`).
    pub isa: String,
    /// Peak double-precision GFLOP/s.
    pub gflops: f64,
}

/// A constructed CARM for one machine at one thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarmModel {
    /// Machine key.
    pub machine: String,
    /// Thread count the model was measured with.
    pub threads: u32,
    /// Memory roofs, innermost (fastest) first.
    pub roofs: Vec<MemRoof>,
    /// Compute peaks, narrowest ISA first.
    pub peaks: Vec<FpPeak>,
}

impl CarmModel {
    /// The top compute peak (widest ISA).
    pub fn peak_gflops(&self) -> f64 {
        self.peaks.iter().map(|p| p.gflops).fold(0.0, f64::max)
    }

    /// Bandwidth of a named level.
    pub fn bandwidth(&self, level: &str) -> Option<f64> {
        self.roofs
            .iter()
            .find(|r| r.level == level)
            .map(|r| r.bandwidth_bps)
    }

    /// Attainable GFLOP/s at intensity `ai` (flops/byte) when data is
    /// served from `level`.
    pub fn attainable(&self, ai: f64, level: &str) -> Option<f64> {
        let bw = self.bandwidth(level)?;
        Some((ai * bw / 1e9).min(self.peak_gflops()))
    }

    /// The ridge point of a level: the AI where its bandwidth roof meets
    /// the top compute peak.
    pub fn ridge_ai(&self, level: &str) -> Option<f64> {
        let bw = self.bandwidth(level)?;
        Some(self.peak_gflops() * 1e9 / bw)
    }

    /// Which roof an application point `(ai, gflops)` sits under: the
    /// slowest level whose roof is still above the point (`None` when the
    /// point exceeds every roof, i.e. is infeasible for the model).
    pub fn bounding_level(&self, ai: f64, gflops: f64) -> Option<&str> {
        // Roofs are fastest-first: walk from the DRAM roof upward.
        for roof in self.roofs.iter().rev() {
            let att = (ai * roof.bandwidth_bps / 1e9).min(self.peak_gflops());
            if gflops <= att {
                return Some(&roof.level);
            }
        }
        None
    }

    /// Serialize for KB storage ("the KB is also used to store all the
    /// microbenchmarking results ... allowing re-construction of the CARM
    /// plot without re-running").
    pub fn to_results(&self) -> Vec<crate::kb::observation::BenchmarkResult> {
        use crate::kb::observation::BenchmarkResult;
        let mut out = Vec::new();
        for r in &self.roofs {
            out.push(BenchmarkResult {
                name: format!("bw_{}", r.level),
                value: r.bandwidth_bps,
                unit: "B/s".into(),
            });
        }
        for p in &self.peaks {
            out.push(BenchmarkResult {
                name: format!("peak_{}", p.isa),
                value: p.gflops,
                unit: "GF/s".into(),
            });
        }
        out.push(BenchmarkResult {
            name: "threads".into(),
            value: self.threads as f64,
            unit: "count".into(),
        });
        out
    }

    /// Reconstruct from KB-stored results.
    pub fn from_results(
        machine: &str,
        results: &[crate::kb::observation::BenchmarkResult],
    ) -> Option<CarmModel> {
        let mut roofs = Vec::new();
        let mut peaks = Vec::new();
        let mut threads = 0;
        for r in results {
            if let Some(level) = r.name.strip_prefix("bw_") {
                roofs.push(MemRoof {
                    level: level.to_string(),
                    bandwidth_bps: r.value,
                });
            } else if let Some(isa) = r.name.strip_prefix("peak_") {
                peaks.push(FpPeak {
                    isa: isa.to_string(),
                    gflops: r.value,
                });
            } else if r.name == "threads" {
                threads = r.value as u32;
            }
        }
        if roofs.is_empty() || peaks.is_empty() {
            return None;
        }
        Some(CarmModel {
            machine: machine.to_string(),
            threads,
            roofs,
            peaks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CarmModel {
        CarmModel {
            machine: "csl".into(),
            threads: 28,
            roofs: vec![
                MemRoof {
                    level: "L1".into(),
                    bandwidth_bps: 9.0e12,
                },
                MemRoof {
                    level: "L2".into(),
                    bandwidth_bps: 4.0e12,
                },
                MemRoof {
                    level: "L3".into(),
                    bandwidth_bps: 1.0e12,
                },
                MemRoof {
                    level: "DRAM".into(),
                    bandwidth_bps: 1.2e11,
                },
            ],
            peaks: vec![
                FpPeak {
                    isa: "scalar".into(),
                    gflops: 300.0,
                },
                FpPeak {
                    isa: "avx512".into(),
                    gflops: 2400.0,
                },
            ],
        }
    }

    #[test]
    fn attainable_follows_min_rule() {
        let m = model();
        // Low AI from DRAM: bandwidth-bound.
        assert!((m.attainable(0.1, "DRAM").unwrap() - 12.0).abs() < 1e-9);
        // High AI: compute-bound at the top peak.
        assert_eq!(m.attainable(1000.0, "DRAM").unwrap(), 2400.0);
        assert!(m.attainable(1.0, "L9").is_none());
    }

    #[test]
    fn ridge_points_order_with_bandwidth() {
        let m = model();
        let r1 = m.ridge_ai("L1").unwrap();
        let rd = m.ridge_ai("DRAM").unwrap();
        assert!(r1 < rd); // faster memory ⇒ earlier ridge
        assert!((rd - 2400.0e9 / 1.2e11).abs() < 1e-9);
    }

    #[test]
    fn bounding_level_classification() {
        let m = model();
        // Tiny performance at decent AI: even DRAM roof covers it.
        assert_eq!(m.bounding_level(1.0, 10.0), Some("DRAM"));
        // 600 GF/s at AI 1: above DRAM roof (120) and L3 roof (1000 GF/s
        // covers it) → L3.
        assert_eq!(m.bounding_level(1.0, 600.0), Some("L3"));
        // Above every roof: infeasible.
        assert_eq!(m.bounding_level(0.001, 2000.0), None);
    }

    #[test]
    fn kb_roundtrip() {
        let m = model();
        let results = m.to_results();
        let back = CarmModel::from_results("csl", &results).unwrap();
        assert_eq!(back, m);
        assert!(CarmModel::from_results("csl", &[]).is_none());
    }

    #[test]
    fn peak_is_max_over_isas() {
        assert_eq!(model().peak_gflops(), 2400.0);
    }
}
