//! The three KB views of §III-B.
//!
//! * **focus view** — one component, extensible to the whole path from the
//!   component to the root (for root-cause navigation);
//! * **subtree view** — a component and everything it contains, detail
//!   increasing toward the leaves;
//! * **level view** — all components of one type, viewable individually or
//!   in comparison (including across machines via SUPERDB).

use crate::kb::KnowledgeBase;
use pmove_jsonld::{Dtmi, Interface};

/// Focus view: the component itself.
pub fn focus<'a>(kb: &'a KnowledgeBase, id: &Dtmi) -> Option<&'a Interface> {
    kb.get(id)
}

/// Extended focus view: path from the component up to the root (component
/// → socket → node → system), for tracing and isolating anomalies.
pub fn focus_path<'a>(kb: &'a KnowledgeBase, id: &Dtmi) -> Vec<&'a Interface> {
    let mut path = Vec::new();
    let mut cur = kb.get(id);
    while let Some(iface) = cur {
        path.push(iface);
        cur = kb.parent_of(&iface.id).and_then(|p| kb.get(p));
    }
    path
}

/// Subtree view: pre-order traversal from a component to all its leaves.
pub fn subtree<'a>(kb: &'a KnowledgeBase, id: &Dtmi) -> Vec<&'a Interface> {
    let mut out = Vec::new();
    let mut stack = vec![id.clone()];
    while let Some(cur) = stack.pop() {
        if let Some(iface) = kb.get(&cur) {
            out.push(iface);
            for child in kb.children_of(&cur).iter().rev() {
                stack.push(child.clone());
            }
        }
    }
    out
}

/// Level view: every interface of one component type.
pub fn level<'a>(kb: &'a KnowledgeBase, component_type: &str) -> Vec<&'a Interface> {
    kb.of_type(component_type)
}

/// All telemetry DB measurements visible from a set of interfaces —
/// the metric selection step of automatic dashboard generation.
pub fn telemetry_measurements(interfaces: &[&Interface]) -> Vec<(String, Vec<String>)> {
    use std::collections::BTreeMap;
    let mut by_db: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for iface in interfaces {
        for t in iface.telemetry() {
            let fields = by_db.entry(t.db_name.clone()).or_default();
            if let Some(f) = &t.field_name {
                if !fields.contains(f) {
                    fields.push(f.clone());
                }
            }
        }
    }
    by_db.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::builder::build_kb;
    use crate::probe::ProbeReport;
    use pmove_hwsim::Machine;

    fn kb() -> KnowledgeBase {
        build_kb(&ProbeReport::collect(&Machine::preset("icl").unwrap())).unwrap()
    }

    #[test]
    fn focus_path_walks_to_root() {
        let kb = kb();
        let cpu = kb.by_name("cpu5").unwrap();
        let path = focus_path(&kb, &cpu.id);
        let kinds: Vec<&str> = path.iter().map(|i| i.component_type.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["thread", "core", "socket", "numanode", "system"]
        );
        assert!(focus(&kb, &cpu.id).is_some());
    }

    #[test]
    fn subtree_of_socket_contains_all_cores() {
        let kb = kb();
        let socket = kb.by_name("socket0").unwrap();
        let sub = subtree(&kb, &socket.id);
        let cores = sub.iter().filter(|i| i.component_type == "core").count();
        let threads = sub.iter().filter(|i| i.component_type == "thread").count();
        assert_eq!(cores, 8);
        assert_eq!(threads, 16);
        assert_eq!(sub[0].id, socket.id); // pre-order: root first
    }

    #[test]
    fn level_view_isolates_types() {
        let kb = kb();
        assert_eq!(level(&kb, "thread").len(), 16);
        assert_eq!(level(&kb, "l1cache").len(), 8);
        assert_eq!(level(&kb, "gpu").len(), 0);
    }

    #[test]
    fn measurement_selection_merges_fields() {
        let kb = kb();
        let threads = level(&kb, "thread");
        let ms = telemetry_measurements(&threads);
        // Per-cpu idle measurement present, with one field per thread.
        let idle = ms
            .iter()
            .find(|(db, _)| db == "kernel_percpu_cpu_idle")
            .expect("idle metric");
        assert_eq!(idle.1.len(), 16);
        // HW counters too.
        assert!(ms
            .iter()
            .any(|(db, _)| db.starts_with("perfevent_hwcounters_")));
    }

    #[test]
    fn unknown_id_yields_empty_results() {
        let kb = kb();
        let ghost = pmove_jsonld::Dtmi::parse("dtmi:dt:ghost;1").unwrap();
        assert!(focus(&kb, &ghost).is_none());
        assert!(focus_path(&kb, &ghost).is_empty());
        assert!(subtree(&kb, &ghost).is_empty());
    }
}
