//! Observation and Benchmark interfaces — the entries P-MoVE appends to
//! the KB for every performance event (paper §III-C, Listings 2 and 3).

use pmove_tsdb::aggregate::Summary;
use serde_json::{json, Value};

/// Reference to one sampled metric: the DB measurement plus the fields
/// (instances) that carry data for this observation.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRef {
    /// Measurement name in the time-series DB.
    pub db_name: String,
    /// Field names with data (`_cpu0`, `_node1`, ...).
    pub fields: Vec<String>,
}

/// An `ObservationInterface` entry: encodes sampled events, the executed
/// command, generated affinity, time, and the unique observation id that
/// tags the time-series data (Listing 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationInterface {
    /// Unique observation id (the `tag` in InfluxDB).
    pub id: String,
    /// Machine the observation ran on.
    pub machine: String,
    /// Executed command line.
    pub command: String,
    /// Pinning strategy name (`balanced`, `compact`, ...).
    pub pinning: String,
    /// OS thread indices the kernel was bound to.
    pub affinity: Vec<u32>,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual end time (seconds).
    pub end_s: f64,
    /// Sampling frequency used.
    pub freq_hz: f64,
    /// Sampled metrics.
    pub metrics: Vec<MetricRef>,
    /// Report generated on the fly before appending to the KB.
    pub report: Value,
}

impl ObservationInterface {
    /// Serialize in the Listing-2 document shape.
    pub fn to_json(&self) -> Value {
        json!({
            "@id": format!("dtmi:dt:{}:observation:{};1",
                           self.machine, self.id.replace('-', "")),
            "@type": "ObservationInterface",
            "observation": self.id,
            "machine": self.machine,
            "command": self.command,
            "pinning": self.pinning,
            "affinity": self.affinity,
            "time": {"start": self.start_s, "end": self.end_s},
            "frequency": self.freq_hz,
            "metrics": self.metrics.iter().map(|m| json!({
                "DBName": m.db_name,
                "fields": m.fields,
            })).collect::<Vec<_>>(),
            "report": self.report,
        })
    }

    /// Auto-generate the recall queries (Listing 3): one `SELECT` per
    /// metric, fields quoted, filtered by the observation tag.
    pub fn queries(&self) -> Vec<String> {
        self.metrics
            .iter()
            .map(|m| {
                let fields = m
                    .fields
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "SELECT {fields} FROM \"{}\" WHERE tag='{}'",
                    m.db_name, self.id
                )
            })
            .collect()
    }

    /// Observation duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Aggregated observation for SUPERDB (`AGGObservationInterface`,
/// paper §III-E): statistical summaries instead of raw series.
#[derive(Debug, Clone, PartialEq)]
pub struct AggObservation {
    /// Source observation id.
    pub id: String,
    /// Machine key.
    pub machine: String,
    /// Per-(metric, field) summaries.
    pub summaries: Vec<(String, String, Summary)>,
}

impl AggObservation {
    /// Serialize for the global database.
    pub fn to_json(&self) -> Value {
        json!({
            "@type": "AGGObservationInterface",
            "observation": self.id,
            "machine": self.machine,
            "summaries": self.summaries.iter().map(|(m, f, s)| json!({
                "DBName": m,
                "field": f,
                "count": s.count,
                "min": s.min,
                "max": s.max,
                "mean": s.mean,
                "stddev": s.stddev,
                "sum": s.sum,
            })).collect::<Vec<_>>(),
        })
    }
}

/// One result row of a benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    /// Metric name (`triad_bandwidth`, `hpcg_gflops`, `L1_bw_gbps`).
    pub name: String,
    /// Value.
    pub value: f64,
    /// Unit string.
    pub unit: String,
}

/// A `BenchmarkInterface` entry recording CARM/STREAM/HPCG results
/// (paper §III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkInterface {
    /// Entry id.
    pub id: String,
    /// Machine key.
    pub machine: String,
    /// Benchmark name (`carm`, `stream`, `hpcg`).
    pub benchmark: String,
    /// Compiler used on the target (`gcc`, `icc` — the paper compiles on
    /// the target when possible).
    pub compiler: String,
    /// Result rows.
    pub results: Vec<BenchmarkResult>,
}

impl BenchmarkInterface {
    /// Serialize for the KB.
    pub fn to_json(&self) -> Value {
        json!({
            "@type": "BenchmarkInterface",
            "id": self.id,
            "machine": self.machine,
            "benchmark": self.benchmark,
            "compiler": self.compiler,
            "results": self.results.iter().map(|r| json!({
                "name": r.name, "value": r.value, "unit": r.unit,
            })).collect::<Vec<_>>(),
        })
    }

    /// Look up one result by name.
    pub fn result(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> ObservationInterface {
        ObservationInterface {
            id: "278e26c2-3fd3-45e4-862b-5646dc9e7aa0".into(),
            machine: "skx".into(),
            command: "triad -n 1048576 -t 4".into(),
            pinning: "numa_balanced".into(),
            affinity: vec![0, 1, 22, 23],
            start_s: 10.0,
            end_s: 12.5,
            freq_hz: 8.0,
            metrics: vec![
                MetricRef {
                    db_name: "kernel_percpu_cpu_idle".into(),
                    fields: vec![
                        "_cpu0".into(),
                        "_cpu1".into(),
                        "_cpu22".into(),
                        "_cpu23".into(),
                    ],
                },
                MetricRef {
                    db_name: "perfevent_hwcounters_RAPL_ENERGY_PKG".into(),
                    fields: vec!["_node0".into(), "_node1".into()],
                },
            ],
            report: json!({"mean_power_w": 155.2}),
        }
    }

    #[test]
    fn queries_match_listing3_shape() {
        let q = obs().queries();
        assert_eq!(q.len(), 2);
        assert_eq!(
            q[0],
            "SELECT \"_cpu0\", \"_cpu1\", \"_cpu22\", \"_cpu23\" FROM \"kernel_percpu_cpu_idle\" \
             WHERE tag='278e26c2-3fd3-45e4-862b-5646dc9e7aa0'"
        );
        assert!(q[1].contains("RAPL_ENERGY_PKG"));
        assert!(q[1].contains("\"_node0\", \"_node1\""));
    }

    #[test]
    fn json_shape_carries_metadata() {
        let j = obs().to_json();
        assert_eq!(j["@type"], json!("ObservationInterface"));
        assert_eq!(j["pinning"], json!("numa_balanced"));
        assert_eq!(j["affinity"], json!([0, 1, 22, 23]));
        assert_eq!(j["report"]["mean_power_w"], json!(155.2));
        assert!(j["@id"]
            .as_str()
            .unwrap()
            .starts_with("dtmi:dt:skx:observation:"));
    }

    #[test]
    fn duration() {
        assert!((obs().duration_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn agg_observation_serializes_summaries() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let agg = AggObservation {
            id: "x".into(),
            machine: "icl".into(),
            summaries: vec![("m".into(), "_cpu0".into(), s)],
        };
        let j = agg.to_json();
        assert_eq!(j["summaries"][0]["mean"], json!(2.0));
        assert_eq!(j["summaries"][0]["count"], json!(3));
    }

    #[test]
    fn benchmark_interface_lookup() {
        let b = BenchmarkInterface {
            id: "b1".into(),
            machine: "csl".into(),
            benchmark: "stream".into(),
            compiler: "gcc".into(),
            results: vec![BenchmarkResult {
                name: "triad_bandwidth".into(),
                value: 1.1e11,
                unit: "B/s".into(),
            }],
        };
        assert_eq!(b.result("triad_bandwidth"), Some(1.1e11));
        assert_eq!(b.result("nope"), None);
        assert_eq!(b.to_json()["benchmark"], json!("stream"));
    }
}
