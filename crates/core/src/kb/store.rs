//! KB persistence — step ③: the generated KB is inserted into the
//! document database and re-inserted whenever it changes.

use crate::error::PmoveError;
use crate::kb::KnowledgeBase;
use pmove_docdb::Database;
use pmove_jsonld::serialize::{interface_from_json, interface_to_json};
use serde_json::json;

/// Collection names used in the document DB.
pub const KB_COLLECTION: &str = "kb";
/// Observation entries collection.
pub const OBS_COLLECTION: &str = "observations";
/// Benchmark entries collection.
pub const BENCH_COLLECTION: &str = "benchmarks";

/// Insert (or re-insert) a KB into the document database. Existing
/// documents for the same machine are replaced, matching the paper's
/// "step ③ re-occurs every time KB changes or P-MoVE is restarted".
pub fn insert_kb(db: &Database, kb: &KnowledgeBase) -> Result<usize, PmoveError> {
    let col = db.collection(KB_COLLECTION);
    col.delete_many(&json!({"machine": kb.machine_key}))?;
    let mut inserted = 0;
    for iface in &kb.interfaces {
        let mut doc = interface_to_json(iface);
        doc["machine"] = json!(kb.machine_key);
        doc["pmu"] = json!(kb.pmu_name);
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, iface.id));
        col.insert_one(doc)?;
        inserted += 1;
    }
    let obs = db.collection(OBS_COLLECTION);
    for o in &kb.observations {
        let mut doc = o.to_json();
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, o.id));
        // Re-inserts of the same observation are idempotent.
        let _ = obs.insert_one(doc);
    }
    let ben = db.collection(BENCH_COLLECTION);
    for b in &kb.benchmarks {
        let mut doc = b.to_json();
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, b.id));
        let _ = ben.insert_one(doc);
    }
    Ok(inserted)
}

/// [`insert_kb`] against a journaled database: every mutation is framed
/// through the WAL so the KB collections survive a daemon restart.
pub fn insert_kb_durable(
    db: &pmove_docdb::DurableDatabase,
    kb: &KnowledgeBase,
) -> Result<usize, PmoveError> {
    db.delete_many(KB_COLLECTION, &json!({"machine": kb.machine_key}))?;
    let mut inserted = 0;
    for iface in &kb.interfaces {
        let mut doc = interface_to_json(iface);
        doc["machine"] = json!(kb.machine_key);
        doc["pmu"] = json!(kb.pmu_name);
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, iface.id));
        db.insert_one(KB_COLLECTION, doc)?;
        inserted += 1;
    }
    for o in &kb.observations {
        let mut doc = o.to_json();
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, o.id));
        match db.insert_one(OBS_COLLECTION, doc) {
            Ok(_) | Err(pmove_docdb::DocDbError::DuplicateId(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    for b in &kb.benchmarks {
        let mut doc = b.to_json();
        doc["_id"] = json!(format!("{}::{}", kb.machine_key, b.id));
        match db.insert_one(BENCH_COLLECTION, doc) {
            Ok(_) | Err(pmove_docdb::DocDbError::DuplicateId(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(inserted)
}

/// Load the component interfaces of one machine back from the store.
pub fn load_interfaces(
    db: &Database,
    machine: &str,
) -> Result<Vec<pmove_jsonld::Interface>, PmoveError> {
    let col = db.collection(KB_COLLECTION);
    let docs = col.find(&json!({"machine": machine}))?;
    let mut out = Vec::with_capacity(docs.len());
    for mut d in docs {
        // Strip store-side fields before DTDL parsing.
        if let Some(map) = d.as_object_mut() {
            map.remove("_id");
            map.remove("machine");
            map.remove("pmu");
        }
        out.push(interface_from_json(&d)?);
    }
    Ok(out)
}

/// Machines present in the store.
pub fn machines(db: &Database) -> Vec<String> {
    let col = db.collection(KB_COLLECTION);
    let mut keys: Vec<String> = col
        .all()
        .iter()
        .filter_map(|d| d["machine"].as_str().map(str::to_string))
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::builder::build_kb;
    use crate::kb::observation::{MetricRef, ObservationInterface};
    use crate::probe::ProbeReport;
    use pmove_hwsim::Machine;

    fn kb() -> KnowledgeBase {
        build_kb(&ProbeReport::collect(&Machine::preset("icl").unwrap())).unwrap()
    }

    #[test]
    fn insert_and_reload_roundtrip() {
        let db = Database::new("supertwin");
        let kb = kb();
        let n = insert_kb(&db, &kb).unwrap();
        assert_eq!(n, kb.len());
        let loaded = load_interfaces(&db, "icl").unwrap();
        assert_eq!(loaded.len(), kb.len());
        // Interfaces survive the roundtrip intact.
        assert_eq!(loaded[0], kb.interfaces[0]);
        let cpu0_orig = kb.by_name("cpu0").unwrap();
        let cpu0_loaded = loaded.iter().find(|i| i.display_name == "cpu0").unwrap();
        assert_eq!(cpu0_loaded, cpu0_orig);
    }

    #[test]
    fn reinsert_replaces_instead_of_duplicating() {
        let db = Database::new("supertwin");
        let kb = kb();
        insert_kb(&db, &kb).unwrap();
        insert_kb(&db, &kb).unwrap();
        assert_eq!(load_interfaces(&db, "icl").unwrap().len(), kb.len());
    }

    #[test]
    fn observations_persisted() {
        let db = Database::new("supertwin");
        let mut kb = kb();
        kb.append_observation(ObservationInterface {
            id: "obs-1".into(),
            machine: "icl".into(),
            command: "triad".into(),
            pinning: "compact".into(),
            affinity: vec![0, 1],
            start_s: 0.0,
            end_s: 1.0,
            freq_hz: 8.0,
            metrics: vec![MetricRef {
                db_name: "m".into(),
                fields: vec!["_cpu0".into()],
            }],
            report: json!({}),
        });
        insert_kb(&db, &kb).unwrap();
        let obs = db.collection(OBS_COLLECTION);
        assert_eq!(obs.len(), 1);
        let d = obs
            .find_one(&json!({"observation": "obs-1"}))
            .unwrap()
            .unwrap();
        assert_eq!(d["pinning"], json!("compact"));
    }

    #[test]
    fn machines_listing() {
        let db = Database::new("supertwin");
        insert_kb(&db, &kb()).unwrap();
        let kb2 = build_kb(&ProbeReport::collect(&Machine::preset("zen3").unwrap())).unwrap();
        insert_kb(&db, &kb2).unwrap();
        assert_eq!(machines(&db), vec!["icl".to_string(), "zen3".to_string()]);
    }
}
