//! KB generation from a probe report (the host side of step ②).
//!
//! Every component that computes, communicates or stores becomes a DTDL
//! Interface; relationships encode the containment tree; the available
//! metrics are filtered per component kind and attached as `SWTelemetry`
//! / `HWTelemetry` entries (paper §III-C). GPU sections become Listing-4
//! style interfaces.

use crate::error::PmoveError;
use crate::kb::KnowledgeBase;
use crate::probe::ProbeReport;
use pmove_jsonld::dtdl::TelemetryBuilder;
use pmove_jsonld::{Dtmi, Interface};
use serde_json::Value;
use std::collections::BTreeMap;

/// Build the knowledge base for one probed target.
pub fn build_kb(report: &ProbeReport) -> Result<KnowledgeBase, PmoveError> {
    build_kb_observed(report, None)
}

/// [`build_kb`] with `kb.builder.*` counters recorded in `obs`:
/// interfaces built, telemetry entries attached (by kind), and GPU twins
/// enriched.
pub fn build_kb_observed(
    report: &ProbeReport,
    obs: Option<&pmove_obs::Registry>,
) -> Result<KnowledgeBase, PmoveError> {
    let host = report.hostname().to_string();
    let mut kb = KnowledgeBase::new(host.clone(), report.pmu_name());

    // --- component tree → interfaces -----------------------------------
    let components = report.components();
    let mut dtmi_of: BTreeMap<u64, Dtmi> = BTreeMap::new();
    for c in components {
        let cid = c["id"]
            .as_u64()
            .ok_or_else(|| PmoveError::BadProbeReport("component without id".into()))?;
        let name = c["name"].as_str().unwrap_or("unnamed");
        let kind = c["kind"].as_str().unwrap_or("component");
        let parent = c["parent"].as_u64();
        let dtmi = match parent {
            None => kb.root_id(),
            Some(p) => dtmi_of
                .get(&p)
                .ok_or_else(|| PmoveError::BadProbeReport(format!("orphan component {cid}")))?
                .child(&sanitize_segment(name))
                .map_err(|e| PmoveError::BadProbeReport(e.to_string()))?,
        };
        let mut iface = Interface::new(dtmi.clone(), kind, name);
        if let Some(attrs) = c["attrs"].as_object() {
            for (k, v) in attrs {
                iface.add_property(k.clone(), v.clone());
            }
        }
        dtmi_of.insert(cid, dtmi.clone());
        let parent_dtmi = parent.and_then(|p| dtmi_of.get(&p).cloned());
        // Containment edge on the parent.
        if let Some(p) = &parent_dtmi {
            if let Some(parent_iface) = kb.get_mut(p) {
                parent_iface.add_relationship("contains", dtmi.clone());
            }
        }
        kb.add_interface(iface, parent_dtmi.as_ref());
    }

    attach_sw_telemetry(&mut kb, report)?;
    attach_hw_telemetry(&mut kb, report)?;
    attach_gpus(&mut kb, report)?;

    kb.validate()?;
    if let Some(reg) = obs {
        let labels = [("host", host.as_str())];
        reg.counter("kb.builder.interfaces_built", &labels)
            .add(kb.len() as u64);
        let mut sw = 0u64;
        let mut hw = 0u64;
        for iface in &kb.interfaces {
            for t in iface.telemetry() {
                match t.kind {
                    pmove_jsonld::TelemetryKind::Software => sw += 1,
                    pmove_jsonld::TelemetryKind::Hardware => hw += 1,
                }
            }
        }
        reg.counter("kb.builder.sw_telemetry_attached", &labels)
            .add(sw);
        reg.counter("kb.builder.hw_telemetry_attached", &labels)
            .add(hw);
        reg.counter("kb.builder.gpus_enriched", &labels)
            .add(kb.of_type("gpu").len() as u64);
    }
    Ok(kb)
}

/// DTMI segments allow `[A-Za-z][A-Za-z0-9_]*`; sanitize probe names
/// (`nvme0n1` is fine, `eth0` is fine, a leading digit or dash is not).
fn sanitize_segment(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| !c.is_ascii_alphabetic()) {
        s.insert(0, 'c');
    }
    if s.ends_with('_') {
        s.push('x');
    }
    s
}

fn attach_sw_telemetry(kb: &mut KnowledgeBase, report: &ProbeReport) -> Result<(), PmoveError> {
    let metrics: Vec<(String, String)> = report
        .sw_metrics()
        .iter()
        .filter_map(|m| {
            Some((
                m["name"].as_str()?.to_string(),
                m["indom"].as_str()?.to_string(),
            ))
        })
        .collect();
    // Indices of target interfaces per kind, resolved via component_type.
    let threads: Vec<Dtmi> = kb.of_type("thread").iter().map(|i| i.id.clone()).collect();
    let nodes: Vec<Dtmi> = kb
        .of_type("numanode")
        .iter()
        .map(|i| i.id.clone())
        .collect();
    let disks: Vec<Dtmi> = kb.of_type("disk").iter().map(|i| i.id.clone()).collect();
    let nics: Vec<Dtmi> = kb.of_type("nic").iter().map(|i| i.id.clone()).collect();
    let root = kb.root_id();

    let mut metric_no = 0usize;
    for (name, indom) in metrics {
        let targets: Vec<(Dtmi, Option<String>)> = match indom.as_str() {
            "per-cpu" => threads
                .iter()
                .enumerate()
                .map(|(i, d)| (d.clone(), Some(format!("_cpu{i}"))))
                .collect(),
            "per-node" => nodes
                .iter()
                .enumerate()
                .map(|(i, d)| (d.clone(), Some(format!("_node{i}"))))
                .collect(),
            "per-disk" => disks.iter().map(|d| (d.clone(), None)).collect(),
            "per-nic" => nics.iter().map(|d| (d.clone(), None)).collect(),
            // singular and per-process metrics live on the system twin.
            _ => vec![(root.clone(), None)],
        };
        for (dtmi, field) in targets {
            let mut b = TelemetryBuilder::software(format!("metric{metric_no}"), name.clone());
            if let Some(f) = field {
                b = b.field(f);
            }
            metric_no += 1;
            if let Some(iface) = kb.get_mut(&dtmi) {
                iface.add_telemetry(b);
            }
        }
    }
    Ok(())
}

fn attach_hw_telemetry(kb: &mut KnowledgeBase, report: &ProbeReport) -> Result<(), PmoveError> {
    let pmu = kb.pmu_name.clone();
    let events: Vec<(String, bool, String)> = report.json["pmu_events"]
        .as_array()
        .map(|a| {
            a.iter()
                .filter_map(|e| {
                    Some((
                        e["name"].as_str()?.to_string(),
                        e["per_package"].as_bool().unwrap_or(false),
                        e["description"].as_str().unwrap_or("").to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let threads: Vec<Dtmi> = kb.of_type("thread").iter().map(|i| i.id.clone()).collect();
    let nodes: Vec<Dtmi> = kb
        .of_type("numanode")
        .iter()
        .map(|i| i.id.clone())
        .collect();

    let mut metric_no = 100_000usize; // distinct logical-name space from SW
    for (event, per_package, desc) in events {
        let targets: Vec<(Dtmi, String)> = if per_package {
            nodes
                .iter()
                .enumerate()
                .map(|(i, d)| (d.clone(), format!("_node{i}")))
                .collect()
        } else {
            threads
                .iter()
                .enumerate()
                .map(|(i, d)| (d.clone(), format!("_cpu{i}")))
                .collect()
        };
        for (dtmi, field) in targets {
            let b = TelemetryBuilder::hardware(
                format!("metric{metric_no}"),
                pmu.clone(),
                event.clone(),
            )
            .field(field)
            .description(desc.clone());
            metric_no += 1;
            if let Some(iface) = kb.get_mut(&dtmi) {
                iface.add_telemetry(b);
            }
        }
    }
    Ok(())
}

fn attach_gpus(kb: &mut KnowledgeBase, report: &ProbeReport) -> Result<(), PmoveError> {
    let gpus: Vec<Value> = report.gpus().to_vec();
    let root = kb.root_id();
    for (i, g) in gpus.iter().enumerate() {
        // The GPU component already exists in the tree (built from the
        // topology); enrich it with Listing-4 style telemetry.
        let Some(gpu_iface) = kb.by_name(&format!("gpu{i}")) else {
            continue;
        };
        let dtmi = gpu_iface.id.clone();
        let _ = &root;
        if let Some(iface) = kb.get_mut(&dtmi) {
            // The topology attrs may already carry `model`; only add it
            // from the smi record when missing.
            if iface.property_value("model").is_none() {
                if let Some(model) = g["smi"]["name"].as_str() {
                    iface.add_property("model", Value::String(model.to_string()));
                }
            }
            if let Some(arr) = g["nvml_metrics"].as_array() {
                for (j, m) in arr.iter().enumerate() {
                    if let Some(name) = m["name"].as_str() {
                        iface.add_telemetry(
                            TelemetryBuilder::software(format!("gpumetric{j}"), name)
                                .field(format!("_gpu{i}")),
                        );
                    }
                }
            }
            if let Some(arr) = g["ncu_metrics"].as_array() {
                for (j, m) in arr.iter().enumerate() {
                    if let Some(name) = m["name"].as_str() {
                        iface.add_telemetry(
                            TelemetryBuilder::hardware(format!("gpuhwmetric{j}"), "ncu", name)
                                .db_name(format!("ncu_{name}"))
                                .field(format!("_gpu{i}"))
                                .description(m["description"].as_str().unwrap_or("")),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::gpu::GpuSpec;
    use pmove_hwsim::{Machine, MachineSpec};
    use pmove_jsonld::TelemetryKind;

    fn kb_for(key: &str) -> KnowledgeBase {
        let m = Machine::preset(key).unwrap();
        build_kb(&ProbeReport::collect(&m)).unwrap()
    }

    #[test]
    fn builds_full_component_hierarchy() {
        let kb = kb_for("csl");
        // system + 1 numa + 1 socket + 1 L3 + 28 cores + 28 L1 + 28 L2
        // + 56 threads + 1 mem + 1 disk + 1 nic = 147
        assert_eq!(kb.len(), 147);
        assert_eq!(kb.of_type("thread").len(), 56);
        assert_eq!(kb.of_type("socket").len(), 1);
        kb.validate().unwrap();
    }

    #[test]
    fn dtmis_are_hierarchical() {
        let kb = kb_for("icl");
        let cpu0 = kb.by_name("cpu0").unwrap();
        assert!(cpu0.id.to_string().starts_with("dtmi:dt:icl:"));
        assert!(cpu0.id.is_within(&kb.root_id()));
        // Navigation follows the topology.
        let parent = kb.parent_of(&cpu0.id).unwrap();
        assert_eq!(kb.get(parent).unwrap().component_type, "core");
    }

    #[test]
    fn threads_carry_hw_telemetry() {
        let kb = kb_for("csl");
        let cpu0 = kb.by_name("cpu0").unwrap();
        let hw: Vec<_> = cpu0
            .telemetry()
            .filter(|t| t.kind == TelemetryKind::Hardware)
            .collect();
        assert!(hw.len() >= 8, "only {} HW telemetry entries", hw.len());
        assert!(hw
            .iter()
            .any(|t| t.sampler_name == "FP_ARITH:SCALAR_DOUBLE"));
        assert!(hw.iter().all(|t| t.field_name == Some("_cpu0".into())));
        assert!(hw.iter().all(|t| t.pmu_name == Some("csl".into())));
        // RAPL is per-package, so it must NOT be on threads.
        assert!(!hw.iter().any(|t| t.sampler_name.contains("RAPL")));
    }

    #[test]
    fn numa_nodes_carry_rapl() {
        let kb = kb_for("zen3");
        let node0 = kb.by_name("node0").unwrap();
        let names: Vec<&str> = node0.telemetry().map(|t| t.sampler_name.as_str()).collect();
        assert!(names.contains(&"RAPL_ENERGY_PKG"));
        assert!(names.contains(&"RAPL_ENERGY_DRAM"));
        // Plus per-node SW metrics.
        assert!(names.contains(&"mem.numa.alloc_hit"));
    }

    #[test]
    fn system_twin_gets_singular_metrics() {
        let kb = kb_for("icl");
        let root = kb.get(&kb.root_id()).unwrap();
        let names: Vec<&str> = root.telemetry().map(|t| t.sampler_name.as_str()).collect();
        assert!(names.contains(&"kernel.all.load"));
        assert!(names.contains(&"mem.util.used"));
    }

    #[test]
    fn gpu_interfaces_match_listing4() {
        let mut spec = MachineSpec::csl();
        spec.gpus.push(GpuSpec::gv100());
        let m = Machine::new(spec);
        let kb = build_kb(&ProbeReport::collect(&m)).unwrap();
        let gpu = kb.by_name("gpu0").unwrap();
        assert_eq!(gpu.component_type, "gpu");
        assert_eq!(
            gpu.property_value("model"),
            Some(&Value::String("NVIDIA Quadro GV100".into()))
        );
        let sw: Vec<_> = gpu
            .telemetry()
            .filter(|t| t.kind == TelemetryKind::Software)
            .collect();
        assert!(sw
            .iter()
            .any(|t| t.sampler_name == "nvidia.memused" && t.db_name == "nvidia_memused"));
        let hw: Vec<_> = gpu
            .telemetry()
            .filter(|t| t.kind == TelemetryKind::Hardware)
            .collect();
        assert!(hw.iter().any(|t| {
            t.pmu_name.as_deref() == Some("ncu")
                && t.sampler_name == "gpu__compute_memory_access_throughput"
                && t.db_name == "ncu_gpu__compute_memory_access_throughput"
        }));
    }

    #[test]
    fn observed_build_counts_interfaces_and_telemetry() {
        let m = Machine::preset("csl").unwrap();
        let report = ProbeReport::collect(&m);
        let reg = pmove_obs::Registry::shared();
        let kb = build_kb_observed(&report, Some(&reg)).unwrap();
        let snap = reg.snapshot();
        let labels = [("host", "csl")];
        assert_eq!(
            snap.counter("kb.builder.interfaces_built", &labels),
            Some(kb.len() as u64)
        );
        let total: u64 = kb
            .interfaces
            .iter()
            .map(|i| i.telemetry().count() as u64)
            .sum();
        let sw = snap
            .counter("kb.builder.sw_telemetry_attached", &labels)
            .unwrap();
        let hw = snap
            .counter("kb.builder.hw_telemetry_attached", &labels)
            .unwrap();
        assert_eq!(sw + hw, total);
        assert!(sw > 0 && hw > 0);
        assert_eq!(snap.counter("kb.builder.gpus_enriched", &labels), Some(0));
    }

    #[test]
    fn segment_sanitization() {
        assert_eq!(sanitize_segment("sda"), "sda");
        assert_eq!(sanitize_segment("nvme0n1"), "nvme0n1");
        assert_eq!(sanitize_segment("0weird"), "c0weird");
        assert_eq!(sanitize_segment("has-dash"), "has_dash");
        assert_eq!(sanitize_segment("trail-"), "trail_x");
    }
}
