//! SUPERDB — the global performance database (paper §III-E).
//!
//! Cloud-hosted MongoDB + InfluxDB instances accumulating KBs and
//! observations from many systems. Observations arrive in two forms:
//! `TSObservationInterface` (the raw series is uploaded) and
//! `AGGObservationInterface` (statistical summaries, for volume control).
//! Users with a local P-MoVE instance can query across machines (the
//! cross-machine level views of Fig. 2c/d); without one, they can only
//! download selected data for ML training.

use crate::error::PmoveError;
use crate::kb::observation::{AggObservation, ObservationInterface};
use crate::kb::{store, KnowledgeBase};
use pmove_docdb::Database as DocDb;
use pmove_tsdb::aggregate::Summary;
use pmove_tsdb::{Database as TsDb, Point};
use serde_json::json;

/// The global database pair.
pub struct SuperDb {
    /// Global document database (KBs, observation entries).
    pub doc: DocDb,
    /// Global time-series database (TS observations).
    pub ts: TsDb,
}

impl Default for SuperDb {
    fn default() -> Self {
        Self::new()
    }
}

impl SuperDb {
    /// Fresh global instance.
    pub fn new() -> Self {
        SuperDb {
            doc: DocDb::new("superdb"),
            ts: TsDb::new("superdb"),
        }
    }

    /// Upload a machine's KB (idempotent per machine).
    pub fn upload_kb(&self, kb: &KnowledgeBase) -> Result<usize, PmoveError> {
        store::insert_kb(&self.doc, kb)
    }

    /// Upload an observation **with** its raw time series
    /// (`TSObservationInterface`). `series` carries the points recalled
    /// from the local instance.
    pub fn upload_ts_observation(
        &self,
        obs: &ObservationInterface,
        series: Vec<Point>,
    ) -> Result<usize, PmoveError> {
        let col = self.doc.collection("ts_observations");
        let mut doc = obs.to_json();
        doc["@type"] = json!("TSObservationInterface");
        doc["_id"] = json!(format!("{}::{}", obs.machine, obs.id));
        col.insert_one(doc)?;
        let mut stored = 0;
        for mut p in series {
            p.tags.insert("machine".into(), obs.machine.clone());
            if self.ts.write_point(p).is_ok() {
                stored += 1;
            }
        }
        Ok(stored)
    }

    /// Upload only aggregates (`AGGObservationInterface`).
    pub fn upload_agg_observation(&self, agg: &AggObservation) -> Result<(), PmoveError> {
        let col = self.doc.collection("agg_observations");
        let mut doc = agg.to_json();
        doc["_id"] = json!(format!("{}::{}", agg.machine, agg.id));
        col.insert_one(doc)?;
        Ok(())
    }

    /// Summarize a recalled series into an AGG observation.
    pub fn aggregate(
        obs: &ObservationInterface,
        series: &[(String, String, Vec<f64>)],
    ) -> AggObservation {
        AggObservation {
            id: obs.id.clone(),
            machine: obs.machine.clone(),
            summaries: series
                .iter()
                .filter_map(|(m, f, values)| Summary::of(values).map(|s| (m.clone(), f.clone(), s)))
                .collect(),
        }
    }

    /// Machines known to the global database.
    pub fn machines(&self) -> Vec<String> {
        store::machines(&self.doc)
    }

    /// Annotate a machine's data as stale from `since_s` on: the cluster
    /// supervisor calls this when it quarantines a node, so global views
    /// stop presenting dead-node twins as live. Re-marking updates the
    /// timestamp.
    pub fn mark_stale(&self, machine: &str, since_s: f64) -> Result<(), PmoveError> {
        let col = self.doc.collection("staleness");
        col.delete_many(&json!({ "_id": machine }))?;
        col.insert_one(json!({
            "_id": machine,
            "machine": machine,
            "stale_since_s": since_s,
        }))?;
        Ok(())
    }

    /// Clear a machine's staleness annotation (node rejoined).
    pub fn clear_stale(&self, machine: &str) -> Result<(), PmoveError> {
        self.doc
            .collection("staleness")
            .delete_many(&json!({ "_id": machine }))?;
        Ok(())
    }

    /// When the machine is marked stale, the virtual time its data went
    /// stale at.
    pub fn staleness(&self, machine: &str) -> Option<f64> {
        self.doc
            .collection("staleness")
            .find_one(&json!({ "_id": machine }))
            .ok()
            .flatten()
            .and_then(|d| d["stale_since_s"].as_f64())
    }

    /// Machines currently annotated as stale.
    pub fn stale_machines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .doc
            .collection("staleness")
            .all()
            .into_iter()
            .filter_map(|d| d["machine"].as_str().map(str::to_string))
            .collect();
        out.sort();
        out
    }

    /// Cross-machine level view: interfaces of one component type from
    /// every uploaded machine (the SUPERDB power behind Fig. 2d). Machines
    /// marked stale are excluded — their twins describe hardware nobody is
    /// monitoring; [`SuperDb::staleness`] explains the exclusion.
    pub fn global_level_view(
        &self,
        component_type: &str,
    ) -> Result<Vec<(String, pmove_jsonld::Interface)>, PmoveError> {
        let mut out = Vec::new();
        for machine in self.machines() {
            if self.staleness(&machine).is_some() {
                continue;
            }
            for iface in store::load_interfaces(&self.doc, &machine)? {
                if iface.component_type == component_type {
                    out.push((machine.clone(), iface));
                }
            }
        }
        Ok(out)
    }

    /// Cross-machine level-view dashboard (Fig. 2d: "the level-view
    /// dashboards for different processes ... on different servers"):
    /// one panel per (machine, measurement), targets per field.
    pub fn global_level_dashboard(
        &self,
        component_type: &str,
    ) -> Result<Option<crate::dashboard::Dashboard>, PmoveError> {
        use crate::dashboard::model::{Dashboard, Datasource, Target};
        let twins = self.global_level_view(component_type)?;
        if twins.is_empty() {
            return Ok(None);
        }
        let mut d = Dashboard::new(4, format!("global level: {component_type}"));
        // Group telemetry by (machine, db measurement).
        use std::collections::BTreeMap;
        let mut panels: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        for (machine, iface) in &twins {
            for t in iface.telemetry() {
                let fields = panels
                    .entry((machine.clone(), t.db_name.clone()))
                    .or_default();
                if let Some(f) = &t.field_name {
                    if !fields.contains(f) {
                        fields.push(f.clone());
                    }
                }
            }
        }
        for ((machine, measurement), fields) in panels {
            let targets = if fields.is_empty() {
                vec![Target {
                    datasource: Datasource::influx("superdb"),
                    measurement: measurement.clone(),
                    params: "value".into(),
                }]
            } else {
                fields
                    .into_iter()
                    .map(|f| Target {
                        datasource: Datasource::influx("superdb"),
                        measurement: measurement.clone(),
                        params: f,
                    })
                    .collect()
            };
            d = d.panel(format!("{machine}: {measurement}"), targets);
        }
        Ok(Some(d))
    }

    /// Download raw rows for ML training (the no-local-instance path):
    /// the values of one measurement field across machines.
    pub fn download_training_series(
        &self,
        measurement: &str,
        field: &str,
    ) -> Result<Vec<(i64, f64)>, PmoveError> {
        let q = format!("SELECT \"{field}\" FROM \"{measurement}\"");
        let r = self.ts.query(&q)?;
        Ok(r.column_series(field))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::builder::build_kb;
    use crate::kb::observation::MetricRef;
    use crate::probe::ProbeReport;
    use pmove_hwsim::Machine;

    fn kb(key: &str) -> KnowledgeBase {
        build_kb(&ProbeReport::collect(&Machine::preset(key).unwrap())).unwrap()
    }

    fn obs(machine: &str) -> ObservationInterface {
        ObservationInterface {
            id: format!("{machine}-obs"),
            machine: machine.into(),
            command: "spmv".into(),
            pinning: "balanced".into(),
            affinity: vec![0],
            start_s: 0.0,
            end_s: 1.0,
            freq_hz: 8.0,
            metrics: vec![MetricRef {
                db_name: "m".into(),
                fields: vec!["_cpu0".into()],
            }],
            report: json!({}),
        }
    }

    #[test]
    fn multi_machine_upload_and_global_view() {
        let s = SuperDb::new();
        s.upload_kb(&kb("icl")).unwrap();
        s.upload_kb(&kb("zen3")).unwrap();
        assert_eq!(s.machines(), vec!["icl".to_string(), "zen3".to_string()]);
        let sockets = s.global_level_view("socket").unwrap();
        assert_eq!(sockets.len(), 2);
        let threads = s.global_level_view("thread").unwrap();
        assert_eq!(threads.len(), 16 + 32);
    }

    #[test]
    fn ts_observation_carries_series() {
        let s = SuperDb::new();
        let series: Vec<Point> = (0..5)
            .map(|t| {
                Point::new("m")
                    .tag("tag", "icl-obs")
                    .field("_cpu0", t as f64)
                    .timestamp(t)
            })
            .collect();
        let stored = s.upload_ts_observation(&obs("icl"), series).unwrap();
        assert_eq!(stored, 5);
        let got = s.download_training_series("m", "_cpu0").unwrap();
        assert_eq!(got.len(), 5);
        // The machine tag is stamped.
        assert_eq!(s.ts.tag_values("m", "machine"), vec!["icl".to_string()]);
        assert_eq!(s.doc.collection("ts_observations").len(), 1);
    }

    #[test]
    fn global_level_dashboard_spans_machines() {
        let s = SuperDb::new();
        s.upload_kb(&kb("icl")).unwrap();
        s.upload_kb(&kb("zen3")).unwrap();
        let d = s
            .global_level_dashboard("numanode")
            .unwrap()
            .expect("dashboard exists");
        // Panels are prefixed per machine (the Fig. 2d comparison view).
        assert!(d.panels.iter().any(|p| p.title.starts_with("icl: ")));
        assert!(d.panels.iter().any(|p| p.title.starts_with("zen3: ")));
        // zen3 exposes RAPL DRAM energy; icl does not.
        assert!(d
            .panels
            .iter()
            .any(|p| p.title == "zen3: perfevent_hwcounters_RAPL_ENERGY_DRAM"));
        assert!(!d
            .panels
            .iter()
            .any(|p| p.title == "icl: perfevent_hwcounters_RAPL_ENERGY_DRAM"));
        assert!(s.global_level_dashboard("gpu").unwrap().is_none());
    }

    #[test]
    fn stale_machines_drop_out_of_global_views() {
        let s = SuperDb::new();
        s.upload_kb(&kb("icl")).unwrap();
        s.upload_kb(&kb("zen3")).unwrap();
        assert_eq!(s.global_level_view("socket").unwrap().len(), 2);
        assert!(s.staleness("icl").is_none());

        s.mark_stale("icl", 42.5).unwrap();
        let sockets = s.global_level_view("socket").unwrap();
        assert_eq!(sockets.len(), 1);
        assert_eq!(sockets[0].0, "zen3");
        assert_eq!(s.staleness("icl"), Some(42.5));
        assert_eq!(s.stale_machines(), vec!["icl".to_string()]);
        // The machine itself stays in the catalog; only views filter it.
        assert_eq!(s.machines(), vec!["icl".to_string(), "zen3".to_string()]);
        // Re-marking updates the annotation instead of erroring.
        s.mark_stale("icl", 60.0).unwrap();
        assert_eq!(s.staleness("icl"), Some(60.0));

        s.clear_stale("icl").unwrap();
        assert!(s.staleness("icl").is_none());
        assert_eq!(s.global_level_view("socket").unwrap().len(), 2);
    }

    #[test]
    fn agg_observation_summarizes() {
        let s = SuperDb::new();
        let o = obs("zen3");
        let agg = SuperDb::aggregate(
            &o,
            &[
                ("m".into(), "_cpu0".into(), vec![1.0, 2.0, 3.0]),
                ("m".into(), "_cpu1".into(), vec![]),
            ],
        );
        // Empty series yields no summary.
        assert_eq!(agg.summaries.len(), 1);
        assert_eq!(agg.summaries[0].2.mean, 2.0);
        s.upload_agg_observation(&agg).unwrap();
        assert_eq!(s.doc.collection("agg_observations").len(), 1);
    }
}
