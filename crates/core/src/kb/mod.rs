//! The Knowledge Base.
//!
//! "It is a snapshot of every piece of information obtained from probing
//! and previous analyses. It is dynamic and evolving" (§III). The KB holds
//! one DTDL [`Interface`] per system component, the containment tree over
//! them, the database parameters, and the appended Observation/Benchmark
//! entries. Every framework function takes the KB as its parameter.

pub mod builder;
pub mod observation;
pub mod store;
pub mod superdb;
pub mod views;

use crate::error::PmoveError;
use pmove_jsonld::{Dtmi, Interface};
use std::collections::BTreeMap;

pub use observation::{AggObservation, BenchmarkInterface, BenchmarkResult, ObservationInterface};

/// Database connection parameters carried in the KB (the env of step ⓪).
#[derive(Debug, Clone, PartialEq)]
pub struct DbParams {
    /// Time-series database name.
    pub influx_db: String,
    /// Datasource uid referenced by dashboards (Listing 1's `uid`).
    pub influx_uid: String,
    /// Document database name.
    pub mongo_db: String,
}

impl Default for DbParams {
    fn default() -> Self {
        DbParams {
            influx_db: "pmove".into(),
            influx_uid: "UUkm1881".into(),
            mongo_db: "supertwin".into(),
        }
    }
}

/// The knowledge base of one target system.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    /// Machine key (`csl`).
    pub machine_key: String,
    /// PMU name for the abstraction layer.
    pub pmu_name: String,
    /// Database parameters.
    pub db: DbParams,
    /// All component interfaces (tree order).
    pub interfaces: Vec<Interface>,
    /// Containment: child → parent.
    parent: BTreeMap<Dtmi, Dtmi>,
    /// Containment: parent → children.
    children: BTreeMap<Dtmi, Vec<Dtmi>>,
    /// Index: dtmi → position in `interfaces`.
    index: BTreeMap<Dtmi, usize>,
    /// Appended observation entries.
    pub observations: Vec<ObservationInterface>,
    /// Appended benchmark entries.
    pub benchmarks: Vec<BenchmarkInterface>,
}

impl KnowledgeBase {
    /// Empty KB (builders populate it).
    pub fn new(machine_key: impl Into<String>, pmu_name: impl Into<String>) -> Self {
        KnowledgeBase {
            machine_key: machine_key.into(),
            pmu_name: pmu_name.into(),
            db: DbParams::default(),
            interfaces: Vec::new(),
            parent: BTreeMap::new(),
            children: BTreeMap::new(),
            index: BTreeMap::new(),
            observations: Vec::new(),
            benchmarks: Vec::new(),
        }
    }

    /// Root twin id: `dtmi:dt:<machine>;1`.
    pub fn root_id(&self) -> Dtmi {
        Dtmi::new(["dt", self.machine_key.as_str()], 1).expect("machine keys are valid segments")
    }

    /// Add an interface under an optional parent.
    pub fn add_interface(&mut self, iface: Interface, parent: Option<&Dtmi>) {
        let id = iface.id.clone();
        self.index.insert(id.clone(), self.interfaces.len());
        if let Some(p) = parent {
            self.parent.insert(id.clone(), p.clone());
            self.children.entry(p.clone()).or_default().push(id);
        }
        self.interfaces.push(iface);
    }

    /// Look up an interface by id.
    pub fn get(&self, id: &Dtmi) -> Option<&Interface> {
        self.index.get(id).map(|&i| &self.interfaces[i])
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: &Dtmi) -> Option<&mut Interface> {
        self.index
            .get(id)
            .copied()
            .map(move |i| &mut self.interfaces[i])
    }

    /// Look up an interface by display name (`cpu0`, `l3cache0`).
    pub fn by_name(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.display_name == name)
    }

    /// Parent of a twin.
    pub fn parent_of(&self, id: &Dtmi) -> Option<&Dtmi> {
        self.parent.get(id)
    }

    /// Children of a twin.
    pub fn children_of(&self, id: &Dtmi) -> &[Dtmi] {
        self.children.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Interfaces of one component type — the *level* of the level view.
    pub fn of_type(&self, component_type: &str) -> Vec<&Interface> {
        self.interfaces
            .iter()
            .filter(|i| i.component_type == component_type)
            .collect()
    }

    /// Number of component twins.
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// True when the KB holds no interfaces.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }

    /// Append an observation entry (step B8).
    pub fn append_observation(&mut self, obs: ObservationInterface) {
        self.observations.push(obs);
    }

    /// Append a benchmark entry.
    pub fn append_benchmark(&mut self, b: BenchmarkInterface) {
        self.benchmarks.push(b);
    }

    /// Find an observation by id.
    pub fn observation(&self, id: &str) -> Option<&ObservationInterface> {
        self.observations.iter().find(|o| o.id == id)
    }

    /// Validate the whole model against the DTDL rules.
    pub fn validate(&self) -> Result<(), PmoveError> {
        pmove_jsonld::validate::validate_model(&self.interfaces)?;
        Ok(())
    }

    /// Project the KB into an RDF graph (interfaces, properties,
    /// telemetry, relationships as triples).
    pub fn to_graph(&self) -> pmove_jsonld::Graph {
        let mut g = pmove_jsonld::Graph::new();
        for iface in &self.interfaces {
            pmove_jsonld::serialize::interface_to_triples(iface, &mut g);
        }
        g
    }

    /// Run a basic-graph-pattern query over the KB's linked-data view —
    /// the "advanced analysis" path of §III. One pattern per line,
    /// `?var` for variables:
    ///
    /// ```text
    /// ?c pmove:componentType thread
    /// ?c pmove:hasTelemetry ?t
    /// ?t pmove:dbName ?db
    /// ```
    pub fn sparql(&self, bgp_text: &str) -> Vec<pmove_jsonld::query::Solution> {
        let patterns = pmove_jsonld::query::parse_bgp(bgp_text);
        pmove_jsonld::query::solve(&self.to_graph(), &patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_jsonld::Interface;

    fn kb_with_two() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new("csl", "csl");
        let root = Interface::new(kb.root_id(), "system", "csl");
        let root_id = root.id.clone();
        kb.add_interface(root, None);
        let child = Interface::new(root_id.child("node0").unwrap(), "numanode", "node0");
        kb.add_interface(child, Some(&root_id));
        kb
    }

    #[test]
    fn navigation() {
        let kb = kb_with_two();
        assert_eq!(kb.len(), 2);
        let root_id = kb.root_id();
        let node = kb.by_name("node0").unwrap();
        assert_eq!(kb.parent_of(&node.id), Some(&root_id));
        assert_eq!(kb.children_of(&root_id), std::slice::from_ref(&node.id));
        assert!(kb.get(&node.id).is_some());
        assert_eq!(kb.of_type("numanode").len(), 1);
        assert!(kb.by_name("ghost").is_none());
    }

    #[test]
    fn default_db_params_match_listing1() {
        let kb = kb_with_two();
        assert_eq!(kb.db.influx_uid, "UUkm1881");
    }

    #[test]
    fn validation_passes_for_clean_model() {
        assert!(kb_with_two().validate().is_ok());
    }

    #[test]
    fn sparql_over_a_real_kb() {
        let kb = crate::kb::builder::build_kb(&crate::probe::ProbeReport::collect(
            &pmove_hwsim::Machine::preset("icl").unwrap(),
        ))
        .unwrap();
        // All thread twins.
        let sols = kb.sparql("?c pmove:componentType thread");
        assert_eq!(sols.len(), 16);
        // Join: threads → telemetry → db name of the idle metric.
        let sols = kb.sparql(
            "?c pmove:componentType thread
             ?c pmove:hasTelemetry ?t
             ?t pmove:dbName kernel_percpu_cpu_idle",
        );
        assert_eq!(sols.len(), 16);
        // Every solution binds both variables.
        assert!(sols
            .iter()
            .all(|s| s.contains_key("c") && s.contains_key("t")));
        // HW-telemetry-only join restricts further.
        let hw = kb.sparql(
            "?c pmove:componentType thread
             ?c pmove:hasTelemetry ?t
             ?t rdf:type HWTelemetry",
        );
        assert!(!hw.is_empty());
        assert!(hw.len() > sols.len()); // many HW events per thread
    }
}
