//! Framework-level error type.

use std::fmt;

/// Errors surfaced by the P-MoVE framework.
#[derive(Debug, Clone, PartialEq)]
pub enum PmoveError {
    /// A probe report was missing a required section.
    BadProbeReport(String),
    /// The KB has no entity with the requested id/name.
    NotInKb(String),
    /// Abstraction-layer configuration failed to parse.
    BadEventConfig(String),
    /// A generic event has no mapping for the requested PMU.
    UnmappedEvent {
        /// PMU name requested.
        pmu: String,
        /// Generic event name.
        event: String,
    },
    /// A kernel launch request could not be resolved.
    BadKernelRequest(String),
    /// Database-layer failure.
    Db(String),
    /// Ontology-layer failure.
    Ontology(String),
    /// Collector-layer failure (invalid sampling/resilience config).
    Collector(String),
    /// The daemon booted in degraded monitor-only mode; the requested
    /// operation needs the full (durable) stack.
    DegradedMode(String),
}

impl fmt::Display for PmoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmoveError::BadProbeReport(s) => write!(f, "bad probe report: {s}"),
            PmoveError::NotInKb(s) => write!(f, "not in knowledge base: {s}"),
            PmoveError::BadEventConfig(s) => write!(f, "bad event config: {s}"),
            PmoveError::UnmappedEvent { pmu, event } => {
                write!(f, "event {event} has no mapping for PMU {pmu}")
            }
            PmoveError::BadKernelRequest(s) => write!(f, "bad kernel request: {s}"),
            PmoveError::Db(s) => write!(f, "database error: {s}"),
            PmoveError::Ontology(s) => write!(f, "ontology error: {s}"),
            PmoveError::Collector(s) => write!(f, "collector error: {s}"),
            PmoveError::DegradedMode(s) => {
                write!(f, "unavailable in degraded monitor-only mode: {s}")
            }
        }
    }
}

impl std::error::Error for PmoveError {}

impl From<pmove_docdb::DocDbError> for PmoveError {
    fn from(e: pmove_docdb::DocDbError) -> Self {
        PmoveError::Db(e.to_string())
    }
}

impl From<pmove_tsdb::TsdbError> for PmoveError {
    fn from(e: pmove_tsdb::TsdbError) -> Self {
        PmoveError::Db(e.to_string())
    }
}

impl From<pmove_jsonld::JsonLdError> for PmoveError {
    fn from(e: pmove_jsonld::JsonLdError) -> Self {
        PmoveError::Ontology(e.to_string())
    }
}

impl From<pmove_pcp::PcpError> for PmoveError {
    fn from(e: pmove_pcp::PcpError) -> Self {
        PmoveError::Collector(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = PmoveError::UnmappedEvent {
            pmu: "zen3".into(),
            event: "X".into(),
        };
        assert!(e.to_string().contains("zen3"));
        let e: PmoveError = pmove_docdb::DocDbError::NotAnObject.into();
        assert!(matches!(e, PmoveError::Db(_)));
        let e: PmoveError = pmove_tsdb::TsdbError::EmptyFields.into();
        assert!(matches!(e, PmoveError::Db(_)));
        let e: PmoveError = pmove_jsonld::JsonLdError::BadDtmi("x".into()).into();
        assert!(matches!(e, PmoveError::Ontology(_)));
        let e: PmoveError = pmove_pcp::PcpError::InvalidConfig {
            field: "freq_hz",
            value: f64::NAN,
            reason: "must be finite",
        }
        .into();
        assert!(matches!(e, PmoveError::Collector(_)));
        assert!(e.to_string().contains("freq_hz"));
        let e = PmoveError::DegradedMode("tsdb recovery failed".into());
        assert!(e.to_string().contains("monitor-only"));
    }
}
