//! Config-file parsing and the layered PMU → generic-event registry.

use crate::abstraction::expr::Formula;
use crate::error::PmoveError;
use std::collections::BTreeMap;

/// The mapping table of one PMU.
#[derive(Debug, Clone, PartialEq)]
pub struct PmuConfig {
    /// Canonical PMU name (`skx`).
    pub pmu_name: String,
    /// Optional alias (`[skx | skylakex]`).
    pub alias: Option<String>,
    /// Generic event → formula.
    pub mappings: BTreeMap<String, Formula>,
}

impl PmuConfig {
    /// Formula for a generic event.
    pub fn get(&self, generic: &str) -> Option<&Formula> {
        self.mappings.get(generic)
    }
}

/// The abstraction layer: every registered PMU config.
#[derive(Debug, Clone, Default)]
pub struct AbstractionLayer {
    configs: Vec<PmuConfig>,
}

impl AbstractionLayer {
    /// Empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse one or more `[pmu | alias]` sections from config text and
    /// register them. Returns how many sections were added.
    ///
    /// Grammar (paper §IV-A):
    /// ```text
    /// [pmu_name | alias]
    /// <generic_event>:<hw_event> [(+|-|*|/) (<hw_event>|<const>)]...
    /// ```
    /// Blank lines and `#` comments are ignored.
    pub fn register_config(&mut self, text: &str) -> Result<usize, PmoveError> {
        let mut added = 0;
        let mut current: Option<PmuConfig> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some(done) = current.take() {
                    self.upsert(done);
                    added += 1;
                }
                let mut parts = header.splitn(2, '|');
                let pmu_name = parts.next().unwrap_or("").trim().to_string();
                if pmu_name.is_empty() {
                    return Err(PmoveError::BadEventConfig(format!(
                        "empty pmu name at line {}",
                        lineno + 1
                    )));
                }
                let alias = parts
                    .next()
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty());
                current = Some(PmuConfig {
                    pmu_name,
                    alias,
                    mappings: BTreeMap::new(),
                });
                continue;
            }
            let Some(cfg) = current.as_mut() else {
                return Err(PmoveError::BadEventConfig(format!(
                    "mapping before any [pmu] header at line {}",
                    lineno + 1
                )));
            };
            // generic:formula — split at the FIRST ':' (hw event names
            // contain ':' themselves).
            let (generic, rhs) = line.split_once(':').ok_or_else(|| {
                PmoveError::BadEventConfig(format!("missing ':' at line {}", lineno + 1))
            })?;
            let generic = generic.trim();
            if generic.is_empty() {
                return Err(PmoveError::BadEventConfig(format!(
                    "empty generic event at line {}",
                    lineno + 1
                )));
            }
            let formula = Formula::parse(rhs.trim())?;
            cfg.mappings.insert(generic.to_string(), formula);
        }
        if let Some(done) = current.take() {
            self.upsert(done);
            added += 1;
        }
        Ok(added)
    }

    fn upsert(&mut self, cfg: PmuConfig) {
        if let Some(existing) = self.configs.iter_mut().find(|c| c.pmu_name == cfg.pmu_name) {
            // Later registrations extend/override earlier mappings.
            for (k, v) in cfg.mappings {
                existing.mappings.insert(k, v);
            }
            if cfg.alias.is_some() {
                existing.alias = cfg.alias;
            }
        } else {
            self.configs.push(cfg);
        }
    }

    /// Look up a PMU by name or alias.
    pub fn pmu(&self, name: &str) -> Option<&PmuConfig> {
        self.configs
            .iter()
            .find(|c| c.pmu_name == name || c.alias.as_deref() == Some(name))
    }

    /// Registered PMU names.
    pub fn pmu_names(&self) -> Vec<&str> {
        self.configs.iter().map(|c| c.pmu_name.as_str()).collect()
    }

    /// Formula for `(pmu, generic_event)`.
    pub fn formula(&self, pmu: &str, generic: &str) -> Result<&Formula, PmoveError> {
        self.pmu(pmu)
            .and_then(|c| c.get(generic))
            .ok_or_else(|| PmoveError::UnmappedEvent {
                pmu: pmu.into(),
                event: generic.into(),
            })
    }

    /// Hardware events a generic event needs on a PMU — what Scenario B
    /// programs into the counter bank.
    pub fn required_hw_events(&self, pmu: &str, generic: &str) -> Result<Vec<String>, PmoveError> {
        Ok(self
            .formula(pmu, generic)?
            .events()
            .into_iter()
            .map(str::to_string)
            .collect())
    }

    /// Evaluate a generic event from hardware readings.
    pub fn evaluate<F>(&self, pmu: &str, generic: &str, resolve: F) -> Result<f64, PmoveError>
    where
        F: FnMut(&str) -> Option<f64>,
    {
        self.formula(pmu, generic)?.eval(resolve)
    }

    /// Check that a PMU config defines every common event; returns the
    /// missing ones.
    pub fn missing_common_events(&self, pmu: &str) -> Vec<String> {
        let Some(cfg) = self.pmu(pmu) else {
            return crate::abstraction::events::COMMON_EVENTS
                .iter()
                .map(|s| s.to_string())
                .collect();
        };
        crate::abstraction::events::COMMON_EVENTS
            .iter()
            .filter(|e| !cfg.mappings.contains_key(**e))
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Intel Skylake mappings
[skl | skylake]
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
AVX512_DP_FLOPS: FP_ARITH:512B_PACKED_DOUBLE * 8

[toy]
CPU_CYCLES: CYCLES
";

    #[test]
    fn parses_sections_and_aliases() {
        let mut layer = AbstractionLayer::new();
        assert_eq!(layer.register_config(SAMPLE).unwrap(), 2);
        assert_eq!(layer.pmu_names(), vec!["skl", "toy"]);
        assert!(layer.pmu("skylake").is_some()); // alias lookup
        assert!(layer.pmu("nope").is_none());
    }

    #[test]
    fn paper_example_lookup() {
        let mut layer = AbstractionLayer::new();
        layer.register_config(SAMPLE).unwrap();
        // pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS") from §IV-A.
        let f = layer.formula("skl", "TOTAL_MEMORY_OPERATIONS").unwrap();
        assert_eq!(
            f.to_string(),
            "MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES"
        );
        assert_eq!(
            layer
                .required_hw_events("skl", "TOTAL_MEMORY_OPERATIONS")
                .unwrap(),
            vec![
                "MEM_INST_RETIRED:ALL_LOADS".to_string(),
                "MEM_INST_RETIRED:ALL_STORES".to_string()
            ]
        );
    }

    #[test]
    fn evaluation_through_resolver() {
        let mut layer = AbstractionLayer::new();
        layer.register_config(SAMPLE).unwrap();
        let v = layer
            .evaluate("skl", "AVX512_DP_FLOPS", |e| {
                (e == "FP_ARITH:512B_PACKED_DOUBLE").then_some(100.0)
            })
            .unwrap();
        assert_eq!(v, 800.0);
    }

    #[test]
    fn unmapped_event_errors() {
        let mut layer = AbstractionLayer::new();
        layer.register_config(SAMPLE).unwrap();
        assert!(matches!(
            layer.formula("skl", "MYSTERY"),
            Err(PmoveError::UnmappedEvent { .. })
        ));
        assert!(layer.formula("ghostpmu", "CPU_CYCLES").is_err());
    }

    #[test]
    fn later_registration_extends() {
        let mut layer = AbstractionLayer::new();
        layer.register_config("[skl]\nA: X\n").unwrap();
        layer.register_config("[skl]\nB: Y\nA: Z\n").unwrap();
        assert_eq!(layer.formula("skl", "B").unwrap().to_string(), "Y");
        assert_eq!(layer.formula("skl", "A").unwrap().to_string(), "Z");
        assert_eq!(layer.pmu_names().len(), 1);
    }

    #[test]
    fn malformed_configs_rejected() {
        let mut layer = AbstractionLayer::new();
        assert!(layer.register_config("A: X\n").is_err()); // no header
        assert!(layer.register_config("[p]\nnocolon\n").is_err());
        assert!(layer.register_config("[]\n").is_err());
        assert!(layer.register_config("[p]\nA: X +\n").is_err());
    }

    #[test]
    fn common_event_coverage_check() {
        let mut layer = AbstractionLayer::new();
        layer.register_config("[p]\nCPU_CYCLES: C\n").unwrap();
        let missing = layer.missing_common_events("p");
        assert!(!missing.contains(&"CPU_CYCLES".to_string()));
        assert!(missing.contains(&"RAPL_ENERGY_PKG".to_string()));
        assert_eq!(
            layer.missing_common_events("ghost").len(),
            crate::abstraction::events::COMMON_EVENTS.len()
        );
    }
}
