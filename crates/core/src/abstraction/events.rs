//! Generic event names.
//!
//! The paper establishes "a set of common events ... assumed to be
//! supported by the commodity CPUs"; everything else is left to the
//! user's discretion via config files.

/// The common generic events every supported CPU must map
/// (paper examples: `L1_CACHE_DATA_MISS`, `FP_DIV_RETIRED`,
/// `RAPL_ENERGY_PKG`).
pub const COMMON_EVENTS: &[&str] = &[
    "CPU_CYCLES",
    "RETIRED_INSTRUCTIONS",
    "TOTAL_MEMORY_OPERATIONS",
    "TOTAL_DP_FLOPS",
    "L1_CACHE_DATA_MISS",
    "FP_DIV_RETIRED",
    "RAPL_ENERGY_PKG",
];

/// Extended generic events mapped where hardware allows (per-width FLOP
/// counts for live-CARM, L3 hits on AMD, DRAM energy on AMD).
pub const EXTENDED_EVENTS: &[&str] = &[
    "SCALAR_DP_FLOPS",
    "SSE_DP_FLOPS",
    "AVX2_DP_FLOPS",
    "AVX512_DP_FLOPS",
    "SCALAR_DP_INSTRUCTIONS",
    "AVX512_DP_INSTRUCTIONS",
    "L3_HIT",
    "RAPL_ENERGY_DRAM",
];

/// Is this one of the events all PMU configs must define?
pub fn is_common(event: &str) -> bool {
    COMMON_EVENTS.contains(&event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_are_common() {
        assert!(is_common("L1_CACHE_DATA_MISS"));
        assert!(is_common("FP_DIV_RETIRED"));
        assert!(is_common("RAPL_ENERGY_PKG"));
        assert!(!is_common("AVX512_DP_FLOPS"));
        assert!(!is_common("MADE_UP"));
    }

    #[test]
    fn no_overlap_between_sets() {
        for e in EXTENDED_EVENTS {
            assert!(!COMMON_EVENTS.contains(e));
        }
    }
}
