//! The Abstraction Layer (paper §IV-A).
//!
//! PMUs and their events vary across vendors and microarchitectures
//! (Table I). The abstraction layer maps *generic* event names onto
//! HW-specific PMU formulas through configuration files, so profiling
//! code is platform-agnostic:
//!
//! ```text
//! [pmu_name | alias]
//! <generic_event>:<hardware_event_1> [op]
//! [op] : ((+|-|*|/) (<hw_event> | <const>)) [op]
//! ```

pub mod config;
pub mod events;
pub mod expr;
pub mod pmu_utils;
pub mod presets;

pub use config::{AbstractionLayer, PmuConfig};
pub use expr::{Formula, Token};
pub use pmu_utils::PmuUtils;
