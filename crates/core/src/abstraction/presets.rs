//! Builtin abstraction-layer configurations for the paper's four targets.
//!
//! These reproduce Table I: the same generic event resolves to identical
//! names (Energy on package), similar names, different names
//! (total memory operations), or exclusive events (L3 hit accounting is
//! AMD-only; width-split FP counts are Intel-only).

use crate::abstraction::config::AbstractionLayer;

/// Config text for the Intel server parts (SKX and CSL share the mapping;
/// ICL differs only in alias).
pub const INTEL_CONFIG: &str = "\
# Intel Skylake-X / Cascade Lake / Ice Lake mappings
[skx | skylakex]
CPU_CYCLES: UNHALTED_CORE_CYCLES
RETIRED_INSTRUCTIONS: INSTRUCTION_RETIRED
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
SCALAR_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE
SCALAR_DP_INSTRUCTIONS: FP_ARITH:SCALAR_DOUBLE
SSE_DP_FLOPS: FP_ARITH:128B_PACKED_DOUBLE * 2
AVX2_DP_FLOPS: FP_ARITH:256B_PACKED_DOUBLE * 4
AVX512_DP_FLOPS: FP_ARITH:512B_PACKED_DOUBLE * 8
AVX512_DP_INSTRUCTIONS: FP_ARITH:512B_PACKED_DOUBLE
TOTAL_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
FP_DIV_RETIRED: ARITH:DIVIDER_ACTIVE
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG

[csl | cascadelake]
CPU_CYCLES: UNHALTED_CORE_CYCLES
RETIRED_INSTRUCTIONS: INSTRUCTION_RETIRED
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
SCALAR_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE
SCALAR_DP_INSTRUCTIONS: FP_ARITH:SCALAR_DOUBLE
SSE_DP_FLOPS: FP_ARITH:128B_PACKED_DOUBLE * 2
AVX2_DP_FLOPS: FP_ARITH:256B_PACKED_DOUBLE * 4
AVX512_DP_FLOPS: FP_ARITH:512B_PACKED_DOUBLE * 8
AVX512_DP_INSTRUCTIONS: FP_ARITH:512B_PACKED_DOUBLE
TOTAL_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
FP_DIV_RETIRED: ARITH:DIVIDER_ACTIVE
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG

[icl | icelake]
CPU_CYCLES: UNHALTED_CORE_CYCLES
RETIRED_INSTRUCTIONS: INSTRUCTION_RETIRED
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
SCALAR_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE
SCALAR_DP_INSTRUCTIONS: FP_ARITH:SCALAR_DOUBLE
SSE_DP_FLOPS: FP_ARITH:128B_PACKED_DOUBLE * 2
AVX2_DP_FLOPS: FP_ARITH:256B_PACKED_DOUBLE * 4
AVX512_DP_FLOPS: FP_ARITH:512B_PACKED_DOUBLE * 8
AVX512_DP_INSTRUCTIONS: FP_ARITH:512B_PACKED_DOUBLE
TOTAL_DP_FLOPS: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
FP_DIV_RETIRED: ARITH:DIVIDER_ACTIVE
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
";

/// Config text for AMD Zen 3. Note the Table I contrasts: DRAM energy and
/// L3-hit accounting exist here but not on the Intel parts; total memory
/// operations use `LS_DISPATCH`; all FLOP widths merge into one counter.
/// (Table I lists the L3-hit events with a `+`; hits are computed as
/// references minus misses.)
pub const AMD_CONFIG: &str = "\
[zen3 | amdzen3]
CPU_CYCLES: CYCLES_NOT_IN_HALT
RETIRED_INSTRUCTIONS: RETIRED_INSTRUCTIONS
TOTAL_MEMORY_OPERATIONS: LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH
TOTAL_DP_FLOPS: RETIRED_SSE_AVX_FLOPS:ANY
L1_CACHE_DATA_MISS: L1_DATA_CACHE_MISS
L3_HIT: LONGEST_LAT_CACHE:RETIRED - LONGEST_LAT_CACHE:MISS
FP_DIV_RETIRED: FP_DIV_RETIRED
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
RAPL_ENERGY_DRAM: RAPL_ENERGY_DRAM
";

/// The abstraction layer with all builtin configs registered.
pub fn builtin_layer() -> AbstractionLayer {
    let mut layer = AbstractionLayer::new();
    layer
        .register_config(INTEL_CONFIG)
        .expect("builtin Intel config is valid");
    layer
        .register_config(AMD_CONFIG)
        .expect("builtin AMD config is valid");
    layer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_layer_covers_all_four_targets() {
        let layer = builtin_layer();
        for pmu in ["skx", "csl", "icl", "zen3"] {
            assert!(layer.pmu(pmu).is_some(), "{pmu} missing");
            assert!(
                layer.missing_common_events(pmu).is_empty(),
                "{pmu} missing common events: {:?}",
                layer.missing_common_events(pmu)
            );
        }
    }

    #[test]
    fn table1_same_similar_different_exclusive() {
        let layer = builtin_layer();
        // Same: energy.
        assert_eq!(
            layer.formula("csl", "RAPL_ENERGY_PKG").unwrap().to_string(),
            layer
                .formula("zen3", "RAPL_ENERGY_PKG")
                .unwrap()
                .to_string()
        );
        // Different: total memory operations.
        assert!(layer
            .formula("csl", "TOTAL_MEMORY_OPERATIONS")
            .unwrap()
            .to_string()
            .contains("MEM_INST_RETIRED"));
        assert!(layer
            .formula("zen3", "TOTAL_MEMORY_OPERATIONS")
            .unwrap()
            .to_string()
            .contains("LS_DISPATCH"));
        // Exclusive: L3 hit on AMD only, DRAM energy on AMD only.
        assert!(layer.formula("zen3", "L3_HIT").is_ok());
        assert!(layer.formula("csl", "L3_HIT").is_err());
        assert!(layer.formula("zen3", "RAPL_ENERGY_DRAM").is_ok());
        assert!(layer.formula("csl", "RAPL_ENERGY_DRAM").is_err());
        // Exclusive the other way: width-split FP counts on Intel only.
        assert!(layer.formula("csl", "AVX512_DP_FLOPS").is_ok());
        assert!(layer.formula("zen3", "AVX512_DP_FLOPS").is_err());
    }

    #[test]
    fn total_flops_formula_weights_widths() {
        let layer = builtin_layer();
        // 10 scalar instr + 10 avx512 instr = 10·1 + 10·8 = 90 flops.
        let v = layer
            .evaluate("skx", "TOTAL_DP_FLOPS", |e| {
                Some(match e {
                    "FP_ARITH:SCALAR_DOUBLE" | "FP_ARITH:512B_PACKED_DOUBLE" => 10.0,
                    _ => 0.0,
                })
            })
            .unwrap();
        assert_eq!(v, 90.0);
    }

    #[test]
    fn amd_l3_hit_is_refs_minus_misses() {
        let layer = builtin_layer();
        let v = layer
            .evaluate("zen3", "L3_HIT", |e| {
                Some(match e {
                    "LONGEST_LAT_CACHE:RETIRED" => 100.0,
                    "LONGEST_LAT_CACHE:MISS" => 30.0,
                    _ => 0.0,
                })
            })
            .unwrap();
        assert_eq!(v, 70.0);
    }

    #[test]
    fn aliases_resolve() {
        let layer = builtin_layer();
        assert!(layer.pmu("skylakex").is_some());
        assert!(layer.pmu("amdzen3").is_some());
    }
}
