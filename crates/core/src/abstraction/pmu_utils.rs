//! `pmu_utils` — the CPU-agnostic in-program event access of §IV-A:
//!
//! ```text
//! > pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS")
//! > [ "MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES" ]
//! ```

use crate::abstraction::config::AbstractionLayer;
use crate::abstraction::expr::Token;
use crate::error::PmoveError;

/// Thin façade over the abstraction layer matching the paper's
/// `pmu_utils.get(HW_PMU_NAME, COMMON_EVENT_NAME)` API.
pub struct PmuUtils<'a> {
    layer: &'a AbstractionLayer,
}

impl<'a> PmuUtils<'a> {
    /// Wrap a layer.
    pub fn new(layer: &'a AbstractionLayer) -> Self {
        PmuUtils { layer }
    }

    /// The formula for `(pmu, generic_event)` as a token-string list —
    /// exactly the return shape shown in the paper.
    pub fn get(&self, pmu: &str, generic: &str) -> Result<Vec<String>, PmoveError> {
        Ok(self
            .layer
            .formula(pmu, generic)?
            .tokens
            .iter()
            .map(|t| match t {
                Token::Event(e) => e.clone(),
                Token::Const(c) => c.to_string(),
                Token::Op(o) => o.to_string(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::presets::builtin_layer;

    #[test]
    fn matches_paper_output_shape() {
        let layer = builtin_layer();
        let utils = PmuUtils::new(&layer);
        let got = utils.get("skx", "TOTAL_MEMORY_OPERATIONS").unwrap();
        assert_eq!(
            got,
            vec![
                "MEM_INST_RETIRED:ALL_LOADS".to_string(),
                "+".to_string(),
                "MEM_INST_RETIRED:ALL_STORES".to_string(),
            ]
        );
    }

    #[test]
    fn constants_render_as_strings() {
        let layer = builtin_layer();
        let utils = PmuUtils::new(&layer);
        let got = utils.get("csl", "AVX512_DP_FLOPS").unwrap();
        assert_eq!(got, vec!["FP_ARITH:512B_PACKED_DOUBLE", "*", "8"]);
    }

    #[test]
    fn unknown_pmu_errors() {
        let layer = builtin_layer();
        assert!(PmuUtils::new(&layer).get("vax780", "CPU_CYCLES").is_err());
    }
}
