//! Event formulas: token sequences with `+ - * /` over hardware events
//! and constants, evaluated with standard operator precedence.

use crate::error::PmoveError;
use std::fmt;

/// One token of a formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A hardware event name (`MEM_INST_RETIRED:ALL_LOADS`).
    Event(String),
    /// A numeric constant (the `* 8` in width-scaling formulas).
    Const(f64),
    /// An operator: `+`, `-`, `*`, `/`.
    Op(char),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Event(e) => write!(f, "{e}"),
            Token::Const(c) => write!(f, "{c}"),
            Token::Op(o) => write!(f, "{o}"),
        }
    }
}

/// A parsed formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    /// Token sequence: operand (op operand)*.
    pub tokens: Vec<Token>,
}

impl Formula {
    /// Parse the right-hand side of a config line. Operands and operators
    /// are whitespace-separated; `8`/`8.0` parse as constants, everything
    /// else as a hardware event name.
    pub fn parse(text: &str) -> Result<Formula, PmoveError> {
        let mut tokens = Vec::new();
        for (i, raw) in text.split_whitespace().enumerate() {
            let expect_op = i % 2 == 1;
            if expect_op {
                let mut chars = raw.chars();
                match (chars.next(), chars.next()) {
                    (Some(c @ ('+' | '-' | '*' | '/')), None) => tokens.push(Token::Op(c)),
                    _ => {
                        return Err(PmoveError::BadEventConfig(format!(
                            "expected operator, found `{raw}` in `{text}`"
                        )))
                    }
                }
            } else if let Ok(c) = raw.parse::<f64>() {
                tokens.push(Token::Const(c));
            } else {
                tokens.push(Token::Event(raw.to_string()));
            }
        }
        if tokens.is_empty() {
            return Err(PmoveError::BadEventConfig("empty formula".into()));
        }
        if tokens.len() % 2 == 0 {
            return Err(PmoveError::BadEventConfig(format!(
                "formula ends with an operator: `{text}`"
            )));
        }
        Ok(Formula { tokens })
    }

    /// Hardware events referenced by the formula.
    pub fn events(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match t {
                Token::Event(e) => Some(e.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Evaluate with standard precedence (`*`/`/` bind tighter than
    /// `+`/`-`), resolving events through `resolve`. Unknown events make
    /// the evaluation fail.
    pub fn eval<F>(&self, mut resolve: F) -> Result<f64, PmoveError>
    where
        F: FnMut(&str) -> Option<f64>,
    {
        // First pass: resolve operands.
        let mut operands: Vec<f64> = Vec::new();
        let mut ops: Vec<char> = Vec::new();
        for t in &self.tokens {
            match t {
                Token::Event(e) => {
                    operands.push(resolve(e).ok_or_else(|| PmoveError::UnmappedEvent {
                        pmu: "<resolver>".into(),
                        event: e.clone(),
                    })?)
                }
                Token::Const(c) => operands.push(*c),
                Token::Op(o) => ops.push(*o),
            }
        }
        // Second pass: collapse * and /.
        let mut values = vec![operands[0]];
        let mut add_ops = Vec::new();
        for (op, rhs) in ops.iter().zip(&operands[1..]) {
            match op {
                '*' => {
                    let top = values.last_mut().expect("non-empty");
                    *top *= rhs;
                }
                '/' => {
                    let top = values.last_mut().expect("non-empty");
                    *top /= rhs;
                }
                _ => {
                    add_ops.push(*op);
                    values.push(*rhs);
                }
            }
        }
        // Third pass: fold + and -.
        let mut acc = values[0];
        for (op, v) in add_ops.iter().zip(&values[1..]) {
            match op {
                '+' => acc += v,
                '-' => acc -= v,
                _ => unreachable!("filtered above"),
            }
        }
        Ok(acc)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.tokens.iter().map(|t| t.to_string()).collect();
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let f = Formula::parse("MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES").unwrap();
        assert_eq!(f.tokens.len(), 3);
        assert_eq!(
            f.events(),
            vec!["MEM_INST_RETIRED:ALL_LOADS", "MEM_INST_RETIRED:ALL_STORES"]
        );
    }

    #[test]
    fn constants_parse() {
        let f = Formula::parse("FP_ARITH:512B_PACKED_DOUBLE * 8").unwrap();
        assert_eq!(f.tokens[2], Token::Const(8.0));
    }

    #[test]
    fn precedence_mul_before_add() {
        // a + b * 2 with a=10, b=3 → 16 (not 26).
        let f = Formula::parse("A + B * 2").unwrap();
        let v = f.eval(|e| Some(if e == "A" { 10.0 } else { 3.0 })).unwrap();
        assert_eq!(v, 16.0);
        // The live-CARM flops chain: s * 1 + x * 2 + y * 4 + z * 8.
        let f = Formula::parse("S * 1 + X * 2 + Y * 4 + Z * 8").unwrap();
        let v = f.eval(|_| Some(1.0)).unwrap();
        assert_eq!(v, 15.0);
    }

    #[test]
    fn subtraction_and_division() {
        let f = Formula::parse("A - B / 2").unwrap();
        let v = f.eval(|e| Some(if e == "A" { 10.0 } else { 4.0 })).unwrap();
        assert_eq!(v, 8.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Formula::parse("").is_err());
        assert!(Formula::parse("A +").is_err());
        assert!(Formula::parse("A B").is_err()); // missing operator
        assert!(Formula::parse("A ** B").is_err());
    }

    #[test]
    fn unknown_event_fails_eval() {
        let f = Formula::parse("MYSTERY + 1").unwrap();
        assert!(f.eval(|_| None).is_err());
    }

    #[test]
    fn display_roundtrip() {
        let text = "A + B * 8";
        let f = Formula::parse(text).unwrap();
        assert_eq!(f.to_string(), text);
        assert_eq!(Formula::parse(&f.to_string()).unwrap(), f);
    }
}
