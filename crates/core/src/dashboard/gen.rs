//! Automatic dashboard generation from the KB (§III-B).
//!
//! The tree-structured KB makes dashboards fully automatic: the *focus*,
//! *subtree*, and *level* views each select a set of interfaces, collect
//! their telemetry measurements, and emit one panel per measurement with
//! one target per field.

use crate::dashboard::model::{Dashboard, Datasource, Target};
use crate::kb::views;
use crate::kb::KnowledgeBase;
use pmove_jsonld::{Dtmi, Interface};

fn targets_for(kb: &KnowledgeBase, interfaces: &[&Interface]) -> Vec<(String, Vec<Target>)> {
    views::telemetry_measurements(interfaces)
        .into_iter()
        .map(|(measurement, fields)| {
            let targets = if fields.is_empty() {
                vec![Target {
                    datasource: Datasource::influx(&kb.db.influx_uid),
                    measurement: measurement.clone(),
                    params: "value".into(),
                }]
            } else {
                fields
                    .into_iter()
                    .map(|f| Target {
                        datasource: Datasource::influx(&kb.db.influx_uid),
                        measurement: measurement.clone(),
                        params: f,
                    })
                    .collect()
            };
            (measurement, targets)
        })
        .collect()
}

fn build(kb: &KnowledgeBase, id: u32, title: String, interfaces: &[&Interface]) -> Dashboard {
    let mut d = Dashboard::new(id, title);
    for (measurement, targets) in targets_for(kb, interfaces) {
        d = d.panel(measurement, targets);
    }
    d
}

/// Focus view: metrics of a single component; with `extend_to_root`, one
/// panel group per component on the path to the system twin (root-cause
/// navigation).
pub fn focus_dashboard(kb: &KnowledgeBase, id: &Dtmi, extend_to_root: bool) -> Option<Dashboard> {
    if extend_to_root {
        let path = views::focus_path(kb, id);
        if path.is_empty() {
            return None;
        }
        let title = format!("focus-path: {}", path[0].display_name);
        Some(build(kb, 1, title, &path))
    } else {
        let iface = views::focus(kb, id)?;
        Some(build(
            kb,
            1,
            format!("focus: {}", iface.display_name),
            &[iface],
        ))
    }
}

/// Subtree view: a component and all its descendants.
pub fn subtree_dashboard(kb: &KnowledgeBase, id: &Dtmi) -> Option<Dashboard> {
    let sub = views::subtree(kb, id);
    if sub.is_empty() {
        return None;
    }
    let title = format!("subtree: {}", sub[0].display_name);
    Some(build(kb, 2, title, &sub))
}

/// Level view: all components of one type (optionally restricted to a
/// name list — e.g. the processes of one SpMV run).
pub fn level_dashboard(kb: &KnowledgeBase, component_type: &str) -> Option<Dashboard> {
    let level = views::level(kb, component_type);
    if level.is_empty() {
        return None;
    }
    Some(build(kb, 3, format!("level: {component_type}"), &level))
}

/// Self-observability dashboard (the framework watching itself): built
/// from a registry [`Snapshot`](pmove_obs::Snapshot) instead of KB
/// telemetry, targeting the `pmove.self.*` series that
/// [`export_snapshot`](pmove_tsdb::export_snapshot) writes.
///
/// Panels: transport loss (loss gauge + the four conservation counters),
/// one latency panel per histogram (p50/p90/p99 targets), per-daemon-step
/// span timings, and the remaining spans.
pub fn self_dashboard(kb: &KnowledgeBase, snap: &pmove_obs::Snapshot) -> Dashboard {
    use pmove_tsdb::self_export::{measurement_for, SELF_PREFIX, SPAN_PREFIX};
    let target = |measurement: &str, params: &str| Target {
        datasource: Datasource::influx(&kb.db.influx_uid),
        measurement: measurement.to_string(),
        params: params.to_string(),
    };

    let mut d = Dashboard::new(4, format!("self: {}", kb.machine_key));

    // Transport loss accounting: the gauge plus the conservation terms.
    let loss_targets: Vec<Target> = [
        "pcp.transport.loss_pct",
        "pcp.transport.values_offered",
        "pcp.transport.values_inserted",
        "pcp.transport.values_zeroed",
        "pcp.transport.values_lost",
    ]
    .iter()
    .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
    .collect();
    d = d.panel("transport loss", loss_targets);

    // One panel per histogram, quantile targets.
    let mut seen = Vec::new();
    for (key, _) in &snap.histograms {
        if seen.contains(&key.name) {
            continue;
        }
        seen.push(key.name.clone());
        let m = measurement_for(&key.name);
        let targets = ["p50", "p90", "p99"]
            .iter()
            .map(|q| target(&m, q))
            .collect();
        d = d.panel(key.name.clone(), targets);
    }

    // Storage engine: WAL, compaction, and docdb journal counters, when
    // the daemon runs over durable storage.
    let mut seen_storage = Vec::new();
    let storage_targets: Vec<Target> = snap
        .counters
        .iter()
        .filter(|(key, _)| {
            key.name.starts_with("wal.")
                || key.name.starts_with("store.wal.")
                || key.name.starts_with("compaction.")
                || key.name.starts_with("docdb.journal.")
        })
        .filter(|(key, _)| {
            if seen_storage.contains(&key.name) {
                false
            } else {
                seen_storage.push(key.name.clone());
                true
            }
        })
        .map(|(key, _)| target(&format!("{SELF_PREFIX}{}", key.name), "value"))
        .collect();
    if !storage_targets.is_empty() {
        d = d.panel("storage engine", storage_targets);
    }

    // Query engine: parallel-executor and result-cache counters. The
    // engine registers these on attach, so every observed daemon grows the
    // panel (hit rates read as flat zero until queries run).
    let mut seen_query = Vec::new();
    let query_targets: Vec<Target> = snap
        .counters
        .iter()
        .filter(|(key, _)| {
            key.name.starts_with("tsdb.query.") || key.name.starts_with("tsdb.cache.")
        })
        .filter(|(key, _)| {
            if seen_query.contains(&key.name) {
                false
            } else {
                seen_query.push(key.name.clone());
                true
            }
        })
        .map(|(key, _)| target(&format!("{SELF_PREFIX}{}", key.name), "value"))
        .collect();
    if !query_targets.is_empty() {
        d = d.panel("query engine", query_targets);
    }

    // Transport resilience: spill/retry/breaker counters and gauges, when
    // the self-healing transport mode has been active. Plain runs carry
    // only the zero-valued supervision counters, so they grow no panel.
    let mut resilience_names: Vec<String> = snap
        .counters
        .iter()
        .filter(|(key, value)| key.name.starts_with("pcp.resilience.") && *value > 0)
        .map(|(key, _)| key.name.clone())
        .chain(
            snap.gauges
                .iter()
                .filter(|(key, _)| key.name.starts_with("pcp.resilience."))
                .map(|(key, _)| key.name.clone()),
        )
        .collect();
    resilience_names.sort();
    resilience_names.dedup();
    let resilience_targets: Vec<Target> = resilience_names
        .iter()
        .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
        .collect();
    if !resilience_targets.is_empty() {
        d = d.panel("transport resilience", resilience_targets);
    }

    // Replication: quorum-write, hinted-handoff, and anti-entropy
    // counters plus the coordinator's health gauges, when the daemon
    // boots the replicated store. Non-replicated runs register none of
    // these names, so they grow no panel.
    let mut repl_names: Vec<String> = snap
        .counters
        .iter()
        .filter(|(key, value)| key.name.starts_with("tsdb.repl.") && *value > 0)
        .map(|(key, _)| key.name.clone())
        .chain(
            snap.gauges
                .iter()
                .filter(|(key, _)| key.name.starts_with("tsdb.repl."))
                .map(|(key, _)| key.name.clone()),
        )
        .collect();
    repl_names.sort();
    repl_names.dedup();
    let repl_targets: Vec<Target> = repl_names
        .iter()
        .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
        .collect();
    if !repl_targets.is_empty() {
        d = d.panel("replication", repl_targets);
    }

    // Integrity: scrubber progress counters plus the full-pass heartbeat
    // gauge, when the background scrubber has run (or boot-time
    // verification quarantined something). Stores without scrubbing
    // register only zero-valued counters and no gauge, so they grow no
    // panel.
    let mut scrub_names: Vec<String> = snap
        .counters
        .iter()
        .filter(|(key, value)| key.name.starts_with("store.scrub.") && *value > 0)
        .map(|(key, _)| key.name.clone())
        .chain(
            snap.gauges
                .iter()
                .filter(|(key, _)| key.name.starts_with("store.scrub."))
                .map(|(key, _)| key.name.clone()),
        )
        .collect();
    scrub_names.sort();
    scrub_names.dedup();
    let scrub_targets: Vec<Target> = scrub_names
        .iter()
        .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
        .collect();
    if !scrub_targets.is_empty() {
        d = d.panel("integrity", scrub_targets);
    }

    // Backup & disaster recovery: archiver/snapshot progress counters,
    // the last-success heartbeat gauge the backup-staleness SLO watches,
    // restore accounting, and the drill's bit-exact pass/fail gauge.
    // Daemons without backups enabled register none of these names, so
    // they grow no panel.
    let mut backup_names: Vec<String> = snap
        .counters
        .iter()
        .filter(|(key, value)| {
            (key.name.starts_with("store.backup.")
                || key.name.starts_with("tsdb.restore.")
                || key.name.starts_with("daemon.drill."))
                && *value > 0
        })
        .map(|(key, _)| key.name.clone())
        .chain(
            snap.gauges
                .iter()
                .filter(|(key, _)| {
                    key.name.starts_with("store.backup.") || key.name.starts_with("daemon.drill.")
                })
                .map(|(key, _)| key.name.clone()),
        )
        .collect();
    backup_names.sort();
    backup_names.dedup();
    let backup_targets: Vec<Target> = backup_names
        .iter()
        .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
        .collect();
    if !backup_targets.is_empty() {
        d = d.panel("backup & DR", backup_targets);
    }

    // Batch ingest & rollup tiers: columnar write-path throughput and the
    // continuous-query materialization counters, when the batched path or
    // the rollup engine has run. Row-at-a-time runs with rollups disabled
    // register only zero-valued counters, so they grow no panel.
    let mut batch_names: Vec<String> = snap
        .counters
        .iter()
        .filter(|(key, value)| {
            (key.name.starts_with("tsdb.batch.") || key.name.starts_with("tsdb.rollup."))
                && *value > 0
        })
        .map(|(key, _)| key.name.clone())
        .collect();
    batch_names.sort();
    batch_names.dedup();
    let batch_targets: Vec<Target> = batch_names
        .iter()
        .map(|name| target(&format!("{SELF_PREFIX}{name}"), "value"))
        .collect();
    if !batch_targets.is_empty() {
        d = d.panel("batch & rollup", batch_targets);
    }

    // Tracing & SLO: the SLO engine's meta-metrics and the tracer's
    // lifetime counters. Both families live in the `pmove.` namespace and
    // export under their own names (no `pmove.self.` prefix), so the
    // targets address them directly. Untraced runs register none of
    // these, so they grow no panel.
    let mut obs_names: Vec<String> = snap
        .counters
        .iter()
        .map(|(key, _)| key.name.clone())
        .chain(snap.gauges.iter().map(|(key, _)| key.name.clone()))
        .filter(|name| name.starts_with("pmove.slo.") || name.starts_with("pmove.trace."))
        .collect();
    obs_names.sort();
    obs_names.dedup();
    let obs_targets: Vec<Target> = obs_names.iter().map(|name| target(name, "value")).collect();
    if !obs_targets.is_empty() {
        d = d.panel("tracing & SLO", obs_targets);
    }

    // Query serving: admission, shed, and execution counters plus the
    // per-tenant cache hit/miss and coalescing series, when the
    // multi-tenant serving layer has run. Serving metrics live under
    // `pmove.serve.` (exported unprefixed) and keep their labels, so
    // each labeled series gets its own target — per-tenant cache
    // behaviour reads directly off the panel. Runs that never serve
    // register none of these names, so they grow no panel.
    let mut serve_series: Vec<(String, String)> = snap
        .counters
        .iter()
        .map(|(key, _)| key)
        .chain(snap.gauges.iter().map(|(key, _)| key))
        .filter(|key| key.name.starts_with("pmove.serve."))
        .map(|key| {
            let params = if key.labels.is_empty() {
                "value".to_string()
            } else {
                key.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            (key.name.clone(), params)
        })
        .collect();
    serve_series.sort();
    serve_series.dedup();
    let serve_targets: Vec<Target> = serve_series
        .iter()
        .map(|(name, params)| target(name, params))
        .collect();
    if !serve_targets.is_empty() {
        d = d.panel("query serving", serve_targets);
    }

    // Span timings: daemon boot steps get their own panel.
    let step_targets: Vec<Target> = snap
        .spans
        .iter()
        .filter(|(name, _)| name.starts_with("daemon.step"))
        .map(|(name, _)| target(&format!("{SPAN_PREFIX}{name}"), "mean_ns"))
        .collect();
    if !step_targets.is_empty() {
        d = d.panel("daemon steps", step_targets);
    }
    let other_targets: Vec<Target> = snap
        .spans
        .iter()
        .filter(|(name, _)| !name.starts_with("daemon.step"))
        .map(|(name, _)| target(&format!("{SPAN_PREFIX}{name}"), "mean_ns"))
        .collect();
    if !other_targets.is_empty() {
        d = d.panel("spans", other_targets);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::builder::build_kb;
    use crate::probe::ProbeReport;
    use pmove_hwsim::Machine;

    fn kb() -> KnowledgeBase {
        build_kb(&ProbeReport::collect(&Machine::preset("icl").unwrap())).unwrap()
    }

    #[test]
    fn focus_dashboard_for_a_cache() {
        // Fig. 2(a) is a focus-view dashboard for a cache.
        let kb = kb();
        let l1 = kb.by_name("l1cache0").unwrap();
        let d = focus_dashboard(&kb, &l1.id.clone(), false).unwrap();
        assert!(d.title.contains("l1cache0"));
        // Caches carry no telemetry by default → no panels, but the
        // extended path picks up the core/socket/system metrics.
        let dp = focus_dashboard(&kb, &l1.id.clone(), true).unwrap();
        assert!(dp.target_count() > 0);
        assert!(dp.title.starts_with("focus-path"));
    }

    #[test]
    fn focus_dashboard_for_thread_has_its_fields_only() {
        let kb = kb();
        let cpu3 = kb.by_name("cpu3").unwrap();
        let d = focus_dashboard(&kb, &cpu3.id.clone(), false).unwrap();
        assert!(d.target_count() > 0);
        for p in &d.panels {
            for t in &p.targets {
                assert_eq!(t.params, "_cpu3", "panel {}", p.title);
                assert_eq!(t.datasource.uid, "UUkm1881");
            }
        }
    }

    #[test]
    fn subtree_dashboard_for_socket_covers_all_threads() {
        // Fig. 2(b): subtree view for a whole server/socket.
        let kb = kb();
        let socket = kb.by_name("socket0").unwrap();
        let d = subtree_dashboard(&kb, &socket.id.clone()).unwrap();
        let idle = d
            .panels
            .iter()
            .find(|p| p.title == "kernel_percpu_cpu_idle")
            .expect("per-cpu idle panel");
        assert_eq!(idle.targets.len(), 16);
    }

    #[test]
    fn level_dashboard_isolates_type() {
        // Fig. 2(c/d): level views across same-type components.
        let kb = kb();
        let d = level_dashboard(&kb, "numanode").unwrap();
        assert!(d.panels.iter().any(|p| p.title == "mem_numa_alloc_hit"));
        // All targets are node fields.
        for p in &d.panels {
            for t in &p.targets {
                assert!(t.params.starts_with("_node"), "{}", t.params);
            }
        }
        assert!(level_dashboard(&kb, "gpu").is_none());
    }

    #[test]
    fn self_dashboard_adds_tracing_slo_panel_when_observed() {
        let kb = kb();
        let reg = pmove_obs::Registry::new();
        reg.gauge("pmove.slo.state", &[("slo", "ingest_p99")])
            .set(0.0);
        reg.counter("pmove.slo.transitions", &[("slo", "ingest_p99")])
            .inc();
        reg.gauge("pmove.trace.started", &[]).set(5.0);
        let d = self_dashboard(&kb, &reg.snapshot());
        let panel = d
            .panels
            .iter()
            .find(|p| p.title == "tracing & SLO")
            .expect("tracing & SLO panel");
        // The pmove.* names address their own measurements — no
        // pmove.self. prefix.
        assert!(panel
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.slo.state"));
        assert!(panel
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.trace.started"));
        assert!(panel
            .targets
            .iter()
            .all(|t| !t.measurement.starts_with("pmove.self.")));
        // Untraced registries grow no panel.
        let d0 = self_dashboard(&kb, &pmove_obs::Registry::new().snapshot());
        assert!(d0.panels.iter().all(|p| p.title != "tracing & SLO"));
    }

    #[test]
    fn self_dashboard_adds_query_serving_panel_when_served() {
        let kb = kb();
        let reg = pmove_obs::Registry::new();
        reg.counter("pmove.serve.submitted_total", &[]).add(16);
        reg.counter("pmove.serve.cache_hits_total", &[("tenant", "3")])
            .add(5);
        reg.counter("pmove.serve.cache_misses_total", &[("tenant", "3")])
            .add(2);
        reg.counter("pmove.serve.coalesced_total", &[("tenant", "0")])
            .add(7);
        reg.gauge("pmove.serve.queue_depth", &[]).set(0.0);
        let d = self_dashboard(&kb, &reg.snapshot());
        let panel = d
            .panels
            .iter()
            .find(|p| p.title == "query serving")
            .expect("query serving panel");
        // Serving names address their own measurements, and labeled
        // series keep their tenant in the target params.
        assert!(panel
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.serve.cache_hits_total" && t.params == "tenant=3"));
        assert!(panel
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.serve.coalesced_total" && t.params == "tenant=0"));
        assert!(panel
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.serve.submitted_total" && t.params == "value"));
        assert!(panel
            .targets
            .iter()
            .all(|t| !t.measurement.starts_with("pmove.self.")));
        // Runs that never served grow no panel.
        let d0 = self_dashboard(&kb, &pmove_obs::Registry::new().snapshot());
        assert!(d0.panels.iter().all(|p| p.title != "query serving"));
    }

    #[test]
    fn dashboards_serialize_to_shareable_json() {
        let kb = kb();
        let d = level_dashboard(&kb, "thread").unwrap();
        let j = d.to_json();
        let back = Dashboard::from_json(&j).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn self_dashboard_covers_loss_latency_and_steps() {
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        d.monitor(5.0, 2.0);
        let dash = d.self_dashboard();
        assert!(dash.title.starts_with("self:"));
        let titles: Vec<&str> = dash.panels.iter().map(|p| p.title.as_str()).collect();
        assert!(titles.contains(&"transport loss"));
        assert!(titles.contains(&"tsdb.ingest_ns"));
        assert!(titles.contains(&"daemon steps"));
        // Loss panel carries the conservation terms.
        let loss = dash
            .panels
            .iter()
            .find(|p| p.title == "transport loss")
            .unwrap();
        assert!(loss
            .targets
            .iter()
            .any(|t| t.measurement == "pmove.self.pcp.transport.values_lost"));
        // Latency panels target quantiles.
        let ingest = dash
            .panels
            .iter()
            .find(|p| p.title == "tsdb.ingest_ns")
            .unwrap();
        let params: Vec<&str> = ingest.targets.iter().map(|t| t.params.as_str()).collect();
        assert_eq!(params, vec!["p50", "p90", "p99"]);
        // Step panel targets every boot step's span measurement.
        let steps = dash
            .panels
            .iter()
            .find(|p| p.title == "daemon steps")
            .unwrap();
        assert_eq!(steps.targets.len(), 4);
        assert!(steps
            .targets
            .iter()
            .all(|t| t.measurement.starts_with("pmove.self.span.daemon.step")));
        assert!(steps.targets.iter().all(|t| t.params == "mean_ns"));
        // Round-trips through the shareable-JSON model.
        let back = Dashboard::from_json(&dash.to_json()).unwrap();
        assert_eq!(back, dash);
        // The dashboard's self series actually exist once exported.
        d.export_self_telemetry();
        let ms = d.ts.measurements();
        for t in loss.targets.iter().chain(steps.targets.iter()) {
            assert!(ms.contains(&t.measurement), "missing {}", t.measurement);
        }
    }

    #[test]
    fn self_dashboard_adds_storage_panel_for_durable_daemons() {
        use pmove_tsdb::store::MemDisk;
        use std::sync::Arc;
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset_durable(
            "icl",
            Arc::new(MemDisk::new(3)),
        )
        .unwrap();
        d.monitor(2.0, 2.0);
        let dash = d.self_dashboard();
        let storage = dash
            .panels
            .iter()
            .find(|p| p.title == "storage engine")
            .expect("durable daemon exposes a storage panel");
        let ms: Vec<&str> = storage
            .targets
            .iter()
            .map(|t| t.measurement.as_str())
            .collect();
        assert!(ms.contains(&"pmove.self.wal.records_appended"));
        assert!(ms.contains(&"pmove.self.wal.commits"));
        assert!(ms.contains(&"pmove.self.docdb.journal.records_appended"));
        // Memory-only daemons have no storage panel.
        let d0 = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        assert!(d0
            .self_dashboard()
            .panels
            .iter()
            .all(|p| p.title != "storage engine"));
    }

    #[test]
    fn self_dashboard_includes_query_engine_panel() {
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        d.monitor(5.0, 2.0);
        // Drive the query path so the counters carry non-registration values
        // too (panel membership itself comes from registration).
        d.ts.query("SELECT * FROM \"kernel_all_load\"").ok();
        let dash = d.self_dashboard();
        let panel = dash
            .panels
            .iter()
            .find(|p| p.title == "query engine")
            .expect("self dashboard exposes the query-engine panel");
        let ms: Vec<&str> = panel
            .targets
            .iter()
            .map(|t| t.measurement.as_str())
            .collect();
        assert!(ms.contains(&"pmove.self.tsdb.query.executions"));
        assert!(ms.contains(&"pmove.self.tsdb.query.rows_scanned"));
        assert!(ms.contains(&"pmove.self.tsdb.cache.hits"));
        assert!(ms.contains(&"pmove.self.tsdb.cache.misses"));
        // The targeted series exist once self telemetry is exported.
        d.export_self_telemetry();
        let exported = d.ts.measurements();
        for t in &panel.targets {
            assert!(
                exported.contains(&t.measurement),
                "missing {}",
                t.measurement
            );
        }
    }

    #[test]
    fn self_dashboard_adds_resilience_panel_only_for_resilient_runs() {
        use pmove_hwsim::{FaultKind, FaultSchedule};
        use pmove_pcp::ResilienceConfig;
        // A plain monitoring run registers only zero-valued supervision
        // counters — no resilience panel.
        let mut d0 = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        d0.monitor(5.0, 1.0);
        assert!(d0
            .self_dashboard()
            .panels
            .iter()
            .all(|p| p.title != "transport resilience"));

        // A resilient run through an outage grows the panel.
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        let fault = FaultSchedule::none().with_window(5.0, 15.0, FaultKind::LinkDown);
        d.monitor_resilient(30.0, 1.0, ResilienceConfig::default(), Some(fault));
        let dash = d.self_dashboard();
        let panel = dash
            .panels
            .iter()
            .find(|p| p.title == "transport resilience")
            .expect("resilient run exposes a resilience panel");
        let ms: Vec<&str> = panel
            .targets
            .iter()
            .map(|t| t.measurement.as_str())
            .collect();
        assert!(ms.contains(&"pmove.self.pcp.resilience.values_spilled"));
        assert!(ms.contains(&"pmove.self.pcp.resilience.values_recovered"));
        assert!(ms.contains(&"pmove.self.pcp.resilience.spill_pending"));
        assert!(ms.contains(&"pmove.self.pcp.resilience.breaker_state"));
        // The targeted series exist once self telemetry is exported.
        d.export_self_telemetry();
        let exported = d.ts.measurements();
        for t in &panel.targets {
            assert!(
                exported.contains(&t.measurement),
                "missing {}",
                t.measurement
            );
        }
    }

    #[test]
    fn self_dashboard_adds_replication_panel_only_for_replicated_daemons() {
        use pmove_hwsim::{FaultKind, FaultSchedule};
        // A non-replicated daemon registers no tsdb.repl.* names at all.
        let mut d0 = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        d0.monitor(5.0, 1.0);
        assert!(d0
            .self_dashboard()
            .panels
            .iter()
            .all(|p| p.title != "replication"));

        // A replicated window through a partition grows the panel with
        // both the health gauges and the active hint counters.
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset_replicated("icl", 7).unwrap();
        let mut schedules = vec![FaultSchedule::none(); 3];
        schedules[1] = FaultSchedule::none().with_window(2.0, 8.0, FaultKind::LinkDown);
        d.monitor_replicated(15.0, 1.0, Some(schedules)).unwrap();
        let dash = d.self_dashboard();
        let panel = dash
            .panels
            .iter()
            .find(|p| p.title == "replication")
            .expect("replicated run exposes a replication panel");
        let ms: Vec<&str> = panel
            .targets
            .iter()
            .map(|t| t.measurement.as_str())
            .collect();
        assert!(ms.contains(&"pmove.self.tsdb.repl.quorum_writes"), "{ms:?}");
        assert!(ms.contains(&"pmove.self.tsdb.repl.hints_queued"), "{ms:?}");
        assert!(ms.contains(&"pmove.self.tsdb.repl.replicas_healthy"));
        assert!(ms.contains(&"pmove.self.tsdb.repl.primary"));
        assert!(ms.contains(&"pmove.self.tsdb.repl.hints_pending"));
        // The targeted series exist once self telemetry is exported.
        d.export_self_telemetry();
        let exported = d.ts.measurements();
        for t in &panel.targets {
            assert!(
                exported.contains(&t.measurement),
                "missing {}",
                t.measurement
            );
        }
    }

    #[test]
    fn self_dashboard_adds_integrity_panel_only_when_scrubbing_ran() {
        use pmove_tsdb::store::{MemDisk, RotSchedule, ScrubConfig, Vfs};
        use std::sync::Arc;
        // A daemon that never scrubs registers no live store.scrub.*
        // series, so no panel grows.
        let mut d0 = crate::telemetry::daemon::PMoveDaemon::for_preset("icl").unwrap();
        d0.monitor(5.0, 1.0);
        assert!(d0
            .self_dashboard()
            .panels
            .iter()
            .all(|p| p.title != "integrity"));

        // A scrubbing durable daemon that survives latent rot grows the
        // panel with the detection counters and the heartbeat gauge.
        let disk = Arc::new(MemDisk::new(41));
        let vfs: Arc<dyn Vfs> = disk.clone();
        let mut d = crate::telemetry::daemon::PMoveDaemon::for_preset_durable("icl", vfs).unwrap();
        assert!(d.enable_scrubbing(ScrubConfig {
            full_pass_period_s: 4.0,
            ..ScrubConfig::default()
        }));
        d.monitor(5.0, 1.0);
        d.ts.flush().unwrap();
        disk.schedule_rot(RotSchedule::none().at(6.0, 1).with_prefix("chunk-"));
        disk.advance_rot(6.0);
        for _ in 0..6 {
            d.monitor(5.0, 1.0);
            if !d.ts.quarantined_chunks().is_empty() {
                break;
            }
        }
        let dash = d.self_dashboard();
        let panel = dash
            .panels
            .iter()
            .find(|p| p.title == "integrity")
            .expect("scrubbed run exposes an integrity panel");
        let ms: Vec<&str> = panel
            .targets
            .iter()
            .map(|t| t.measurement.as_str())
            .collect();
        assert!(
            ms.contains(&"pmove.self.store.scrub.chunks_verified"),
            "{ms:?}"
        );
        assert!(
            ms.contains(&"pmove.self.store.scrub.corruptions_detected"),
            "{ms:?}"
        );
        assert!(
            ms.contains(&"pmove.self.store.scrub.chunks_quarantined"),
            "{ms:?}"
        );
        assert!(
            ms.contains(&"pmove.self.store.scrub.last_full_pass"),
            "{ms:?}"
        );
        // The targeted series exist once self telemetry is exported.
        d.export_self_telemetry();
        let exported = d.ts.measurements();
        for t in &panel.targets {
            assert!(
                exported.contains(&t.measurement),
                "missing {}",
                t.measurement
            );
        }
    }

    #[test]
    fn unknown_component_yields_none() {
        let kb = kb();
        let ghost = pmove_jsonld::Dtmi::parse("dtmi:dt:ghost;1").unwrap();
        assert!(focus_dashboard(&kb, &ghost, false).is_none());
        assert!(subtree_dashboard(&kb, &ghost).is_none());
    }
}
