//! Text rendering of dashboards: the Grafana stand-in's display path.
//!
//! Each panel queries the time-series database for its targets and renders
//! an ASCII sparkline per series — enough for the examples to *show* live
//! dashboards in a terminal.

use crate::dashboard::model::{Dashboard, Panel};
use pmove_tsdb::query::Projection;
use pmove_tsdb::{Database, Query};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a numeric series as a sparkline of `width` characters
/// (downsampled by bucket means).
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets: Vec<f64> = (0..width.min(values.len()))
        .map(|b| {
            let lo = b * values.len() / width.min(values.len());
            let hi = ((b + 1) * values.len() / width.min(values.len())).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = buckets.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = buckets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    buckets
        .iter()
        .map(|v| {
            let norm = if max > min {
                (v - min) / (max - min)
            } else {
                0.5
            };
            SPARK[((norm * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Render one panel against the database. `tag` optionally filters by an
/// observation id.
pub fn render_panel(db: &Database, panel: &Panel, tag: Option<&str>, width: usize) -> String {
    let mut out = format!("── {} ──\n", panel.title);
    for t in &panel.targets {
        // Structured query (no parser round-trip): every target renders
        // through the same normalized cache key the engine uses.
        let q = Query {
            projections: vec![Projection::Field(t.params.clone())],
            measurement: t.measurement.clone(),
            tag_filters: tag
                .map(|v| vec![("tag".to_string(), v.to_string())])
                .unwrap_or_default(),
            time_start: None,
            time_end: None,
            group_by_time: None,
        };
        match db.query_parsed(&q) {
            Ok(r) => {
                let series: Vec<f64> = r
                    .column_series(&t.params)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                if series.is_empty() {
                    out.push_str(&format!("  {:<10} (no data)\n", t.params));
                } else {
                    let last = series.last().copied().unwrap_or(0.0);
                    out.push_str(&format!(
                        "  {:<10} {} last={:.3e} n={}\n",
                        t.params,
                        sparkline(&series, width),
                        last,
                        series.len()
                    ));
                }
            }
            Err(_) => out.push_str(&format!("  {:<10} (no measurement)\n", t.params)),
        }
    }
    out
}

/// Render a whole dashboard.
pub fn render_dashboard(db: &Database, dashboard: &Dashboard, tag: Option<&str>) -> String {
    let mut out = format!("══ {} ══\n", dashboard.title);
    for p in &dashboard.panels {
        out.push_str(&render_panel(db, p, tag, 40));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dashboard::model::{Dashboard, Datasource, Target};
    use pmove_tsdb::Point;

    fn db_with_series() -> Database {
        let db = Database::new("test");
        for t in 0..20 {
            db.write_point(
                Point::new("m")
                    .tag("tag", "o1")
                    .field("_cpu0", (t as f64 * 0.7).sin() + 1.0)
                    .timestamp(t),
            )
            .unwrap();
        }
        db
    }

    fn dashboard() -> Dashboard {
        Dashboard::new(1, "test").panel(
            "m",
            vec![Target {
                datasource: Datasource::influx("u"),
                measurement: "m".into(),
                params: "_cpu0".into(),
            }],
        )
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 10).chars().count(), 1);
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Flat series renders mid-height.
        let flat = sparkline(&[5.0; 8], 8);
        assert!(flat.chars().all(|c| c == SPARK[4]));
    }

    #[test]
    fn render_shows_data_and_stats() {
        let db = db_with_series();
        let out = render_dashboard(&db, &dashboard(), Some("o1"));
        assert!(out.contains("══ test ══"));
        assert!(out.contains("_cpu0"));
        assert!(out.contains("n=20"));
    }

    #[test]
    fn render_handles_missing_data() {
        let db = Database::new("empty");
        let out = render_dashboard(&db, &dashboard(), None);
        assert!(out.contains("no measurement"));
        let db = db_with_series();
        let out = render_dashboard(&db, &dashboard(), Some("other-tag"));
        assert!(out.contains("no data"));
    }
}
