//! The dashboard JSON model of Listing 1.
//!
//! ```json
//! { "id": 1,
//!   "panels": [
//!     { "id": 1,
//!       "targets": [
//!         { "datasource": {"type": "influxdb", "uid": "UUkm1881"},
//!           "measurement": "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE_value",
//!           "params": "_cpu0" } ] } ],
//!   "time": {"from": "now-5m", "to": "now"} }
//! ```
//!
//! Dashboards are user-editable files: they round-trip through JSON, can
//! be saved for later sessions, and can be shared between users.

use serde::{Deserialize, Serialize};

/// A query target inside a panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Target {
    /// Datasource reference.
    pub datasource: Datasource,
    /// Measurement to plot.
    pub measurement: String,
    /// Field/instance selector (`_cpu0`).
    pub params: String,
}

/// The datasource reference (type + uid stored in the KB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datasource {
    /// Datasource type (`influxdb`).
    #[serde(rename = "type")]
    pub kind: String,
    /// Datasource uid.
    pub uid: String,
}

impl Datasource {
    /// The standard InfluxDB datasource with a uid from the KB.
    pub fn influx(uid: impl Into<String>) -> Self {
        Datasource {
            kind: "influxdb".into(),
            uid: uid.into(),
        }
    }
}

/// One panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel id.
    pub id: u32,
    /// Panel title (not in the minimal Listing 1, but Grafana accepts it).
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub title: String,
    /// Query targets.
    pub targets: Vec<Target>,
}

/// The dashboard time range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Range start (`now-5m`).
    pub from: String,
    /// Range end (`now`).
    pub to: String,
}

impl Default for TimeRange {
    fn default() -> Self {
        TimeRange {
            from: "now-5m".into(),
            to: "now".into(),
        }
    }
}

/// A dashboard document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dashboard {
    /// Dashboard id.
    pub id: u32,
    /// Dashboard title.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub title: String,
    /// Panels.
    pub panels: Vec<Panel>,
    /// Time range.
    pub time: TimeRange,
}

impl Dashboard {
    /// New empty dashboard.
    pub fn new(id: u32, title: impl Into<String>) -> Self {
        Dashboard {
            id,
            title: title.into(),
            panels: Vec::new(),
            time: TimeRange::default(),
        }
    }

    /// Add a panel (builder style).
    pub fn panel(mut self, title: impl Into<String>, targets: Vec<Target>) -> Self {
        let id = self.panels.len() as u32 + 1;
        self.panels.push(Panel {
            id,
            title: title.into(),
            targets,
        });
        self
    }

    /// Serialize to the shareable JSON file format.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("dashboard is serializable")
    }

    /// Load a dashboard from its JSON file content.
    pub fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        serde_json::from_value(v.clone())
    }

    /// Total query targets across panels.
    pub fn target_count(&self) -> usize {
        self.panels.iter().map(|p| p.targets.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn listing1() -> serde_json::Value {
        json!({
            "id": 1,
            "panels": [
                {"id": 1,
                 "targets": [
                     {"datasource": {"type": "influxdb", "uid": "UUkm1881"},
                      "measurement": "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE_value",
                      "params": "_cpu0"}]}],
            "time": {"from": "now-5m", "to": "now"}
        })
    }

    #[test]
    fn parses_listing1_verbatim() {
        let d = Dashboard::from_json(&listing1()).unwrap();
        assert_eq!(d.id, 1);
        assert_eq!(d.panels.len(), 1);
        let t = &d.panels[0].targets[0];
        assert_eq!(t.datasource.kind, "influxdb");
        assert_eq!(t.datasource.uid, "UUkm1881");
        assert_eq!(t.params, "_cpu0");
        assert_eq!(d.time.from, "now-5m");
    }

    #[test]
    fn roundtrip_preserves_document() {
        let d = Dashboard::from_json(&listing1()).unwrap();
        let j = d.to_json();
        let d2 = Dashboard::from_json(&j).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn builder_assigns_panel_ids() {
        let d = Dashboard::new(7, "test")
            .panel(
                "p1",
                vec![Target {
                    datasource: Datasource::influx("u"),
                    measurement: "m".into(),
                    params: "_cpu0".into(),
                }],
            )
            .panel("p2", vec![]);
        assert_eq!(d.panels[0].id, 1);
        assert_eq!(d.panels[1].id, 2);
        assert_eq!(d.target_count(), 1);
    }

    #[test]
    fn user_edit_simulation() {
        // "A dashboard can be modified by the users and saved for the next
        // sessions": edit the JSON directly, reload, and the change holds.
        let mut j = Dashboard::new(1, "x")
            .panel(
                "p",
                vec![Target {
                    datasource: Datasource::influx("u"),
                    measurement: "m".into(),
                    params: "_cpu0".into(),
                }],
            )
            .to_json();
        j["panels"][0]["targets"][0]["params"] = json!("_cpu5");
        let d = Dashboard::from_json(&j).unwrap();
        assert_eq!(d.panels[0].targets[0].params, "_cpu5");
    }
}
