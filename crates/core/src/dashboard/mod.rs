//! Dashboards — "each dashboard is only a simple JSON file" (Listing 1).

pub mod gen;
pub mod model;
pub mod render;

pub use gen::{focus_dashboard, level_dashboard, subtree_dashboard};
pub use model::{Dashboard, Panel, Target, TimeRange};
