//! Root-cause tracing: the extended focus view of §III-B.
//!
//! When the level-view anomaly scan flags a component, this module walks
//! the KB path from that component up to the system twin, collecting each
//! ancestor's telemetry statistics — "navigating from a component
//! perspective to a more generalized system perspective ... aiding in
//! tracing and isolating performance issues".

use crate::analysis::anomaly::Anomaly;
use crate::kb::views;
use crate::kb::KnowledgeBase;
use pmove_jsonld::Dtmi;
use pmove_tsdb::Database;

/// One step of a root-cause trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Twin id at this level.
    pub id: Dtmi,
    /// Component type (`thread`, `core`, `socket`, ...).
    pub component_type: String,
    /// Display name.
    pub name: String,
    /// (measurement, field, mean) for each telemetry stream with data.
    pub stats: Vec<(String, String, f64)>,
}

/// Resolve the KB twin that owns an anomaly's (measurement, field) pair.
pub fn locate_component<'a>(
    kb: &'a KnowledgeBase,
    anomaly: &Anomaly,
) -> Option<&'a pmove_jsonld::Interface> {
    kb.interfaces.iter().find(|iface| {
        iface.telemetry().any(|t| {
            t.db_name == anomaly.measurement && t.field_name.as_deref() == Some(&anomaly.field)
        })
    })
}

/// Build the focus-path trace for an anomaly: the flagged component first,
/// then each ancestor up to the root, with per-level telemetry means.
pub fn trace_anomaly(kb: &KnowledgeBase, ts: &Database, anomaly: &Anomaly) -> Vec<TraceStep> {
    let Some(origin) = locate_component(kb, anomaly) else {
        return Vec::new();
    };
    views::focus_path(kb, &origin.id)
        .into_iter()
        .map(|iface| {
            let mut stats = Vec::new();
            for t in iface.telemetry() {
                let field = t.field_name.clone().unwrap_or_else(|| "value".into());
                let q = format!("SELECT mean(\"{field}\") FROM \"{}\"", t.db_name);
                if let Ok(r) = ts.query(&q) {
                    let v = r
                        .rows
                        .first()
                        .and_then(|row| row.values.values().next().copied().flatten());
                    if let Some(v) = v {
                        stats.push((t.db_name.clone(), field.clone(), v));
                    }
                }
            }
            TraceStep {
                id: iface.id.clone(),
                component_type: iface.component_type.clone(),
                name: iface.display_name.clone(),
                stats,
            }
        })
        .collect()
}

/// Render a trace as text.
pub fn format_trace(steps: &[TraceStep]) -> String {
    let mut out = String::from("root-cause trace (component → system):\n");
    for s in steps {
        out.push_str(&format!("  [{}] {}\n", s.component_type, s.name));
        for (m, f, v) in s.stats.iter().take(4) {
            out.push_str(&format!("      {m} {f} mean={v:.4e}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::anomaly_scan;
    use crate::PMoveDaemon;

    /// Monitor with one thread pinned busy, flag it, and trace the path.
    #[test]
    fn trace_reaches_the_system_twin() {
        let mut d = PMoveDaemon::for_preset("icl").unwrap();
        // Make cpu5 anomalously busy via a long pinned execution.
        use crate::profiles::stream_kernel_profile;
        use crate::telemetry::pinning::PinningStrategy;
        use crate::telemetry::scenario_b::ProfileRequest;
        use pmove_hwsim::vendor::IsaExt;
        use pmove_kernels::StreamKernel;
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Peakflops, 1 << 34, 1, IsaExt::Scalar),
            command: "hog".into(),
            generic_events: vec!["CPU_CYCLES".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::Compact,
        };
        d.profile(&request).unwrap();
        d.monitor(20.0, 2.0);

        // Hand-build an anomaly on cpu0's idle field (the pinned thread).
        let anomaly = Anomaly {
            measurement: "kernel_percpu_cpu_idle".into(),
            field: "_cpu0".into(),
            value: 0.0,
            level_mean: 0.9,
            z_score: -3.5,
        };
        let steps = trace_anomaly(&d.kb, &d.ts, &anomaly);
        let kinds: Vec<&str> = steps.iter().map(|s| s.component_type.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["thread", "core", "socket", "numanode", "system"]
        );
        // The thread level has per-cpu stats; the system level has
        // singular stats (load, memory).
        assert!(!steps[0].stats.is_empty());
        assert!(steps
            .last()
            .unwrap()
            .stats
            .iter()
            .any(|(m, _, _)| m == "kernel_all_load"));
        let text = format_trace(&steps);
        assert!(text.contains("[thread] cpu0"));
        assert!(text.contains("[system] icl"));
    }

    #[test]
    fn scan_plus_trace_pipeline() {
        // Synthetic data: cpu3 pegged. The scan finds it and the trace
        // locates the twin.
        let d = PMoveDaemon::for_preset("icl").unwrap();
        for t in 0..30 {
            let mut p =
                pmove_tsdb::Point::new("kernel_percpu_cpu_idle").timestamp(t * 1_000_000_000);
            for c in 0..16 {
                p = p.field(format!("_cpu{c}"), if c == 3 { 0.01 } else { 0.9 });
            }
            d.ts.write_point(p).unwrap();
        }
        let found = anomaly_scan(&d.ts, "kernel_percpu_cpu_idle", None, 2.0);
        assert_eq!(found.len(), 1);
        let origin = locate_component(&d.kb, &found[0]).expect("twin located");
        assert_eq!(origin.display_name, "cpu3");
        let steps = trace_anomaly(&d.kb, &d.ts, &found[0]);
        assert_eq!(steps.len(), 5);
    }

    #[test]
    fn unknown_anomaly_traces_to_nothing() {
        let d = PMoveDaemon::for_preset("icl").unwrap();
        let bogus = Anomaly {
            measurement: "no_such_measurement".into(),
            field: "_cpu0".into(),
            value: 0.0,
            level_mean: 0.0,
            z_score: 9.0,
        };
        assert!(trace_anomaly(&d.kb, &d.ts, &bogus).is_empty());
    }
}
