//! Textual analysis reports over observations.

use crate::abstraction::AbstractionLayer;
use crate::kb::observation::ObservationInterface;
use crate::telemetry::scenario_b::recall_generic_total;
use pmove_tsdb::Database;

/// Render a human-readable report for one observation: metadata, recalled
/// generic-event totals, and derived rates.
pub fn observation_report(
    ts: &Database,
    layer: &AbstractionLayer,
    pmu: &str,
    obs: &ObservationInterface,
    generics: &[&str],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("Observation {}\n", obs.id));
    out.push_str(&format!("  machine : {}\n", obs.machine));
    out.push_str(&format!("  command : {}\n", obs.command));
    out.push_str(&format!(
        "  pinning : {} → cpus {:?}\n",
        obs.pinning, obs.affinity
    ));
    let dur = obs.duration_s();
    out.push_str(&format!("  duration: {dur:.4} s @ {} Hz\n", obs.freq_hz));
    for g in generics {
        match recall_generic_total(ts, layer, pmu, g, &obs.id) {
            Ok(total) => {
                out.push_str(&format!(
                    "  {g:<26} total {total:.4e}  rate {:.4e}/s\n",
                    total / dur.max(1e-12)
                ));
            }
            Err(_) => out.push_str(&format!("  {g:<26} (not mapped on {pmu})\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::presets::builtin_layer;
    use crate::ids::IdFactory;
    use crate::kb::builder::build_kb;
    use crate::probe::ProbeReport;
    use crate::telemetry::pinning::PinningStrategy;
    use crate::telemetry::scenario_b::{profile_kernel, ProfileRequest};
    use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
    use pmove_hwsim::vendor::IsaExt;
    use pmove_hwsim::Machine;

    #[test]
    fn report_contains_metadata_and_totals() {
        let machine = Machine::preset("csl").unwrap();
        let mut kb = build_kb(&ProbeReport::collect(&machine)).unwrap();
        let layer = builtin_layer();
        let ts = pmove_tsdb::Database::new("t");
        let mut ids = IdFactory::new("rep");
        let n: u64 = 1 << 20;
        let req = ProfileRequest {
            profile: KernelProfile::named("ddot")
                .with_threads(2)
                .with_flops(IsaExt::Scalar, Precision::F64, 2 * n)
                .with_mem(2 * n, 0, IsaExt::Scalar)
                .with_working_set(2 * n * 8),
            command: "ddot -n 1048576 -t 2".into(),
            generic_events: vec!["SCALAR_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 8.0,
            pinning: PinningStrategy::Compact,
        };
        let out =
            profile_kernel(&machine, &mut kb, &layer, &ts, &mut ids, &req, 0.0, None).unwrap();
        let text = observation_report(
            &ts,
            &layer,
            "csl",
            &out.observation,
            &["SCALAR_DP_FLOPS", "L3_HIT"],
        );
        assert!(text.contains("ddot -n 1048576"));
        assert!(text.contains("SCALAR_DP_FLOPS"));
        assert!(text.contains("rate"));
        // Unsupported on Intel → noted, not an error.
        assert!(text.contains("L3_HIT"));
        assert!(text.contains("not mapped"));
    }
}
