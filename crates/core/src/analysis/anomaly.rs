//! Anomaly scanning over level views.
//!
//! The paper motivates "fully automated performance monitoring, anomaly
//! detection and dashboards" from the tree-structured KB. The scan
//! compares same-type components (a level view) and flags series whose
//! summary statistics deviate from the level's distribution — the classic
//! "one slow thread / one hot socket" detector.

use pmove_tsdb::Database;

/// One flagged component series.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Measurement scanned.
    pub measurement: String,
    /// Field (component instance) flagged.
    pub field: String,
    /// The field's mean over the window.
    pub value: f64,
    /// Mean of all fields in the level.
    pub level_mean: f64,
    /// Robust z-score of the deviation.
    pub z_score: f64,
}

/// Scan one measurement's fields for outliers using a z-score over the
/// per-field means; fields beyond `threshold` sigmas are flagged.
pub fn anomaly_scan(
    db: &Database,
    measurement: &str,
    tag: Option<(&str, &str)>,
    threshold: f64,
) -> Vec<Anomaly> {
    let fields = db.field_keys(measurement);
    if fields.len() < 3 {
        return Vec::new(); // too few peers to compare
    }
    let where_clause = tag
        .map(|(k, v)| format!(" WHERE {k}='{v}'"))
        .unwrap_or_default();
    let mut means = Vec::with_capacity(fields.len());
    for f in &fields {
        let q = format!("SELECT mean(\"{f}\") FROM \"{measurement}\"{where_clause}");
        let Ok(r) = db.query(&q) else { continue };
        let v = r
            .rows
            .first()
            .and_then(|row| row.values.values().next().copied().flatten());
        if let Some(v) = v {
            means.push((f.clone(), v));
        }
    }
    if means.len() < 3 {
        return Vec::new();
    }
    let level_mean = means.iter().map(|(_, v)| v).sum::<f64>() / means.len() as f64;
    let var = means
        .iter()
        .map(|(_, v)| (v - level_mean).powi(2))
        .sum::<f64>()
        / means.len() as f64;
    let sd = var.sqrt();
    if sd == 0.0 {
        return Vec::new();
    }
    means
        .into_iter()
        .filter_map(|(field, value)| {
            let z = (value - level_mean) / sd;
            (z.abs() >= threshold).then_some(Anomaly {
                measurement: measurement.to_string(),
                field,
                value,
                level_mean,
                z_score: z,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_tsdb::Point;

    fn db_with_outlier() -> Database {
        let db = Database::new("t");
        for t in 0..50 {
            let mut p = Point::new("kernel_percpu_cpu_idle").timestamp(t);
            for c in 0..8 {
                // cpu5 is pegged (idle ≈ 0); the rest idle around 0.9.
                let v = if c == 5 {
                    0.01
                } else {
                    0.9 + 0.01 * (c as f64)
                };
                p = p.field(format!("_cpu{c}"), v);
            }
            db.write_point(p).unwrap();
        }
        db
    }

    #[test]
    fn finds_the_pegged_cpu() {
        let db = db_with_outlier();
        let found = anomaly_scan(&db, "kernel_percpu_cpu_idle", None, 2.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].field, "_cpu5");
        assert!(found[0].z_score < -2.0);
        assert!(found[0].value < 0.1);
        assert!(found[0].level_mean > 0.5);
    }

    #[test]
    fn uniform_level_reports_nothing() {
        let db = Database::new("t");
        for t in 0..10 {
            let mut p = Point::new("m").timestamp(t);
            for c in 0..6 {
                p = p.field(format!("_cpu{c}"), 1.0);
            }
            db.write_point(p).unwrap();
        }
        assert!(anomaly_scan(&db, "m", None, 2.0).is_empty());
    }

    #[test]
    fn too_few_peers_reports_nothing() {
        let db = Database::new("t");
        db.write_point(
            Point::new("m")
                .field("_cpu0", 1.0)
                .field("_cpu1", 99.0)
                .timestamp(0),
        )
        .unwrap();
        assert!(anomaly_scan(&db, "m", None, 1.0).is_empty());
        assert!(anomaly_scan(&db, "missing", None, 1.0).is_empty());
    }

    #[test]
    fn tag_filter_restricts_scan() {
        let db = Database::new("t");
        for t in 0..10 {
            let mut p = Point::new("m").tag("tag", "a").timestamp(t);
            for c in 0..4 {
                p = p.field(format!("_cpu{c}"), if c == 0 { 10.0 } else { 1.0 });
            }
            db.write_point(p).unwrap();
        }
        let hits = anomaly_scan(&db, "m", Some(("tag", "a")), 1.4);
        assert_eq!(hits.len(), 1);
        // A non-matching tag sees no data at all.
        assert!(anomaly_scan(&db, "m", Some(("tag", "zzz")), 1.4).is_empty());
    }
}
