//! Analysis utilities: automatic query generation, reports, anomaly scan.

pub mod anomaly;
pub mod queries;
pub mod report;
pub mod trace;

pub use anomaly::{anomaly_scan, Anomaly};
pub use queries::queries_for_observation;
pub use trace::{trace_anomaly, TraceStep};
