//! Automatic query generation (Listing 3): the parameters already encoded
//! in the KB turn every observation into a set of recall queries.

use crate::kb::observation::ObservationInterface;
use crate::kb::KnowledgeBase;

/// The Listing-3 query set for one observation.
pub fn queries_for_observation(obs: &ObservationInterface) -> Vec<String> {
    obs.queries()
}

/// Query sets for every observation in a KB, newest last.
pub fn all_queries(kb: &KnowledgeBase) -> Vec<(String, Vec<String>)> {
    kb.observations
        .iter()
        .map(|o| (o.id.clone(), o.queries()))
        .collect()
}

/// A time-bounded variant: restrict the recall to `[start_ns, end_ns)`.
pub fn bounded_queries(obs: &ObservationInterface) -> Vec<String> {
    let start = (obs.start_s * 1e9) as i64;
    let end = (obs.end_s * 1e9) as i64 + 1;
    obs.metrics
        .iter()
        .map(|m| {
            let fields = m
                .fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "SELECT {fields} FROM \"{}\" WHERE tag='{}' AND time >= {start} AND time < {end}",
                m.db_name, obs.id
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::observation::MetricRef;
    use serde_json::json;

    fn obs() -> ObservationInterface {
        ObservationInterface {
            id: "abc".into(),
            machine: "csl".into(),
            command: "x".into(),
            pinning: "compact".into(),
            affinity: vec![0],
            start_s: 1.0,
            end_s: 2.0,
            freq_hz: 8.0,
            metrics: vec![MetricRef {
                db_name: "m".into(),
                fields: vec!["_cpu0".into()],
            }],
            report: json!({}),
        }
    }

    #[test]
    fn bounded_queries_carry_time_range() {
        let q = bounded_queries(&obs());
        assert_eq!(q.len(), 1);
        assert!(q[0].contains("time >= 1000000000"));
        assert!(q[0].contains("time < 2000000001"));
        assert!(q[0].contains("tag='abc'"));
    }

    #[test]
    fn bounded_queries_parse_in_the_tsdb() {
        for q in bounded_queries(&obs()) {
            pmove_tsdb::Query::parse(&q).expect("generated query must parse");
        }
        for q in queries_for_observation(&obs()) {
            pmove_tsdb::Query::parse(&q).expect("generated query must parse");
        }
    }

    #[test]
    fn all_queries_covers_kb() {
        let mut kb = KnowledgeBase::new("csl", "csl");
        kb.append_observation(obs());
        let all = all_queries(&kb);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "abc");
    }
}
