//! Probing orchestration — steps ① and ② of the paper's Fig. 3.
//!
//! The daemon "copies the probing module to the target", runs it, and gets
//! back one JSON file with everything the KB generator needs. Here the
//! target is a simulated [`Machine`] and the probing module is
//! `pmove_hwsim::probe`; this layer adds validation and typed access.

use crate::error::PmoveError;
use pmove_hwsim::probe::probe_machine;
use pmove_hwsim::Machine;
use serde_json::Value;

/// A validated probe report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// The raw JSON document (what would travel host ← target).
    pub json: Value,
}

impl ProbeReport {
    /// Probe a machine (steps ① and ② combined).
    pub fn collect(machine: &Machine) -> ProbeReport {
        ProbeReport {
            json: probe_machine(machine),
        }
    }

    /// Parse a report received as JSON, validating required sections.
    pub fn from_json(json: Value) -> Result<ProbeReport, PmoveError> {
        for section in [
            "system",
            "cpu",
            "memory",
            "components",
            "pmu_events",
            "sw_metrics",
        ] {
            if json.get(section).is_none() {
                return Err(PmoveError::BadProbeReport(format!(
                    "missing section {section}"
                )));
            }
        }
        if json["components"].as_array().is_none_or(|a| a.is_empty()) {
            return Err(PmoveError::BadProbeReport("no components".into()));
        }
        Ok(ProbeReport { json })
    }

    /// Target hostname.
    pub fn hostname(&self) -> &str {
        self.json["system"]["hostname"]
            .as_str()
            .unwrap_or("unknown")
    }

    /// PMU name for the abstraction layer (`skx`, `zen3`, ...).
    pub fn pmu_name(&self) -> &str {
        self.json["cpu"]["pmu_name"].as_str().unwrap_or("unknown")
    }

    /// Hardware thread count.
    pub fn total_threads(&self) -> u64 {
        self.json["cpu"]["total_threads"].as_u64().unwrap_or(0)
    }

    /// The component records.
    pub fn components(&self) -> &[Value] {
        self.json["components"]
            .as_array()
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Names of the PMU events libpfm4-style probing discovered.
    pub fn pmu_event_names(&self) -> Vec<&str> {
        self.json["pmu_events"]
            .as_array()
            .map(|a| a.iter().filter_map(|e| e["name"].as_str()).collect())
            .unwrap_or_default()
    }

    /// The SW metric descriptors.
    pub fn sw_metrics(&self) -> &[Value] {
        self.json["sw_metrics"]
            .as_array()
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// GPU sections, if any.
    pub fn gpus(&self) -> &[Value] {
        self.json["gpus"]
            .as_array()
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn collect_and_accessors() {
        let m = Machine::preset("csl").unwrap();
        let r = ProbeReport::collect(&m);
        assert_eq!(r.hostname(), "csl");
        assert_eq!(r.pmu_name(), "csl");
        assert_eq!(r.total_threads(), 56);
        assert!(!r.components().is_empty());
        assert!(r.pmu_event_names().contains(&"FP_ARITH:SCALAR_DOUBLE"));
        assert!(r.sw_metrics().len() >= 15);
        assert!(r.gpus().is_empty());
    }

    #[test]
    fn validation_roundtrip() {
        let m = Machine::preset("icl").unwrap();
        let r = ProbeReport::collect(&m);
        let back = ProbeReport::from_json(r.json.clone()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_incomplete_reports() {
        assert!(ProbeReport::from_json(json!({})).is_err());
        assert!(ProbeReport::from_json(json!({
            "system": {}, "cpu": {}, "memory": {},
            "components": [], "pmu_events": [], "sw_metrics": []
        }))
        .is_err());
    }
}
