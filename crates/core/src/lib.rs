//! # pmove-core — the P-MoVE framework
//!
//! The paper's primary contribution: a digital-twin-inspired performance
//! monitoring and visualization framework driven by an encoded Knowledge
//! Base. Everything here operates against the substrate crates
//! (`pmove-hwsim` machines, `pmove-pcp` samplers, `pmove-tsdb`/
//! `pmove-docdb` databases, `pmove-jsonld` ontology).
//!
//! Architecture (paper §III–IV):
//!
//! * [`probe`] — step ①/②: deep-probe a target machine into one JSON
//!   report;
//! * [`kb`] — the Knowledge Base: probe report → DTDL Interface hierarchy
//!   (every component a sub-twin), focus/subtree/level views, Observation
//!   and Benchmark interfaces, docdb persistence (step ③), and SUPERDB,
//!   the global multi-machine database;
//! * [`abstraction`] — the Abstraction Layer: config-file grammar mapping
//!   generic event names (`TOTAL_MEMORY_OPERATIONS`) to per-µarch PMU
//!   formulas (`MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES`),
//!   with builtin presets reproducing Table I, and `pmu_utils::get`;
//! * [`telemetry`] — the daemon and the two scenarios of Fig. 3:
//!   Scenario A (always-on SW telemetry) and Scenario B (PMU capture
//!   around pinned kernel executions) with the four pinning strategies;
//! * [`dashboard`] — Grafana-compatible dashboard JSON (Listing 1) with
//!   automatic focus/subtree/level view generation and a text renderer;
//! * [`carm`] — Cache-Aware Roofline Model construction via auto-configured
//!   microbenchmarks, KB-cached roofs, and the live-CARM panel computing
//!   (AI, GFLOPS) trajectories from PMU formulas (Figs. 8 and 9);
//! * [`analysis`] — automatic query generation (Listing 3), textual
//!   reports, anomaly scans over level views, and focus-path root-cause
//!   tracing.
//!
//! ```
//! use pmove_core::PMoveDaemon;
//!
//! // Steps ⓪–③: env, probe, KB generation, KB insertion.
//! let mut daemon = PMoveDaemon::for_preset("icl").unwrap();
//! assert!(daemon.kb.len() > 40);
//!
//! // Scenario A: always-on software telemetry.
//! let report = daemon.monitor(10.0, 2.0);
//! assert_eq!(report.ticks, 20);
//! assert!(daemon.ts.measurements().contains(&"kernel_all_load".to_string()));
//! ```

pub mod abstraction;
pub mod analysis;
pub mod carm;
pub mod dashboard;
pub mod error;
pub mod ids;
pub mod kb;
pub mod probe;
pub mod profiles;
pub mod telemetry;

pub use error::PmoveError;
pub use kb::KnowledgeBase;
pub use telemetry::daemon::{DaemonMode, PMoveDaemon};
