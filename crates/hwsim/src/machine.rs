//! Machine specifications and topology construction.
//!
//! The four presets reproduce Table II of the paper. A [`MachineSpec`] is
//! pure data; [`Machine`] couples it with the built component topology and
//! derived performance characteristics (peak FLOPs, per-level bandwidths)
//! used by the execution model and the CARM roofs.

use crate::disk::DiskSpec;
use crate::gpu::GpuSpec;
use crate::topology::{ComponentId, ComponentKind, Topology};
use crate::vendor::{IsaExt, Microarch};
use serde::{Deserialize, Serialize};
use serde_json::json;

/// Static description of a target system (Table II row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Short key (`skx`, `icl`, `csl`, `zen3`).
    pub key: String,
    /// Operating system string.
    pub os: String,
    /// Kernel version string.
    pub kernel: String,
    /// CPU model string.
    pub cpu_model: String,
    /// Microarchitecture.
    pub arch: Microarch,
    /// Socket count.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (SMT).
    pub threads_per_core: u32,
    /// Nominal (max turbo) frequency in GHz.
    pub freq_ghz: f64,
    /// Total memory in GiB.
    pub mem_gb: u64,
    /// Memory frequency in MT/s.
    pub mem_freq_mhz: u32,
    /// Memory channels per socket.
    pub mem_channels: u32,
    /// L1 data cache per core, KiB.
    pub l1_kb: u32,
    /// L2 cache per core, KiB.
    pub l2_kb: u32,
    /// L3 cache per socket, KiB.
    pub l3_kb: u32,
    /// Environment string (e.g. `pcp 5.3.6-1`).
    pub env: String,
    /// Attached disks.
    pub disks: Vec<DiskSpec>,
    /// NIC bandwidth to the monitoring host, in Mbit/s.
    pub nic_mbit: u32,
    /// Attached GPUs.
    pub gpus: Vec<GpuSpec>,
}

impl MachineSpec {
    /// `skx`: 2× Intel Xeon Gold 6152 (44c/88t), 1 TB DDR4-2666, 4 disks.
    pub fn skx() -> Self {
        MachineSpec {
            key: "skx".into(),
            os: "Ubuntu 20.04.3 LTS x86_64".into(),
            kernel: "5.15.0-73-generic".into(),
            cpu_model: "Intel Xeon Gold 6152 @3.7GHz x2".into(),
            arch: Microarch::SkylakeX,
            sockets: 2,
            cores_per_socket: 22,
            threads_per_core: 2,
            freq_ghz: 3.7,
            mem_gb: 1024,
            mem_freq_mhz: 2666,
            mem_channels: 6,
            l1_kb: 32,
            l2_kb: 1024,
            l3_kb: 30976,
            env: "pcp 5.3.6-1".into(),
            disks: (0..4)
                .map(|i| DiskSpec::sata(format!("sd{}", (b'a' + i) as char)))
                .collect(),
            nic_mbit: 100,
            gpus: Vec::new(),
        }
    }

    /// `icl`: Intel i9-11900K (8c/16t), 64 GB DDR4-2133.
    pub fn icl() -> Self {
        MachineSpec {
            key: "icl".into(),
            os: "Linux Mint 21.1 x86_64".into(),
            kernel: "5.15.0-56-generic".into(),
            cpu_model: "Intel i9-11900K @5.1GHz".into(),
            arch: Microarch::IceLake,
            sockets: 1,
            cores_per_socket: 8,
            threads_per_core: 2,
            freq_ghz: 5.1,
            mem_gb: 64,
            mem_freq_mhz: 2133,
            mem_channels: 2,
            l1_kb: 48,
            l2_kb: 512,
            l3_kb: 16384,
            env: "pcp 5.3.6-1".into(),
            disks: vec![DiskSpec::nvme("nvme0n1")],
            nic_mbit: 100,
            gpus: Vec::new(),
        }
    }

    /// `csl`: Intel Xeon Gold 6258R (28c/56t), 64 GB DDR4-3200.
    pub fn csl() -> Self {
        MachineSpec {
            key: "csl".into(),
            os: "CentOS Linux release 7.9.2009 (Core) x86_64".into(),
            kernel: "3.10.0-1160.90.1.el7.x86_64".into(),
            cpu_model: "Intel Xeon Gold 6258R @2.7GHz".into(),
            arch: Microarch::CascadeLake,
            sockets: 1,
            cores_per_socket: 28,
            threads_per_core: 2,
            freq_ghz: 2.7,
            mem_gb: 64,
            mem_freq_mhz: 3200,
            mem_channels: 6,
            l1_kb: 32,
            l2_kb: 1024,
            l3_kb: 39424,
            env: "pcp 6.0.1-1".into(),
            disks: vec![DiskSpec::sata("sda")],
            nic_mbit: 100,
            gpus: Vec::new(),
        }
    }

    /// `zen3`: AMD EPYC 7313 (16c/32t), 128 GB DDR4-2933.
    pub fn zen3() -> Self {
        MachineSpec {
            key: "zen3".into(),
            os: "Ubuntu 22.04.3 LTS x86_64".into(),
            kernel: "6.2.0-33-generic".into(),
            cpu_model: "AMD EPYC 7313 @3GHz".into(),
            arch: Microarch::Zen3,
            sockets: 1,
            cores_per_socket: 16,
            threads_per_core: 2,
            freq_ghz: 3.0,
            mem_gb: 128,
            mem_freq_mhz: 2933,
            mem_channels: 8,
            l1_kb: 32,
            l2_kb: 512,
            l3_kb: 131072,
            env: "pcp 6.0.3-1".into(),
            disks: vec![DiskSpec::sata("sda")],
            nic_mbit: 100,
            gpus: Vec::new(),
        }
    }

    /// All four Table II presets.
    pub fn presets() -> Vec<MachineSpec> {
        vec![Self::skx(), Self::icl(), Self::csl(), Self::zen3()]
    }

    /// Look up a preset by key.
    pub fn preset(key: &str) -> Option<MachineSpec> {
        Self::presets().into_iter().find(|m| m.key == key)
    }

    /// Total hardware threads.
    pub fn total_threads(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Theoretical DRAM bandwidth per socket in bytes/s
    /// (channels × MT/s × 8 bytes).
    pub fn dram_bw_per_socket(&self) -> f64 {
        self.mem_channels as f64 * self.mem_freq_mhz as f64 * 1e6 * 8.0
    }

    /// Sustainable (measured-like) DRAM bandwidth of the whole machine:
    /// ~80 % of theoretical, the typical STREAM efficiency.
    pub fn dram_bw_total(&self) -> f64 {
        0.8 * self.dram_bw_per_socket() * self.sockets as f64
    }

    /// Peak double-precision GFLOP/s for an ISA extension and thread count
    /// (threads beyond the core count share FMA pipes and add nothing).
    pub fn peak_gflops_f64(&self, isa: IsaExt, threads: u32) -> f64 {
        let cores_used = threads.min(self.total_cores()) as f64;
        self.arch.flops_per_cycle_f64(isa) * self.freq_ghz * cores_used
    }

    /// Per-core cache bandwidth in bytes per cycle for a level (1..=3).
    /// Values follow the usual sustained per-core figures for these
    /// microarchitectures.
    pub fn cache_bytes_per_cycle(&self, level: u8) -> f64 {
        match (self.arch, level) {
            (Microarch::Zen3, 1) => 64.0,
            (Microarch::Zen3, 2) => 32.0,
            (Microarch::Zen3, 3) => 16.0,
            (_, 1) => 128.0,
            (_, 2) => 64.0,
            (_, 3) => 16.0,
            _ => panic!("cache level must be 1..=3"),
        }
    }

    /// Sustainable bandwidth of a memory level in bytes/s when `threads`
    /// hardware threads stream from it. Level 4 denotes DRAM.
    pub fn level_bandwidth(&self, level: u8, threads: u32) -> f64 {
        let cycle_hz = self.freq_ghz * 1e9;
        match level {
            1..=2 => {
                // Private caches scale with cores used.
                let cores = threads.min(self.total_cores()) as f64;
                self.cache_bytes_per_cycle(level) * cycle_hz * cores
            }
            3 => {
                // Shared L3: scales with cores but saturates per socket.
                let cores = threads.min(self.total_cores()) as f64;
                let per_core = self.cache_bytes_per_cycle(3) * cycle_hz;
                let socket_cap = per_core * 12.0 * self.sockets as f64;
                (per_core * cores).min(socket_cap)
            }
            4 => {
                // DRAM: a handful of cores saturate a socket.
                let cores = threads.min(self.total_cores()) as f64;
                let saturating = 6.0 * self.sockets as f64;
                self.dram_bw_total() * (cores / saturating).min(1.0)
            }
            _ => panic!("memory level must be 1..=4"),
        }
    }

    /// Build the full component topology for this spec.
    pub fn build_topology(&self) -> Topology {
        let mut t = Topology::new(self.key.clone());
        let mut cpu_index = 0u32;
        for s in 0..self.sockets {
            let numa = t.add(t.root(), ComponentKind::NumaNode, format!("node{s}"));
            let socket = t.add(numa, ComponentKind::Socket, format!("socket{s}"));
            t.set_attr(socket, "model", json!(self.cpu_model));
            t.set_attr(socket, "arch", json!(self.arch.to_string()));
            t.set_attr(socket, "freq_ghz", json!(self.freq_ghz));
            let l3 = t.add(socket, ComponentKind::Cache(3), format!("l3cache{s}"));
            t.set_attr(l3, "size_kb", json!(self.l3_kb));
            for c in 0..self.cores_per_socket {
                let core_idx = s * self.cores_per_socket + c;
                let core = t.add(socket, ComponentKind::Core, format!("core{core_idx}"));
                let l1 = t.add(core, ComponentKind::Cache(1), format!("l1cache{core_idx}"));
                t.set_attr(l1, "size_kb", json!(self.l1_kb));
                let l2 = t.add(core, ComponentKind::Cache(2), format!("l2cache{core_idx}"));
                t.set_attr(l2, "size_kb", json!(self.l2_kb));
                for _ in 0..self.threads_per_core {
                    let th = t.add(core, ComponentKind::Thread, format!("cpu{cpu_index}"));
                    t.set_attr(th, "os_index", json!(cpu_index));
                    t.set_attr(th, "numa", json!(s));
                    cpu_index += 1;
                }
            }
            let mem = t.add(numa, ComponentKind::Memory, format!("mem{s}"));
            t.set_attr(mem, "size_gb", json!(self.mem_gb / self.sockets as u64));
            t.set_attr(mem, "freq_mhz", json!(self.mem_freq_mhz));
        }
        for d in &self.disks {
            let disk = t.add(t.root(), ComponentKind::Disk, d.name.clone());
            t.set_attr(disk, "rotational", json!(d.rotational));
        }
        let nic = t.add(t.root(), ComponentKind::Nic, "eth0");
        t.set_attr(nic, "mbit", json!(self.nic_mbit));
        for (i, g) in self.gpus.iter().enumerate() {
            let gpu = t.add(t.root(), ComponentKind::Gpu, format!("gpu{i}"));
            t.set_attr(gpu, "model", json!(g.model));
            t.set_attr(gpu, "memory_mb", json!(g.memory_mb));
            t.set_attr(gpu, "numa", json!(g.numa_node));
        }
        t
    }
}

/// A machine: spec + built topology.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The static specification.
    pub spec: MachineSpec,
    /// The component tree.
    pub topology: Topology,
}

impl Machine {
    /// Build a machine from a spec.
    pub fn new(spec: MachineSpec) -> Self {
        let topology = spec.build_topology();
        Machine { spec, topology }
    }

    /// Preset machine by key (`skx`, `icl`, `csl`, `zen3`).
    pub fn preset(key: &str) -> Option<Machine> {
        MachineSpec::preset(key).map(Machine::new)
    }

    /// Short key.
    pub fn key(&self) -> &str {
        &self.spec.key
    }

    /// OS-index → topology id for hardware threads.
    pub fn thread_ids(&self) -> Vec<ComponentId> {
        self.topology.threads().iter().map(|c| c.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let skx = MachineSpec::skx();
        assert_eq!(skx.total_cores(), 44);
        assert_eq!(skx.total_threads(), 88);
        assert_eq!(skx.mem_gb, 1024);
        assert_eq!(skx.disks.len(), 4);

        let icl = MachineSpec::icl();
        assert_eq!(icl.total_threads(), 16);
        assert_eq!(icl.freq_ghz, 5.1);

        let csl = MachineSpec::csl();
        assert_eq!(csl.total_threads(), 56);
        assert_eq!(csl.arch, Microarch::CascadeLake);

        let zen3 = MachineSpec::zen3();
        assert_eq!(zen3.total_threads(), 32);
        assert_eq!(zen3.arch.vendor(), crate::vendor::Vendor::Amd);
    }

    #[test]
    fn preset_lookup() {
        assert!(MachineSpec::preset("skx").is_some());
        assert!(MachineSpec::preset("nope").is_none());
        assert_eq!(MachineSpec::presets().len(), 4);
    }

    #[test]
    fn topology_shape() {
        let m = Machine::preset("skx").unwrap();
        let t = &m.topology;
        assert_eq!(t.of_kind(ComponentKind::Socket).len(), 2);
        assert_eq!(t.of_kind(ComponentKind::Core).len(), 44);
        assert_eq!(t.threads().len(), 88);
        assert_eq!(t.of_kind(ComponentKind::Cache(3)).len(), 2);
        assert_eq!(t.of_kind(ComponentKind::Disk).len(), 4);
        assert_eq!(t.of_kind(ComponentKind::Nic).len(), 1);
        // Thread names are cpu0..cpu87 in OS order.
        assert_eq!(t.threads()[0].name, "cpu0");
        assert_eq!(t.threads()[87].name, "cpu87");
    }

    #[test]
    fn derived_bandwidths_sane() {
        let csl = MachineSpec::csl();
        // 6 ch * 3200 MT/s * 8 B ≈ 153.6 GB/s theoretical/socket.
        assert!((csl.dram_bw_per_socket() - 153.6e9).abs() < 1e9);
        assert!(csl.dram_bw_total() < csl.dram_bw_per_socket());
        // L1 bandwidth exceeds L2 exceeds L3 exceeds DRAM for same threads.
        let t = 28;
        assert!(csl.level_bandwidth(1, t) > csl.level_bandwidth(2, t));
        assert!(csl.level_bandwidth(2, t) > csl.level_bandwidth(3, t));
        assert!(csl.level_bandwidth(3, t) > csl.level_bandwidth(4, t));
    }

    #[test]
    fn dram_saturates_with_cores() {
        let csl = MachineSpec::csl();
        let bw6 = csl.level_bandwidth(4, 6);
        let bw28 = csl.level_bandwidth(4, 28);
        assert_eq!(bw6, bw28); // saturated at 6 cores
        assert!(csl.level_bandwidth(4, 1) < bw6);
    }

    #[test]
    fn peak_flops_clamps_at_core_count() {
        let icl = MachineSpec::icl();
        let p8 = icl.peak_gflops_f64(IsaExt::Avx512, 8);
        let p16 = icl.peak_gflops_f64(IsaExt::Avx512, 16);
        assert_eq!(p8, p16); // SMT threads add no FMA throughput
                             // 8 cores * 5.1 GHz * 32 flops/cyc = 1305.6 GF/s
        assert!((p8 - 1305.6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "memory level")]
    fn bad_level_panics() {
        MachineSpec::icl().level_bandwidth(9, 1);
    }
}
