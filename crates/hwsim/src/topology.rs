//! The component tree of a machine.
//!
//! P-MoVE's KB mirrors this hierarchy one-to-one: every component that
//! computes, communicates, stores or can be monitored becomes a DTDL
//! Interface, and the tree shape drives the focus / subtree / level
//! dashboard views.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense component identifier within one topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub u32);

/// Kinds of components P-MoVE models (paper §III-B lists sockets, cores,
/// threads, caches, network, disks and processes as view targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// The whole machine (KB root).
    System,
    /// A NUMA node / package-local memory domain.
    NumaNode,
    /// A CPU socket (package).
    Socket,
    /// A physical core.
    Core,
    /// A hardware thread (logical CPU).
    Thread,
    /// A cache at some level (1, 2, 3).
    Cache(u8),
    /// Main memory attached to a NUMA node.
    Memory,
    /// A block device.
    Disk,
    /// A network interface.
    Nic,
    /// A GPU device.
    Gpu,
    /// An OS process (dynamic; re-instantiated on each probe).
    Process,
}

impl ComponentKind {
    /// Stable lower-case label used in DTMIs and level views.
    pub fn label(&self) -> String {
        match self {
            ComponentKind::System => "system".into(),
            ComponentKind::NumaNode => "numanode".into(),
            ComponentKind::Socket => "socket".into(),
            ComponentKind::Core => "core".into(),
            ComponentKind::Thread => "thread".into(),
            ComponentKind::Cache(l) => format!("l{l}cache"),
            ComponentKind::Memory => "memory".into(),
            ComponentKind::Disk => "disk".into(),
            ComponentKind::Nic => "nic".into(),
            ComponentKind::Gpu => "gpu".into(),
            ComponentKind::Process => "process".into(),
        }
    }
}

/// One node of the component tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Component {
    /// This component's id.
    pub id: ComponentId,
    /// Component kind.
    pub kind: ComponentKind,
    /// Name unique among siblings (`socket0`, `cpu17`, `l2cache3`).
    pub name: String,
    /// Parent id (`None` only for the root).
    pub parent: Option<ComponentId>,
    /// Children ids in creation order.
    pub children: Vec<ComponentId>,
    /// Kind-specific attributes (cache size, frequency, NUMA distance...).
    pub attrs: BTreeMap<String, serde_json::Value>,
}

/// The component tree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    components: Vec<Component>,
}

impl Topology {
    /// New topology containing only a root system component.
    pub fn new(system_name: impl Into<String>) -> Self {
        let mut t = Topology {
            components: Vec::new(),
        };
        t.components.push(Component {
            id: ComponentId(0),
            kind: ComponentKind::System,
            name: system_name.into(),
            parent: None,
            children: Vec::new(),
            attrs: BTreeMap::new(),
        });
        t
    }

    /// Root component id.
    pub fn root(&self) -> ComponentId {
        ComponentId(0)
    }

    /// Add a component under `parent`; returns its id.
    pub fn add(
        &mut self,
        parent: ComponentId,
        kind: ComponentKind,
        name: impl Into<String>,
    ) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Component {
            id,
            kind,
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
            attrs: BTreeMap::new(),
        });
        self.components[parent.0 as usize].children.push(id);
        id
    }

    /// Set an attribute on a component.
    pub fn set_attr(&mut self, id: ComponentId, key: &str, value: serde_json::Value) {
        self.components[id.0 as usize]
            .attrs
            .insert(key.to_string(), value);
    }

    /// Access a component.
    pub fn get(&self, id: ComponentId) -> &Component {
        &self.components[id.0 as usize]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when only the root exists (or not even that).
    pub fn is_empty(&self) -> bool {
        self.components.len() <= 1
    }

    /// Iterate all components in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Component> {
        self.components.iter()
    }

    /// All components of one kind — the KB *level view*.
    pub fn of_kind(&self, kind: ComponentKind) -> Vec<&Component> {
        self.components.iter().filter(|c| c.kind == kind).collect()
    }

    /// Path from a component up to the root — the KB *focus view* extension
    /// (component → system perspective).
    pub fn path_to_root(&self, id: ComponentId) -> Vec<&Component> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let comp = self.get(c);
            cur = comp.parent;
            path.push(comp);
        }
        path
    }

    /// All components in the subtree rooted at `id` (pre-order) — the KB
    /// *subtree view*.
    pub fn subtree(&self, id: ComponentId) -> Vec<&Component> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            let comp = self.get(c);
            out.push(comp);
            for &child in comp.children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Hardware threads (logical CPUs), in id order. Their position in this
    /// list is the `cpuN` OS index used for pinning.
    pub fn threads(&self) -> Vec<&Component> {
        self.of_kind(ComponentKind::Thread)
    }

    /// Find the first ancestor of `id` with the given kind.
    pub fn ancestor_of_kind(&self, id: ComponentId, kind: ComponentKind) -> Option<&Component> {
        self.path_to_root(id).into_iter().find(|c| c.kind == kind)
    }

    /// Find a component by name (unique names assumed for non-process
    /// components, which the builders guarantee).
    pub fn by_name(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// A toy 1-socket, 2-core, SMT-2 machine.
    fn toy() -> Topology {
        let mut t = Topology::new("toy");
        let numa = t.add(t.root(), ComponentKind::NumaNode, "node0");
        let socket = t.add(numa, ComponentKind::Socket, "socket0");
        let l3 = t.add(socket, ComponentKind::Cache(3), "l3cache0");
        t.set_attr(l3, "size_kb", json!(28160));
        for c in 0..2 {
            let core = t.add(socket, ComponentKind::Core, format!("core{c}"));
            t.add(core, ComponentKind::Cache(1), format!("l1cache{c}"));
            t.add(core, ComponentKind::Cache(2), format!("l2cache{c}"));
            for s in 0..2 {
                t.add(core, ComponentKind::Thread, format!("cpu{}", c * 2 + s));
            }
        }
        t.add(numa, ComponentKind::Memory, "mem0");
        t
    }

    #[test]
    fn construction_and_counts() {
        let t = toy();
        // root + node + socket + l3 + 2×(core + l1 + l2 + 2 threads) + mem
        assert_eq!(t.len(), 15);
        assert_eq!(t.threads().len(), 4);
        assert_eq!(t.of_kind(ComponentKind::Core).len(), 2);
        assert_eq!(t.of_kind(ComponentKind::Cache(1)).len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn focus_path_reaches_root() {
        let t = toy();
        let cpu3 = t.by_name("cpu3").unwrap();
        let path = t.path_to_root(cpu3.id);
        let names: Vec<&str> = path.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["cpu3", "core1", "socket0", "node0", "toy"]);
    }

    #[test]
    fn subtree_is_preorder() {
        let t = toy();
        let socket = t.by_name("socket0").unwrap();
        let sub = t.subtree(socket.id);
        assert_eq!(sub[0].name, "socket0");
        assert_eq!(sub[1].name, "l3cache0");
        // Whole-socket subtree: socket + l3 + 2*(core + l1 + l2 + 2 threads)
        assert_eq!(sub.len(), 12);
    }

    #[test]
    fn ancestor_lookup() {
        let t = toy();
        let cpu0 = t.by_name("cpu0").unwrap();
        let socket = t.ancestor_of_kind(cpu0.id, ComponentKind::Socket).unwrap();
        assert_eq!(socket.name, "socket0");
        assert!(t.ancestor_of_kind(cpu0.id, ComponentKind::Gpu).is_none());
    }

    #[test]
    fn attributes_stored() {
        let t = toy();
        let l3 = t.by_name("l3cache0").unwrap();
        assert_eq!(l3.attrs["size_kb"], json!(28160));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ComponentKind::Cache(2).label(), "l2cache");
        assert_eq!(ComponentKind::Thread.label(), "thread");
    }
}
