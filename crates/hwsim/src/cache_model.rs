//! Cache behaviour models.
//!
//! Two tools at different fidelities:
//!
//! 1. [`derive_locality`] — the analytic model the execution engine uses:
//!    given a kernel's working set and a machine's cache capacities it
//!    produces per-level service fractions (which level satisfies each
//!    byte of core traffic).
//! 2. [`CacheSim`] — a real set-associative LRU cache simulator for memory
//!    address traces, used by tests and by SpMV locality estimation on
//!    sampled traces (RCM vs original ordering).

use crate::kernel_profile::LocalityProfile;
use crate::machine::MachineSpec;

/// Analytic locality: working sets that fit in a level are served from it;
/// larger sets spill smoothly to the next level. The smoothing window
/// reflects that a set slightly larger than a cache still enjoys partial
/// residency.
pub fn derive_locality(
    spec: &MachineSpec,
    working_set_bytes: u64,
    threads: u32,
) -> LocalityProfile {
    // Effective per-thread share of each level.
    let threads = threads.max(1) as u64;
    let threads_per_core = spec.threads_per_core.max(1) as u64;
    let cores_used = threads.div_ceil(threads_per_core);
    let sockets_used = cores_used
        .div_ceil(spec.cores_per_socket.max(1) as u64)
        .min(spec.sockets as u64)
        .max(1);
    let l1 = spec.l1_kb as u64 * 1024 * cores_used;
    let l2 = spec.l2_kb as u64 * 1024 * cores_used;
    let l3 = spec.l3_kb as u64 * 1024 * sockets_used;

    // served(level) = how much of the working set the level can hold
    // (cumulatively with inner levels already serving their share).
    let ws = working_set_bytes.max(1) as f64;
    let f1 = ((l1 as f64) / ws).min(1.0);
    let f2 = (((l1 + l2) as f64) / ws).min(1.0) - f1;
    let f3 = (((l1 + l2 + l3) as f64) / ws).min(1.0) - f1 - f2;
    let dram = (1.0 - f1 - f2 - f3).max(0.0);
    // Normalize away any floating residue.
    let s = f1 + f2 + f3 + dram;
    LocalityProfile::new(f1 / s, f2 / s, f3 / s, dram / s)
}

/// A set-associative LRU cache for trace-driven simulation.
#[derive(Debug)]
pub struct CacheSim {
    sets: Vec<Vec<u64>>, // each set: tags in LRU order (front = MRU)
    ways: usize,
    line_bytes: u64,
    set_count: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines. Size must be a multiple of `ways * line_bytes`.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways > 0 && line_bytes > 0, "bad cache geometry");
        let set_count = size_bytes / (ways as u64 * line_bytes);
        assert!(set_count > 0, "cache too small for geometry");
        CacheSim {
            sets: vec![Vec::with_capacity(ways); set_count as usize],
            ways,
            line_bytes,
            set_count,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Access a run of `bytes` starting at `addr` (counts line accesses).
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        for line in first..=last {
            self.access(line * self.line_bytes);
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio (0 when nothing accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset statistics but keep contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_is_l1_resident() {
        let spec = MachineSpec::csl();
        let loc = derive_locality(&spec, 16 * 1024, 1); // 16 KB < 32 KB L1
        assert!(loc.l1 > 0.99, "{loc:?}");
    }

    #[test]
    fn huge_working_set_streams_from_dram() {
        let spec = MachineSpec::csl();
        let loc = derive_locality(&spec, 8 << 30, 28);
        assert!(loc.dram > 0.9, "{loc:?}");
    }

    #[test]
    fn midsize_set_lands_in_l2_or_l3() {
        let spec = MachineSpec::csl();
        // 512 KB on one core: beyond 32 KB L1, within 32+1024 KB L1+L2.
        let loc = derive_locality(&spec, 512 * 1024, 1);
        assert!(loc.l2 > 0.8, "{loc:?}");
        // 20 MB on one core: mostly L3 on CSL (38.5 MB L3).
        let loc = derive_locality(&spec, 20 << 20, 1);
        assert!(loc.l3 > 0.8, "{loc:?}");
    }

    #[test]
    fn more_threads_increase_effective_private_capacity() {
        let spec = MachineSpec::csl();
        let one = derive_locality(&spec, 2 << 20, 1);
        let many = derive_locality(&spec, 2 << 20, 28);
        assert!(many.l1 + many.l2 > one.l1 + one.l2);
    }

    #[test]
    fn sim_sequential_reuse_hits() {
        let mut c = CacheSim::new(4096, 4, 64);
        // First pass over 2 KB: all misses (32 lines).
        for i in 0..32 {
            assert!(!c.access(i * 64));
        }
        // Second pass: all hits (2 KB fits in 4 KB cache).
        for i in 0..32 {
            assert!(c.access(i * 64));
        }
        assert_eq!(c.hits(), 32);
        assert_eq!(c.misses(), 32);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn sim_capacity_eviction() {
        let mut c = CacheSim::new(4096, 4, 64);
        // Stream 8 KB twice: 128 distinct lines > 64-line capacity, so the
        // second pass also misses everywhere (LRU streaming pathology).
        for pass in 0..2 {
            for i in 0..128 {
                let hit = c.access(i * 64);
                assert!(!hit, "pass {pass} line {i} unexpectedly hit");
            }
        }
    }

    #[test]
    fn sim_same_line_accesses_hit() {
        let mut c = CacheSim::new(4096, 4, 64);
        c.access(0);
        assert!(c.access(8)); // same line
        assert!(c.access(63));
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn sim_access_range_touches_every_line() {
        let mut c = CacheSim::new(65536, 8, 64);
        c.access_range(10, 300); // spans lines 0..=4 (5 lines)
        assert_eq!(c.misses(), 5);
        c.reset_stats();
        c.access_range(0, 64);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn bad_geometry_panics() {
        CacheSim::new(100, 0, 64);
    }
}
