//! Performance-monitoring-unit models: per-microarchitecture event
//! catalogs (the libpfm4 stand-in), event semantics, and counter banks
//! with multiplexing.
//!
//! Event *names* are vendor/µarch specific (Table I of the paper); event
//! *semantics* are expressed as a [`Quantity`] that the execution model can
//! evaluate against a kernel profile. The abstraction layer in `pmove-core`
//! maps generic names onto these catalog entries.

use crate::vendor::{IsaExt, Microarch, Vendor};
use serde::{Deserialize, Serialize};

/// What an event actually measures, in execution-model terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Quantity {
    /// Unhalted core cycles.
    Cycles,
    /// Retired instructions.
    Instructions,
    /// Dispatched micro-ops (≈ 1.3 × instructions).
    Uops,
    /// Retired double-precision FP instructions of one vector width.
    FlopInstrF64(IsaExt),
    /// Retired single-precision FP instructions of one vector width.
    FlopInstrF32(IsaExt),
    /// All FP operations (AMD's merged `RETIRED_SSE_AVX_FLOPS:ANY`
    /// counts actual FLOPs, not instructions).
    AllFlops,
    /// Retired load instructions.
    LoadInstr,
    /// Retired store instructions.
    StoreInstr,
    /// Cache misses at a level (1..=3).
    CacheMiss(u8),
    /// Cache references at a level.
    CacheRef(u8),
    /// FP divide operations.
    DivOps,
    /// Package energy in µJ (RAPL; per-package domain).
    EnergyPkg,
    /// DRAM energy in µJ (RAPL; per-package domain).
    EnergyDram,
}

/// Scope an event is counted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Counted per hardware thread.
    PerThread,
    /// Counted per package (RAPL).
    PerPackage,
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventDef {
    /// Vendor-specific event name (`FP_ARITH:SCALAR_DOUBLE`).
    pub name: String,
    /// Semantics.
    pub quantity: Quantity,
    /// Counting scope.
    pub domain: Domain,
    /// Human description (shown by probe output, Listing 4 style).
    pub description: String,
}

impl EventDef {
    fn new(name: &str, quantity: Quantity, domain: Domain, description: &str) -> Self {
        EventDef {
            name: name.into(),
            quantity,
            domain,
            description: description.into(),
        }
    }
}

/// The event catalog of one microarchitecture.
#[derive(Debug, Clone)]
pub struct EventCatalog {
    /// Architecture this catalog describes.
    pub arch: Microarch,
    events: Vec<EventDef>,
}

impl EventCatalog {
    /// Build the catalog for an architecture. Names follow Table I and the
    /// events used throughout §V of the paper.
    pub fn for_arch(arch: Microarch) -> Self {
        let mut ev = Vec::new();
        match arch.vendor() {
            Vendor::Intel => {
                ev.push(EventDef::new(
                    "UNHALTED_CORE_CYCLES",
                    Quantity::Cycles,
                    Domain::PerThread,
                    "Core cycles whenever the core is not halted",
                ));
                ev.push(EventDef::new(
                    "INSTRUCTION_RETIRED",
                    Quantity::Instructions,
                    Domain::PerThread,
                    "Instructions retired",
                ));
                ev.push(EventDef::new(
                    "UOPS_DISPATCHED",
                    Quantity::Uops,
                    Domain::PerThread,
                    "Micro-ops dispatched to execution ports",
                ));
                ev.push(EventDef::new(
                    "FP_ARITH:SCALAR_DOUBLE",
                    Quantity::FlopInstrF64(IsaExt::Scalar),
                    Domain::PerThread,
                    "Scalar double-precision FP instructions retired",
                ));
                ev.push(EventDef::new(
                    "FP_ARITH:SCALAR_SINGLE",
                    Quantity::FlopInstrF32(IsaExt::Scalar),
                    Domain::PerThread,
                    "Scalar single-precision FP instructions retired",
                ));
                ev.push(EventDef::new(
                    "FP_ARITH:128B_PACKED_DOUBLE",
                    Quantity::FlopInstrF64(IsaExt::Sse),
                    Domain::PerThread,
                    "128-bit packed double FP instructions retired",
                ));
                ev.push(EventDef::new(
                    "FP_ARITH:256B_PACKED_DOUBLE",
                    Quantity::FlopInstrF64(IsaExt::Avx2),
                    Domain::PerThread,
                    "256-bit packed double FP instructions retired",
                ));
                // All three Intel targets in the paper expose AVX-512
                // counters (the i9-11900K supports AVX-512 too).
                ev.push(EventDef::new(
                    "FP_ARITH:512B_PACKED_DOUBLE",
                    Quantity::FlopInstrF64(IsaExt::Avx512),
                    Domain::PerThread,
                    "512-bit packed double FP instructions retired",
                ));
                ev.push(EventDef::new(
                    "MEM_INST_RETIRED:ALL_LOADS",
                    Quantity::LoadInstr,
                    Domain::PerThread,
                    "All retired load instructions",
                ));
                ev.push(EventDef::new(
                    "MEM_INST_RETIRED:ALL_STORES",
                    Quantity::StoreInstr,
                    Domain::PerThread,
                    "All retired store instructions",
                ));
                ev.push(EventDef::new(
                    "L1D:REPLACEMENT",
                    Quantity::CacheMiss(1),
                    Domain::PerThread,
                    "L1 data cache lines replaced",
                ));
                ev.push(EventDef::new(
                    "L2_RQSTS:MISS",
                    Quantity::CacheMiss(2),
                    Domain::PerThread,
                    "L2 cache requests that missed",
                ));
                ev.push(EventDef::new(
                    "ARITH:DIVIDER_ACTIVE",
                    Quantity::DivOps,
                    Domain::PerThread,
                    "Cycles the FP divider is active",
                ));
                ev.push(EventDef::new(
                    "RAPL_ENERGY_PKG",
                    Quantity::EnergyPkg,
                    Domain::PerPackage,
                    "Package energy consumed (RAPL)",
                ));
                // Table I: L3 hit accounting is Not Supported on Intel
                // Cascade — no LONGEST_LAT_CACHE entries for Intel.
            }
            Vendor::Amd => {
                ev.push(EventDef::new(
                    "CYCLES_NOT_IN_HALT",
                    Quantity::Cycles,
                    Domain::PerThread,
                    "Core cycles not in halt state",
                ));
                ev.push(EventDef::new(
                    "RETIRED_INSTRUCTIONS",
                    Quantity::Instructions,
                    Domain::PerThread,
                    "Instructions retired",
                ));
                ev.push(EventDef::new(
                    "RETIRED_SSE_AVX_FLOPS:ANY",
                    Quantity::AllFlops,
                    Domain::PerThread,
                    "All SSE/AVX floating-point operations retired",
                ));
                ev.push(EventDef::new(
                    "LS_DISPATCH:LD_DISPATCH",
                    Quantity::LoadInstr,
                    Domain::PerThread,
                    "Load operations dispatched",
                ));
                ev.push(EventDef::new(
                    "LS_DISPATCH:STORE_DISPATCH",
                    Quantity::StoreInstr,
                    Domain::PerThread,
                    "Store operations dispatched",
                ));
                ev.push(EventDef::new(
                    "L1_DATA_CACHE_MISS",
                    Quantity::CacheMiss(1),
                    Domain::PerThread,
                    "L1 data cache misses",
                ));
                ev.push(EventDef::new(
                    "L2_CACHE_MISS",
                    Quantity::CacheMiss(2),
                    Domain::PerThread,
                    "L2 cache misses",
                ));
                ev.push(EventDef::new(
                    "LONGEST_LAT_CACHE:MISS",
                    Quantity::CacheMiss(3),
                    Domain::PerThread,
                    "Last-level cache misses",
                ));
                ev.push(EventDef::new(
                    "LONGEST_LAT_CACHE:RETIRED",
                    Quantity::CacheRef(3),
                    Domain::PerThread,
                    "Last-level cache accesses retired",
                ));
                ev.push(EventDef::new(
                    "FP_DIV_RETIRED",
                    Quantity::DivOps,
                    Domain::PerThread,
                    "FP divide operations retired",
                ));
                ev.push(EventDef::new(
                    "RAPL_ENERGY_PKG",
                    Quantity::EnergyPkg,
                    Domain::PerPackage,
                    "Package energy consumed (RAPL)",
                ));
                ev.push(EventDef::new(
                    "RAPL_ENERGY_DRAM",
                    Quantity::EnergyDram,
                    Domain::PerPackage,
                    "DRAM energy consumed (RAPL)",
                ));
            }
        }
        EventCatalog { arch, events: ev }
    }

    /// Look up an event by exact name.
    pub fn get(&self, name: &str) -> Option<&EventDef> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Whether the architecture supports an event name.
    pub fn supports(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// All events.
    pub fn events(&self) -> &[EventDef] {
        &self.events
    }

    /// Events counted per hardware thread.
    pub fn per_thread_events(&self) -> impl Iterator<Item = &EventDef> {
        self.events.iter().filter(|e| e.domain == Domain::PerThread)
    }
}

/// A per-thread counter bank with a fixed number of programmable counters.
///
/// When more events are requested than counters exist, the bank time-slices
/// (multiplexes) them: each event observes only `capacity/programmed` of the
/// interval and the reading is scaled up, adding estimation error. This is
/// exactly what Linux perf does and one of the noise sources in Fig. 4.
#[derive(Debug, Clone)]
pub struct CounterBank {
    capacity: usize,
    programmed: Vec<String>,
}

impl CounterBank {
    /// Bank for an architecture, given whether SMT siblings share counters.
    pub fn for_arch(arch: Microarch, smt_active: bool) -> Self {
        CounterBank {
            capacity: arch.programmable_counters(smt_active),
            programmed: Vec::new(),
        }
    }

    /// Bank with explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "counter bank needs at least one counter");
        CounterBank {
            capacity,
            programmed: Vec::new(),
        }
    }

    /// Program an event; returns false if it was already programmed.
    pub fn program(&mut self, event: &str) -> bool {
        if self.programmed.iter().any(|e| e == event) {
            return false;
        }
        self.programmed.push(event.to_string());
        true
    }

    /// Remove all programmed events.
    pub fn clear(&mut self) {
        self.programmed.clear();
    }

    /// Number of programmed events.
    pub fn programmed_count(&self) -> usize {
        self.programmed.len()
    }

    /// Hardware counter slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the bank is multiplexing (more events than counters).
    pub fn is_multiplexing(&self) -> bool {
        self.programmed.len() > self.capacity
    }

    /// Fraction of time each event is actually counted.
    pub fn duty_cycle(&self) -> f64 {
        if self.programmed.is_empty() {
            return 1.0;
        }
        (self.capacity as f64 / self.programmed.len() as f64).min(1.0)
    }

    /// Turn a true event count into the scaled estimate the kernel reports
    /// under multiplexing. Without multiplexing this is the identity; with
    /// it, the estimate is `true_count` plus a deterministic scaling
    /// residual controlled by `phase` (callers derive phase from noise).
    pub fn observed_count(&self, true_count: f64, phase: f64) -> f64 {
        let duty = self.duty_cycle();
        if duty >= 1.0 {
            return true_count;
        }
        // The kernel observes duty×count and rescales by 1/duty; the error
        // comes from which slice of a non-uniform execution was observed.
        let slice_bias = 1.0 + (phase - 0.5) * (1.0 - duty) * 0.1;
        true_count * slice_bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_catalog_matches_table1() {
        let c = EventCatalog::for_arch(Microarch::CascadeLake);
        assert!(c.supports("RAPL_ENERGY_PKG"));
        assert!(c.supports("MEM_INST_RETIRED:ALL_LOADS"));
        assert!(c.supports("MEM_INST_RETIRED:ALL_STORES"));
        // Table I: L3 hit accounting not supported on Intel Cascade.
        assert!(!c.supports("LONGEST_LAT_CACHE:MISS"));
        assert!(!c.supports("RAPL_ENERGY_DRAM"));
        assert!(!c.supports("LS_DISPATCH:LD_DISPATCH"));
    }

    #[test]
    fn amd_catalog_matches_table1() {
        let c = EventCatalog::for_arch(Microarch::Zen3);
        assert!(c.supports("RAPL_ENERGY_PKG"));
        assert!(c.supports("RAPL_ENERGY_DRAM"));
        assert!(c.supports("RETIRED_INSTRUCTIONS"));
        assert!(c.supports("LS_DISPATCH:LD_DISPATCH"));
        assert!(c.supports("LS_DISPATCH:STORE_DISPATCH"));
        assert!(c.supports("LONGEST_LAT_CACHE:MISS"));
        assert!(c.supports("LONGEST_LAT_CACHE:RETIRED"));
        assert!(!c.supports("FP_ARITH:SCALAR_DOUBLE"));
        assert!(!c.supports("FP_ARITH:512B_PACKED_DOUBLE"));
    }

    #[test]
    fn event_semantics() {
        let c = EventCatalog::for_arch(Microarch::SkylakeX);
        assert_eq!(
            c.get("FP_ARITH:512B_PACKED_DOUBLE").unwrap().quantity,
            Quantity::FlopInstrF64(IsaExt::Avx512)
        );
        assert_eq!(c.get("RAPL_ENERGY_PKG").unwrap().domain, Domain::PerPackage);
        let amd = EventCatalog::for_arch(Microarch::Zen3);
        assert_eq!(
            amd.get("RETIRED_SSE_AVX_FLOPS:ANY").unwrap().quantity,
            Quantity::AllFlops
        );
    }

    #[test]
    fn per_thread_iterator_excludes_rapl() {
        let c = EventCatalog::for_arch(Microarch::Zen3);
        assert!(c.per_thread_events().all(|e| e.domain == Domain::PerThread));
        assert!(c.per_thread_events().count() < c.events().len());
    }

    #[test]
    fn bank_capacity_follows_vendor() {
        let intel = CounterBank::for_arch(Microarch::CascadeLake, true);
        assert_eq!(intel.capacity(), 4);
        let amd = CounterBank::for_arch(Microarch::Zen3, true);
        assert_eq!(amd.capacity(), 2);
    }

    #[test]
    fn multiplexing_detection_and_duty() {
        let mut b = CounterBank::with_capacity(2);
        assert!(b.program("A"));
        assert!(!b.program("A")); // duplicate
        b.program("B");
        assert!(!b.is_multiplexing());
        assert_eq!(b.duty_cycle(), 1.0);
        b.program("C");
        b.program("D");
        assert!(b.is_multiplexing());
        assert_eq!(b.duty_cycle(), 0.5);
        b.clear();
        assert_eq!(b.programmed_count(), 0);
        assert_eq!(b.duty_cycle(), 1.0);
    }

    #[test]
    fn observed_count_identity_without_multiplexing() {
        let mut b = CounterBank::with_capacity(4);
        b.program("A");
        assert_eq!(b.observed_count(1000.0, 0.9), 1000.0);
    }

    #[test]
    fn observed_count_biased_under_multiplexing() {
        let mut b = CounterBank::with_capacity(1);
        b.program("A");
        b.program("B");
        let lo = b.observed_count(1000.0, 0.0);
        let hi = b.observed_count(1000.0, 1.0);
        assert!(lo < 1000.0 && hi > 1000.0);
        assert_eq!(b.observed_count(1000.0, 0.5), 1000.0);
    }
}
