//! Host ↔ target network link model.
//!
//! The paper's monitoring host talks to targets over a 100 Mbit cabled
//! link; PCP ships samples over it with no buffering, so when the offered
//! load (sampling frequency × instance-domain size) exceeds what the link
//! and the DB can absorb within one sampling period, samples are lost or
//! arrive as batched zeros (Table III). This model captures exactly that
//! windowed-capacity behaviour, deterministically.

use crate::noise::NoiseSource;
use serde::{Deserialize, Serialize};

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits/s.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Per-message fixed protocol overhead in bytes (headers, PCP PDU).
    pub overhead_bytes: u32,
}

impl LinkSpec {
    /// The paper's 100 Mbit cabled host↔target connection.
    pub fn mbit_100() -> Self {
        LinkSpec {
            bandwidth_bps: 100e6,
            latency_s: 200e-6,
            overhead_bytes: 64,
        }
    }

    /// A gigabit link.
    pub fn gbit_1() -> Self {
        LinkSpec {
            bandwidth_bps: 1e9,
            latency_s: 100e-6,
            overhead_bytes: 64,
        }
    }

    /// Time to transfer a message of `bytes` payload.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes + self.overhead_bytes as usize) as f64 * 8.0 / self.bandwidth_bps
    }
}

/// Outcome of offering one message to the congested link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Delivered within the sampling window.
    Delivered,
    /// Lost: the link/receiver had no capacity left in this window.
    Lost,
    /// Delivered but the sampler had already moved on — the receiver sees
    /// a batched zero value instead of the true reading (the paper's
    /// "batched zeros" artefact at high frequency).
    DeliveredZero,
}

/// A link with windowed congestion behaviour.
///
/// Within each window of `window_s` seconds the link can carry a limited
/// number of payload bytes. Offers beyond ~100 % capacity are lost; offers
/// landing between the *stall threshold* (75 %) and full capacity are
/// delivered late and therefore read as zeros. Small deterministic jitter
/// makes per-window outcomes vary like the real measurements do.
#[derive(Debug)]
pub struct CongestedLink {
    spec: LinkSpec,
    window_s: f64,
    current_window: i64,
    bytes_in_window: f64,
    noise: NoiseSource,
    delivered: u64,
    lost: u64,
    zeroed: u64,
}

impl CongestedLink {
    /// New link with congestion windows of `window_s` seconds.
    pub fn new(spec: LinkSpec, window_s: f64, seed_labels: &[&str]) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        CongestedLink {
            spec,
            window_s,
            current_window: i64::MIN,
            bytes_in_window: 0.0,
            noise: NoiseSource::from_labels(seed_labels),
            delivered: 0,
            lost: 0,
            zeroed: 0,
        }
    }

    /// The underlying link spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Capacity of one window in payload bytes. The factor models the
    /// effective goodput of small telemetry PDUs (~12 % of line rate),
    /// which is what lets 88-field reports at 32 Hz overrun a 100 Mbit
    /// link's per-window service capability like Table III shows.
    pub fn window_capacity_bytes(&self) -> f64 {
        self.spec.bandwidth_bps / 8.0 * self.window_s * 0.12
    }

    /// Offer a message of `bytes` at time `t`; returns the outcome.
    pub fn offer(&mut self, t: f64, bytes: usize) -> SendOutcome {
        let w = (t / self.window_s).floor() as i64;
        if w != self.current_window {
            self.current_window = w;
            self.bytes_in_window = 0.0;
        }
        let msg = (bytes + self.spec.overhead_bytes as usize) as f64;
        self.bytes_in_window += msg;
        let cap = self.window_capacity_bytes() * (1.0 + self.noise.normal(0.0, 0.05));
        let utilization = self.bytes_in_window / cap;
        let outcome = if utilization > 1.0 {
            SendOutcome::Lost
        } else if utilization > 0.75 {
            SendOutcome::DeliveredZero
        } else {
            SendOutcome::Delivered
        };
        match outcome {
            SendOutcome::Delivered => self.delivered += 1,
            SendOutcome::Lost => self.lost += 1,
            SendOutcome::DeliveredZero => self.zeroed += 1,
        }
        outcome
    }

    /// Messages delivered (with true values).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages lost.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Messages delivered as batched zeros.
    pub fn zeroed(&self) -> u64 {
        self.zeroed
    }

    /// Bytes actually carried so far in the current window.
    pub fn window_load(&self) -> f64 {
        self.bytes_in_window
    }
}

/// What an injected fault does while its window is active.
///
/// Faults compose: overlapping windows AND their link states, multiply
/// their capacity factors, and multiply their backend availabilities, so
/// a schedule can model e.g. a brown-out during a degraded-bandwidth
/// period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Link fully down (cable pull / switch reboot / network partition):
    /// nothing crosses the link while the window is active.
    LinkDown,
    /// Link capacity scaled by the carried factor (0 < f ≤ 1) — a
    /// saturated uplink or a lossy cable renegotiating its rate.
    BandwidthDegraded(f64),
    /// Backend (DB host) brown-out: each write is accepted only with the
    /// carried probability (0 ≤ a ≤ 1) while the window is active.
    BackendBrownout(f64),
}

/// One scheduled fault window `[start_s, end_s)` on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start (virtual seconds, inclusive).
    pub start_s: f64,
    /// Window end (virtual seconds, exclusive).
    pub end_s: f64,
    /// The injected fault.
    pub kind: FaultKind,
}

/// The effective fault state at one instant, combined over all active
/// windows. [`FaultState::healthy`] is the identity: link up, full
/// capacity, backend always available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultState {
    /// False while any [`FaultKind::LinkDown`] window is active.
    pub link_up: bool,
    /// Product of active [`FaultKind::BandwidthDegraded`] factors.
    pub capacity_factor: f64,
    /// Product of active [`FaultKind::BackendBrownout`] availabilities.
    pub backend_availability: f64,
}

impl FaultState {
    /// No fault active.
    pub fn healthy() -> FaultState {
        FaultState {
            link_up: true,
            capacity_factor: 1.0,
            backend_availability: 1.0,
        }
    }

    /// True when this state is indistinguishable from a healthy system.
    pub fn is_healthy(&self) -> bool {
        self.link_up && self.capacity_factor >= 1.0 && self.backend_availability >= 1.0
    }
}

/// A deterministic fault schedule: a list of windows evaluated against
/// the virtual clock. The schedule itself holds no randomness — a seeded
/// generator ([`FaultSchedule::random`]) and canned scenarios build the
/// window lists, and consumers draw any per-event randomness (e.g.
/// brown-out write rejections) from their own seeded noise sources, so
/// every run replays exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// Empty schedule — attaching it is behaviour-identical to no
    /// schedule at all.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Append one fault window (builder style).
    pub fn with_window(mut self, start_s: f64, end_s: f64, kind: FaultKind) -> FaultSchedule {
        assert!(
            start_s.is_finite() && end_s.is_finite() && end_s >= start_s,
            "fault window must be finite and ordered"
        );
        self.windows.push(FaultWindow {
            start_s,
            end_s,
            kind,
        });
        self
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when no window is scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// End of the last scheduled window (0 when empty) — the earliest
    /// time by which the system is guaranteed fault-free again.
    pub fn last_fault_end_s(&self) -> f64 {
        self.windows.iter().map(|w| w.end_s).fold(0.0, f64::max)
    }

    /// Combined fault state at virtual time `t`.
    pub fn state_at(&self, t: f64) -> FaultState {
        let mut state = FaultState::healthy();
        for w in &self.windows {
            if t < w.start_s || t >= w.end_s {
                continue;
            }
            match w.kind {
                FaultKind::LinkDown => state.link_up = false,
                FaultKind::BandwidthDegraded(factor) => {
                    state.capacity_factor *= factor.clamp(0.0, 1.0);
                }
                FaultKind::BackendBrownout(availability) => {
                    state.backend_availability *= availability.clamp(0.0, 1.0);
                }
            }
        }
        state
    }

    /// Canned scenario: the link flaps — down for `down_s` out of every
    /// `period_s`, repeating over `[0, duration_s)`.
    pub fn link_flaps(period_s: f64, down_s: f64, duration_s: f64) -> FaultSchedule {
        assert!(period_s > 0.0 && down_s > 0.0 && down_s <= period_s);
        let mut s = FaultSchedule::none();
        let mut t = period_s - down_s;
        while t < duration_s {
            s = s.with_window(t, (t + down_s).min(duration_s), FaultKind::LinkDown);
            t += period_s;
        }
        s
    }

    /// Canned scenario: one backend brown-out in the middle third of the
    /// run, accepting writes with probability `availability`.
    pub fn midrun_brownout(duration_s: f64, availability: f64) -> FaultSchedule {
        FaultSchedule::none().with_window(
            duration_s / 3.0,
            2.0 * duration_s / 3.0,
            FaultKind::BackendBrownout(availability),
        )
    }

    /// Canned scenario: sustained bandwidth degradation over the middle
    /// half of the run.
    pub fn midrun_degraded(duration_s: f64, factor: f64) -> FaultSchedule {
        FaultSchedule::none().with_window(
            duration_s / 4.0,
            3.0 * duration_s / 4.0,
            FaultKind::BandwidthDegraded(factor),
        )
    }

    /// Seed-derived random schedule over `[0, duration_s)`: 0–3 windows
    /// of random kind, position, and severity. Same seed → same schedule.
    pub fn random(seed: u64, duration_s: f64) -> FaultSchedule {
        let mut noise = NoiseSource::from_seed(seed ^ 0x5EED_FA17_0000_0001);
        let n = (noise.uniform() * 4.0) as usize; // 0..=3
        let mut s = FaultSchedule::none();
        for _ in 0..n {
            let start = noise.uniform() * duration_s;
            let len = noise.uniform() * duration_s * 0.5;
            let end = (start + len).min(duration_s);
            let kind = match (noise.uniform() * 3.0) as u32 {
                0 => FaultKind::LinkDown,
                1 => FaultKind::BandwidthDegraded(0.05 + 0.75 * noise.uniform()),
                _ => FaultKind::BackendBrownout(0.7 * noise.uniform()),
            };
            s = s.with_window(start, end, kind);
        }
        s
    }

    /// Seed-derived *per-replica* schedules: `n` independent random
    /// schedules over `[0, duration_s)`, each deterministically derived
    /// from `seed` and the replica index, so a replicated store can give
    /// every node its own uncorrelated fault history. Same seed → same set.
    pub fn random_set(seed: u64, duration_s: f64, n: usize) -> Vec<FaultSchedule> {
        (0..n)
            .map(|i| {
                FaultSchedule::random(
                    seed ^ (i as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f),
                    duration_s,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_overhead() {
        let l = LinkSpec::mbit_100();
        let t = l.transfer_time(1000);
        // 1064 bytes at 100 Mbit = 85.1 µs + 200 µs latency.
        assert!((t - (200e-6 + 1064.0 * 8.0 / 100e6)).abs() < 1e-9);
        assert!(LinkSpec::gbit_1().transfer_time(1000) < t);
    }

    #[test]
    fn light_load_all_delivered() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.5, &["t1"]);
        for i in 0..100 {
            let out = link.offer(i as f64 * 0.5, 200);
            assert_eq!(out, SendOutcome::Delivered);
        }
        assert_eq!(link.delivered(), 100);
        assert_eq!(link.lost(), 0);
    }

    #[test]
    fn overload_loses_messages() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.03125, &["t2"]);
        // Fire a burst of large reports into a single window.
        let mut lost = 0;
        for _ in 0..2000 {
            if link.offer(0.0, 2000) == SendOutcome::Lost {
                lost += 1;
            }
        }
        assert!(lost > 1000, "lost {lost}");
        assert!(link.zeroed() > 0);
    }

    #[test]
    fn window_rollover_resets_capacity() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.1, &["t3"]);
        // Saturate window 0.
        for _ in 0..5000 {
            link.offer(0.05, 1500);
        }
        assert!(link.lost() > 0);
        // A fresh window delivers again.
        assert_eq!(link.offer(0.15, 200), SendOutcome::Delivered);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.03125, &["same"]);
            (0..500)
                .map(|i| link.offer(i as f64 * 0.001, 1200) as u8)
                .collect::<Vec<u8>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_schedule_is_healthy_everywhere() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.last_fault_end_s(), 0.0);
        for t in [0.0, 1.5, 1e6] {
            assert!(s.state_at(t).is_healthy());
        }
    }

    #[test]
    fn windows_are_half_open_and_compose() {
        let s = FaultSchedule::none()
            .with_window(1.0, 2.0, FaultKind::LinkDown)
            .with_window(1.5, 3.0, FaultKind::BandwidthDegraded(0.5))
            .with_window(1.5, 3.0, FaultKind::BackendBrownout(0.4));
        assert!(s.state_at(0.99).is_healthy());
        let at1 = s.state_at(1.0);
        assert!(!at1.link_up);
        assert_eq!(at1.capacity_factor, 1.0);
        // Overlap: link still down, capacity halved, backend browned out.
        let mid = s.state_at(1.75);
        assert!(!mid.link_up);
        assert_eq!(mid.capacity_factor, 0.5);
        assert_eq!(mid.backend_availability, 0.4);
        // Window end is exclusive.
        let at2 = s.state_at(2.0);
        assert!(at2.link_up);
        assert_eq!(at2.capacity_factor, 0.5);
        assert!(s.state_at(3.0).is_healthy());
        assert_eq!(s.last_fault_end_s(), 3.0);
    }

    #[test]
    fn link_flaps_cover_the_run_periodically() {
        let s = FaultSchedule::link_flaps(10.0, 2.0, 30.0);
        assert_eq!(s.windows().len(), 3);
        assert!(s.state_at(7.0).link_up);
        assert!(!s.state_at(8.5).link_up);
        assert!(s.state_at(10.5).link_up);
        assert!(!s.state_at(19.0).link_up);
    }

    #[test]
    fn canned_midrun_scenarios_hit_the_middle() {
        let b = FaultSchedule::midrun_brownout(30.0, 0.2);
        assert!(b.state_at(5.0).is_healthy());
        assert_eq!(b.state_at(15.0).backend_availability, 0.2);
        let d = FaultSchedule::midrun_degraded(40.0, 0.3);
        assert!(d.state_at(5.0).is_healthy());
        assert_eq!(d.state_at(20.0).capacity_factor, 0.3);
    }

    #[test]
    fn random_schedules_are_seed_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let a = FaultSchedule::random(seed, 20.0);
            let b = FaultSchedule::random(seed, 20.0);
            assert_eq!(a, b);
            for w in a.windows() {
                assert!(w.start_s >= 0.0 && w.end_s <= 20.0 && w.end_s >= w.start_s);
                match w.kind {
                    FaultKind::BandwidthDegraded(factor) => {
                        assert!(factor > 0.0 && factor <= 0.8)
                    }
                    FaultKind::BackendBrownout(availability) => {
                        assert!((0.0..0.7).contains(&availability))
                    }
                    FaultKind::LinkDown => {}
                }
            }
        }
        assert_ne!(
            FaultSchedule::random(1, 20.0),
            FaultSchedule::random(2, 20.0)
        );
    }

    #[test]
    fn random_set_is_deterministic_and_per_replica() {
        let a = FaultSchedule::random_set(11, 30.0, 3);
        let b = FaultSchedule::random_set(11, 30.0, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Replica schedules are mutually independent draws.
        assert!(a[0] != a[1] || a[1] != a[2] || a[0].is_empty());
    }

    #[test]
    fn schedule_serializes_round_trip() {
        let s = FaultSchedule::random(9, 10.0);
        let j = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
