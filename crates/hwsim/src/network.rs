//! Host ↔ target network link model.
//!
//! The paper's monitoring host talks to targets over a 100 Mbit cabled
//! link; PCP ships samples over it with no buffering, so when the offered
//! load (sampling frequency × instance-domain size) exceeds what the link
//! and the DB can absorb within one sampling period, samples are lost or
//! arrive as batched zeros (Table III). This model captures exactly that
//! windowed-capacity behaviour, deterministically.

use crate::noise::NoiseSource;
use serde::{Deserialize, Serialize};

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits/s.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Per-message fixed protocol overhead in bytes (headers, PCP PDU).
    pub overhead_bytes: u32,
}

impl LinkSpec {
    /// The paper's 100 Mbit cabled host↔target connection.
    pub fn mbit_100() -> Self {
        LinkSpec {
            bandwidth_bps: 100e6,
            latency_s: 200e-6,
            overhead_bytes: 64,
        }
    }

    /// A gigabit link.
    pub fn gbit_1() -> Self {
        LinkSpec {
            bandwidth_bps: 1e9,
            latency_s: 100e-6,
            overhead_bytes: 64,
        }
    }

    /// Time to transfer a message of `bytes` payload.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes + self.overhead_bytes as usize) as f64 * 8.0 / self.bandwidth_bps
    }
}

/// Outcome of offering one message to the congested link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Delivered within the sampling window.
    Delivered,
    /// Lost: the link/receiver had no capacity left in this window.
    Lost,
    /// Delivered but the sampler had already moved on — the receiver sees
    /// a batched zero value instead of the true reading (the paper's
    /// "batched zeros" artefact at high frequency).
    DeliveredZero,
}

/// A link with windowed congestion behaviour.
///
/// Within each window of `window_s` seconds the link can carry a limited
/// number of payload bytes. Offers beyond ~100 % capacity are lost; offers
/// landing between the *stall threshold* (75 %) and full capacity are
/// delivered late and therefore read as zeros. Small deterministic jitter
/// makes per-window outcomes vary like the real measurements do.
#[derive(Debug)]
pub struct CongestedLink {
    spec: LinkSpec,
    window_s: f64,
    current_window: i64,
    bytes_in_window: f64,
    noise: NoiseSource,
    delivered: u64,
    lost: u64,
    zeroed: u64,
}

impl CongestedLink {
    /// New link with congestion windows of `window_s` seconds.
    pub fn new(spec: LinkSpec, window_s: f64, seed_labels: &[&str]) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        CongestedLink {
            spec,
            window_s,
            current_window: i64::MIN,
            bytes_in_window: 0.0,
            noise: NoiseSource::from_labels(seed_labels),
            delivered: 0,
            lost: 0,
            zeroed: 0,
        }
    }

    /// The underlying link spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Capacity of one window in payload bytes. The factor models the
    /// effective goodput of small telemetry PDUs (~12 % of line rate),
    /// which is what lets 88-field reports at 32 Hz overrun a 100 Mbit
    /// link's per-window service capability like Table III shows.
    pub fn window_capacity_bytes(&self) -> f64 {
        self.spec.bandwidth_bps / 8.0 * self.window_s * 0.12
    }

    /// Offer a message of `bytes` at time `t`; returns the outcome.
    pub fn offer(&mut self, t: f64, bytes: usize) -> SendOutcome {
        let w = (t / self.window_s).floor() as i64;
        if w != self.current_window {
            self.current_window = w;
            self.bytes_in_window = 0.0;
        }
        let msg = (bytes + self.spec.overhead_bytes as usize) as f64;
        self.bytes_in_window += msg;
        let cap = self.window_capacity_bytes() * (1.0 + self.noise.normal(0.0, 0.05));
        let utilization = self.bytes_in_window / cap;
        let outcome = if utilization > 1.0 {
            SendOutcome::Lost
        } else if utilization > 0.75 {
            SendOutcome::DeliveredZero
        } else {
            SendOutcome::Delivered
        };
        match outcome {
            SendOutcome::Delivered => self.delivered += 1,
            SendOutcome::Lost => self.lost += 1,
            SendOutcome::DeliveredZero => self.zeroed += 1,
        }
        outcome
    }

    /// Messages delivered (with true values).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages lost.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Messages delivered as batched zeros.
    pub fn zeroed(&self) -> u64 {
        self.zeroed
    }

    /// Bytes actually carried so far in the current window.
    pub fn window_load(&self) -> f64 {
        self.bytes_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_overhead() {
        let l = LinkSpec::mbit_100();
        let t = l.transfer_time(1000);
        // 1064 bytes at 100 Mbit = 85.1 µs + 200 µs latency.
        assert!((t - (200e-6 + 1064.0 * 8.0 / 100e6)).abs() < 1e-9);
        assert!(LinkSpec::gbit_1().transfer_time(1000) < t);
    }

    #[test]
    fn light_load_all_delivered() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.5, &["t1"]);
        for i in 0..100 {
            let out = link.offer(i as f64 * 0.5, 200);
            assert_eq!(out, SendOutcome::Delivered);
        }
        assert_eq!(link.delivered(), 100);
        assert_eq!(link.lost(), 0);
    }

    #[test]
    fn overload_loses_messages() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.03125, &["t2"]);
        // Fire a burst of large reports into a single window.
        let mut lost = 0;
        for _ in 0..2000 {
            if link.offer(0.0, 2000) == SendOutcome::Lost {
                lost += 1;
            }
        }
        assert!(lost > 1000, "lost {lost}");
        assert!(link.zeroed() > 0);
    }

    #[test]
    fn window_rollover_resets_capacity() {
        let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.1, &["t3"]);
        // Saturate window 0.
        for _ in 0..5000 {
            link.offer(0.05, 1500);
        }
        assert!(link.lost() > 0);
        // A fresh window delivers again.
        assert_eq!(link.offer(0.15, 200), SendOutcome::Delivered);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut link = CongestedLink::new(LinkSpec::mbit_100(), 0.03125, &["same"]);
            (0..500)
                .map(|i| link.offer(i as f64 * 0.001, 1200) as u8)
                .collect::<Vec<u8>>()
        };
        assert_eq!(run(), run());
    }
}
