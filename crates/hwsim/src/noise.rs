//! Deterministic measurement-noise models.
//!
//! Hardware performance counters over- and under-count nondeterministically
//! (Weaver et al., the paper's ref. 28); Fig. 4 shows the resulting
//! relative errors growing with sampling frequency. This module provides a
//! seeded noise source so those error bands reproduce exactly across runs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Stable 64-bit FNV-1a hash for seed derivation from string labels.
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded noise source tied to one (machine, event, run) context.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: ChaCha8Rng,
}

impl NoiseSource {
    /// Derive a noise source from contextual labels, e.g.
    /// `NoiseSource::from_labels(&["skx", "FP_ARITH", "run0"])`.
    pub fn from_labels(labels: &[&str]) -> Self {
        NoiseSource {
            rng: ChaCha8Rng::seed_from_u64(stable_hash(labels)),
        }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        NoiseSource {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Standard-normal sample (Box–Muller; two uniforms per call).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian with mean/stddev.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.std_normal()
    }

    /// Multiplicative counter-noise factor around 1.0.
    ///
    /// `base_rel` is the per-read relative error scale (~0.2 % at low
    /// frequency); the effective scale grows with the square root of the
    /// sampling frequency, matching Fig. 4's widening error bands (shorter
    /// windows → fewer events per read → relatively larger jitter).
    pub fn counter_factor(&mut self, base_rel: f64, freq_hz: f64) -> f64 {
        let scale = base_rel * (freq_hz.max(1.0)).sqrt();
        (1.0 + self.normal(0.0, scale)).max(0.0)
    }

    /// Uniform sample in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Bernoulli event with probability `p`.
    pub fn happens(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Run-to-run runtime variance factor: kernels re-run with ~`rel` sigma
    /// (this is what makes Fig. 5's overheads occasionally *negative*).
    pub fn runtime_factor(&mut self, rel: f64) -> f64 {
        (1.0 + self.normal(0.0, rel)).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_label_sensitive() {
        let a = stable_hash(&["skx", "ev"]);
        let b = stable_hash(&["skx", "ev"]);
        let c = stable_hash(&["icl", "ev"]);
        let d = stable_hash(&["skx", "ev2"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Concatenation ambiguity is broken by the separator byte.
        assert_ne!(stable_hash(&["ab", "c"]), stable_hash(&["a", "bc"]));
    }

    #[test]
    fn deterministic_sequences() {
        let mut n1 = NoiseSource::from_labels(&["skx", "x"]);
        let mut n2 = NoiseSource::from_labels(&["skx", "x"]);
        for _ in 0..10 {
            assert_eq!(n1.std_normal(), n2.std_normal());
        }
    }

    #[test]
    fn normal_statistics() {
        let mut n = NoiseSource::from_seed(42);
        let samples: Vec<f64> = (0..20_000).map(|_| n.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd was {}", var.sqrt());
    }

    #[test]
    fn counter_factor_grows_with_frequency() {
        // Average absolute deviation should widen with frequency.
        let spread = |freq: f64| {
            let mut n = NoiseSource::from_seed(7);
            (0..5000)
                .map(|_| (n.counter_factor(0.002, freq) - 1.0).abs())
                .sum::<f64>()
                / 5000.0
        };
        assert!(spread(64.0) > spread(1.0) * 2.0);
    }

    #[test]
    fn counter_factor_non_negative() {
        let mut n = NoiseSource::from_seed(1);
        for _ in 0..1000 {
            assert!(n.counter_factor(0.5, 64.0) >= 0.0);
        }
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut n = NoiseSource::from_seed(3);
        let hits = (0..10_000).filter(|_| n.happens(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!NoiseSource::from_seed(3).happens(0.0));
        assert!(NoiseSource::from_seed(3).happens(1.0));
    }
}
