//! # pmove-hwsim — simulated HPC machines
//!
//! The P-MoVE paper measures its framework on four physical x86 servers
//! (Table II) with real PMUs, RAPL domains, a 100 Mbit host↔target link and
//! spinning disks. None of that hardware is available or deterministic here,
//! so this crate provides the *machine substrate* the framework runs
//! against:
//!
//! * [`machine`] — machine specifications, including presets for the paper's
//!   four targets (SKX, ICL, CSL, ZEN3), and construction of the full
//!   component [`topology`] (node → socket → core → thread, caches, NUMA
//!   domains, memory, disks, NICs, GPUs);
//! * [`pmu`] — per-microarchitecture performance-event catalogs (the
//!   libpfm4 stand-in), programmable-counter limits per vendor, counter
//!   multiplexing, and the event *semantics* that tie event names to
//!   quantities of the execution model;
//! * [`kernel_profile`] / [`exec_model`] — a roofline-style execution model:
//!   given a kernel's operation mix (FLOPs by ISA class, loads/stores,
//!   working set, locality) and a machine, it produces a deterministic
//!   execution timeline and per-interval counter deltas;
//! * [`cache_model`] — analytic per-level hit fractions plus a real
//!   set-associative LRU cache simulator for access traces;
//! * [`energy`] — a RAPL package/DRAM energy model;
//! * [`noise`] — seeded overcount/undercount noise reproducing the PMU
//!   non-determinism reported by Weaver et al. and visible in Fig. 4;
//! * [`network`] / [`disk`] — the host↔target link and target disk models
//!   behind Table III's losses and Fig. 6's resource usage;
//! * [`gpu`] — NVIDIA device models with NVML-like metric catalogs and
//!   ncu-style kernel reports (Listing 4);
//! * [`system_state`] — deterministic software/system-state metrics
//!   (load, processes, memory) that the `pmdalinux` agent samples;
//! * [`probe`] — the probing module output: one JSON report per machine
//!   covering everything above (the lshw/likwid-topology/cpuid stand-in).
//!
//! Everything is deterministic: stochastic elements derive from
//! `rand_chacha` seeded per (machine, event) pair.

pub mod cache_model;
pub mod clock;
pub mod disk;
pub mod dvfs;
pub mod energy;
pub mod exec_model;
pub mod gpu;
pub mod kernel_profile;
pub mod machine;
pub mod network;
pub mod noise;
pub mod pmu;
pub mod probe;
pub mod system_state;
pub mod topology;
pub mod vendor;

pub use exec_model::{ExecModel, Execution};
pub use kernel_profile::{IsaClass, KernelProfile, LocalityProfile, Precision};
pub use machine::{Machine, MachineSpec};
pub use network::{FaultKind, FaultSchedule, FaultState, FaultWindow};
pub use pmu::{EventCatalog, EventDef, Quantity};
pub use topology::{Component, ComponentId, ComponentKind, Topology};
pub use vendor::{Microarch, Vendor};
