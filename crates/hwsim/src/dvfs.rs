//! Frequency scaling and AVX-license throttling.
//!
//! The paper's opening motivation lists "CPU throttling, reduced
//! frequency" among the causes of up-to-100 % performance variation.
//! This module models the two dominant server mechanisms:
//!
//! * **multi-core turbo bins** — sustained all-core frequency drops below
//!   the single-core turbo as more cores are active;
//! * **AVX frequency licenses** — wide-vector instruction streams force
//!   the core into lower-frequency license classes (L1 for heavy AVX2,
//!   L2 for heavy AVX-512), the classic Skylake-SP behaviour.
//!
//! [`effective_frequency`] feeds the execution model; the resulting
//! frequency dips are observable through `CPU_CYCLES`-derived metrics and
//! the anomaly scan, closing the paper's motivation loop.

use crate::kernel_profile::KernelProfile;
use crate::machine::MachineSpec;
use crate::vendor::{IsaExt, Microarch};
use serde::{Deserialize, Serialize};

/// AVX frequency license classes (Intel terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum License {
    /// L0: scalar/light-SSE — nominal turbo.
    L0,
    /// L1: heavy AVX2 — one bin group down.
    L1,
    /// L2: heavy AVX-512 — two bin groups down.
    L2,
}

impl License {
    /// License class of a kernel: determined by the widest ISA carrying a
    /// non-trivial share (>10 %) of its FP work.
    pub fn of_profile(profile: &KernelProfile) -> License {
        let total = profile.total_flops().max(1);
        let share = |isa: IsaExt| profile.flops_with_isa(isa) as f64 / total as f64;
        if share(IsaExt::Avx512) > 0.1 {
            License::L2
        } else if share(IsaExt::Avx2) > 0.1 {
            License::L1
        } else {
            License::L0
        }
    }

    /// Frequency multiplier for this license on an architecture.
    pub fn multiplier(&self, arch: Microarch) -> f64 {
        match (arch, self) {
            (_, License::L0) => 1.0,
            // Zen3 has no AVX-512 and negligible AVX2 offset.
            (Microarch::Zen3, _) => 0.98,
            (_, License::L1) => 0.94,
            // Ice Lake client parts throttle less than the server parts.
            (Microarch::IceLake, License::L2) => 0.90,
            (_, License::L2) => 0.85,
        }
    }
}

/// Multi-core turbo derating: 1.0 at one active core, decaying to the
/// all-core sustained ratio as every core lights up.
pub fn turbo_multiplier(spec: &MachineSpec, active_cores: u32) -> f64 {
    let total = spec.total_cores().max(1) as f64;
    let active = active_cores.clamp(1, spec.total_cores()) as f64;
    // Server parts sustain ~80 % of max turbo all-core; client ~88 %.
    let floor = if spec.sockets > 1 || spec.cores_per_socket >= 16 {
        0.80
    } else {
        0.88
    };
    1.0 - (1.0 - floor) * (active - 1.0) / (total - 1.0).max(1.0)
}

/// The effective clock (GHz) a kernel runs at: nominal turbo × multi-core
/// derating × AVX license multiplier.
pub fn effective_frequency(spec: &MachineSpec, profile: &KernelProfile) -> f64 {
    // Threads spread one-per-core before SMT (the balanced pinning the
    // framework defaults to), so active cores = min(threads, cores).
    let cores = profile.threads.min(spec.total_cores());
    let license = License::of_profile(profile);
    spec.freq_ghz * turbo_multiplier(spec, cores) * license.multiplier(spec.arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_profile::Precision;

    fn profile(isa: IsaExt, threads: u32) -> KernelProfile {
        KernelProfile::named("k")
            .with_threads(threads)
            .with_flops(isa, Precision::F64, 1_000_000)
            .with_mem(1_000, 0, isa)
    }

    #[test]
    fn license_classes_follow_isa_mix() {
        assert_eq!(
            License::of_profile(&profile(IsaExt::Scalar, 1)),
            License::L0
        );
        assert_eq!(License::of_profile(&profile(IsaExt::Sse, 1)), License::L0);
        assert_eq!(License::of_profile(&profile(IsaExt::Avx2, 1)), License::L1);
        assert_eq!(
            License::of_profile(&profile(IsaExt::Avx512, 1)),
            License::L2
        );
        // Mixed: a sliver of AVX-512 under 10 % does not trip L2.
        let mixed = KernelProfile::named("m")
            .with_threads(1)
            .with_flops(IsaExt::Scalar, Precision::F64, 95)
            .with_flops(IsaExt::Avx512, Precision::F64, 5);
        assert_eq!(License::of_profile(&mixed), License::L0);
    }

    #[test]
    fn turbo_decays_with_active_cores() {
        let spec = MachineSpec::csl();
        let one = turbo_multiplier(&spec, 1);
        let half = turbo_multiplier(&spec, 14);
        let all = turbo_multiplier(&spec, 28);
        assert_eq!(one, 1.0);
        assert!(half < one && half > all);
        assert!((all - 0.80).abs() < 1e-9);
        // Clamped outside the valid range.
        assert_eq!(turbo_multiplier(&spec, 0), 1.0);
        assert_eq!(turbo_multiplier(&spec, 999), all);
    }

    #[test]
    fn avx512_throttles_intel_servers_hardest() {
        let csl = MachineSpec::csl();
        let f_scalar = effective_frequency(&csl, &profile(IsaExt::Scalar, 56));
        let f_avx2 = effective_frequency(&csl, &profile(IsaExt::Avx2, 56));
        let f_avx512 = effective_frequency(&csl, &profile(IsaExt::Avx512, 56));
        assert!(f_scalar > f_avx2);
        assert!(f_avx2 > f_avx512);
        // All-core AVX-512: 2.7 × 0.80 × 0.85 ≈ 1.84 GHz.
        assert!((f_avx512 - 2.7 * 0.80 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn zen3_barely_throttles() {
        let zen3 = MachineSpec::zen3();
        let f_scalar = effective_frequency(&zen3, &profile(IsaExt::Scalar, 32));
        let f_avx2 = effective_frequency(&zen3, &profile(IsaExt::Avx2, 32));
        assert!(f_avx2 / f_scalar > 0.97);
    }

    #[test]
    fn single_core_scalar_runs_at_nominal() {
        let icl = MachineSpec::icl();
        let f = effective_frequency(&icl, &profile(IsaExt::Scalar, 1));
        assert_eq!(f, icl.freq_ghz);
    }
}
