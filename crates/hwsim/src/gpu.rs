//! GPU device models.
//!
//! §III-D of the paper integrates NVIDIA GPUs by probing with `nvidia-smi`
//! and `DeviceQuery`, sampling SW telemetry through NVML (`pcp-pmda-nvidia`)
//! and capturing HW telemetry by wrapping kernel launches with `ncu`. This
//! module supplies the device model, the NVML-like metric catalog, and
//! ncu-style kernel profile reports (Listing 4's source data).

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Static GPU specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing model name.
    pub model: String,
    /// Device memory in MiB.
    pub memory_mb: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Shared memory per SM in KiB.
    pub shared_mem_kb: u32,
    /// L2 cache in KiB.
    pub l2_kb: u32,
    /// NUMA node the device attaches to.
    pub numa_node: u32,
    /// PCI bus id.
    pub bus_id: String,
}

impl GpuSpec {
    /// The Quadro GV100 of Listing 4.
    pub fn gv100() -> Self {
        GpuSpec {
            model: "NVIDIA Quadro GV100".into(),
            memory_mb: 34359,
            sm_count: 80,
            shared_mem_kb: 96,
            l2_kb: 6144,
            numa_node: 0,
            bus_id: "0000:3b:00.0".into(),
        }
    }

    /// An A100-like device for multi-GPU scenarios.
    pub fn a100() -> Self {
        GpuSpec {
            model: "NVIDIA A100-PCIE-40GB".into(),
            memory_mb: 40960,
            sm_count: 108,
            shared_mem_kb: 164,
            l2_kb: 40960,
            numa_node: 1,
            bus_id: "0000:af:00.0".into(),
        }
    }

    /// `nvidia-smi`-style probe record.
    pub fn smi_record(&self, index: u32) -> Value {
        json!({
            "index": index,
            "name": self.model,
            "memory.total": format!("{} MiB", self.memory_mb),
            "pci.bus_id": self.bus_id,
        })
    }

    /// `DeviceQuery`-style hardware record.
    pub fn device_query(&self) -> Value {
        json!({
            "multiProcessorCount": self.sm_count,
            "sharedMemPerMultiprocessor": self.shared_mem_kb * 1024,
            "l2CacheSize": self.l2_kb * 1024,
            "totalGlobalMem": self.memory_mb * 1024 * 1024,
        })
    }
}

/// NVML software-telemetry metrics (`pcp-pmda-nvidia` samples every metric
/// NVML supports; this is the subset P-MoVE's KB encodes by default).
pub fn nvml_metrics() -> Vec<(&'static str, &'static str)> {
    vec![
        ("nvidia.memused", "Device memory in use"),
        ("nvidia.memtotal", "Total device memory"),
        ("nvidia.gpuactive", "GPU utilization percentage"),
        ("nvidia.memactive", "Memory controller utilization"),
        ("nvidia.temp", "GPU temperature"),
        ("nvidia.power", "Board power draw"),
        ("nvidia.clock.sm", "SM clock frequency"),
        ("nvidia.clock.mem", "Memory clock frequency"),
        ("nvidia.procs", "Processes with device contexts"),
    ]
}

/// ncu hardware metrics captured around wrapped kernel launches.
pub fn ncu_metrics() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "gpu__compute_memory_access_throughput",
            "Compute Memory Pipeline: throughput of internal activity within caches and DRAM",
        ),
        ("sm__throughput", "SM throughput relative to peak"),
        ("dram__bytes_read", "Bytes read from device memory"),
        ("dram__bytes_write", "Bytes written to device memory"),
        ("sm__inst_executed", "Instructions executed"),
        (
            "sm__sass_thread_inst_executed_op_dfma_pred_on",
            "Double-precision FMA thread instructions",
        ),
        ("l1tex__t_sector_hit_rate", "L1/TEX sector hit rate"),
        ("lts__t_sector_hit_rate", "L2 sector hit rate"),
    ]
}

/// A GPU kernel's operation profile, the ncu-wrapping input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuKernelProfile {
    /// Kernel symbol name.
    pub name: String,
    /// Double-precision FLOPs.
    pub flops_f64: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Grid × block thread count.
    pub threads_launched: u64,
}

/// An ncu-style report produced after a wrapped kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcuReport {
    /// Kernel name.
    pub kernel: String,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// Metric name → value.
    pub metrics: Vec<(String, f64)>,
}

/// Profile a GPU kernel on a device: a simple roofline over SM FLOP
/// throughput and DRAM bandwidth, reported ncu-style.
pub fn profile_kernel(gpu: &GpuSpec, profile: &GpuKernelProfile) -> NcuReport {
    // GV100-class: ~7.4 TF/s f64, ~870 GB/s HBM2.
    let peak_flops = gpu.sm_count as f64 * 64.0 * 2.0 * 1.4e9 * 0.5; // DP units at ~1.4 GHz
    let peak_bw = 870e9 * (gpu.sm_count as f64 / 80.0).min(1.5);
    let t_compute = profile.flops_f64 as f64 / peak_flops;
    let bytes = (profile.dram_read_bytes + profile.dram_write_bytes) as f64;
    let t_mem = bytes / peak_bw;
    let duration = t_compute.max(t_mem) * 1.05 + 3e-6;
    let mem_throughput_pct = (t_mem / duration * 100.0).min(100.0);
    let sm_throughput_pct = (t_compute / duration * 100.0).min(100.0);
    NcuReport {
        kernel: profile.name.clone(),
        duration_us: duration * 1e6,
        metrics: vec![
            (
                "gpu__compute_memory_access_throughput".into(),
                mem_throughput_pct,
            ),
            ("sm__throughput".into(), sm_throughput_pct),
            ("dram__bytes_read".into(), profile.dram_read_bytes as f64),
            ("dram__bytes_write".into(), profile.dram_write_bytes as f64),
            (
                "sm__sass_thread_inst_executed_op_dfma_pred_on".into(),
                profile.flops_f64 as f64 / 2.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gv100_matches_listing4() {
        let g = GpuSpec::gv100();
        assert_eq!(g.model, "NVIDIA Quadro GV100");
        assert_eq!(g.memory_mb, 34359);
        assert_eq!(g.numa_node, 0);
        let smi = g.smi_record(0);
        assert_eq!(smi["memory.total"], json!("34359 MiB"));
        let dq = g.device_query();
        assert_eq!(dq["multiProcessorCount"], json!(80));
    }

    #[test]
    fn metric_catalogs_nonempty_and_contain_listing4_metric() {
        assert!(nvml_metrics().iter().any(|(n, _)| *n == "nvidia.memused"));
        assert!(ncu_metrics()
            .iter()
            .any(|(n, _)| *n == "gpu__compute_memory_access_throughput"));
    }

    #[test]
    fn memory_bound_kernel_reports_high_mem_throughput() {
        let g = GpuSpec::gv100();
        let k = GpuKernelProfile {
            name: "stream_triad".into(),
            flops_f64: 1 << 28,
            dram_read_bytes: 6 << 30,
            dram_write_bytes: 3 << 30,
            threads_launched: 1 << 20,
        };
        let r = profile_kernel(&g, &k);
        let mem = r
            .metrics
            .iter()
            .find(|(n, _)| n == "gpu__compute_memory_access_throughput")
            .unwrap()
            .1;
        let sm = r
            .metrics
            .iter()
            .find(|(n, _)| n == "sm__throughput")
            .unwrap()
            .1;
        assert!(mem > 80.0, "mem {mem}");
        assert!(sm < 20.0, "sm {sm}");
        assert!(r.duration_us > 0.0);
    }

    #[test]
    fn compute_bound_kernel_reports_high_sm_throughput() {
        let g = GpuSpec::gv100();
        let k = GpuKernelProfile {
            name: "dgemm".into(),
            flops_f64: 1 << 40,
            dram_read_bytes: 1 << 28,
            dram_write_bytes: 1 << 26,
            threads_launched: 1 << 20,
        };
        let r = profile_kernel(&g, &k);
        let sm = r
            .metrics
            .iter()
            .find(|(n, _)| n == "sm__throughput")
            .unwrap()
            .1;
        assert!(sm > 80.0, "sm {sm}");
    }
}
