//! The roofline-style execution model.
//!
//! Given a machine and a kernel profile, [`ExecModel::run`] produces an
//! [`Execution`]: a deterministic timeline with total quantities for every
//! PMU-observable [`Quantity`], distributable over hardware threads and
//! time windows. All of §V's experiments sample these executions.
//!
//! Time accounting follows the cache-aware roofline logic the paper builds
//! its live-CARM on: execution time is the maximum of the compute time
//! (FLOPs against per-ISA peak) and the memory time (bytes against the
//! bandwidth of each serving level), plus a small serial overhead.

use crate::cache_model::derive_locality;
use crate::energy::EnergyModel;
use crate::kernel_profile::{KernelProfile, LocalityProfile, Precision};
use crate::machine::MachineSpec;
use crate::noise::NoiseSource;
use crate::pmu::Quantity;

/// Executes kernel profiles on one machine.
#[derive(Debug, Clone)]
pub struct ExecModel {
    spec: MachineSpec,
    energy: EnergyModel,
    dvfs: bool,
}

impl ExecModel {
    /// Model for a machine spec. DVFS/AVX-license throttling is off by
    /// default (the evaluation experiments are calibrated without it);
    /// enable it with [`ExecModel::with_dvfs`] to study frequency-driven
    /// variability.
    pub fn new(spec: MachineSpec) -> Self {
        let energy = EnergyModel::for_machine(&spec);
        ExecModel {
            spec,
            energy,
            dvfs: false,
        }
    }

    /// Enable multi-core turbo derating and AVX frequency licenses.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = true;
        self
    }

    /// The underlying machine spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Clock the kernel would run at under the current DVFS setting.
    pub fn clock_ghz(&self, profile: &KernelProfile) -> f64 {
        if self.dvfs {
            crate::dvfs::effective_frequency(&self.spec, profile)
        } else {
            self.spec.freq_ghz
        }
    }

    /// Compute-bound time in seconds: each ISA group at its peak.
    pub fn compute_time(&self, profile: &KernelProfile) -> f64 {
        profile
            .flops
            .iter()
            .map(|g| {
                let peak = self.spec.peak_gflops_f64(g.isa, profile.threads) * 1e9;
                // F32 doubles the lane count, hence the throughput.
                let peak = match g.precision {
                    Precision::F64 => peak,
                    Precision::F32 => peak * 2.0,
                };
                g.ops as f64 / peak
            })
            .sum()
    }

    /// Memory-bound time in seconds: bytes per serving level over that
    /// level's bandwidth at the given thread count.
    pub fn memory_time(&self, profile: &KernelProfile, locality: &LocalityProfile) -> f64 {
        self.memory_time_scaled(profile, locality, 1.0)
    }

    /// [`ExecModel::memory_time`] with a core-clock ratio: cache levels
    /// (1–3) are core-clocked and slow with the ratio; DRAM is not.
    fn memory_time_scaled(
        &self,
        profile: &KernelProfile,
        locality: &LocalityProfile,
        freq_ratio: f64,
    ) -> f64 {
        let bytes = profile.total_bytes() as f64;
        (1..=4u8)
            .map(|level| {
                let frac = locality.fraction(level);
                if frac == 0.0 {
                    return 0.0;
                }
                let scale = if level < 4 { freq_ratio } else { 1.0 };
                bytes * frac / (self.spec.level_bandwidth(level, profile.threads) * scale)
            })
            .sum()
    }

    /// Run a kernel starting at `start_s` seconds of virtual time.
    pub fn run(&self, profile: &KernelProfile, start_s: f64) -> Execution {
        let locality = profile.locality.unwrap_or_else(|| {
            derive_locality(&self.spec, profile.working_set_bytes, profile.threads)
        });
        // Under DVFS, core-clocked resources (FP pipes, private caches)
        // slow by the frequency ratio; DRAM bandwidth is unaffected.
        let clock_ghz = self.clock_ghz(profile);
        let freq_ratio = clock_ghz / self.spec.freq_ghz;
        let compute = self.compute_time(profile) / freq_ratio;
        let memory = self.memory_time_scaled(profile, &locality, freq_ratio);
        // Serial launch/teardown overhead: ~2 % plus a fixed 50 µs.
        let duration = (compute.max(memory)) * 1.02 + 50e-6;
        // Deterministic ±3 % per-thread load imbalance, precomputed once
        // (sampling reads these on every tick for every thread).
        let active = profile.threads.min(self.spec.total_threads());
        let raw: Vec<f64> = (0..active)
            .map(|i| {
                let mut n =
                    NoiseSource::from_labels(&[&self.spec.key, &profile.name, &format!("t{i}")]);
                (1.0 + n.normal(0.0, 0.03)).max(0.2)
            })
            .collect();
        let total: f64 = raw.iter().sum();
        let thread_weights = raw.into_iter().map(|w| w / total).collect();
        Execution {
            machine: self.spec.clone(),
            energy: self.energy,
            profile: profile.clone(),
            locality,
            start_s,
            duration_s: duration,
            clock_ghz,
            thread_weights,
        }
    }

    /// Run under PMU sampling at `freq_hz`: the sampler perturbs the run by
    /// a tiny positive overhead that grows with frequency (Fig. 5 measures
    /// ~0.01 %, skewing positive at high frequency), while run-to-run
    /// variance (`noise`) can make the *measured* overhead negative.
    pub fn run_sampled(
        &self,
        profile: &KernelProfile,
        start_s: f64,
        freq_hz: f64,
        noise: &mut NoiseSource,
    ) -> Execution {
        let mut exec = self.run(profile, start_s);
        let overhead = sampling_overhead_fraction(freq_hz);
        let variance = noise.runtime_factor(0.0008);
        exec.duration_s *= (1.0 + overhead) * variance;
        exec
    }
}

/// Deterministic sampling-overhead fraction as a function of frequency:
/// ~0.005 % at 1 Hz growing to ~0.05 % at 64 Hz.
pub fn sampling_overhead_fraction(freq_hz: f64) -> f64 {
    5e-5 + 7e-6 * freq_hz.max(0.0)
}

/// One simulated kernel execution.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Machine the kernel ran on.
    pub machine: MachineSpec,
    energy: EnergyModel,
    /// The executed profile.
    pub profile: KernelProfile,
    /// Resolved locality.
    pub locality: LocalityProfile,
    /// Start time (virtual seconds).
    pub start_s: f64,
    /// Duration (virtual seconds).
    pub duration_s: f64,
    /// Effective core clock during the run (GHz) — equals the machine's
    /// nominal clock unless DVFS throttling applied.
    pub clock_ghz: f64,
    /// Normalized per-active-thread work shares (length = active threads).
    thread_weights: Vec<f64>,
}

impl Execution {
    /// End time.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Achieved GFLOP/s over the whole run.
    pub fn gflops(&self) -> f64 {
        self.profile.total_flops() as f64 / self.duration_s / 1e9
    }

    /// Bytes served from a memory level (1..=4).
    pub fn bytes_from_level(&self, level: u8) -> f64 {
        self.profile.total_bytes() as f64 * self.locality.fraction(level)
    }

    /// Total value of a PMU quantity across all threads for the whole run.
    pub fn quantity_total(&self, q: Quantity) -> f64 {
        let p = &self.profile;
        let active = p.threads.min(self.machine.total_threads()) as f64;
        match q {
            Quantity::Cycles => self.duration_s * self.clock_ghz * 1e9 * active,
            Quantity::Instructions => p.total_instructions() as f64,
            Quantity::Uops => p.total_instructions() as f64 * 1.3,
            Quantity::FlopInstrF64(isa) => p.flop_instructions_with(isa, Precision::F64) as f64,
            Quantity::FlopInstrF32(isa) => p.flop_instructions_with(isa, Precision::F32) as f64,
            Quantity::AllFlops => p.total_flops() as f64,
            Quantity::LoadInstr => p.load_instructions() as f64,
            Quantity::StoreInstr => p.store_instructions() as f64,
            Quantity::CacheMiss(level) => {
                // Misses at L are accesses served by deeper levels, in lines.
                let deeper: f64 = (level + 1..=4).map(|l| self.locality.fraction(l)).sum();
                p.total_bytes() as f64 * deeper / 64.0
            }
            Quantity::CacheRef(level) => {
                let here_or_deeper: f64 = (level..=4).map(|l| self.locality.fraction(l)).sum();
                p.total_bytes() as f64 * here_or_deeper / 64.0
            }
            Quantity::DivOps => p.div_ops as f64,
            Quantity::EnergyPkg => {
                let cache_bytes: f64 = (1..=3).map(|l| self.bytes_from_level(l)).sum();
                self.energy.package_energy(
                    self.duration_s,
                    p.total_instructions() as f64,
                    cache_bytes,
                    self.bytes_from_level(4),
                    self.machine.sockets,
                )
            }
            Quantity::EnergyDram => self.energy.dram_energy(
                self.duration_s,
                self.bytes_from_level(4),
                self.machine.sockets,
            ),
        }
    }

    /// Mean package power over the run, in watts.
    pub fn package_power_w(&self) -> f64 {
        self.quantity_total(Quantity::EnergyPkg) / self.duration_s
    }

    /// Fraction of the quantity falling into the window `[t0, t1)` of
    /// virtual time, assuming a uniform rate over the run.
    pub fn window_fraction(&self, t0: f64, t1: f64) -> f64 {
        let lo = t0.max(self.start_s);
        let hi = t1.min(self.end_s());
        if hi <= lo || self.duration_s <= 0.0 {
            return 0.0;
        }
        (hi - lo) / self.duration_s
    }

    /// Quantity counted in a window across all threads.
    pub fn quantity_in_window(&self, q: Quantity, t0: f64, t1: f64) -> f64 {
        self.quantity_total(q) * self.window_fraction(t0, t1)
    }

    /// Share of a per-thread quantity attributed to one active thread, with
    /// a deterministic ±3 % load imbalance. `thread_idx` counts the active
    /// threads (0-based); inactive threads observe 0.
    pub fn thread_share(&self, thread_idx: u32) -> f64 {
        self.thread_weights
            .get(thread_idx as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// Per-thread quantity in a window (uniform rate × imbalance share).
    pub fn thread_quantity_in_window(&self, q: Quantity, thread_idx: u32, t0: f64, t1: f64) -> f64 {
        self.quantity_in_window(q, t0, t1) * self.thread_share(thread_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_profile::KernelProfile;
    use crate::vendor::IsaExt;

    fn model() -> ExecModel {
        ExecModel::new(MachineSpec::csl())
    }

    /// DRAM-streaming triad, AVX-512, all 28 cores.
    fn triad() -> KernelProfile {
        let n: u64 = 1 << 27; // 128 Mi elements/array => 3 GiB working set
        KernelProfile::named("triad")
            .with_threads(28)
            .with_flops(IsaExt::Avx512, Precision::F64, 2 * n)
            .with_mem(2 * n, n, IsaExt::Avx512)
            .with_working_set(3 * n * 8)
    }

    /// Tiny compute-heavy kernel, fits in L1.
    fn peakflops() -> KernelProfile {
        KernelProfile::named("peakflops")
            .with_threads(28)
            .with_flops(IsaExt::Avx512, Precision::F64, 1 << 34)
            .with_mem(1 << 20, 0, IsaExt::Avx512)
            .with_working_set(16 * 1024)
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        let m = model();
        let p = triad();
        let exec = m.run(&p, 0.0);
        assert!(exec.locality.dram > 0.9);
        let mem = m.memory_time(&p, &exec.locality);
        let comp = m.compute_time(&p);
        assert!(mem > comp * 2.0, "mem {mem} comp {comp}");
        // Achieved bandwidth ≈ machine DRAM bandwidth.
        let bw = p.total_bytes() as f64 / exec.duration_s;
        assert!(bw < m.spec().dram_bw_total() * 1.05);
        assert!(bw > m.spec().dram_bw_total() * 0.5);
    }

    #[test]
    fn compute_kernel_reaches_near_peak() {
        let m = model();
        let exec = m.run(&peakflops(), 0.0);
        let peak = m.spec().peak_gflops_f64(IsaExt::Avx512, 28);
        let achieved = exec.gflops();
        assert!(achieved > 0.9 * peak, "achieved {achieved} peak {peak}");
        assert!(achieved <= peak);
    }

    #[test]
    fn avx512_beats_scalar_for_same_work() {
        let m = model();
        let n: u64 = 1 << 22;
        let mk = |isa| {
            KernelProfile::named("k")
                .with_threads(4)
                .with_flops(isa, Precision::F64, 64 * n)
                .with_mem(n, n, isa)
                .with_working_set(2 * n * 8)
        };
        let fast = m.run(&mk(IsaExt::Avx512), 0.0);
        let slow = m.run(&mk(IsaExt::Scalar), 0.0);
        assert!(slow.duration_s > fast.duration_s * 3.0);
    }

    #[test]
    fn quantity_semantics() {
        let m = model();
        let p = triad();
        let exec = m.run(&p, 0.0);
        assert_eq!(
            exec.quantity_total(Quantity::AllFlops),
            p.total_flops() as f64
        );
        assert_eq!(
            exec.quantity_total(Quantity::FlopInstrF64(IsaExt::Avx512)),
            p.flop_instructions_with(IsaExt::Avx512, Precision::F64) as f64
        );
        assert_eq!(
            exec.quantity_total(Quantity::FlopInstrF64(IsaExt::Scalar)),
            0.0
        );
        assert_eq!(
            exec.quantity_total(Quantity::LoadInstr),
            p.load_instructions() as f64
        );
        // Streaming kernel: essentially every line misses L1 and L3 refs
        // roughly equal DRAM-served lines.
        let l1_miss = exec.quantity_total(Quantity::CacheMiss(1));
        assert!(l1_miss > 0.9 * p.total_bytes() as f64 / 64.0);
        assert!(exec.quantity_total(Quantity::EnergyPkg) > 0.0);
        assert!(
            exec.quantity_total(Quantity::EnergyDram) < exec.quantity_total(Quantity::EnergyPkg)
        );
    }

    #[test]
    fn windows_partition_the_run() {
        let m = model();
        let exec = m.run(&triad(), 10.0);
        let q = Quantity::LoadInstr;
        let total = exec.quantity_total(q);
        let mid = exec.start_s + exec.duration_s / 2.0;
        let a = exec.quantity_in_window(q, 0.0, mid);
        let b = exec.quantity_in_window(q, mid, 1e9);
        assert!((a + b - total).abs() < total * 1e-9);
        // Outside the run: zero.
        assert_eq!(exec.quantity_in_window(q, 0.0, 10.0), 0.0);
    }

    #[test]
    fn thread_shares_sum_to_one_and_are_stable() {
        let m = model();
        let exec = m.run(&triad(), 0.0);
        let sum: f64 = (0..28).map(|i| exec.thread_share(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(exec.thread_share(0), exec.thread_share(0));
        assert_eq!(exec.thread_share(100), 0.0);
    }

    #[test]
    fn sampling_adds_small_overhead() {
        let m = model();
        let p = triad();
        let base = m.run(&p, 0.0).duration_s;
        // Average over noise draws: overhead should be ≪ 1 % yet positive
        // in expectation and growing with frequency.
        let mean_dur = |freq: f64| {
            (0..30)
                .map(|i| {
                    let mut n = NoiseSource::from_seed(1000 + i);
                    m.run_sampled(&p, 0.0, freq, &mut n).duration_s
                })
                .sum::<f64>()
                / 30.0
        };
        let d1 = mean_dur(1.0);
        let d64 = mean_dur(64.0);
        assert!(d1 > base * 0.999 && d1 < base * 1.01);
        assert!(d64 > d1);
        assert!(sampling_overhead_fraction(64.0) > sampling_overhead_fraction(2.0));
    }

    #[test]
    fn dvfs_throttles_wide_vector_kernels_only() {
        let spec = MachineSpec::csl();
        let base = ExecModel::new(spec.clone());
        let dvfs = ExecModel::new(spec).with_dvfs();
        // All-core AVX-512 compute kernel: DVFS slows it by the license +
        // turbo derating (~32 % on CSL).
        let p = peakflops();
        let t0 = base.run(&p, 0.0).duration_s;
        let t1 = dvfs.run(&p, 0.0).duration_s;
        assert!(
            (t1 / t0 - 1.0 / (0.80 * 0.85)).abs() < 0.02,
            "ratio {}",
            t1 / t0
        );
        // Single-core scalar kernel: no throttling at all.
        let scalar = KernelProfile::named("s")
            .with_threads(1)
            .with_flops(IsaExt::Scalar, Precision::F64, 1 << 28)
            .with_mem(1 << 10, 0, IsaExt::Scalar)
            .with_working_set(8 << 10);
        let t0 = base.run(&scalar, 0.0).duration_s;
        let t1 = dvfs.run(&scalar, 0.0).duration_s;
        assert!((t1 / t0 - 1.0).abs() < 1e-9);
        // DRAM-bound streaming kernel: barely affected (DRAM is not
        // core-clocked).
        let t0 = base.run(&triad(), 0.0).duration_s;
        let t1 = dvfs.run(&triad(), 0.0).duration_s;
        assert!(t1 / t0 < 1.05, "ratio {}", t1 / t0);
    }

    #[test]
    fn package_power_in_plausible_server_range() {
        let m = model();
        let exec = m.run(&triad(), 0.0);
        let w = exec.package_power_w();
        assert!(w > 50.0 && w < 400.0, "power {w} W");
    }
}
