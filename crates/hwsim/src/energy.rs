//! RAPL-style package/DRAM energy model.
//!
//! Calibrated to reproduce the *qualitative* power behaviour of Fig. 7:
//! for the same amount of FP work, a scalar code retires ~8× more
//! instructions than an AVX-512 code and therefore burns more package
//! power, while heavy DRAM traffic adds on top. Absolute watts are
//! plausible for the modelled server classes, not calibrated to hardware.

use crate::machine::MachineSpec;
use crate::vendor::Microarch;
use serde::{Deserialize, Serialize};

/// Per-machine energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Idle package power per socket, watts.
    pub idle_w_per_socket: f64,
    /// Energy per retired instruction, joules.
    pub j_per_instruction: f64,
    /// Energy per byte moved from DRAM, joules.
    pub j_per_dram_byte: f64,
    /// Energy per byte moved within caches, joules.
    pub j_per_cache_byte: f64,
    /// DRAM idle power per socket (for the DRAM RAPL domain).
    pub dram_idle_w_per_socket: f64,
}

impl EnergyModel {
    /// Coefficients for a machine spec.
    pub fn for_machine(spec: &MachineSpec) -> Self {
        let idle = match spec.arch {
            Microarch::SkylakeX => 55.0,
            Microarch::CascadeLake => 50.0,
            Microarch::IceLake => 18.0,
            Microarch::Zen3 => 40.0,
        };
        EnergyModel {
            idle_w_per_socket: idle,
            j_per_instruction: 0.45e-9,
            j_per_dram_byte: 60.0e-12,
            j_per_cache_byte: 6.0e-12,
            dram_idle_w_per_socket: 3.0,
        }
    }

    /// Package energy (joules) for an execution phase.
    ///
    /// * `duration_s` — phase wall time;
    /// * `instructions` — total instructions retired;
    /// * `cache_bytes` — bytes served by caches;
    /// * `dram_bytes` — bytes served by DRAM;
    /// * `sockets` — active package count.
    pub fn package_energy(
        &self,
        duration_s: f64,
        instructions: f64,
        cache_bytes: f64,
        dram_bytes: f64,
        sockets: u32,
    ) -> f64 {
        self.idle_w_per_socket * sockets as f64 * duration_s
            + self.j_per_instruction * instructions
            + self.j_per_cache_byte * cache_bytes
            + self.j_per_dram_byte * dram_bytes
    }

    /// DRAM-domain energy (joules) for a phase.
    pub fn dram_energy(&self, duration_s: f64, dram_bytes: f64, sockets: u32) -> f64 {
        self.dram_idle_w_per_socket * sockets as f64 * duration_s
            + self.j_per_dram_byte * dram_bytes * 0.5
    }

    /// Mean package power (watts) over a phase.
    pub fn package_power(
        &self,
        duration_s: f64,
        instructions: f64,
        cache_bytes: f64,
        dram_bytes: f64,
        sockets: u32,
    ) -> f64 {
        if duration_s <= 0.0 {
            return self.idle_w_per_socket * sockets as f64;
        }
        self.package_energy(duration_s, instructions, cache_bytes, dram_bytes, sockets) / duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_energy_scales_with_time_and_sockets() {
        let m = EnergyModel::for_machine(&MachineSpec::skx());
        let e1 = m.package_energy(1.0, 0.0, 0.0, 0.0, 2);
        let e2 = m.package_energy(2.0, 0.0, 0.0, 0.0, 2);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert!((e1 - 110.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_burns_more_than_vector_for_same_flops() {
        // Same FLOPs and duration; scalar retires 8x the instructions.
        let m = EnergyModel::for_machine(&MachineSpec::csl());
        let flops = 1e10;
        let scalar_instr = flops; // 1 flop per instr
        let avx512_instr = flops / 8.0;
        let p_scalar = m.package_power(1.0, scalar_instr, 1e9, 1e9, 1);
        let p_vec = m.package_power(1.0, avx512_instr, 1e9, 1e9, 1);
        assert!(p_scalar > p_vec * 1.05, "{p_scalar} vs {p_vec}");
    }

    #[test]
    fn dram_traffic_adds_power() {
        let m = EnergyModel::for_machine(&MachineSpec::csl());
        let low = m.package_power(1.0, 1e9, 0.0, 1e9, 1);
        let high = m.package_power(1.0, 1e9, 0.0, 50e9, 1);
        assert!(high > low);
    }

    #[test]
    fn dram_domain_smaller_than_package() {
        let m = EnergyModel::for_machine(&MachineSpec::zen3());
        let pkg = m.package_energy(1.0, 1e9, 1e9, 10e9, 1);
        let dram = m.dram_energy(1.0, 10e9, 1);
        assert!(dram < pkg);
        assert!(dram > 0.0);
    }

    #[test]
    fn zero_duration_power_defaults_to_idle() {
        let m = EnergyModel::for_machine(&MachineSpec::icl());
        assert_eq!(m.package_power(0.0, 1e9, 0.0, 0.0, 1), m.idle_w_per_socket);
    }
}
