//! CPU vendors, microarchitectures and ISA extensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// CPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Intel Corporation.
    Intel,
    /// Advanced Micro Devices.
    Amd,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Intel => write!(f, "GenuineIntel"),
            Vendor::Amd => write!(f, "AuthenticAMD"),
        }
    }
}

/// Microarchitectures used by the paper's four target systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microarch {
    /// Intel Skylake-X (skx target).
    SkylakeX,
    /// Intel Ice Lake (icl target).
    IceLake,
    /// Intel Cascade Lake (csl target).
    CascadeLake,
    /// AMD Zen 3 (zen3 target).
    Zen3,
}

impl Microarch {
    /// The vendor of this microarchitecture.
    pub fn vendor(&self) -> Vendor {
        match self {
            Microarch::SkylakeX | Microarch::IceLake | Microarch::CascadeLake => Vendor::Intel,
            Microarch::Zen3 => Vendor::Amd,
        }
    }

    /// Short PMU name used by the abstraction-layer config files
    /// (`[pmu_name | alias]`).
    pub fn pmu_name(&self) -> &'static str {
        match self {
            Microarch::SkylakeX => "skx",
            Microarch::IceLake => "icl",
            Microarch::CascadeLake => "csl",
            Microarch::Zen3 => "zen3",
        }
    }

    /// ISA extensions available, widest last.
    pub fn isa_extensions(&self) -> &'static [IsaExt] {
        match self {
            // Paper §IV-B: microbenchmarks support scalar, SSE, AVX2, AVX512.
            Microarch::SkylakeX | Microarch::IceLake | Microarch::CascadeLake => {
                &[IsaExt::Scalar, IsaExt::Sse, IsaExt::Avx2, IsaExt::Avx512]
            }
            // Zen3 has no AVX-512.
            Microarch::Zen3 => &[IsaExt::Scalar, IsaExt::Sse, IsaExt::Avx2],
        }
    }

    /// The widest vector extension available.
    pub fn widest_isa(&self) -> IsaExt {
        *self
            .isa_extensions()
            .last()
            .expect("every arch has at least scalar")
    }

    /// Number of programmable performance counters per hardware thread.
    /// Paper §IV-A: Intel has four programmable counters per core (eight
    /// when not shared with a sibling thread); AMD exposes two internal
    /// counters per sampling flag.
    pub fn programmable_counters(&self, smt_active: bool) -> usize {
        match self.vendor() {
            Vendor::Intel => {
                if smt_active {
                    4
                } else {
                    8
                }
            }
            Vendor::Amd => 2,
        }
    }

    /// FMA throughput: double-precision FLOPs per cycle per core for a
    /// given vector extension (2 ops/FMA × lanes × FMA units).
    pub fn flops_per_cycle_f64(&self, isa: IsaExt) -> f64 {
        let units = match self {
            // Two 512-bit FMA ports on SKX/CSL Gold, two 256-bit on Zen3.
            Microarch::SkylakeX | Microarch::CascadeLake | Microarch::IceLake => 2.0,
            Microarch::Zen3 => 2.0,
        };
        2.0 * isa.f64_lanes() as f64 * units
    }
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Microarch::SkylakeX => "Skylake X",
            Microarch::IceLake => "Ice Lake",
            Microarch::CascadeLake => "Cascade Lake",
            Microarch::Zen3 => "Zen3",
        };
        write!(f, "{s}")
    }
}

/// Vector ISA extensions, as exercised by the CARM microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IsaExt {
    /// Scalar x87/SSE-scalar arithmetic.
    Scalar,
    /// 128-bit SSE.
    Sse,
    /// 256-bit AVX2.
    Avx2,
    /// 512-bit AVX-512.
    Avx512,
}

impl IsaExt {
    /// Number of f64 lanes per vector register.
    pub fn f64_lanes(&self) -> u32 {
        match self {
            IsaExt::Scalar => 1,
            IsaExt::Sse => 2,
            IsaExt::Avx2 => 4,
            IsaExt::Avx512 => 8,
        }
    }

    /// Register width in bytes (data moved per vector memory instruction).
    pub fn width_bytes(&self) -> u32 {
        self.f64_lanes() * 8
    }

    /// Lower-case label (`avx512`).
    pub fn label(&self) -> &'static str {
        match self {
            IsaExt::Scalar => "scalar",
            IsaExt::Sse => "sse",
            IsaExt::Avx2 => "avx2",
            IsaExt::Avx512 => "avx512",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_mapping() {
        assert_eq!(Microarch::SkylakeX.vendor(), Vendor::Intel);
        assert_eq!(Microarch::Zen3.vendor(), Vendor::Amd);
        assert_eq!(Vendor::Intel.to_string(), "GenuineIntel");
    }

    #[test]
    fn counter_limits_follow_paper() {
        assert_eq!(Microarch::CascadeLake.programmable_counters(true), 4);
        assert_eq!(Microarch::CascadeLake.programmable_counters(false), 8);
        assert_eq!(Microarch::Zen3.programmable_counters(true), 2);
        assert_eq!(Microarch::Zen3.programmable_counters(false), 2);
    }

    #[test]
    fn zen3_lacks_avx512() {
        assert!(!Microarch::Zen3.isa_extensions().contains(&IsaExt::Avx512));
        assert_eq!(Microarch::Zen3.widest_isa(), IsaExt::Avx2);
        assert_eq!(Microarch::SkylakeX.widest_isa(), IsaExt::Avx512);
    }

    #[test]
    fn lanes_and_widths() {
        assert_eq!(IsaExt::Scalar.f64_lanes(), 1);
        assert_eq!(IsaExt::Avx512.f64_lanes(), 8);
        assert_eq!(IsaExt::Avx512.width_bytes(), 64);
        assert_eq!(IsaExt::Sse.width_bytes(), 16);
    }

    #[test]
    fn peak_flops_scale_with_width() {
        let m = Microarch::CascadeLake;
        assert_eq!(m.flops_per_cycle_f64(IsaExt::Scalar), 4.0);
        assert_eq!(m.flops_per_cycle_f64(IsaExt::Avx512), 32.0);
        // AVX-512 is 8x scalar throughput.
        assert_eq!(
            m.flops_per_cycle_f64(IsaExt::Avx512) / m.flops_per_cycle_f64(IsaExt::Scalar),
            8.0
        );
    }

    #[test]
    fn pmu_names() {
        assert_eq!(Microarch::SkylakeX.pmu_name(), "skx");
        assert_eq!(Microarch::Zen3.pmu_name(), "zen3");
    }
}
