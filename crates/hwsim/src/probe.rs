//! The probing module output.
//!
//! Step ① of the paper's workflow copies a probing module to the target,
//! which runs `lshw`, `likwid-topology`, `cpuid`, `/sys/block`, SMART,
//! `libpfm4`, `nvidia-smi` and `DeviceQuery`, and returns one JSON file with
//! everything the KB generator needs. [`probe_machine`] produces that file
//! for a simulated machine.

use crate::gpu::{ncu_metrics, nvml_metrics};
use crate::machine::Machine;
use crate::pmu::{Domain, EventCatalog};
use serde_json::{json, Value};

/// Software (PCP-style) metrics every Linux target exposes, with their
/// instance domains. These are what `pmdalinux` reports in Scenario A.
pub fn linux_sw_metrics() -> Vec<(&'static str, &'static str, &'static str)> {
    // (metric name, instance domain, description)
    vec![
        ("kernel.all.load", "singular", "1-minute load average"),
        ("kernel.all.nprocs", "singular", "number of processes"),
        ("kernel.all.intr", "singular", "interrupts per second"),
        (
            "kernel.all.pswitch",
            "singular",
            "context switches per second",
        ),
        ("kernel.percpu.cpu.idle", "per-cpu", "per-CPU idle time"),
        ("kernel.percpu.cpu.user", "per-cpu", "per-CPU user time"),
        ("kernel.percpu.cpu.sys", "per-cpu", "per-CPU system time"),
        ("mem.util.used", "singular", "used memory"),
        ("mem.util.free", "singular", "free memory"),
        (
            "mem.numa.alloc_hit",
            "per-node",
            "NUMA local allocation hits",
        ),
        ("mem.numa.alloc_miss", "per-node", "NUMA remote allocations"),
        (
            "disk.dev.write_bytes",
            "per-disk",
            "bytes written per device",
        ),
        ("disk.dev.read_bytes", "per-disk", "bytes read per device"),
        (
            "network.interface.out.bytes",
            "per-nic",
            "bytes transmitted",
        ),
        ("network.interface.in.bytes", "per-nic", "bytes received"),
        ("proc.psinfo.utime", "per-process", "per-process user time"),
        (
            "proc.psinfo.stime",
            "per-process",
            "per-process system time",
        ),
        ("proc.psinfo.rss", "per-process", "per-process resident set"),
    ]
}

/// Produce the full probe report for a machine — the JSON document that is
/// copied back to the host in step ② and fed to the KB generator.
pub fn probe_machine(machine: &Machine) -> Value {
    let spec = &machine.spec;
    let catalog = EventCatalog::for_arch(spec.arch);

    // lshw-style system section.
    let system = json!({
        "hostname": spec.key,
        "os": spec.os,
        "kernel": spec.kernel,
        "vendor": spec.arch.vendor().to_string(),
        "env": spec.env,
    });

    // likwid-topology / cpuid style CPU section.
    let cpu = json!({
        "model": spec.cpu_model,
        "arch": spec.arch.to_string(),
        "pmu_name": spec.arch.pmu_name(),
        "sockets": spec.sockets,
        "cores_per_socket": spec.cores_per_socket,
        "threads_per_core": spec.threads_per_core,
        "total_threads": spec.total_threads(),
        "freq_ghz": spec.freq_ghz,
        "isa_extensions": spec.arch.isa_extensions().iter().map(|i| i.label()).collect::<Vec<_>>(),
        "caches": {
            "l1_kb": spec.l1_kb,
            "l2_kb": spec.l2_kb,
            "l3_kb": spec.l3_kb,
            "line_bytes": 64,
        },
    });

    let memory = json!({
        "total_gb": spec.mem_gb,
        "freq_mhz": spec.mem_freq_mhz,
        "channels_per_socket": spec.mem_channels,
        "numa_nodes": spec.sockets,
    });

    // /sys/block + SMART style disk section.
    let disks: Vec<Value> = spec
        .disks
        .iter()
        .map(|d| {
            json!({
                "name": d.name,
                "rotational": d.rotational,
                "write_bps_512": d.write_bps_512,
                "write_bps_8k": d.write_bps_8k,
            })
        })
        .collect();

    // libpfm4-style PMU event listing.
    let pmu_events: Vec<Value> = catalog
        .events()
        .iter()
        .map(|e| {
            json!({
                "name": e.name,
                "description": e.description,
                "per_package": e.domain == Domain::PerPackage,
            })
        })
        .collect();

    // Full component tree (ids, kinds, parents) so the KB can mirror it.
    let components: Vec<Value> = machine
        .topology
        .iter()
        .map(|c| {
            json!({
                "id": c.id.0,
                "kind": c.kind.label(),
                "name": c.name,
                "parent": c.parent.map(|p| p.0),
                "attrs": c.attrs,
            })
        })
        .collect();

    // nvidia-smi / DeviceQuery / NVML / ncu sections when GPUs exist.
    let gpus: Vec<Value> = spec
        .gpus
        .iter()
        .enumerate()
        .map(|(i, g)| {
            json!({
                "smi": g.smi_record(i as u32),
                "device_query": g.device_query(),
                "numa_node": g.numa_node,
                "nvml_metrics": nvml_metrics()
                    .iter()
                    .map(|(n, d)| json!({"name": n, "description": d}))
                    .collect::<Vec<_>>(),
                "ncu_metrics": ncu_metrics()
                    .iter()
                    .map(|(n, d)| json!({"name": n, "description": d}))
                    .collect::<Vec<_>>(),
            })
        })
        .collect();

    let sw_metrics: Vec<Value> = linux_sw_metrics()
        .iter()
        .map(|(n, dom, d)| json!({"name": n, "indom": dom, "description": d}))
        .collect();

    json!({
        "probe_version": "1.0",
        "system": system,
        "cpu": cpu,
        "memory": memory,
        "disks": disks,
        "network": {"nic": "eth0", "mbit": spec.nic_mbit},
        "pmu_events": pmu_events,
        "sw_metrics": sw_metrics,
        "components": components,
        "gpus": gpus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSpec;
    use crate::machine::MachineSpec;

    #[test]
    fn report_covers_all_sections() {
        let m = Machine::preset("csl").unwrap();
        let r = probe_machine(&m);
        assert_eq!(r["system"]["hostname"], json!("csl"));
        assert_eq!(r["cpu"]["total_threads"], json!(56));
        assert_eq!(r["cpu"]["pmu_name"], json!("csl"));
        assert!(r["pmu_events"].as_array().unwrap().len() > 8);
        assert!(r["sw_metrics"].as_array().unwrap().len() >= 15);
        assert_eq!(r["components"].as_array().unwrap().len(), m.topology.len());
        assert!(r["gpus"].as_array().unwrap().is_empty());
    }

    #[test]
    fn component_records_preserve_tree() {
        let m = Machine::preset("icl").unwrap();
        let r = probe_machine(&m);
        let comps = r["components"].as_array().unwrap();
        // Root has no parent; every other record's parent is a valid id.
        assert_eq!(comps[0]["parent"], Value::Null);
        for c in &comps[1..] {
            let parent = c["parent"].as_u64().unwrap();
            assert!(parent < comps.len() as u64);
        }
        let threads = comps
            .iter()
            .filter(|c| c["kind"] == json!("thread"))
            .count();
        assert_eq!(threads, 16);
    }

    #[test]
    fn gpu_section_present_when_attached() {
        let mut spec = MachineSpec::csl();
        spec.gpus.push(GpuSpec::gv100());
        let m = Machine::new(spec);
        let r = probe_machine(&m);
        let gpus = r["gpus"].as_array().unwrap();
        assert_eq!(gpus.len(), 1);
        assert_eq!(gpus[0]["smi"]["name"], json!("NVIDIA Quadro GV100"));
        assert!(gpus[0]["nvml_metrics"].as_array().unwrap().len() >= 9);
    }

    #[test]
    fn amd_report_lists_amd_events() {
        let m = Machine::preset("zen3").unwrap();
        let r = probe_machine(&m);
        let names: Vec<&str> = r["pmu_events"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["name"].as_str().unwrap())
            .collect();
        assert!(names.contains(&"RETIRED_SSE_AVX_FLOPS:ANY"));
        assert!(names.contains(&"RAPL_ENERGY_DRAM"));
        assert!(!names.contains(&"FP_ARITH:SCALAR_DOUBLE"));
    }
}
