//! Deterministic software/system-state metrics.
//!
//! The `pmdalinux`/`pmdaproc` agents sample OS-level metrics — load
//! average, process counts, memory usage, per-CPU idle, NUMA allocation
//! counters. This module evolves those values over virtual time with
//! smooth, seeded fluctuations so Scenario A (always-on SW telemetry)
//! produces realistic, reproducible series.

use crate::machine::MachineSpec;
use crate::noise::stable_hash;

/// Snapshot of system-state metrics at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// 1-minute load average.
    pub load_avg: f64,
    /// Number of processes.
    pub n_procs: u64,
    /// Used memory in bytes.
    pub mem_used_bytes: f64,
    /// Per-hardware-thread idle fraction in [0, 1].
    pub cpu_idle: Vec<f64>,
    /// Per-NUMA-node local allocation hits in the last second.
    pub numa_alloc_hit: Vec<f64>,
    /// Per-disk write rates, bytes/s.
    pub disk_write_bps: Vec<f64>,
    /// Per-disk read rates, bytes/s.
    pub disk_read_bps: Vec<f64>,
    /// NIC transmit rate, bytes/s.
    pub nic_out_bps: f64,
    /// NIC receive rate, bytes/s.
    pub nic_in_bps: f64,
    /// Interrupts per second.
    pub intr_rate: f64,
    /// Context switches per second.
    pub pswitch_rate: f64,
}

/// Deterministic generator of system state over time.
#[derive(Debug, Clone)]
pub struct SystemState {
    spec: MachineSpec,
    seed: u64,
    /// Extra per-thread busy fraction imposed by a running kernel
    /// (thread index → busy fraction).
    kernel_busy: Vec<f64>,
}

impl SystemState {
    /// State generator for a machine.
    pub fn new(spec: MachineSpec) -> Self {
        let seed = stable_hash(&[&spec.key, "system_state"]);
        let threads = spec.total_threads() as usize;
        SystemState {
            spec,
            seed,
            kernel_busy: vec![0.0; threads],
        }
    }

    /// Mark threads busy (1.0) or idle (0.0) while a kernel runs; used by
    /// Scenario B so SW telemetry reflects pinned executions.
    pub fn set_kernel_busy(&mut self, busy: &[(u32, f64)]) {
        for b in &mut self.kernel_busy {
            *b = 0.0;
        }
        for &(thread, frac) in busy {
            if let Some(slot) = self.kernel_busy.get_mut(thread as usize) {
                *slot = frac.clamp(0.0, 1.0);
            }
        }
    }

    /// Smooth pseudo-random wave in [0,1] — sum of two incommensurate
    /// sinusoids with seeded phases; deterministic and continuous in `t`.
    fn wave(&self, t: f64, channel: u64) -> f64 {
        let p1 = ((self.seed ^ channel.wrapping_mul(0x9E37_79B9)) % 1000) as f64 / 1000.0;
        let p2 = ((self.seed ^ channel.wrapping_mul(0xDEAD_BEEF)) % 1000) as f64 / 1000.0;
        let v = 0.5
            + 0.3 * (0.11 * t + p1 * std::f64::consts::TAU).sin()
            + 0.2 * (0.031 * t + p2 * std::f64::consts::TAU).sin();
        v.clamp(0.0, 1.0)
    }

    /// Snapshot at virtual time `t` (seconds).
    pub fn snapshot(&self, t: f64) -> StateSnapshot {
        let threads = self.spec.total_threads() as usize;
        let base_load = 0.05 * threads as f64 * self.wave(t, 1);
        let kernel_load: f64 = self.kernel_busy.iter().sum();
        let cpu_idle: Vec<f64> = (0..threads)
            .map(|i| {
                let ambient = 0.02 + 0.06 * self.wave(t, 100 + i as u64);
                (1.0 - ambient - self.kernel_busy[i]).clamp(0.0, 1.0)
            })
            .collect();
        let numa_nodes = self.spec.sockets as usize;
        let numa_alloc_hit: Vec<f64> = (0..numa_nodes)
            .map(|n| {
                let busy_on_node: f64 = self
                    .kernel_busy
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i * numa_nodes / threads.max(1) == n)
                    .map(|(_, b)| *b)
                    .sum();
                1000.0 * self.wave(t, 200 + n as u64) + 50_000.0 * busy_on_node
            })
            .collect();
        let disks = self.spec.disks.len();
        let disk_write_bps: Vec<f64> = (0..disks)
            .map(|d| 40_000.0 * self.wave(t, 300 + d as u64))
            .collect();
        let disk_read_bps: Vec<f64> = (0..disks)
            .map(|d| 120_000.0 * self.wave(t, 400 + d as u64))
            .collect();
        StateSnapshot {
            load_avg: base_load + kernel_load,
            n_procs: 180 + (40.0 * self.wave(t, 2)) as u64,
            mem_used_bytes: self.spec.mem_gb as f64
                * 1e9
                * (0.08 + 0.05 * self.wave(t, 3) + 0.2 * (kernel_load / threads.max(1) as f64)),
            cpu_idle,
            numa_alloc_hit,
            disk_write_bps,
            disk_read_bps,
            nic_out_bps: 25_000.0 * self.wave(t, 500),
            nic_in_bps: 15_000.0 * self.wave(t, 501),
            intr_rate: 800.0 + 2_000.0 * self.wave(t, 600) + 500.0 * kernel_load,
            pswitch_rate: 3_000.0 + 8_000.0 * self.wave(t, 700) + 1_000.0 * kernel_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_deterministic() {
        let s1 = SystemState::new(MachineSpec::icl());
        let s2 = SystemState::new(MachineSpec::icl());
        assert_eq!(s1.snapshot(12.5), s2.snapshot(12.5));
    }

    #[test]
    fn different_machines_differ() {
        let a = SystemState::new(MachineSpec::icl());
        let b = SystemState::new(MachineSpec::csl());
        assert_ne!(a.snapshot(1.0).load_avg, b.snapshot(1.0).load_avg);
    }

    #[test]
    fn idle_drops_when_kernel_runs() {
        let mut s = SystemState::new(MachineSpec::icl());
        let idle_before = s.snapshot(5.0).cpu_idle[0];
        s.set_kernel_busy(&[(0, 1.0), (1, 1.0)]);
        let snap = s.snapshot(5.0);
        assert!(snap.cpu_idle[0] < 0.05);
        assert!(snap.cpu_idle[0] < idle_before);
        // Unpinned threads stay mostly idle.
        assert!(snap.cpu_idle[5] > 0.8);
        // Load reflects the two busy threads.
        assert!(snap.load_avg >= 2.0);
    }

    #[test]
    fn values_in_valid_ranges() {
        let s = SystemState::new(MachineSpec::skx());
        for i in 0..50 {
            let snap = s.snapshot(i as f64 * 3.3);
            assert!(snap.load_avg >= 0.0);
            assert!(snap.mem_used_bytes > 0.0);
            assert!(snap.mem_used_bytes < 1024e9);
            assert_eq!(snap.cpu_idle.len(), 88);
            assert!(snap.cpu_idle.iter().all(|v| (0.0..=1.0).contains(v)));
            assert_eq!(snap.numa_alloc_hit.len(), 2);
        }
    }

    #[test]
    fn io_and_kernel_rates_present_and_sane() {
        let mut s = SystemState::new(MachineSpec::skx());
        let snap = s.snapshot(7.0);
        assert_eq!(snap.disk_write_bps.len(), 4);
        assert_eq!(snap.disk_read_bps.len(), 4);
        assert!(snap.disk_write_bps.iter().all(|v| *v >= 0.0));
        assert!(snap.nic_out_bps >= 0.0 && snap.nic_in_bps >= 0.0);
        assert!(snap.intr_rate > 0.0 && snap.pswitch_rate > 0.0);
        // Kernel load raises interrupt/context-switch rates.
        let quiet = s.snapshot(7.0);
        s.set_kernel_busy(&[(0, 1.0), (1, 1.0)]);
        let busy = s.snapshot(7.0);
        assert!(busy.intr_rate > quiet.intr_rate);
        assert!(busy.pswitch_rate > quiet.pswitch_rate);
    }

    #[test]
    fn state_varies_over_time() {
        let s = SystemState::new(MachineSpec::zen3());
        let a = s.snapshot(0.0).load_avg;
        let b = s.snapshot(30.0).load_avg;
        assert_ne!(a, b);
    }
}
