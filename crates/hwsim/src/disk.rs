//! Block-device model.
//!
//! Fig. 6 of the paper reports target-disk performance of 182 KB/s for
//! 512-byte writes and 1.2 MB/s for 8 KiB writes (sync small-block telemetry
//! appends); the model interpolates between block-size anchor points.

use serde::{Deserialize, Serialize};

/// Static description of a block device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Device name (`sda`, `nvme0n1`).
    pub name: String,
    /// Rotational (HDD) vs solid-state.
    pub rotational: bool,
    /// Measured write throughput for 512-byte blocks, bytes/s.
    pub write_bps_512: f64,
    /// Measured write throughput for 8 KiB blocks, bytes/s.
    pub write_bps_8k: f64,
}

impl DiskSpec {
    /// A SATA HDD matching the paper's measured figures.
    pub fn sata(name: impl Into<String>) -> Self {
        DiskSpec {
            name: name.into(),
            rotational: true,
            write_bps_512: 182.0 * 1024.0,
            write_bps_8k: 1.2 * 1024.0 * 1024.0,
        }
    }

    /// A fast NVMe device.
    pub fn nvme(name: impl Into<String>) -> Self {
        DiskSpec {
            name: name.into(),
            rotational: false,
            write_bps_512: 120.0 * 1024.0 * 1024.0,
            write_bps_8k: 900.0 * 1024.0 * 1024.0,
        }
    }

    /// Write throughput (bytes/s) for a given block size, log-interpolated
    /// between the 512 B and 8 KiB anchors and clamped outside them.
    pub fn write_throughput(&self, block_size: usize) -> f64 {
        let b = (block_size.max(1)) as f64;
        let (b0, b1) = (512.0_f64, 8192.0_f64);
        if b <= b0 {
            return self.write_bps_512;
        }
        if b >= b1 {
            return self.write_bps_8k;
        }
        let t = (b.ln() - b0.ln()) / (b1.ln() - b0.ln());
        (self.write_bps_512.ln() * (1.0 - t) + self.write_bps_8k.ln() * t).exp()
    }

    /// Seconds to persist `bytes` written in `block_size`-byte appends.
    pub fn write_time(&self, bytes: u64, block_size: usize) -> f64 {
        bytes as f64 / self.write_throughput(block_size)
    }
}

/// Cumulative disk-activity accounting (per agent, per experiment window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskUsage {
    /// Bytes written.
    pub bytes_written: u64,
    /// Write operations issued.
    pub write_ops: u64,
    /// Seconds the device spent busy.
    pub busy_seconds: f64,
}

impl DiskUsage {
    /// Record a write of `bytes` on `disk` using `block_size` appends.
    pub fn record_write(&mut self, disk: &DiskSpec, bytes: u64, block_size: usize) {
        self.bytes_written += bytes;
        self.write_ops += bytes.div_ceil(block_size as u64);
        self.busy_seconds += disk.write_time(bytes, block_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let d = DiskSpec::sata("sda");
        assert!((d.write_throughput(512) - 182.0 * 1024.0).abs() < 1.0);
        assert!((d.write_throughput(8192) - 1.2 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let d = DiskSpec::sata("sda");
        let t1k = d.write_throughput(1024);
        let t4k = d.write_throughput(4096);
        assert!(d.write_throughput(512) < t1k);
        assert!(t1k < t4k);
        assert!(t4k < d.write_throughput(8192));
        assert_eq!(d.write_throughput(64), d.write_throughput(512));
        assert_eq!(d.write_throughput(1 << 20), d.write_throughput(8192));
    }

    #[test]
    fn write_time_inverse_of_throughput() {
        let d = DiskSpec::sata("sda");
        let t = d.write_time(182 * 1024, 512);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn usage_accumulates() {
        let d = DiskSpec::sata("sda");
        let mut u = DiskUsage::default();
        u.record_write(&d, 1024, 512);
        u.record_write(&d, 100, 512);
        assert_eq!(u.bytes_written, 1124);
        assert_eq!(u.write_ops, 3); // 2 + 1 (ceil)
        assert!(u.busy_seconds > 0.0);
    }

    #[test]
    fn nvme_is_faster() {
        assert!(
            DiskSpec::nvme("n").write_throughput(512) > DiskSpec::sata("s").write_throughput(512)
        );
    }
}
