//! Kernel operation profiles.
//!
//! A [`KernelProfile`] is the contract between the software substrates
//! (SpMV, likwid-style kernels, CARM microbenchmarks) and the machine
//! simulator: it states *what* a kernel does — FLOPs by ISA class and
//! precision, memory element traffic, working set, locality — and the
//! execution model decides *how fast* a given machine does it and what the
//! PMU counters read.

use crate::vendor::IsaExt;
use serde::{Deserialize, Serialize};

/// Re-export: ISA class of a group of FLOPs.
pub type IsaClass = IsaExt;

/// Floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floats.
    F32,
    /// 64-bit floats.
    F64,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(&self) -> u32 {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// A group of floating-point operations executed with one ISA class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlopGroup {
    /// Vector ISA used.
    pub isa: IsaClass,
    /// Element precision.
    pub precision: Precision,
    /// Number of FP *operations* (not instructions).
    pub ops: u64,
}

impl FlopGroup {
    /// FP instructions retired for this group (ops / lanes).
    pub fn instructions(&self) -> u64 {
        let lanes = match self.precision {
            Precision::F64 => self.isa.f64_lanes() as u64,
            Precision::F32 => (self.isa.f64_lanes() * 2) as u64,
        };
        self.ops.div_ceil(lanes)
    }
}

/// Fractions of memory traffic served by each level of the hierarchy.
/// Fractions must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityProfile {
    /// Fraction of bytes served from L1.
    pub l1: f64,
    /// Fraction served from L2.
    pub l2: f64,
    /// Fraction served from L3.
    pub l3: f64,
    /// Fraction served from DRAM.
    pub dram: f64,
}

impl LocalityProfile {
    /// Build and validate (fractions non-negative, summing to ~1).
    pub fn new(l1: f64, l2: f64, l3: f64, dram: f64) -> Self {
        let p = LocalityProfile { l1, l2, l3, dram };
        assert!(
            p.is_valid(),
            "locality fractions must be non-negative and sum to 1: {p:?}"
        );
        p
    }

    /// Everything from L1 (fully cache-resident).
    pub fn l1_resident() -> Self {
        Self::new(1.0, 0.0, 0.0, 0.0)
    }

    /// Everything streamed from DRAM.
    pub fn streaming() -> Self {
        Self::new(0.0, 0.0, 0.0, 1.0)
    }

    /// Validity check.
    pub fn is_valid(&self) -> bool {
        let s = self.l1 + self.l2 + self.l3 + self.dram;
        self.l1 >= 0.0
            && self.l2 >= 0.0
            && self.l3 >= 0.0
            && self.dram >= 0.0
            && (s - 1.0).abs() < 1e-9
    }

    /// Per-level fractions indexed 1..=4 (4 = DRAM).
    pub fn fraction(&self, level: u8) -> f64 {
        match level {
            1 => self.l1,
            2 => self.l2,
            3 => self.l3,
            4 => self.dram,
            _ => panic!("level must be 1..=4"),
        }
    }
}

/// Full operation profile of one kernel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (`triad`, `spmv_mkl`, ...).
    pub name: String,
    /// Threads the kernel runs with.
    pub threads: u32,
    /// FLOP groups (a kernel may mix scalar and vector work).
    pub flops: Vec<FlopGroup>,
    /// Elements loaded (scalar-equivalent element count).
    pub load_elems: u64,
    /// Elements stored.
    pub store_elems: u64,
    /// Bytes per element (8 for f64 kernels).
    pub elem_bytes: u32,
    /// ISA width of the memory instructions (vector loads move
    /// `isa.width_bytes()` per instruction).
    pub mem_isa: IsaClass,
    /// Total bytes touched repeatedly (determines cache residency).
    pub working_set_bytes: u64,
    /// Explicit locality; when `None` the cache model derives it from the
    /// working set and machine cache sizes.
    pub locality: Option<LocalityProfile>,
    /// FP divide operations (most kernels: 0).
    pub div_ops: u64,
}

impl KernelProfile {
    /// Minimal profile with no operations (builder start).
    pub fn named(name: impl Into<String>) -> Self {
        KernelProfile {
            name: name.into(),
            threads: 1,
            flops: Vec::new(),
            load_elems: 0,
            store_elems: 0,
            elem_bytes: 8,
            mem_isa: IsaExt::Scalar,
            working_set_bytes: 0,
            locality: None,
            div_ops: 0,
        }
    }

    /// Set thread count.
    pub fn with_threads(mut self, t: u32) -> Self {
        assert!(t > 0, "thread count must be positive");
        self.threads = t;
        self
    }

    /// Add a FLOP group.
    pub fn with_flops(mut self, isa: IsaClass, precision: Precision, ops: u64) -> Self {
        self.flops.push(FlopGroup {
            isa,
            precision,
            ops,
        });
        self
    }

    /// Set element loads/stores.
    pub fn with_mem(mut self, loads: u64, stores: u64, mem_isa: IsaClass) -> Self {
        self.load_elems = loads;
        self.store_elems = stores;
        self.mem_isa = mem_isa;
        self
    }

    /// Set the working set.
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Set explicit locality.
    pub fn with_locality(mut self, l: LocalityProfile) -> Self {
        self.locality = Some(l);
        self
    }

    /// Total FP operations.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().map(|g| g.ops).sum()
    }

    /// FLOPs executed with a given ISA class (any precision).
    pub fn flops_with_isa(&self, isa: IsaClass) -> u64 {
        self.flops
            .iter()
            .filter(|g| g.isa == isa)
            .map(|g| g.ops)
            .sum()
    }

    /// FP instructions retired with a given ISA class.
    pub fn flop_instructions_with_isa(&self, isa: IsaClass) -> u64 {
        self.flops
            .iter()
            .filter(|g| g.isa == isa)
            .map(FlopGroup::instructions)
            .sum()
    }

    /// FP instructions retired with a given ISA class *and* precision —
    /// what Intel's `FP_ARITH` sub-events count.
    pub fn flop_instructions_with(&self, isa: IsaClass, precision: Precision) -> u64 {
        self.flops
            .iter()
            .filter(|g| g.isa == isa && g.precision == precision)
            .map(FlopGroup::instructions)
            .sum()
    }

    /// Elements moved per memory instruction at `mem_isa` width.
    fn elems_per_mem_instr(&self) -> u64 {
        (self.mem_isa.width_bytes() / self.elem_bytes.max(1)).max(1) as u64
    }

    /// Load instructions retired.
    pub fn load_instructions(&self) -> u64 {
        self.load_elems.div_ceil(self.elems_per_mem_instr())
    }

    /// Store instructions retired.
    pub fn store_instructions(&self) -> u64 {
        self.store_elems.div_ceil(self.elems_per_mem_instr())
    }

    /// Total bytes moved to/from the cores.
    pub fn total_bytes(&self) -> u64 {
        (self.load_elems + self.store_elems) * self.elem_bytes as u64
    }

    /// Cache-aware arithmetic intensity: FLOPs per byte of total memory
    /// traffic from the core's perspective (CARM's definition — all memory
    /// accesses count, regardless of the level that serves them).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.total_flops() as f64 / bytes as f64
    }

    /// Rough total instruction count (FP + memory + ~20 % overhead ops).
    pub fn total_instructions(&self) -> u64 {
        let fp: u64 = self.flops.iter().map(FlopGroup::instructions).sum();
        let mem = self.load_instructions() + self.store_instructions();
        fp + mem + (fp + mem) / 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// STREAM triad: a[i] = b[i] + s*c[i]; 2 flops, 2 loads, 1 store per i.
    fn triad(n: u64, isa: IsaExt) -> KernelProfile {
        KernelProfile::named("triad")
            .with_threads(4)
            .with_flops(isa, Precision::F64, 2 * n)
            .with_mem(2 * n, n, isa)
            .with_working_set(3 * n * 8)
    }

    #[test]
    fn triad_ai_is_one_twelfth() {
        // 2 flops / 24 bytes = 0.0833... (triad counted with write-allocate
        // excluded); the paper's 0.625 uses a different byte convention,
        // checked in the kernels crate.
        let p = triad(1000, IsaExt::Avx2);
        assert!((p.arithmetic_intensity() - 2.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn instruction_counts_follow_isa_width() {
        let scalar = triad(1024, IsaExt::Scalar);
        let avx512 = triad(1024, IsaExt::Avx512);
        assert_eq!(scalar.load_instructions(), 2048);
        assert_eq!(avx512.load_instructions(), 256); // 8 elems/instr
        assert_eq!(scalar.flop_instructions_with_isa(IsaExt::Scalar), 2048);
        assert_eq!(avx512.flop_instructions_with_isa(IsaExt::Avx512), 256);
        assert_eq!(avx512.flop_instructions_with_isa(IsaExt::Scalar), 0);
    }

    #[test]
    fn totals() {
        let p = triad(100, IsaExt::Sse);
        assert_eq!(p.total_flops(), 200);
        assert_eq!(p.total_bytes(), 300 * 8);
        assert_eq!(p.flops_with_isa(IsaExt::Sse), 200);
        assert!(p.total_instructions() > p.load_instructions());
    }

    #[test]
    fn locality_validation() {
        assert!(LocalityProfile::new(0.5, 0.3, 0.1, 0.1).is_valid());
        assert_eq!(LocalityProfile::l1_resident().fraction(1), 1.0);
        assert_eq!(LocalityProfile::streaming().fraction(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_locality_panics() {
        LocalityProfile::new(0.9, 0.0, 0.0, 0.0);
    }

    #[test]
    fn zero_mem_kernel_has_infinite_ai() {
        let p =
            KernelProfile::named("peakflops").with_flops(IsaExt::Avx2, Precision::F64, 1_000_000);
        assert!(p.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn f32_packs_twice_as_many_lanes() {
        let g = FlopGroup {
            isa: IsaExt::Avx2,
            precision: Precision::F32,
            ops: 800,
        };
        assert_eq!(g.instructions(), 100); // 8 f32 lanes
    }
}
