//! Virtual time and the Time Stamp Counter.
//!
//! The CARM microbenchmarks (paper §IV-B) measure cycles with the TSC;
//! in the simulator the TSC is derived from a virtual clock advancing in
//! nanoseconds, so every experiment is deterministic and independent of
//! wall-clock time.

/// A virtual clock with nanosecond resolution.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now_ns: i64,
    tsc_hz: f64,
}

impl VirtualClock {
    /// New clock at t=0 with the given TSC frequency (Hz).
    pub fn new(tsc_hz: f64) -> Self {
        assert!(tsc_hz > 0.0, "TSC frequency must be positive");
        VirtualClock { now_ns: 0, tsc_hz }
    }

    /// Clock for a machine running at `freq_ghz` (TSC ticks at base clock).
    pub fn for_freq_ghz(freq_ghz: f64) -> Self {
        Self::new(freq_ghz * 1e9)
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> i64 {
        self.now_ns
    }

    /// Current time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Read the TSC: cycles elapsed since t=0.
    pub fn rdtsc(&self) -> u64 {
        (self.now_secs() * self.tsc_hz) as u64
    }

    /// TSC frequency in Hz.
    pub fn tsc_hz(&self) -> f64 {
        self.tsc_hz
    }

    /// Advance by nanoseconds.
    pub fn advance_ns(&mut self, ns: i64) {
        assert!(ns >= 0, "time cannot go backwards");
        self.now_ns += ns;
    }

    /// Advance by (fractional) seconds.
    pub fn advance_secs(&mut self, s: f64) {
        assert!(s >= 0.0, "time cannot go backwards");
        self.now_ns += (s * 1e9).round() as i64;
    }

    /// Convert a cycle count to seconds at this TSC rate.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.tsc_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let mut c = VirtualClock::for_freq_ghz(2.0);
        assert_eq!(c.now_ns(), 0);
        c.advance_secs(1.5);
        assert_eq!(c.now_ns(), 1_500_000_000);
        assert_eq!(c.rdtsc(), 3_000_000_000);
        c.advance_ns(500_000_000);
        assert_eq!(c.now_secs(), 2.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = VirtualClock::for_freq_ghz(2.7);
        assert!((c.cycles_to_secs(2_700_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn no_time_travel() {
        VirtualClock::new(1e9).advance_ns(-1);
    }
}
