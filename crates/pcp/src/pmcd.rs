//! `pmcd`: the metric coordinator daemon.
//!
//! Owns the agents, resolves metric names to the serving agent, assembles
//! sampled values into time-series points (one measurement per metric, one
//! field per instance), and hands them to the transport.

use crate::agent::Agent;
use crate::metric::MetricDesc;
use pmove_obs::{Counter, Registry};
use pmove_tsdb::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Hoisted `pcp.pmcd.*` counters.
struct PmcdObs {
    fetches: Arc<Counter>,
    misses: Arc<Counter>,
}

/// The coordinator.
pub struct Pmcd {
    agents: Vec<Box<dyn Agent>>,
    /// Optional tag set stamped on every shipped point (Scenario B stamps
    /// the observation UUID here so KB queries can recall the data).
    pub tags: BTreeMap<String, String>,
    obs: Option<PmcdObs>,
}

impl Pmcd {
    /// Coordinator with no agents.
    pub fn new() -> Self {
        Pmcd {
            agents: Vec::new(),
            tags: BTreeMap::new(),
            obs: None,
        }
    }

    /// Count every fetch (and every miss) in `registry` under
    /// `pcp.pmcd.*`.
    pub fn set_obs(&mut self, registry: &Registry) {
        self.obs = Some(PmcdObs {
            fetches: registry.counter("pcp.pmcd.fetches", &[]),
            misses: registry.counter("pcp.pmcd.misses", &[]),
        });
    }

    /// Register an agent.
    pub fn register(&mut self, agent: Box<dyn Agent>) {
        self.agents.push(agent);
    }

    /// Set a tag stamped on all subsequent points.
    pub fn set_tag(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.tags.insert(key.into(), value.into());
    }

    /// Remove all stamped tags.
    pub fn clear_tags(&mut self) {
        self.tags.clear();
    }

    /// All metrics across agents.
    pub fn namespace(&self) -> Vec<MetricDesc> {
        self.agents.iter().flat_map(|a| a.metrics()).collect()
    }

    /// Registered agent names.
    pub fn agent_names(&self) -> Vec<String> {
        self.agents.iter().map(|a| a.name().to_string()).collect()
    }

    /// Mutable access to an agent by name (to attach executions, etc.).
    pub fn agent_mut(&mut self, name: &str) -> Option<&mut Box<dyn Agent>> {
        self.agents.iter_mut().find(|a| a.name() == name)
    }

    /// Fetch one metric over a window and assemble the report point.
    /// Returns `None` when no agent serves the metric or no instance
    /// reported.
    pub fn fetch(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Option<Point> {
        let point = self.fetch_inner(metric, t_prev, t_now);
        if let Some(o) = &self.obs {
            o.fetches.inc();
            if point.is_none() {
                o.misses.inc();
            }
        }
        point
    }

    fn fetch_inner(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Option<Point> {
        let desc = self.namespace().into_iter().find(|d| d.name == metric)?;
        for agent in &mut self.agents {
            if !agent.metrics().iter().any(|m| m.name == metric) {
                continue;
            }
            let samples = agent.sample(metric, t_prev, t_now);
            if samples.is_empty() {
                return None;
            }
            let mut point = Point::new(desc.db_name()).timestamp((t_now * 1e9) as i64);
            for (k, v) in &self.tags {
                point.tags.insert(k.clone(), v.clone());
            }
            for (instance, value) in samples {
                point.fields.insert(instance, value.into());
            }
            return Some(point);
        }
        None
    }

    /// Fetch several metrics at once (one point each).
    pub fn fetch_all(&mut self, metrics: &[String], t_prev: f64, t_now: f64) -> Vec<Point> {
        metrics
            .iter()
            .filter_map(|m| self.fetch(m, t_prev, t_now))
            .collect()
    }
}

impl Default for Pmcd {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::ConstantAgent;
    use crate::metric::InstanceDomain;
    use crate::pmda_linux::LinuxAgent;
    use pmove_hwsim::MachineSpec;

    fn coordinator() -> Pmcd {
        let mut p = Pmcd::new();
        p.register(Box::new(LinuxAgent::new(MachineSpec::icl())));
        p.register(Box::new(ConstantAgent {
            agent_name: "const".into(),
            values: vec![(
                MetricDesc::new("test.answer", InstanceDomain::Singular, "42"),
                42.0,
            )],
        }));
        p
    }

    #[test]
    fn namespace_merges_agents() {
        let p = coordinator();
        let ns = p.namespace();
        assert!(ns.iter().any(|m| m.name == "kernel.percpu.cpu.idle"));
        assert!(ns.iter().any(|m| m.name == "test.answer"));
        assert_eq!(p.agent_names(), vec!["pmdalinux", "const"]);
    }

    #[test]
    fn fetch_builds_tagged_point() {
        let mut p = coordinator();
        p.set_tag("tag", "obs-123");
        let point = p.fetch("kernel.percpu.cpu.idle", 0.0, 1.0).unwrap();
        assert_eq!(point.measurement, "kernel_percpu_cpu_idle");
        assert_eq!(point.field_count(), 16);
        assert_eq!(point.tags["tag"], "obs-123");
        assert_eq!(point.timestamp, 1_000_000_000);
        p.clear_tags();
        let point = p.fetch("test.answer", 0.0, 1.0).unwrap();
        assert!(point.tags.is_empty());
    }

    #[test]
    fn fetch_unknown_metric_none() {
        let mut p = coordinator();
        assert!(p.fetch("nosuch.metric", 0.0, 1.0).is_none());
    }

    #[test]
    fn fetch_all_returns_one_point_per_metric() {
        let mut p = coordinator();
        let metrics = vec![
            "kernel.all.load".to_string(),
            "test.answer".to_string(),
            "nosuch".to_string(),
        ];
        let points = p.fetch_all(&metrics, 0.0, 0.5);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn obs_counts_fetches_and_misses() {
        let reg = pmove_obs::Registry::new();
        let mut p = coordinator();
        p.set_obs(&reg);
        p.fetch("test.answer", 0.0, 1.0).unwrap();
        assert!(p.fetch("nosuch.metric", 0.0, 1.0).is_none());
        p.fetch_all(&["kernel.all.load".to_string()], 0.0, 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pcp.pmcd.fetches", &[]), Some(3));
        assert_eq!(snap.counter("pcp.pmcd.misses", &[]), Some(1));
    }

    #[test]
    fn agent_mut_lookup() {
        let mut p = coordinator();
        assert!(p.agent_mut("pmdalinux").is_some());
        assert!(p.agent_mut("ghost").is_none());
    }
}
