//! `pmcd`: the metric coordinator daemon.
//!
//! Owns the agents, resolves metric names to the serving agent, assembles
//! sampled values into time-series points (one measurement per metric, one
//! field per instance), and hands them to the transport.
//!
//! Supervision: [`Pmcd::heartbeat_all`] probes every agent's liveness on
//! the virtual clock. A failed heartbeat marks the agent crashed — its
//! metrics stop resolving (fetches miss) — and schedules a restart with
//! doubling, capped backoff, mirroring how the real pmcd respawns dead
//! PMDAs.

use crate::agent::Agent;
use crate::metric::MetricDesc;
use pmove_obs::{Counter, Registry};
use pmove_tsdb::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Hoisted `pcp.pmcd.*` counters.
struct PmcdObs {
    fetches: Arc<Counter>,
    misses: Arc<Counter>,
    agent_crashes: Arc<Counter>,
    agent_restarts: Arc<Counter>,
}

/// Supervisor bookkeeping for one agent.
#[derive(Debug, Clone, Copy)]
struct Supervision {
    crashed: bool,
    crashes: u64,
    restarts: u64,
    backoff_s: f64,
    next_restart_s: f64,
}

impl Supervision {
    fn healthy() -> Supervision {
        Supervision {
            crashed: false,
            crashes: 0,
            restarts: 0,
            backoff_s: 0.0,
            next_restart_s: 0.0,
        }
    }
}

/// Liveness summary of one supervised agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentHealth {
    /// Agent name.
    pub name: String,
    /// False while the agent is down awaiting its restart.
    pub alive: bool,
    /// Crashes observed so far.
    pub crashes: u64,
    /// Supervised restarts performed so far.
    pub restarts: u64,
}

/// The coordinator.
pub struct Pmcd {
    agents: Vec<Box<dyn Agent>>,
    supervision: Vec<Supervision>,
    /// Optional tag set stamped on every shipped point (Scenario B stamps
    /// the observation UUID here so KB queries can recall the data).
    pub tags: BTreeMap<String, String>,
    obs: Option<PmcdObs>,
}

impl Pmcd {
    /// First restart delay after a crash (virtual seconds).
    pub const RESTART_BACKOFF_BASE_S: f64 = 0.5;
    /// Restart delay ceiling (virtual seconds).
    pub const RESTART_BACKOFF_CAP_S: f64 = 8.0;

    /// Coordinator with no agents.
    pub fn new() -> Self {
        Pmcd {
            agents: Vec::new(),
            supervision: Vec::new(),
            tags: BTreeMap::new(),
            obs: None,
        }
    }

    /// Count every fetch (and every miss) in `registry` under
    /// `pcp.pmcd.*`, and supervision events under `pcp.resilience.*`.
    pub fn set_obs(&mut self, registry: &Registry) {
        self.obs = Some(PmcdObs {
            fetches: registry.counter("pcp.pmcd.fetches", &[]),
            misses: registry.counter("pcp.pmcd.misses", &[]),
            agent_crashes: registry.counter("pcp.resilience.agent_crashes", &[]),
            agent_restarts: registry.counter("pcp.resilience.agent_restarts", &[]),
        });
    }

    /// Register an agent.
    pub fn register(&mut self, agent: Box<dyn Agent>) {
        self.agents.push(agent);
        self.supervision.push(Supervision::healthy());
    }

    /// Set a tag stamped on all subsequent points.
    pub fn set_tag(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.tags.insert(key.into(), value.into());
    }

    /// Remove all stamped tags.
    pub fn clear_tags(&mut self) {
        self.tags.clear();
    }

    /// All metrics across agents.
    pub fn namespace(&self) -> Vec<MetricDesc> {
        self.agents.iter().flat_map(|a| a.metrics()).collect()
    }

    /// Registered agent names.
    pub fn agent_names(&self) -> Vec<String> {
        self.agents.iter().map(|a| a.name().to_string()).collect()
    }

    /// Mutable access to an agent by name (to attach executions, etc.).
    pub fn agent_mut(&mut self, name: &str) -> Option<&mut Box<dyn Agent>> {
        self.agents.iter_mut().find(|a| a.name() == name)
    }

    /// Probe every agent's liveness at `t_now`. Crashed agents are marked
    /// down (their fetches miss) and restarted once their backoff has
    /// elapsed; consecutive crashes double the backoff up to the cap.
    pub fn heartbeat_all(&mut self, t_now: f64) {
        let obs = &self.obs;
        for (agent, sup) in self.agents.iter_mut().zip(self.supervision.iter_mut()) {
            if sup.crashed {
                if t_now >= sup.next_restart_s {
                    agent.restart(t_now);
                    sup.crashed = false;
                    sup.restarts += 1;
                    if let Some(o) = obs {
                        o.agent_restarts.inc();
                    }
                }
            } else if !agent.heartbeat(t_now) {
                sup.crashed = true;
                sup.crashes += 1;
                sup.backoff_s = (sup.backoff_s * 2.0)
                    .clamp(Self::RESTART_BACKOFF_BASE_S, Self::RESTART_BACKOFF_CAP_S);
                sup.next_restart_s = t_now + sup.backoff_s;
                if let Some(o) = obs {
                    o.agent_crashes.inc();
                }
            }
        }
    }

    /// Liveness summary per agent.
    pub fn agent_health(&self) -> Vec<AgentHealth> {
        self.agents
            .iter()
            .zip(&self.supervision)
            .map(|(a, s)| AgentHealth {
                name: a.name().to_string(),
                alive: !s.crashed,
                crashes: s.crashes,
                restarts: s.restarts,
            })
            .collect()
    }

    /// Fetch one metric over a window and assemble the report point.
    /// Returns `None` when no agent serves the metric or no instance
    /// reported.
    pub fn fetch(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Option<Point> {
        let point = self.fetch_inner(metric, t_prev, t_now);
        if let Some(o) = &self.obs {
            o.fetches.inc();
            if point.is_none() {
                o.misses.inc();
            }
        }
        point
    }

    fn fetch_inner(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Option<Point> {
        let desc = self.namespace().into_iter().find(|d| d.name == metric)?;
        for (i, agent) in self.agents.iter_mut().enumerate() {
            if self.supervision[i].crashed {
                continue;
            }
            if !agent.metrics().iter().any(|m| m.name == metric) {
                continue;
            }
            let samples = agent.sample(metric, t_prev, t_now);
            if samples.is_empty() {
                return None;
            }
            let mut point = Point::new(desc.db_name()).timestamp((t_now * 1e9) as i64);
            for (k, v) in &self.tags {
                point.tags.insert(k.clone(), v.clone());
            }
            for (instance, value) in samples {
                point.fields.insert(instance, value.into());
            }
            return Some(point);
        }
        None
    }

    /// Fetch several metrics at once (one point each).
    pub fn fetch_all(&mut self, metrics: &[String], t_prev: f64, t_now: f64) -> Vec<Point> {
        metrics
            .iter()
            .filter_map(|m| self.fetch(m, t_prev, t_now))
            .collect()
    }
}

impl Default for Pmcd {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{ConstantAgent, FlakyAgent};
    use crate::metric::InstanceDomain;
    use crate::pmda_linux::LinuxAgent;
    use pmove_hwsim::MachineSpec;

    fn coordinator() -> Pmcd {
        let mut p = Pmcd::new();
        p.register(Box::new(LinuxAgent::new(MachineSpec::icl())));
        p.register(Box::new(ConstantAgent {
            agent_name: "const".into(),
            values: vec![(
                MetricDesc::new("test.answer", InstanceDomain::Singular, "42"),
                42.0,
            )],
        }));
        p
    }

    #[test]
    fn namespace_merges_agents() {
        let p = coordinator();
        let ns = p.namespace();
        assert!(ns.iter().any(|m| m.name == "kernel.percpu.cpu.idle"));
        assert!(ns.iter().any(|m| m.name == "test.answer"));
        assert_eq!(p.agent_names(), vec!["pmdalinux", "const"]);
    }

    #[test]
    fn fetch_builds_tagged_point() {
        let mut p = coordinator();
        p.set_tag("tag", "obs-123");
        let point = p.fetch("kernel.percpu.cpu.idle", 0.0, 1.0).unwrap();
        assert_eq!(point.measurement, "kernel_percpu_cpu_idle");
        assert_eq!(point.field_count(), 16);
        assert_eq!(point.tags["tag"], "obs-123");
        assert_eq!(point.timestamp, 1_000_000_000);
        p.clear_tags();
        let point = p.fetch("test.answer", 0.0, 1.0).unwrap();
        assert!(point.tags.is_empty());
    }

    #[test]
    fn fetch_unknown_metric_none() {
        let mut p = coordinator();
        assert!(p.fetch("nosuch.metric", 0.0, 1.0).is_none());
    }

    #[test]
    fn fetch_all_returns_one_point_per_metric() {
        let mut p = coordinator();
        let metrics = vec![
            "kernel.all.load".to_string(),
            "test.answer".to_string(),
            "nosuch".to_string(),
        ];
        let points = p.fetch_all(&metrics, 0.0, 0.5);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn obs_counts_fetches_and_misses() {
        let reg = pmove_obs::Registry::new();
        let mut p = coordinator();
        p.set_obs(&reg);
        p.fetch("test.answer", 0.0, 1.0).unwrap();
        assert!(p.fetch("nosuch.metric", 0.0, 1.0).is_none());
        p.fetch_all(&["kernel.all.load".to_string()], 0.0, 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pcp.pmcd.fetches", &[]), Some(3));
        assert_eq!(snap.counter("pcp.pmcd.misses", &[]), Some(1));
    }

    #[test]
    fn agent_mut_lookup() {
        let mut p = coordinator();
        assert!(p.agent_mut("pmdalinux").is_some());
        assert!(p.agent_mut("ghost").is_none());
    }

    #[test]
    fn crashed_agent_is_skipped_then_restarted_with_backoff() {
        let reg = pmove_obs::Registry::new();
        let desc = MetricDesc::new("flaky.metric", InstanceDomain::Singular, "test");
        let mut p = Pmcd::new();
        p.set_obs(&reg);
        p.register(Box::new(FlakyAgent::new("flaky", vec![(desc, 7.0)], 5.0)));
        // Healthy before the crash.
        p.heartbeat_all(4.5);
        assert!(p.fetch("flaky.metric", 4.0, 4.5).is_some());
        assert!(p.agent_health()[0].alive);
        // Crash detected at 5 s; fetches miss while down.
        p.heartbeat_all(5.0);
        let health = &p.agent_health()[0];
        assert!(!health.alive);
        assert_eq!(health.crashes, 1);
        assert!(p.fetch("flaky.metric", 5.0, 5.5).is_none());
        // Not restarted before the backoff elapses...
        p.heartbeat_all(5.0 + Pmcd::RESTART_BACKOFF_BASE_S / 2.0);
        assert!(!p.agent_health()[0].alive);
        // ...but restarted after it.
        p.heartbeat_all(5.0 + Pmcd::RESTART_BACKOFF_BASE_S);
        let health = &p.agent_health()[0];
        assert!(health.alive);
        assert_eq!(health.restarts, 1);
        assert!(p.fetch("flaky.metric", 6.0, 6.5).is_some());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pcp.resilience.agent_crashes", &[]), Some(1));
        assert_eq!(snap.counter("pcp.resilience.agent_restarts", &[]), Some(1));
    }
}
