//! Replication-aware transport coordinator: quorum writes, hinted
//! handoff, heartbeat-driven hint replay, and primary failover.
//!
//! The coordinator is the routing half of the replication layer (the
//! storage half — replicas, Merkle trees, anti-entropy — lives in
//! `pmove_tsdb::repl`). Each shipped report is written to every replica
//! whose fault schedule currently lets writes through; the write counts
//! as **inserted** once `W` replicas acknowledge. Replicas that missed a
//! quorum-successful write get a *non-ledger* hint (repair bookkeeping:
//! the value is already safely counted as inserted). When fewer than `W`
//! replicas acknowledge, the report itself is parked as a *ledger* hint
//! on the first failed replica, counted in the `hinted` conservation
//! term; it graduates to `inserted` when the replica's heartbeat returns
//! and the hint replays, or to `evicted` if the bounded drop-oldest queue
//! pushes it out first.
//!
//! ## The widened conservation equation
//!
//! ```text
//! offered + corrupted ==
//!     inserted + zeroed + lost + pending + evicted + hinted
//!     + repaired + corrupt_pending
//! ```
//!
//! `pending` is PR 3's spill term — always 0 in coordinator mode, kept so
//! the equation is uniform across transports. `hinted` is the *currently
//! parked* ledger values; a finished run can legitimately end with
//! `hinted > 0` when a replica never came back.
//!
//! `corrupted` / `repaired` / `corrupt_pending` are the integrity terms:
//! a cell destroyed by latent disk rot (its chunk quarantined) re-enters
//! the ledger on the left as `corrupted`, and exits on the right either
//! as `repaired` (read-repair restored it from the surviving R-quorum)
//! or as `corrupt_pending` (the hole is still open, annotated with
//! `pmove_gap` markers). With no corruption all three are 0 and the
//! equation collapses to PR 5's six-term identity.

use crate::error::PcpError;
use crate::sampler::SamplingConfig;
use crate::transport::{upgrade_on_fault, Shipper, TraceHandle, FETCH_NS, RETRY_NS};
use pmove_hwsim::network::FaultSchedule;
use pmove_hwsim::noise::NoiseSource;
use pmove_obs::{Counter, Gauge, Histogram, Registry, TraceContext};
use pmove_tsdb::repl::{IntegrityReport, ReplicaSet};
use pmove_tsdb::store::Scrubber;
use pmove_tsdb::{ExecMode, FieldValue, Point, Query, QueryResult, TsdbError};
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of offering one report to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplShipOutcome {
    /// W or more replicas acknowledged the true values.
    Inserted,
    /// Stale-read artefact: the report landed as batched zeros.
    InsertedZero,
    /// Quorum missed; the report is parked as a ledger hint.
    Hinted,
    /// Quorum missed and the hint queue could not hold the report.
    Lost,
}

/// Conservation-audited coordinator statistics. Field names mirror
/// [`crate::transport::ShipperStats`] so audits read uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplStats {
    /// Reports offered to the coordinator.
    pub reports_offered: u64,
    /// Field values offered.
    pub values_offered: u64,
    /// Values acknowledged by a W-quorum (true values).
    pub values_inserted: u64,
    /// Values that arrived as batched zeros (stale-read artefact).
    pub values_zeroed: u64,
    /// Values lost outright (quorum missed and hint queue unable to hold).
    pub values_lost: u64,
    /// PR 3 spill term; always 0 in coordinator mode.
    pub values_spill_pending: u64,
    /// Ledger values evicted from a hint queue by drop-oldest overflow.
    pub values_evicted: u64,
    /// Ledger values currently parked as hints (not yet replayed).
    pub values_hinted: u64,
    /// Cells destroyed by latent disk rot: removed from a replica's
    /// durable state when its chunk was quarantined.
    pub values_corrupted: u64,
    /// Corrupted cells restored onto the damaged replicas by read-repair
    /// from the surviving quorum.
    pub values_repaired: u64,
    /// Corrupted cells not yet repaired (open, gap-annotated holes).
    pub values_corrupt_pending: u64,
    /// Hint entries queued (ledger and non-ledger).
    pub hints_queued: u64,
    /// Hint entries successfully replayed.
    pub hints_replayed: u64,
    /// Hint entries dropped by overflow or oversize.
    pub hints_dropped: u64,
    /// Writes that reached a W-quorum.
    pub quorum_writes: u64,
    /// Writes that missed the W-quorum.
    pub quorum_write_failures: u64,
    /// Individual replica acknowledgements across all writes.
    pub replica_acks: u64,
    /// Primary promotions after quarantine.
    pub failovers: u64,
}

impl ReplStats {
    /// Sum of the accounted fates: the six transport fates plus the two
    /// integrity exits (`repaired`, `corrupt_pending`).
    pub fn accounted(&self) -> u64 {
        self.values_inserted
            + self.values_zeroed
            + self.values_lost
            + self.values_spill_pending
            + self.values_evicted
            + self.values_hinted
            + self.values_repaired
            + self.values_corrupt_pending
    }

    /// The widened conservation equation: every offered value has exactly
    /// one fate, and every corrupted cell is either repaired or still an
    /// open (annotated) hole.
    pub fn conserved(&self) -> bool {
        self.accounted() == self.values_offered + self.values_corrupted
    }

    /// Values that never became quorum-durable: lost outright, evicted
    /// from a hint queue, parked when the run ended, or destroyed by rot
    /// and not (yet) repaired.
    pub fn unrecovered(&self) -> u64 {
        self.values_lost + self.values_evicted + self.values_hinted + self.values_corrupt_pending
    }

    /// Unrecovered values as a percentage of offered (the replication
    /// bench's loss metric).
    pub fn loss_pct(&self) -> f64 {
        if self.values_offered == 0 {
            0.0
        } else {
            100.0 * self.unrecovered() as f64 / self.values_offered as f64
        }
    }
}

/// One parked report. `ledger` marks the single hint that carries the
/// report's conservation accounting (a quorum-missed write); non-ledger
/// hints exist purely so a returning replica converges faster.
#[derive(Debug, Clone)]
struct HintEntry {
    point: Point,
    values: u64,
    ledger: bool,
    /// The report's trace, kept open while parked (ledger entries only:
    /// non-ledger hints belong to reports already terminated at offer
    /// time). Terminates on replay, eviction, or end-of-run seal.
    trace: Option<TraceHandle>,
}

/// Per-replica health as the coordinator sees it through heartbeats.
#[derive(Debug, Clone, Copy, Default)]
struct ReplicaHealth {
    down: bool,
    misses: u32,
    quarantined: bool,
}

/// Hoisted `tsdb.repl.*` metric handles.
struct ReplObs {
    registry: Arc<Registry>,
    quorum_writes: Arc<Counter>,
    quorum_write_failures: Arc<Counter>,
    hints_queued: Arc<Counter>,
    hints_replayed: Arc<Counter>,
    hints_dropped: Arc<Counter>,
    failovers: Arc<Counter>,
    values_corrupted: Arc<Counter>,
    values_repaired: Arc<Counter>,
    corrupt_pending: Arc<Gauge>,
    hints_pending: Arc<Gauge>,
    replicas_healthy: Arc<Gauge>,
    primary: Arc<Gauge>,
    quorum_write_ns: Arc<Histogram>,
}

impl ReplObs {
    fn new(registry: Arc<Registry>) -> ReplObs {
        let c = |name: &str| registry.counter(name, &[]);
        let g = |name: &str| registry.gauge(name, &[]);
        let buckets = pmove_obs::latency_buckets();
        ReplObs {
            quorum_writes: c("tsdb.repl.quorum_writes"),
            quorum_write_failures: c("tsdb.repl.quorum_write_failures"),
            hints_queued: c("tsdb.repl.hints_queued"),
            hints_replayed: c("tsdb.repl.hints_replayed"),
            hints_dropped: c("tsdb.repl.hints_dropped"),
            failovers: c("tsdb.repl.failovers"),
            values_corrupted: c("tsdb.repl.values_corrupted"),
            values_repaired: c("tsdb.repl.values_repaired"),
            corrupt_pending: g("tsdb.repl.corrupt_pending"),
            hints_pending: g("tsdb.repl.hints_pending"),
            replicas_healthy: g("tsdb.repl.replicas_healthy"),
            primary: g("tsdb.repl.primary"),
            quorum_write_ns: registry.histogram("tsdb.repl.quorum_write_ns", &[], buckets),
            registry,
        }
    }
}

/// The replication-aware coordinator. Borrows the [`ReplicaSet`]
/// (replicas use interior mutability) and owns one fault schedule and one
/// hint queue per replica.
pub struct ReplShipper<'a> {
    set: &'a ReplicaSet,
    schedules: Vec<FaultSchedule>,
    hints: Vec<VecDeque<HintEntry>>,
    queued_values: Vec<u64>,
    health: Vec<ReplicaHealth>,
    primary: usize,
    stats: ReplStats,
    noise: NoiseSource,
    obs: Option<ReplObs>,
}

impl<'a> ReplShipper<'a> {
    /// Modelled fixed cost of a quorum fan-out (ns).
    const QUORUM_BASE_NS: u64 = 9_000;
    /// Modelled per-acknowledgement cost (ns).
    const QUORUM_PER_ACK_NS: u64 = 2_500;
    /// Modelled per-field-value serialization cost (ns).
    const QUORUM_PER_VALUE_NS: u64 = 450;

    /// New coordinator over `set`, one fault schedule per replica.
    pub fn new(
        set: &'a ReplicaSet,
        schedules: Vec<FaultSchedule>,
        seed_labels: &[&str],
    ) -> Result<ReplShipper<'a>, PcpError> {
        if schedules.len() != set.len() {
            return Err(PcpError::InvalidConfig {
                field: "schedules",
                value: schedules.len() as f64,
                reason: "one fault schedule per replica required",
            });
        }
        let n = set.len();
        Ok(ReplShipper {
            set,
            schedules,
            hints: vec![VecDeque::new(); n],
            queued_values: vec![0; n],
            health: vec![ReplicaHealth::default(); n],
            primary: 0,
            stats: ReplStats::default(),
            noise: NoiseSource::from_labels(seed_labels),
            obs: None,
        })
    }

    /// Attach an observability registry: every ship/heartbeat updates the
    /// `tsdb.repl.*` counters, gauges, and the modelled quorum latency.
    pub fn with_obs(mut self, registry: Arc<Registry>) -> ReplShipper<'a> {
        self.obs = Some(ReplObs::new(registry));
        self
    }

    /// The attached observability registry, if any.
    pub fn obs_registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// The replica set being coordinated.
    pub fn replica_set(&self) -> &ReplicaSet {
        self.set
    }

    /// Index of the current primary (query routing preference).
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// Replicas currently believed up (last heartbeat saw the link).
    pub fn healthy_count(&self) -> usize {
        self.health.iter().filter(|h| !h.down).count()
    }

    /// True when fewer than W replicas are reachable — the daemon drops
    /// to monitor-only mode exactly while this holds.
    pub fn is_degraded(&self) -> bool {
        self.healthy_count() < self.set.config().write_quorum
    }

    /// Ledger and non-ledger values currently parked across all queues.
    pub fn hints_pending_values(&self) -> u64 {
        self.queued_values.iter().sum()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ReplStats {
        self.stats
    }

    /// Reachability vector for quorum reads: replicas not currently down.
    pub fn reachable(&self) -> Vec<bool> {
        self.health.iter().map(|h| !h.down).collect()
    }

    /// R-quorum read routed through the coordinator's reachability view.
    pub fn quorum_read(&self, q: &Query, mode: ExecMode) -> Result<QueryResult, TsdbError> {
        self.set.quorum_read_with_mode(q, &self.reachable(), mode)
    }

    /// Like [`ReplShipper::quorum_read`] but returning the shared result
    /// plus the chosen replica's cache verdict — the serving front-end's
    /// entry point when it fronts a replicated store.
    pub fn quorum_read_cached(
        &self,
        q: &Query,
        mode: ExecMode,
    ) -> Result<(std::sync::Arc<pmove_tsdb::QueryResult>, bool), TsdbError> {
        self.set.quorum_read_cached(q, &self.reachable(), mode)
    }

    /// Can a write reach replica `i` at time `t`? Link partitions are
    /// absolute; degraded bandwidth and backend brown-outs reject
    /// probabilistically from the coordinator's seeded noise stream.
    fn replica_write_ok(&mut self, t: f64, i: usize) -> bool {
        let st = self.schedules[i].state_at(t);
        if !st.link_up {
            return false;
        }
        if st.capacity_factor < 1.0 && !self.noise.happens(st.capacity_factor) {
            return false;
        }
        if st.backend_availability < 1.0 && !self.noise.happens(st.backend_availability) {
            return false;
        }
        true
    }

    /// Ship one report through a quorum write at time `t`.
    pub fn ship(&mut self, t: f64, point: Point, freq_hz: f64) -> ReplShipOutcome {
        self.ship_traced(t, point, freq_hz, None)
    }

    /// Like [`ReplShipper::ship`] but carrying an optional trace context:
    /// the quorum fan-out records one `repl.replica_write` child per
    /// replica (acked writes nest the replica's WAL group commit and
    /// shard ingest), quorum misses upgrade the trace, park it with the
    /// ledger hint, and heartbeat replay continues the same tree
    /// (`repl.hint_replay`) to a terminal status.
    pub fn ship_traced(
        &mut self,
        t: f64,
        point: Point,
        freq_hz: f64,
        ctx: Option<TraceContext>,
    ) -> ReplShipOutcome {
        let tr: Option<TraceHandle> = ctx.and_then(|c| {
            self.obs
                .as_ref()
                .and_then(|o| o.registry.tracer())
                .map(|tracer| (tracer, c))
        });
        let n = point.field_count() as u64;
        self.stats.reports_offered += 1;
        self.stats.values_offered += n;

        // Stale-read zeros at high frequency — same artefact model as the
        // single-node shipper.
        let read_zero = self.noise.happens(Shipper::zero_probability(freq_hz));
        let point = if read_zero {
            let mut zeroed = point;
            for v in zeroed.fields.values_mut() {
                *v = FieldValue::Float(0.0);
            }
            zeroed
        } else {
            point
        };

        let w = self.set.config().write_quorum;
        let rf = self.set.len();
        let t_ns = (t * 1e9) as u64;
        let quorum_start = t_ns + FETCH_NS;
        let mut cursor = quorum_start + Self::QUORUM_BASE_NS;
        // Replica writes are laid out sequentially on the virtual clock
        // so the critical-path analyzer attributes the fan-out exactly.
        let qspan = tr.as_ref().filter(|(_, c)| c.sampled).map(|(tracer, c)| {
            let fetch = tracer.child(*c, "pcp.fetch", t_ns);
            tracer.end_span(fetch, t_ns + FETCH_NS);
            (
                tracer.clone(),
                tracer.child(*c, "repl.quorum_write", quorum_start),
            )
        });
        let mut acks = vec![false; rf];
        let mut ack_count = 0usize;
        for (i, ack) in acks.iter_mut().enumerate() {
            let reachable = self.replica_write_ok(t, i);
            match &qspan {
                Some((tracer, q)) => {
                    let rspan = tracer.child(*q, "repl.replica_write", cursor);
                    if reachable {
                        let (res, end_ns) = self.set.replica(i).write_point_traced(
                            point.clone(),
                            tracer,
                            rspan,
                            cursor + Self::QUORUM_PER_ACK_NS,
                        );
                        let end_ns = end_ns.max(cursor + Self::QUORUM_PER_ACK_NS);
                        if res.is_ok() {
                            *ack = true;
                            ack_count += 1;
                            tracer.end_span_status(rspan, end_ns, "acked");
                        } else {
                            tracer.end_span_status(rspan, end_ns, "rejected");
                        }
                        cursor = end_ns;
                    } else {
                        tracer.end_span_status(
                            rspan,
                            cursor + Self::QUORUM_PER_ACK_NS,
                            "unreachable",
                        );
                        cursor += Self::QUORUM_PER_ACK_NS;
                    }
                }
                None => {
                    if reachable && self.set.replica(i).write_point(point.clone()).is_ok() {
                        *ack = true;
                        ack_count += 1;
                    }
                }
            }
        }
        if let Some((tracer, q)) = &qspan {
            tracer.end_span(*q, cursor);
        }
        self.stats.replica_acks += ack_count as u64;
        if let Some(o) = &self.obs {
            let modeled_ns = Self::QUORUM_BASE_NS
                + Self::QUORUM_PER_ACK_NS * ack_count as u64
                + Self::QUORUM_PER_VALUE_NS * n;
            match &tr {
                Some((_, c)) if c.sampled => {
                    o.quorum_write_ns.record_exemplar(modeled_ns, c.trace.0)
                }
                _ => o.quorum_write_ns.record(modeled_ns),
            }
        }

        let quorum = ack_count >= w;
        if quorum {
            self.stats.quorum_writes += 1;
            if let Some(o) = &self.obs {
                o.quorum_writes.inc();
            }
        } else {
            self.stats.quorum_write_failures += 1;
            if let Some(o) = &self.obs {
                o.quorum_write_failures.inc();
            }
        }

        if read_zero {
            // Zeros are terminal at offer time: the ledger counts them
            // zeroed whether or not the quorum landed; misses still get
            // non-ledger hints so replicas converge on the zero rows.
            self.stats.values_zeroed += n;
            for (i, &acked) in acks.iter().enumerate() {
                if !acked {
                    self.park(i, point.clone(), n, false, None, cursor);
                }
            }
            if let Some((tracer, c)) = &tr {
                tracer.finish_trace(*c, cursor, "zeroed");
            }
            self.export_gauges();
            return ReplShipOutcome::InsertedZero;
        }

        let outcome = if quorum {
            self.stats.values_inserted += n;
            for (i, &acked) in acks.iter().enumerate() {
                if !acked {
                    self.park(i, point.clone(), n, false, None, cursor);
                }
            }
            if let Some((tracer, c)) = &tr {
                tracer.finish_trace(*c, cursor, "inserted");
            }
            ReplShipOutcome::Inserted
        } else {
            // Quorum missed: the first failed replica's hint carries the
            // ledger; the rest are repair bookkeeping. A miss is a fault
            // site — unsampled traces upgrade here.
            let tr = upgrade_on_fault(tr, cursor);
            if let Some((tracer, c)) = &tr {
                let park_span = tracer.child(*c, "repl.hint_park", cursor);
                tracer.end_span_status(park_span, cursor, "hinted");
            }
            let mut tr = tr;
            let mut ledger_parked = false;
            let mut ledger_pending = true;
            for (i, &acked) in acks.iter().enumerate() {
                if acked {
                    continue;
                }
                if ledger_pending {
                    ledger_pending = false;
                    ledger_parked = self.park(i, point.clone(), n, true, tr.take(), cursor);
                } else {
                    self.park(i, point.clone(), n, false, None, cursor);
                }
            }
            if ledger_parked {
                ReplShipOutcome::Hinted
            } else {
                ReplShipOutcome::Lost
            }
        };
        self.export_gauges();
        outcome
    }

    /// Park a report on replica `i`'s bounded hint queue (drop-oldest).
    /// Returns whether the entry was parked; a ledger entry that cannot
    /// be parked is counted lost here. `trace` rides on ledger entries
    /// and terminates with the entry's fate.
    fn park(
        &mut self,
        i: usize,
        point: Point,
        values: u64,
        ledger: bool,
        trace: Option<TraceHandle>,
        now_ns: u64,
    ) -> bool {
        let cap = self.set.config().hint_capacity_values;
        if values > cap {
            self.stats.hints_dropped += 1;
            if let Some(o) = &self.obs {
                o.hints_dropped.inc();
            }
            if ledger {
                self.stats.values_lost += values;
            }
            if let Some((tracer, c)) = trace {
                tracer.finish_trace(c, now_ns, "lost");
            }
            return false;
        }
        while self.queued_values[i] + values > cap {
            let old = self.hints[i].pop_front().expect("capacity implies entries");
            self.queued_values[i] -= old.values;
            self.stats.hints_dropped += 1;
            if let Some(o) = &self.obs {
                o.hints_dropped.inc();
            }
            if old.ledger {
                self.stats.values_hinted -= old.values;
                self.stats.values_evicted += old.values;
            }
            if let Some((tracer, c)) = old.trace {
                tracer.finish_trace(c, now_ns, "evicted");
            }
        }
        self.hints[i].push_back(HintEntry {
            point,
            values,
            ledger,
            trace,
        });
        self.queued_values[i] += values;
        self.stats.hints_queued += 1;
        if let Some(o) = &self.obs {
            o.hints_queued.inc();
        }
        if ledger {
            self.stats.values_hinted += values;
        }
        true
    }

    /// Heartbeat every replica at time `t`: a link that answers clears
    /// the miss counter, lifts quarantine, and triggers hint replay; a
    /// link that misses `heartbeat_miss_limit` beats in a row is
    /// quarantined, promoting a new primary if it held the role.
    pub fn heartbeat(&mut self, t: f64) {
        for i in 0..self.set.len() {
            let up = self.schedules[i].state_at(t).link_up;
            if up {
                self.health[i].down = false;
                self.health[i].misses = 0;
                if self.health[i].quarantined {
                    // The replica rejoined; hint replay below brings it
                    // back toward convergence before anti-entropy runs.
                    self.health[i].quarantined = false;
                }
                if !self.hints[i].is_empty() {
                    self.replay_hints(t, i);
                }
            } else {
                self.health[i].down = true;
                self.health[i].misses += 1;
                if self.health[i].misses >= self.set.config().heartbeat_miss_limit
                    && !self.health[i].quarantined
                {
                    self.health[i].quarantined = true;
                    if i == self.primary {
                        self.promote();
                    }
                }
            }
        }
        self.export_gauges();
    }

    /// Replay replica `i`'s hints, oldest first, stopping at the first
    /// write the replica rejects (retried on the next heartbeat). A
    /// parked trace gains one `repl.hint_replay` child per attempt and
    /// terminates `recovered` when the replay lands.
    fn replay_hints(&mut self, t: f64, i: usize) {
        let t_ns = (t * 1e9) as u64;
        while let Some(front) = self.hints[i].front() {
            let values = front.values;
            if !self.replica_write_ok(t, i) {
                break;
            }
            let entry = self.hints[i].pop_front().expect("checked non-empty");
            let applied = match &entry.trace {
                Some((tracer, c)) if c.sampled => {
                    let replay = tracer.child(*c, "repl.hint_replay", t_ns);
                    let (res, end_ns) = self.set.replica(i).apply_remote_traced(
                        entry.point.clone(),
                        tracer,
                        replay,
                        t_ns + RETRY_NS,
                    );
                    let end_ns = end_ns.max(t_ns + RETRY_NS);
                    let status = if res.is_ok() { "ok" } else { "rejected" };
                    tracer.end_span_status(replay, end_ns, status);
                    res.is_ok()
                }
                _ => self
                    .set
                    .replica(i)
                    .apply_remote(entry.point.clone())
                    .is_ok(),
            };
            if !applied {
                self.hints[i].push_front(entry);
                break;
            }
            self.queued_values[i] -= values;
            self.stats.hints_replayed += 1;
            if let Some(o) = &self.obs {
                o.hints_replayed.inc();
            }
            if entry.ledger {
                // The report is now durable on one replica; anti-entropy
                // spreads it to the rest, so it graduates to inserted.
                self.stats.values_hinted -= values;
                self.stats.values_inserted += values;
            }
            if let Some((tracer, c)) = entry.trace {
                tracer.finish_trace(c, t_ns + RETRY_NS, "recovered");
            }
        }
    }

    /// Close the trace of every report still parked in a hint queue with
    /// terminal status `hinted`. Called once at the end of a run so the
    /// flight recorder never holds open trees for parked reports.
    pub fn seal_pending_traces(&mut self, t: f64) {
        let t_ns = (t * 1e9) as u64;
        for queue in &mut self.hints {
            for entry in queue.iter_mut() {
                if let Some((tracer, c)) = entry.trace.take() {
                    tracer.finish_trace(c, t_ns, "hinted");
                }
            }
        }
    }

    /// Promote the lowest-indexed unquarantined replica to primary.
    fn promote(&mut self) {
        let next = (0..self.set.len()).find(|&i| !self.health[i].quarantined);
        if let Some(next) = next {
            if next != self.primary {
                self.primary = next;
                self.stats.failovers += 1;
                if let Some(o) = &self.obs {
                    o.failovers.inc();
                }
            }
        }
    }

    /// Run one scrub sweep over every replica at time `t` and repair any
    /// quarantined chunks from the surviving replicas via anti-entropy
    /// (see [`ReplicaSet::scrub_and_repair`]), folding the outcome into
    /// the coordinator's conservation ledger.
    pub fn scrub_and_repair(
        &mut self,
        scrubbers: &mut [Scrubber],
        t: f64,
        max_rounds: u64,
    ) -> Result<IntegrityReport, TsdbError> {
        let report = self.set.scrub_and_repair(scrubbers, t, max_rounds)?;
        self.record_integrity(&report);
        Ok(report)
    }

    /// Fold an integrity sweep into the conservation ledger: corrupted
    /// cells widen the left-hand side of the equation, repaired cells
    /// balance them on the right, and the cumulative shortfall between
    /// the two is carried as `values_corrupt_pending`.
    pub fn record_integrity(&mut self, report: &IntegrityReport) {
        self.stats.values_corrupted += report.cells_corrupted;
        self.stats.values_repaired += report.cells_repaired;
        self.stats.values_corrupt_pending = self
            .stats
            .values_corrupted
            .saturating_sub(self.stats.values_repaired);
        if let Some(o) = &self.obs {
            o.values_corrupted.add(report.cells_corrupted);
            o.values_repaired.add(report.cells_repaired);
            o.corrupt_pending
                .set(self.stats.values_corrupt_pending as f64);
        }
    }

    fn export_gauges(&self) {
        if let Some(o) = &self.obs {
            o.hints_pending.set(self.hints_pending_values() as f64);
            o.replicas_healthy.set(self.healthy_count() as f64);
            o.primary.set(self.primary as f64);
        }
    }
}

impl pmove_serve::QueryBackend for &ReplShipper<'_> {
    /// Serve queries through the coordinator's reachability-aware quorum
    /// read: down replicas are skipped, the freshest reachable replica
    /// answers, and its result cache provides the hit verdict. Lets a
    /// [`pmove_serve::QueryServer`] front the replicated store with the
    /// same failure semantics the shipper itself sees.
    fn execute(&self, q: &Query) -> Result<pmove_serve::BackendExec, TsdbError> {
        let (result, cache_hit) = self.quorum_read_cached(q, ExecMode::default())?;
        Ok(pmove_serve::BackendExec {
            rows: result.rows.len() as u64,
            cache_hit,
        })
    }
}

/// Result of one replicated sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplSamplingReport {
    /// Ticks scheduled.
    pub ticks: u64,
    /// Field values expected (ticks × total domain size).
    pub expected_values: u64,
    /// Coordinator statistics.
    pub transport: ReplStats,
}

/// Drive one sampling run through the replication coordinator: the same
/// unbuffered tick loop as [`crate::sampler::SamplingLoop::run`], with a
/// coordinator heartbeat (hint replay, quarantine, failover) every tick.
pub fn run_replicated(
    config: &SamplingConfig,
    pmcd: &mut crate::pmcd::Pmcd,
    coord: &mut ReplShipper<'_>,
) -> ReplSamplingReport {
    let period = 1.0 / config.freq_hz;
    let mut t_prev = config.start_s;
    let mut total_domain = 0u64;
    let mut domain_counted = false;
    let obs = coord.obs_registry().cloned();
    let tracer = obs.as_ref().and_then(|r| r.tracer());
    let tick_counter = obs.as_ref().map(|r| r.counter("pcp.sampler.ticks", &[]));
    let point_counter = obs
        .as_ref()
        .map(|r| r.counter("pcp.sampler.points_fetched", &[]));

    for tick in 0..config.ticks() {
        let t_now = config.start_s + (tick + 1) as f64 * period;
        pmcd.heartbeat_all(t_now);
        coord.heartbeat(t_now);
        let points = pmcd.fetch_all(&config.metrics, t_prev, t_now);
        if !domain_counted && !points.is_empty() {
            total_domain = points.iter().map(|p| p.field_count() as u64).sum();
            domain_counted = true;
        }
        if let Some(c) = &tick_counter {
            c.inc();
        }
        if let Some(c) = &point_counter {
            c.add(points.len() as u64);
        }
        for point in points {
            let ctx = tracer
                .as_ref()
                .map(|tr| tr.start_trace("pcp.sample", (t_now * 1e9) as u64));
            coord.ship_traced(t_now, point, config.freq_hz, ctx);
        }
        t_prev = t_now;
    }

    // Final heartbeat at the end of the run so hints whose replica
    // recovered near the end still replay; any trace still parked after
    // that seals with terminal status `hinted`.
    coord.heartbeat(config.start_s + config.duration_s);
    coord.seal_pending_traces(config.start_s + config.duration_s);

    if let Some(registry) = &obs {
        let start_ns = (config.start_s * 1e9).round().max(0.0) as u64;
        let end_ns = (t_prev * 1e9).round().max(0.0) as u64;
        registry.record_span("pcp.sampling", start_ns, end_ns);
    }

    ReplSamplingReport {
        ticks: config.ticks(),
        expected_values: config.ticks() * total_domain,
        transport: coord.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::network::FaultKind;
    use pmove_tsdb::repl::ReplConfig;

    fn report(ts: i64, fields: usize) -> Point {
        let mut p = Point::new("m").tag("tag", "o1").timestamp(ts);
        for i in 0..fields {
            p = p.field(format!("_cpu{i}"), 5.0 + i as f64);
        }
        p
    }

    fn healthy_schedules(n: usize) -> Vec<FaultSchedule> {
        vec![FaultSchedule::none(); n]
    }

    #[test]
    fn healthy_quorum_writes_land_everywhere() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        let mut coord = ReplShipper::new(&set, healthy_schedules(3), &["t1"]).unwrap();
        for t in 0..10 {
            let out = coord.ship(t as f64, report(t, 4), 2.0);
            assert_eq!(out, ReplShipOutcome::Inserted);
        }
        let s = coord.stats();
        assert_eq!(s.values_inserted, 40);
        assert_eq!(s.quorum_writes, 10);
        assert_eq!(s.replica_acks, 30);
        assert!(s.conserved(), "{s:?}");
        assert!(set.converged());
    }

    #[test]
    fn single_replica_outage_keeps_quorum_and_hints() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        let mut schedules = healthy_schedules(3);
        schedules[1] = FaultSchedule::none().with_window(2.0, 6.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t2"]).unwrap();
        for t in 0..10 {
            let out = coord.ship(t as f64, report(t, 4), 2.0);
            assert_eq!(out, ReplShipOutcome::Inserted, "t={t}");
            coord.heartbeat(t as f64);
        }
        coord.heartbeat(10.0); // replica 1 is back: hints replay
        let s = coord.stats();
        assert_eq!(s.values_inserted, 40);
        assert_eq!(s.values_lost, 0);
        assert!(s.hints_queued > 0);
        assert_eq!(s.hints_replayed, s.hints_queued);
        assert!(s.conserved(), "{s:?}");
        assert!(set.converged(), "hint replay restored convergence");
    }

    #[test]
    fn quorum_miss_parks_ledger_hint_and_replays() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        // Replicas 1 and 2 partitioned: acks = 1 < W = 2.
        let mut schedules = healthy_schedules(3);
        schedules[1] = FaultSchedule::none().with_window(0.0, 5.0, FaultKind::LinkDown);
        schedules[2] = FaultSchedule::none().with_window(0.0, 5.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t3"]).unwrap();
        let out = coord.ship(1.0, report(1, 4), 2.0);
        assert_eq!(out, ReplShipOutcome::Hinted);
        let s = coord.stats();
        assert_eq!(s.values_hinted, 4);
        assert_eq!(s.quorum_write_failures, 1);
        assert!(s.conserved(), "{s:?}");
        assert!(coord.is_degraded() || coord.healthy_count() == 3); // pre-heartbeat view
        coord.heartbeat(6.0); // both back: ledger hint graduates
        let s = coord.stats();
        assert_eq!(s.values_hinted, 0);
        assert_eq!(s.values_inserted, 4);
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn hint_overflow_evicts_oldest_and_conserves() {
        let cfg = ReplConfig {
            hint_capacity_values: 8, // two 4-field reports
            ..ReplConfig::default()
        };
        let set = ReplicaSet::in_memory("s", cfg).unwrap();
        let mut schedules = healthy_schedules(3);
        schedules[1] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        schedules[2] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t4"]).unwrap();
        for t in 0..10 {
            coord.ship(t as f64, report(t, 4), 2.0);
        }
        let s = coord.stats();
        assert!(s.values_evicted > 0, "{s:?}");
        assert_eq!(s.values_hinted, 8);
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn primary_failover_after_quarantine() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        let mut schedules = healthy_schedules(3);
        schedules[0] = FaultSchedule::none().with_window(0.0, 50.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t5"]).unwrap();
        assert_eq!(coord.primary(), 0);
        for t in 0..4 {
            coord.heartbeat(t as f64);
        }
        assert_eq!(coord.primary(), 1, "promoted past the quarantined node");
        assert_eq!(coord.stats().failovers, 1);
        // Two of three replicas are still up: not degraded.
        assert!(!coord.is_degraded());
    }

    #[test]
    fn degraded_only_when_quorum_unreachable() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        let mut schedules = healthy_schedules(3);
        schedules[0] = FaultSchedule::none().with_window(0.0, 50.0, FaultKind::LinkDown);
        schedules[1] = FaultSchedule::none().with_window(0.0, 50.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t6"]).unwrap();
        coord.heartbeat(1.0);
        assert!(coord.is_degraded(), "1 of 3 up < W = 2");
        coord.heartbeat(51.0);
        assert!(!coord.is_degraded());
    }

    #[test]
    fn schedule_count_must_match_replicas() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        assert!(ReplShipper::new(&set, healthy_schedules(2), &["t7"]).is_err());
    }

    #[test]
    fn shipper_backs_the_serving_layer_with_a_replica_down() {
        use pmove_serve::{Priority, QueryServer, ServeRequest, ServingConfig};
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        let mut schedules = healthy_schedules(3);
        schedules[2] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        let mut coord = ReplShipper::new(&set, schedules, &["t8"]).unwrap();
        for t in 0..10 {
            coord.ship(t as f64, report(t, 4), 2.0);
        }
        coord.heartbeat(5.0);
        // Two of three reachable: quorum reads still work, so the serving
        // layer keeps answering with the same failure semantics.
        let mut srv = QueryServer::new(&coord, ServingConfig::default()).unwrap();
        let q = "SELECT mean(\"_cpu0\") FROM \"m\"".to_string();
        let schedule = vec![
            ServeRequest {
                tenant: 0,
                priority: Priority::Interactive,
                query: q.clone(),
                at_ns: 0,
            },
            ServeRequest {
                tenant: 1,
                priority: Priority::Background,
                query: q,
                at_ns: 80_000_000,
            },
        ];
        let rep = srv.run(&schedule).unwrap();
        assert!(rep.conserved());
        assert_eq!(rep.served, 2);
        // Second, widely-spaced request hits the replica's result cache.
        assert_eq!(rep.cache_hits, 1);
    }

    #[test]
    fn scrub_and_repair_widens_and_balances_the_ledger() {
        use pmove_tsdb::store::{RotSchedule, ScrubConfig, StoreOptions};
        let (set, _) = ReplicaSet::durable(
            "s",
            ReplConfig::default(),
            23,
            StoreOptions {
                flush_threshold_rows: 1_000_000,
                compact_min_chunks: 1_000_000,
            },
        )
        .unwrap();
        let mut coord = ReplShipper::new(&set, healthy_schedules(3), &["t9"]).unwrap();
        for t in 0..20 {
            let out = coord.ship(t as f64, report(t, 4), 2.0);
            assert_eq!(out, ReplShipOutcome::Inserted);
        }
        for r in set.replicas() {
            r.flush().unwrap().unwrap();
        }
        // Latent rot lands on replica 1's chunk namespace after flush.
        set.disks()[1].schedule_rot(RotSchedule::none().at(1.0, 1).with_prefix("chunk-"));
        set.disks()[1].advance_rot(1.0);
        let mut scrubbers = set.scrubbers(ScrubConfig {
            full_pass_period_s: 5.0,
            ..ScrubConfig::default()
        });
        let mut now = 21.0;
        while coord.stats().values_corrupted == 0 {
            let r = coord.scrub_and_repair(&mut scrubbers, now, 4).unwrap();
            assert!(r.converged, "sweep at t={now} left the set diverged");
            now += 1.0;
            assert!(now < 120.0, "scrub never found the rotted chunk");
        }
        let s = coord.stats();
        // The widened identity balances: every corrupted value was
        // recovered from the R-quorum, so nothing stays pending.
        assert!(s.values_corrupted > 0, "{s:?}");
        assert_eq!(s.values_repaired, s.values_corrupted, "{s:?}");
        assert_eq!(s.values_corrupt_pending, 0, "{s:?}");
        assert!(s.conserved(), "{s:?}");
        assert!(set.converged());
    }
}
