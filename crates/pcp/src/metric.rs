//! Metric namespace and instance domains.

use pmove_hwsim::topology::ComponentKind;
use pmove_hwsim::MachineSpec;

/// Instance domain of a metric: how many values one sample carries and how
/// the fields are named. Table III's losses scale with the domain size
/// (88 values per report on skx vs 16 on icl).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceDomain {
    /// A single value.
    Singular,
    /// One value per logical CPU (`_cpu0`, `_cpu1`, ...).
    PerCpu,
    /// One value per NUMA node (`_node0`, ...).
    PerNode,
    /// One value per package (RAPL domains).
    PerPackage,
    /// One value per block device.
    PerDisk,
    /// One value per NIC.
    PerNic,
    /// One value per GPU device (`_gpu0`, ...).
    PerGpu,
    /// One value per tracked process.
    PerProcess,
}

impl InstanceDomain {
    /// Field names this domain produces on a machine.
    pub fn instances(&self, spec: &MachineSpec) -> Vec<String> {
        match self {
            InstanceDomain::Singular => vec!["value".into()],
            InstanceDomain::PerCpu => (0..spec.total_threads())
                .map(|i| format!("_cpu{i}"))
                .collect(),
            InstanceDomain::PerNode | InstanceDomain::PerPackage => {
                (0..spec.sockets).map(|i| format!("_node{i}")).collect()
            }
            InstanceDomain::PerDisk => spec.disks.iter().map(|d| d.name.clone()).collect(),
            InstanceDomain::PerNic => vec!["eth0".into()],
            InstanceDomain::PerGpu => (0..spec.gpus.len()).map(|i| format!("_gpu{i}")).collect(),
            InstanceDomain::PerProcess => {
                // The tracked process set is dynamic; the default domain is
                // the interesting processes of the current observation.
                vec!["_proc_main".into()]
            }
        }
    }

    /// Domain size on a machine.
    pub fn size(&self, spec: &MachineSpec) -> usize {
        self.instances(spec).len()
    }

    /// The component kind this domain's instances attach to in the KB.
    pub fn component_kind(&self) -> ComponentKind {
        match self {
            InstanceDomain::Singular => ComponentKind::System,
            InstanceDomain::PerCpu => ComponentKind::Thread,
            InstanceDomain::PerNode | InstanceDomain::PerPackage => ComponentKind::NumaNode,
            InstanceDomain::PerDisk => ComponentKind::Disk,
            InstanceDomain::PerNic => ComponentKind::Nic,
            InstanceDomain::PerGpu => ComponentKind::Gpu,
            InstanceDomain::PerProcess => ComponentKind::Process,
        }
    }
}

/// Description of one metric in the namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDesc {
    /// Dotted PCP name (`kernel.percpu.cpu.idle`,
    /// `perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE`).
    pub name: String,
    /// Instance domain.
    pub indom: InstanceDomain,
    /// Human description.
    pub description: String,
}

impl MetricDesc {
    /// Build a descriptor.
    pub fn new(
        name: impl Into<String>,
        indom: InstanceDomain,
        description: impl Into<String>,
    ) -> Self {
        MetricDesc {
            name: name.into(),
            indom,
            description: description.into(),
        }
    }

    /// The time-series measurement name: dots and colons become
    /// underscores (`kernel_percpu_cpu_idle`,
    /// `perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE`).
    pub fn db_name(&self) -> String {
        self.name.replace(['.', ':'], "_")
    }

    /// Descriptor for a PMU hardware event.
    pub fn perfevent(event_name: &str, description: impl Into<String>, per_package: bool) -> Self {
        MetricDesc {
            name: format!("perfevent.hwcounters.{event_name}"),
            indom: if per_package {
                InstanceDomain::PerPackage
            } else {
                InstanceDomain::PerCpu
            },
            description: description.into(),
        }
    }

    /// Is this a hardware (PMU) metric?
    pub fn is_hw(&self) -> bool {
        self.name.starts_with("perfevent.")
    }

    /// The underlying PMU event name for perfevent metrics.
    pub fn event_name(&self) -> Option<&str> {
        self.name.strip_prefix("perfevent.hwcounters.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_sizes_match_machines() {
        let skx = MachineSpec::skx();
        let icl = MachineSpec::icl();
        assert_eq!(InstanceDomain::PerCpu.size(&skx), 88);
        assert_eq!(InstanceDomain::PerCpu.size(&icl), 16);
        assert_eq!(InstanceDomain::PerNode.size(&skx), 2);
        assert_eq!(InstanceDomain::PerDisk.size(&skx), 4);
        assert_eq!(InstanceDomain::Singular.size(&skx), 1);
    }

    #[test]
    fn instance_field_names() {
        let icl = MachineSpec::icl();
        let cpus = InstanceDomain::PerCpu.instances(&icl);
        assert_eq!(cpus[0], "_cpu0");
        assert_eq!(cpus[15], "_cpu15");
        assert_eq!(
            InstanceDomain::PerNode.instances(&icl),
            vec!["_node0".to_string()]
        );
    }

    #[test]
    fn db_name_flattening() {
        let m = MetricDesc::new("kernel.percpu.cpu.idle", InstanceDomain::PerCpu, "idle");
        assert_eq!(m.db_name(), "kernel_percpu_cpu_idle");
        let hw = MetricDesc::perfevent("FP_ARITH:SCALAR_DOUBLE", "scalar fp", false);
        assert_eq!(hw.db_name(), "perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE");
    }

    #[test]
    fn perfevent_helpers() {
        let hw = MetricDesc::perfevent("RAPL_ENERGY_PKG", "energy", true);
        assert!(hw.is_hw());
        assert_eq!(hw.indom, InstanceDomain::PerPackage);
        assert_eq!(hw.event_name(), Some("RAPL_ENERGY_PKG"));
        let sw = MetricDesc::new("mem.util.used", InstanceDomain::Singular, "mem");
        assert!(!sw.is_hw());
        assert_eq!(sw.event_name(), None);
    }
}
