//! `pmdaproc`: per-process metrics (CPU time, resident memory, I/O).
//!
//! The paper uses `proc.psinfo.utime`/`stime` for agent CPU measurements
//! and `proc.psinfo.rss` for memory (Fig. 6). This agent reports metrics
//! for a registered set of processes — typically the PCP agents themselves
//! plus any kernel launched by Scenario B.

use crate::agent::{Agent, Sample};
use crate::metric::{InstanceDomain, MetricDesc};

/// One tracked process with a simple linear resource model.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedProcess {
    /// Process name (instance name in the domain).
    pub name: String,
    /// User-mode CPU seconds consumed per second of wall time.
    pub utime_per_s: f64,
    /// System-mode CPU seconds per second.
    pub stime_per_s: f64,
    /// Resident set size in bytes (flat, as Fig. 6 observes for agents).
    pub rss_bytes: f64,
    /// Process lifetime `(start_s, end_s)` in virtual time; `None` means
    /// alive for the whole session (daemons like pmcd).
    pub lifetime: Option<(f64, f64)>,
}

impl TrackedProcess {
    /// Seconds of the window `[t_prev, t_now)` the process was alive.
    fn alive_overlap(&self, t_prev: f64, t_now: f64) -> f64 {
        match self.lifetime {
            None => (t_now - t_prev).max(0.0),
            Some((start, end)) => (t_now.min(end) - t_prev.max(start)).max(0.0),
        }
    }
}

/// The per-process agent.
pub struct ProcAgent {
    processes: Vec<TrackedProcess>,
}

impl ProcAgent {
    /// Agent with an initial process set.
    pub fn new(processes: Vec<TrackedProcess>) -> Self {
        ProcAgent { processes }
    }

    /// Register an additional process.
    pub fn track(&mut self, p: TrackedProcess) {
        self.processes.push(p);
    }

    /// Number of tracked processes (the instance-domain size; `pmdaproc`'s
    /// larger memory footprint in Fig. 6 comes from tracking *all* system
    /// processes).
    pub fn tracked(&self) -> usize {
        self.processes.len()
    }
}

impl Agent for ProcAgent {
    fn name(&self) -> &str {
        "pmdaproc"
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        vec![
            MetricDesc::new(
                "proc.psinfo.utime",
                InstanceDomain::PerProcess,
                "user CPU time",
            ),
            MetricDesc::new(
                "proc.psinfo.stime",
                InstanceDomain::PerProcess,
                "system CPU time",
            ),
            MetricDesc::new(
                "proc.psinfo.rss",
                InstanceDomain::PerProcess,
                "resident set size",
            ),
        ]
    }

    fn sample(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Vec<Sample> {
        self.processes
            .iter()
            .map(|p| {
                let alive = p.alive_overlap(t_prev, t_now);
                let v = match metric {
                    "proc.psinfo.utime" => p.utime_per_s * alive,
                    "proc.psinfo.stime" => p.stime_per_s * alive,
                    // RSS is a gauge: visible only while the process lives.
                    "proc.psinfo.rss" => {
                        if alive > 0.0 {
                            p.rss_bytes
                        } else {
                            0.0
                        }
                    }
                    _ => return (p.name.clone(), f64::NAN),
                };
                (p.name.clone(), v)
            })
            .filter(|(_, v)| !v.is_nan())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> ProcAgent {
        ProcAgent::new(vec![
            TrackedProcess {
                name: "pmcd".into(),
                utime_per_s: 0.002,
                stime_per_s: 0.001,
                rss_bytes: 8e6,
                lifetime: None,
            },
            TrackedProcess {
                name: "spmv".into(),
                utime_per_s: 0.9,
                stime_per_s: 0.05,
                rss_bytes: 2e9,
                lifetime: None,
            },
        ])
    }

    #[test]
    fn cpu_time_scales_with_window() {
        let mut a = agent();
        let s = a.sample("proc.psinfo.utime", 0.0, 10.0);
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 0.02).abs() < 1e-12);
        assert!((s[1].1 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rss_is_a_gauge() {
        let mut a = agent();
        let s1 = a.sample("proc.psinfo.rss", 0.0, 1.0);
        let s2 = a.sample("proc.psinfo.rss", 1.0, 100.0);
        assert_eq!(s1, s2);
    }

    #[test]
    fn tracking_grows_domain() {
        let mut a = agent();
        assert_eq!(a.tracked(), 2);
        a.track(TrackedProcess {
            name: "extra".into(),
            utime_per_s: 0.0,
            stime_per_s: 0.0,
            rss_bytes: 1.0,
            lifetime: None,
        });
        assert_eq!(a.tracked(), 3);
        assert_eq!(a.sample("proc.psinfo.rss", 0.0, 1.0).len(), 3);
    }

    #[test]
    fn unknown_metric_empty() {
        assert!(agent().sample("proc.bogus", 0.0, 1.0).is_empty());
    }
}
