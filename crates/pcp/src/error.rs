//! Typed configuration errors for the sampling/transport layer.
//!
//! The original code accepted any `f64` and let NaN propagate into loss
//! percentages; these errors reject non-finite or out-of-range inputs at
//! construction time instead.

use std::fmt;

/// Error building a sampling/transport configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcpError {
    /// A numeric configuration field is non-finite or out of range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for PcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcpError::InvalidConfig {
                field,
                value,
                reason,
            } => {
                write!(f, "invalid config: {field} = {value} ({reason})")
            }
        }
    }
}

impl std::error::Error for PcpError {}

/// Check that `value` is finite; `reason` names the constraint.
pub(crate) fn require_finite(field: &'static str, value: f64) -> Result<(), PcpError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(PcpError::InvalidConfig {
            field,
            value,
            reason: "must be finite",
        })
    }
}

/// Check that `value` is finite and strictly positive.
pub(crate) fn require_positive(field: &'static str, value: f64) -> Result<(), PcpError> {
    require_finite(field, value)?;
    if value > 0.0 {
        Ok(())
    } else {
        Err(PcpError::InvalidConfig {
            field,
            value,
            reason: "must be positive",
        })
    }
}

/// Check that `value` is finite and non-negative.
pub(crate) fn require_non_negative(field: &'static str, value: f64) -> Result<(), PcpError> {
    require_finite(field, value)?;
    if value >= 0.0 {
        Ok(())
    } else {
        Err(PcpError::InvalidConfig {
            field,
            value,
            reason: "must be non-negative",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field_and_reason() {
        let e = PcpError::InvalidConfig {
            field: "freq_hz",
            value: f64::NAN,
            reason: "must be positive",
        };
        let msg = e.to_string();
        assert!(msg.contains("freq_hz"));
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn range_checks() {
        assert!(require_finite("x", 1.0).is_ok());
        assert!(require_finite("x", f64::INFINITY).is_err());
        assert!(require_positive("x", 0.5).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_non_negative("x", 0.0).is_ok());
        assert!(require_non_negative("x", -1.0).is_err());
    }
}
