//! The unbuffered sampling loop.
//!
//! Ticks at a fixed frequency over a span of virtual time; on each tick it
//! fetches the configured metrics from pmcd and ships them immediately.
//! There is no queue: whatever the shipper cannot take in that window is
//! gone. This is the experiment driver for Table III and the telemetry
//! engine for Scenarios A and B.
//!
//! When the shipper runs in resilient mode the loop additionally drives
//! agent heartbeats (supervised PMDA restarts) and honours the shipper's
//! adaptive tick stride: under sustained loss some ticks are skipped —
//! traded for spill-drain opportunities — and counted in
//! [`SamplingReport::ticks_skipped`].

use crate::error::{require_finite, require_non_negative, require_positive, PcpError};
use crate::pmcd::Pmcd;
use crate::transport::{Shipper, ShipperStats};

/// Configuration of one sampling run.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Metrics to fetch each tick.
    pub metrics: Vec<String>,
    /// Samples per second.
    pub freq_hz: f64,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Run length (seconds).
    pub duration_s: f64,
}

impl SamplingConfig {
    /// Build a config; panics on invalid numbers (see
    /// [`SamplingConfig::try_new`] for the typed-error path).
    pub fn new(metrics: Vec<String>, freq_hz: f64, start_s: f64, duration_s: f64) -> Self {
        Self::try_new(metrics, freq_hz, start_s, duration_s).expect("bad sampling config")
    }

    /// Build a config, rejecting non-finite or non-positive frequency and
    /// non-finite or negative start/duration with a typed error.
    pub fn try_new(
        metrics: Vec<String>,
        freq_hz: f64,
        start_s: f64,
        duration_s: f64,
    ) -> Result<Self, PcpError> {
        require_positive("freq_hz", freq_hz)?;
        require_finite("start_s", start_s)?;
        require_non_negative("duration_s", duration_s)?;
        Ok(SamplingConfig {
            metrics,
            freq_hz,
            start_s,
            duration_s,
        })
    }

    /// Number of ticks in the run. PCP "stops the sampling as the kernel
    /// is halted": a trailing partial period still gets its final read, so
    /// the tick count rounds up.
    pub fn ticks(&self) -> u64 {
        (self.duration_s * self.freq_hz).ceil() as u64
    }

    /// Data points (field values) expected at the DB if nothing were lost:
    /// ticks × Σ(instance-domain sizes). Needs the per-metric domain sizes.
    pub fn expected_values(&self, domain_sizes: &[usize]) -> u64 {
        self.ticks() * domain_sizes.iter().map(|s| *s as u64).sum::<u64>()
    }
}

/// Result of one sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingReport {
    /// Ticks scheduled.
    pub ticks: u64,
    /// Ticks skipped by adaptive frequency degradation (0 in default mode).
    pub ticks_skipped: u64,
    /// Field values expected (ticks × total domain size).
    pub expected_values: u64,
    /// Transport statistics.
    pub transport: ShipperStats,
}

impl SamplingReport {
    /// Inserted values per second of sampled time (Tput of Table III).
    pub fn throughput(&self, duration_s: f64) -> f64 {
        (self.transport.values_inserted + self.transport.values_zeroed) as f64 / duration_s
    }

    /// Non-zero inserted values per second (A.Tput — actual throughput).
    pub fn actual_throughput(&self, duration_s: f64) -> f64 {
        self.transport.values_inserted as f64 / duration_s
    }
}

/// The loop itself.
pub struct SamplingLoop;

impl SamplingLoop {
    /// Run the configured sampling against a coordinator and shipper.
    /// Returns the report; the shipper's DB receives the points.
    pub fn run(
        config: &SamplingConfig,
        pmcd: &mut Pmcd,
        shipper: &mut Shipper<'_>,
    ) -> SamplingReport {
        // Propagate the sampling frequency to the perfevent agent's noise
        // model (per-read jitter grows with frequency).
        let period = 1.0 / config.freq_hz;
        let mut t_prev = config.start_s;
        let mut total_domain = 0u64;
        let mut domain_counted = false;
        let mut ticks_skipped = 0u64;
        let resilient = shipper.is_resilient();
        // Hoisted self-observability handles (shared with the shipper's
        // registry, so one snapshot covers the whole pipeline).
        let obs = shipper.obs_registry().cloned();
        // Causal tracing: when the registry carries a tracer, every
        // shipped report gets a `pcp.sample` root trace the transport
        // then threads through retries and spill to a terminal status.
        let tracer = obs.as_ref().and_then(|r| r.tracer());
        let tick_counter = obs.as_ref().map(|r| r.counter("pcp.sampler.ticks", &[]));
        let point_counter = obs
            .as_ref()
            .map(|r| r.counter("pcp.sampler.points_fetched", &[]));
        let skip_counter = if resilient {
            obs.as_ref()
                .map(|r| r.counter("pcp.resilience.ticks_skipped", &[]))
        } else {
            None
        };

        for tick in 0..config.ticks() {
            let t_now = config.start_s + (tick + 1) as f64 * period;
            if resilient {
                // Supervise the agents: detect crashed PMDAs, restart
                // them after their backoff elapses.
                pmcd.heartbeat_all(t_now);
                // Adaptive frequency degradation: under sustained loss
                // the shipper suggests sampling every n-th tick only; the
                // freed ticks still drain the spill buffer. Note t_prev is
                // *not* advanced, so the next real fetch covers the whole
                // skipped window (PCP counter semantics).
                let stride = shipper.suggested_stride();
                if stride > 1 && tick % stride != 0 {
                    shipper.idle_tick(t_now);
                    ticks_skipped += 1;
                    if let Some(c) = &skip_counter {
                        c.inc();
                    }
                    continue;
                }
            }
            let points = pmcd.fetch_all(&config.metrics, t_prev, t_now);
            if !domain_counted && !points.is_empty() {
                total_domain = points.iter().map(|p| p.field_count() as u64).sum();
                domain_counted = true;
            }
            if let Some(c) = &tick_counter {
                c.inc();
            }
            if let Some(c) = &point_counter {
                c.add(points.len() as u64);
            }
            for point in points {
                let ctx = tracer
                    .as_ref()
                    .map(|tr| tr.start_trace("pcp.sample", (t_now * 1e9) as u64));
                shipper.ship_traced(t_now, point, config.freq_hz, ctx);
            }
            t_prev = t_now;
        }

        if resilient {
            // One last drain opportunity at the end of the run, so spill
            // left over from a fault that ended near the end can land.
            shipper.idle_tick(config.start_s + config.duration_s);
        }
        // Reports still parked in the spill buffer terminate their trace
        // as `spill_pending` — the trace-side twin of the conservation
        // ledger's pending term.
        shipper.seal_pending_traces(config.start_s + config.duration_s);

        if let Some(registry) = &obs {
            // The loop ran from start_s to the last tick's timestamp on the
            // virtual clock; stamp the span with those endpoints.
            let start_ns = (config.start_s * 1e9).round().max(0.0) as u64;
            let end_ns = (t_prev * 1e9).round().max(0.0) as u64;
            registry.record_span("pcp.sampling", start_ns, end_ns);
        }

        SamplingReport {
            ticks: config.ticks(),
            ticks_skipped,
            expected_values: config.ticks() * total_domain,
            transport: shipper.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmda_linux::LinuxAgent;
    use crate::resilience::ResilienceConfig;
    use pmove_hwsim::network::{FaultKind, FaultSchedule, LinkSpec};
    use pmove_hwsim::MachineSpec;
    use pmove_tsdb::Database;

    fn run(freq: f64, metrics: &[&str]) -> (SamplingReport, u64) {
        let mut pmcd = Pmcd::new();
        pmcd.register(Box::new(LinuxAgent::new(MachineSpec::icl())));
        let db = Database::new("host");
        let mut shipper = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / freq, &["test", "s"]);
        let cfg = SamplingConfig::new(
            metrics.iter().map(|s| s.to_string()).collect(),
            freq,
            0.0,
            10.0,
        );
        let report = SamplingLoop::run(&cfg, &mut pmcd, &mut shipper);
        (report, db.stats().values_inserted)
    }

    #[test]
    fn tick_count_and_expected_values() {
        let cfg = SamplingConfig::new(vec!["m".into()], 2.0, 0.0, 10.0);
        assert_eq!(cfg.ticks(), 20);
        assert_eq!(cfg.expected_values(&[16, 2]), 360);
    }

    #[test]
    fn low_frequency_run_is_lossless() {
        let (report, db_values) = run(2.0, &["kernel.percpu.cpu.idle", "kernel.all.load"]);
        assert_eq!(report.ticks, 20);
        // 20 ticks × (16 + 1) fields
        assert_eq!(report.expected_values, 340);
        assert_eq!(report.transport.values_lost, 0);
        assert_eq!(
            report.transport.values_inserted + report.transport.values_zeroed,
            340
        );
        assert_eq!(db_values, 340);
    }

    #[test]
    fn throughput_accounting() {
        let (report, _) = run(2.0, &["kernel.percpu.cpu.idle"]);
        // 16 fields × 2 Hz = 32 values/s.
        assert!((report.throughput(10.0) - 32.0).abs() < 0.5);
        assert!(report.actual_throughput(10.0) <= report.throughput(10.0));
    }

    #[test]
    fn high_frequency_produces_zeros() {
        let (report, _) = run(32.0, &["kernel.percpu.cpu.idle"]);
        assert!(report.transport.values_zeroed > 0);
        assert!(report.transport.loss_plus_zero_pct() > 10.0);
    }

    #[test]
    #[should_panic(expected = "bad sampling config")]
    fn zero_frequency_rejected() {
        SamplingConfig::new(vec![], 0.0, 0.0, 1.0);
    }

    #[test]
    fn try_new_rejects_bad_numbers_with_typed_errors() {
        assert!(SamplingConfig::try_new(vec![], 0.0, 0.0, 1.0).is_err());
        assert!(SamplingConfig::try_new(vec![], f64::NAN, 0.0, 1.0).is_err());
        assert!(SamplingConfig::try_new(vec![], 2.0, f64::INFINITY, 1.0).is_err());
        assert!(SamplingConfig::try_new(vec![], 2.0, 0.0, -1.0).is_err());
        assert!(SamplingConfig::try_new(vec![], 2.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn observed_run_records_span_and_tick_counters() {
        let mut pmcd = Pmcd::new();
        pmcd.register(Box::new(LinuxAgent::new(MachineSpec::icl())));
        let db = Database::new("host");
        let reg = pmove_obs::Registry::shared();
        let mut shipper =
            Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["obs", "s"]).with_obs(reg.clone());
        let cfg = SamplingConfig::new(vec!["kernel.percpu.cpu.idle".into()], 2.0, 1.0, 10.0);
        let report = SamplingLoop::run(&cfg, &mut pmcd, &mut shipper);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pcp.sampler.ticks", &[]), Some(report.ticks));
        assert_eq!(
            snap.counter("pcp.sampler.points_fetched", &[]),
            Some(report.ticks)
        );
        // The sampling span covers start_s..last tick on the virtual clock.
        let span = snap.span("pcp.sampling").expect("span recorded");
        assert_eq!(span.count, 1);
        assert_eq!(span.last_start_ns, 1_000_000_000);
        assert_eq!(span.last_end_ns, 11_000_000_000);
        // Transport counters share the registry and conserve.
        assert_eq!(
            snap.counter("pcp.transport.values_offered", &[]),
            Some(report.transport.values_offered)
        );
        // Default mode never skips ticks.
        assert_eq!(report.ticks_skipped, 0);
    }

    #[test]
    fn resilient_run_skips_ticks_under_crushed_bandwidth_and_conserves() {
        let mut pmcd = Pmcd::new();
        pmcd.register(Box::new(LinuxAgent::new(MachineSpec::icl())));
        let db = Database::new("host");
        // Bandwidth crushed below a single report for the first 30 s.
        let schedule =
            FaultSchedule::none().with_window(0.0, 30.0, FaultKind::BandwidthDegraded(0.0001));
        let mut shipper = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["resloop", "s"])
            .with_fault_schedule(schedule)
            .with_resilience(ResilienceConfig::default());
        let cfg = SamplingConfig::new(vec!["kernel.percpu.cpu.idle".into()], 2.0, 0.0, 60.0);
        let report = SamplingLoop::run(&cfg, &mut pmcd, &mut shipper);
        assert!(report.ticks_skipped > 0, "stride engaged: {report:?}");
        assert!(report.transport.values_recovered > 0);
        assert!(report.transport.conserved(), "{:?}", report.transport);
    }
}
