//! Shipping sampled reports from the target to the host database.
//!
//! PCP performs *sampling*: there is no buffer or queue holding data points
//! until insertion (paper §V-A). Each sampling tick produces one report per
//! metric; the report must traverse the network and be inserted into the
//! time-series DB before the flow moves on. The shipping path has a finite
//! per-window service capacity in *field values*; offers beyond it are
//! lost, and offers that land close to the edge are delivered late and read
//! as batched zeros. Calibrated so Table III's shapes reproduce: losses
//! grow with sampling frequency × instance-domain size, zeros appear only
//! at high frequency.

use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::noise::NoiseSource;
use pmove_obs::{Counter, Gauge, Registry};
use pmove_tsdb::{Database, Point};
use std::sync::Arc;

/// Outcome of shipping one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipOutcome {
    /// Stored with true values.
    Inserted,
    /// Stored, but as batched zeros (stale read at high frequency).
    InsertedZero,
    /// Lost in transmission.
    Lost,
}

/// Cumulative shipping statistics — the raw material of Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShipperStats {
    /// Reports offered.
    pub reports_offered: u64,
    /// Field values offered.
    pub values_offered: u64,
    /// Field values inserted with true readings.
    pub values_inserted: u64,
    /// Field values inserted as zeros.
    pub values_zeroed: u64,
    /// Field values lost.
    pub values_lost: u64,
    /// Payload bytes that crossed the network.
    pub bytes_shipped: u64,
}

impl ShipperStats {
    /// Loss ratio (%L of Table III).
    pub fn loss_pct(&self) -> f64 {
        if self.values_offered == 0 {
            return 0.0;
        }
        100.0 * self.values_lost as f64 / self.values_offered as f64
    }

    /// Combined loss+zero ratio (L+Z% of Table III).
    pub fn loss_plus_zero_pct(&self) -> f64 {
        if self.values_offered == 0 {
            return 0.0;
        }
        100.0 * (self.values_lost + self.values_zeroed) as f64 / self.values_offered as f64
    }
}

/// Hoisted `pcp.transport.*` metric handles, resolved once when a
/// registry is attached so the per-ship cost is a handful of atomic adds.
struct TransportObs {
    registry: Arc<Registry>,
    reports_offered: Arc<Counter>,
    values_offered: Arc<Counter>,
    values_inserted: Arc<Counter>,
    values_zeroed: Arc<Counter>,
    values_lost: Arc<Counter>,
    bytes_shipped: Arc<Counter>,
    window_fill: Arc<Gauge>,
    loss_pct: Arc<Gauge>,
}

impl TransportObs {
    fn new(registry: Arc<Registry>) -> TransportObs {
        let c = |name: &str| registry.counter(name, &[]);
        TransportObs {
            reports_offered: c("pcp.transport.reports_offered"),
            values_offered: c("pcp.transport.values_offered"),
            values_inserted: c("pcp.transport.values_inserted"),
            values_zeroed: c("pcp.transport.values_zeroed"),
            values_lost: c("pcp.transport.values_lost"),
            bytes_shipped: c("pcp.transport.bytes_shipped"),
            window_fill: registry.gauge("pcp.transport.window_fill", &[]),
            loss_pct: registry.gauge("pcp.transport.loss_pct", &[]),
            registry,
        }
    }
}

/// The unbuffered shipping path: target sampler → network → host DB.
pub struct Shipper<'a> {
    db: &'a Database,
    link: LinkSpec,
    /// Mean end-to-end service capacity, in field values per second.
    pub capacity_values_per_s: f64,
    /// Relative jitter of the per-window capacity.
    pub capacity_jitter: f64,
    window_s: f64,
    current_window: i64,
    values_in_window: f64,
    window_capacity: f64,
    noise: NoiseSource,
    stats: ShipperStats,
    obs: Option<TransportObs>,
}

impl<'a> Shipper<'a> {
    /// Default end-to-end service capacity (values/s) of the paper's host
    /// stack (PCP PDU handling + InfluxDB insert over the 100 Mbit link).
    /// Table III's skx rows saturate around 7–12 k inserted values/s.
    pub const DEFAULT_CAPACITY: f64 = 11_000.0;

    /// New shipper writing into `db` over `link`, with windowed capacity.
    pub fn new(db: &'a Database, link: LinkSpec, window_s: f64, seed_labels: &[&str]) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        Shipper {
            db,
            link,
            capacity_values_per_s: Self::DEFAULT_CAPACITY,
            capacity_jitter: 0.25,
            window_s,
            current_window: i64::MIN,
            values_in_window: 0.0,
            window_capacity: 0.0,
            noise: NoiseSource::from_labels(seed_labels),
            stats: ShipperStats::default(),
            obs: None,
        }
    }

    /// Attach an observability registry; every subsequent [`Shipper::ship`]
    /// updates the `pcp.transport.*` counters and gauges in it.
    pub fn with_obs(mut self, registry: Arc<Registry>) -> Self {
        self.obs = Some(TransportObs::new(registry));
        self
    }

    /// The attached observability registry, if any.
    pub fn obs_registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Probability that an on-time report still reads as batched zeros at
    /// this sampling frequency: 0 at ≤6 Hz, rising toward ~0.4 at 32 Hz
    /// (the stale-read artefact of §V-A).
    pub fn zero_probability(freq_hz: f64) -> f64 {
        if freq_hz <= 6.0 {
            0.0
        } else {
            0.42 * (1.0 - (-(freq_hz - 6.0) / 20.0).exp())
        }
    }

    /// Ship one report (a [`Point`] carrying one field per instance) sampled
    /// at `t` with sampling frequency `freq_hz`.
    pub fn ship(&mut self, t: f64, point: Point, freq_hz: f64) -> ShipOutcome {
        let before = self.stats;
        let outcome = self.ship_inner(t, point, freq_hz);
        if let Some(o) = &self.obs {
            let s = &self.stats;
            o.reports_offered
                .add(s.reports_offered - before.reports_offered);
            o.values_offered
                .add(s.values_offered - before.values_offered);
            o.values_inserted
                .add(s.values_inserted - before.values_inserted);
            o.values_zeroed.add(s.values_zeroed - before.values_zeroed);
            o.values_lost.add(s.values_lost - before.values_lost);
            o.bytes_shipped.add(s.bytes_shipped - before.bytes_shipped);
            let fill = if self.window_capacity > 0.0 {
                self.values_in_window / self.window_capacity
            } else {
                0.0
            };
            o.window_fill.set(fill);
            o.loss_pct.set(s.loss_pct());
        }
        outcome
    }

    fn ship_inner(&mut self, t: f64, point: Point, freq_hz: f64) -> ShipOutcome {
        let values = point.field_count() as u64;
        self.stats.reports_offered += 1;
        self.stats.values_offered += values;

        // Roll the capacity window.
        let w = (t / self.window_s).floor() as i64;
        if w != self.current_window {
            self.current_window = w;
            self.values_in_window = 0.0;
            self.window_capacity = self.capacity_values_per_s
                * self.window_s
                * (1.0 + self.noise.normal(0.0, self.capacity_jitter)).max(0.1);
        }
        self.values_in_window += values as f64;

        if self.values_in_window > self.window_capacity {
            self.stats.values_lost += values;
            return ShipOutcome::Lost;
        }

        self.stats.bytes_shipped += point.wire_size() as u64 + self.link.overhead_bytes as u64;

        // Stale-read zeros at high frequency.
        if self.noise.happens(Self::zero_probability(freq_hz)) {
            let mut zeroed = point.clone();
            for v in zeroed.fields.values_mut() {
                *v = pmove_tsdb::FieldValue::Float(0.0);
            }
            if self.db.write_point(zeroed).is_ok() {
                self.stats.values_zeroed += values;
                return ShipOutcome::InsertedZero;
            }
            self.stats.values_lost += values;
            return ShipOutcome::Lost;
        }

        match self.db.write_point(point) {
            Ok(()) => {
                self.stats.values_inserted += values;
                ShipOutcome::Inserted
            }
            Err(_) => {
                self.stats.values_lost += values;
                ShipOutcome::Lost
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ShipperStats {
        self.stats
    }

    /// The link used.
    pub fn link(&self) -> LinkSpec {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ts: i64, fields: usize) -> Point {
        let mut p = Point::new("perfevent_hwcounters_test")
            .tag("tag", "o1")
            .timestamp(ts);
        for i in 0..fields {
            p = p.field(format!("_cpu{i}"), 5.0 + i as f64);
        }
        p
    }

    #[test]
    fn low_rate_everything_inserted() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["t1"]);
        for i in 0..20 {
            let out = s.ship(i as f64 * 0.5, report(i, 16), 2.0);
            assert_eq!(out, ShipOutcome::Inserted);
        }
        assert_eq!(s.stats().values_inserted, 320);
        assert_eq!(s.stats().loss_pct(), 0.0);
        assert_eq!(db.stats().points_inserted, 20);
    }

    #[test]
    fn overload_loses_values() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t2"]);
        // 88-field reports at 32 Hz × 6 metrics: offered ≈ 16.9k values/s,
        // well over the ~11k capacity.
        let mut t = 0.0;
        for _ in 0..(32 * 10) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 88), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        assert!(st.loss_pct() > 15.0, "loss {}", st.loss_pct());
        assert!(st.loss_plus_zero_pct() > st.loss_pct());
        assert!(st.values_zeroed > 0);
    }

    #[test]
    fn small_domain_low_loss_but_zeros_at_high_freq() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t3"]);
        // icl-like: 16-field reports at 32 Hz × 6 metrics ≈ 3k values/s.
        let mut t = 0.0;
        for _ in 0..(32 * 10) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 16), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        assert!(st.loss_pct() < 8.0, "loss {}", st.loss_pct());
        let zero_frac = 100.0 * st.values_zeroed as f64 / st.values_offered as f64;
        assert!(zero_frac > 20.0, "zeros {zero_frac}");
    }

    #[test]
    fn no_zeros_at_low_frequency() {
        assert_eq!(Shipper::zero_probability(2.0), 0.0);
        assert_eq!(Shipper::zero_probability(6.0), 0.0);
        assert!(Shipper::zero_probability(8.0) > 0.0);
        assert!(Shipper::zero_probability(32.0) > Shipper::zero_probability(8.0));
    }

    #[test]
    fn zeroed_points_store_zero_fields() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 64.0, &["t4"]);
        // Force many ships at very high frequency; some will be zeroed.
        for i in 0..200 {
            s.ship(i as f64 / 64.0, report(i, 4), 64.0);
        }
        assert!(s.stats().values_zeroed > 0);
        let zeros = db.stats().zero_values_inserted;
        assert_eq!(zeros, s.stats().values_zeroed);
        let r = db
            .query("SELECT \"_cpu0\" FROM \"perfevent_hwcounters_test\"")
            .unwrap();
        assert!(r.rows.iter().any(|row| row.values["_cpu0"] == Some(0.0)));
    }

    #[test]
    fn obs_counters_mirror_stats_and_conserve() {
        let db = Database::new("host");
        let reg = Registry::shared();
        let mut s =
            Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t5"]).with_obs(reg.clone());
        assert!(s.obs_registry().is_some());
        let mut t = 0.0;
        for _ in 0..(32 * 5) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 88), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        let snap = reg.snapshot();
        for (name, want) in [
            ("pcp.transport.reports_offered", st.reports_offered),
            ("pcp.transport.values_offered", st.values_offered),
            ("pcp.transport.values_inserted", st.values_inserted),
            ("pcp.transport.values_zeroed", st.values_zeroed),
            ("pcp.transport.values_lost", st.values_lost),
            ("pcp.transport.bytes_shipped", st.bytes_shipped),
        ] {
            assert_eq!(snap.counter(name, &[]), Some(want), "{name}");
        }
        // Conservation holds in the exported counters, not just the stats.
        assert_eq!(
            snap.counter("pcp.transport.values_offered", &[]).unwrap(),
            st.values_inserted + st.values_zeroed + st.values_lost
        );
        assert_eq!(
            snap.gauge("pcp.transport.loss_pct", &[]),
            Some(st.loss_pct())
        );
    }

    #[test]
    fn stats_ratios() {
        let st = ShipperStats {
            reports_offered: 10,
            values_offered: 100,
            values_inserted: 60,
            values_zeroed: 15,
            values_lost: 25,
            bytes_shipped: 1000,
        };
        assert_eq!(st.loss_pct(), 25.0);
        assert_eq!(st.loss_plus_zero_pct(), 40.0);
        assert_eq!(ShipperStats::default().loss_pct(), 0.0);
    }
}
