//! Shipping sampled reports from the target to the host database.
//!
//! PCP performs *sampling*: there is no buffer or queue holding data points
//! until insertion (paper §V-A). Each sampling tick produces one report per
//! metric; the report must traverse the network and be inserted into the
//! time-series DB before the flow moves on. The shipping path has a finite
//! per-window service capacity in *field values*; offers beyond it are
//! lost, and offers that land close to the edge are delivered late and read
//! as batched zeros. Calibrated so Table III's shapes reproduce: losses
//! grow with sampling frequency × instance-domain size, zeros appear only
//! at high frequency.
//!
//! Two opt-in extensions leave that default behaviour bit-identical:
//!
//! * a [`FaultSchedule`] injects link/backend faults on the virtual clock;
//! * a [`ResilienceConfig`] turns the unbuffered path into a self-healing
//!   one (spill buffer, retry/backoff, circuit breaker, gap markers).
//!
//! Conservation invariant, audited by tests under arbitrary fault
//! schedules: `values_offered == values_inserted + values_zeroed +
//! values_lost + values_spill_pending + values_evicted`.

use crate::error::{require_non_negative, require_positive, PcpError};
use crate::resilience::{BreakerState, CircuitBreaker, ResilienceConfig};
use pmove_hwsim::network::{FaultSchedule, FaultState, LinkSpec};
use pmove_hwsim::noise::NoiseSource;
use pmove_obs::{Counter, Gauge, Registry, TraceContext, Tracer};
use pmove_tsdb::{Database, Point};
use std::collections::VecDeque;
use std::sync::Arc;

/// Measurement name of the gap-marker points written on recovery.
pub const GAP_MEASUREMENT: &str = "pmove_gap";

/// Modeled PDU fetch time preceding each ship attempt (ns).
pub(crate) const FETCH_NS: u64 = 8_000;
/// Modeled fixed cost of one delivery attempt (ns).
pub(crate) const ATTEMPT_BASE_NS: u64 = 12_000;
/// Modeled per-field-value cost of one delivery attempt (ns).
const ATTEMPT_PER_VALUE_NS: u64 = 120;
/// Modeled cost of one spill-replay attempt (ns).
pub(crate) const RETRY_NS: u64 = 15_000;

/// A live trace riding on one report: the tracer it belongs to plus the
/// context whose trace the shipper must terminate.
pub(crate) type TraceHandle = (Arc<Tracer>, TraceContext);

/// Upgrade an unsampled trace at a fault site when the tracer's
/// always-sample-on-fault policy asks for it; flag sampled ones.
pub(crate) fn upgrade_on_fault(tr: Option<TraceHandle>, now_ns: u64) -> Option<TraceHandle> {
    tr.map(|(tracer, ctx)| {
        let ctx = tracer.mark_fault(ctx, "pcp.sample", now_ns);
        (tracer, ctx)
    })
}

/// Outcome of shipping one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipOutcome {
    /// Stored with true values.
    Inserted,
    /// Stored, but as batched zeros (stale read at high frequency).
    InsertedZero,
    /// Lost in transmission.
    Lost,
    /// Parked in the resilient spill buffer for later retry.
    Spilled,
}

/// Cumulative shipping statistics — the raw material of Table III, plus
/// the resilient-mode ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShipperStats {
    /// Reports offered.
    pub reports_offered: u64,
    /// Field values offered.
    pub values_offered: u64,
    /// Field values inserted with true readings.
    pub values_inserted: u64,
    /// Field values inserted as zeros.
    pub values_zeroed: u64,
    /// Field values lost.
    pub values_lost: u64,
    /// Payload bytes that crossed the network.
    pub bytes_shipped: u64,
    /// Field values that entered the spill buffer (cumulative).
    pub values_spilled: u64,
    /// Field values currently parked in the spill buffer.
    pub values_spill_pending: u64,
    /// Field values evicted from a full spill buffer (drop-oldest).
    pub values_evicted: u64,
    /// Field values recovered from the spill buffer into the DB.
    pub values_recovered: u64,
    /// Re-send attempts of spilled reports.
    pub retries: u64,
    /// Gap-marker points written on recovery.
    pub gap_markers: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
}

impl ShipperStats {
    /// Field values accounted for by every terminal or parked state. The
    /// conservation invariant is `accounted() == values_offered`.
    pub fn accounted(&self) -> u64 {
        self.values_inserted
            .saturating_add(self.values_zeroed)
            .saturating_add(self.values_lost)
            .saturating_add(self.values_spill_pending)
            .saturating_add(self.values_evicted)
    }

    /// True when no offered value is unaccounted for.
    pub fn conserved(&self) -> bool {
        self.accounted() == self.values_offered
    }

    /// Loss ratio (%L of Table III). Saturating: returns 0 for zero
    /// offered and stays finite at u64 extremes.
    pub fn loss_pct(&self) -> f64 {
        if self.values_offered == 0 {
            return 0.0;
        }
        100.0 * self.values_lost as f64 / self.values_offered as f64
    }

    /// Combined loss+zero ratio (L+Z% of Table III). Uses saturating
    /// addition so adversarial counter values cannot overflow in debug
    /// builds.
    pub fn loss_plus_zero_pct(&self) -> f64 {
        if self.values_offered == 0 {
            return 0.0;
        }
        100.0 * self.values_lost.saturating_add(self.values_zeroed) as f64
            / self.values_offered as f64
    }
}

/// Hoisted `pcp.transport.*` metric handles, resolved once when a
/// registry is attached so the per-ship cost is a handful of atomic adds.
struct TransportObs {
    registry: Arc<Registry>,
    reports_offered: Arc<Counter>,
    values_offered: Arc<Counter>,
    values_inserted: Arc<Counter>,
    values_zeroed: Arc<Counter>,
    values_lost: Arc<Counter>,
    bytes_shipped: Arc<Counter>,
    window_fill: Arc<Gauge>,
    loss_pct: Arc<Gauge>,
}

impl TransportObs {
    fn new(registry: Arc<Registry>) -> TransportObs {
        let c = |name: &str| registry.counter(name, &[]);
        TransportObs {
            reports_offered: c("pcp.transport.reports_offered"),
            values_offered: c("pcp.transport.values_offered"),
            values_inserted: c("pcp.transport.values_inserted"),
            values_zeroed: c("pcp.transport.values_zeroed"),
            values_lost: c("pcp.transport.values_lost"),
            bytes_shipped: c("pcp.transport.bytes_shipped"),
            window_fill: registry.gauge("pcp.transport.window_fill", &[]),
            loss_pct: registry.gauge("pcp.transport.loss_pct", &[]),
            registry,
        }
    }
}

/// Hoisted `pcp.resilience.*` handles, registered only when both a
/// registry and a [`ResilienceConfig`] are attached — so default-mode
/// snapshots carry no resilience series at all.
struct ResilienceObs {
    retries: Arc<Counter>,
    spilled: Arc<Counter>,
    evicted: Arc<Counter>,
    recovered: Arc<Counter>,
    gap_markers: Arc<Counter>,
    breaker_opens: Arc<Counter>,
    spill_pending: Arc<Gauge>,
    breaker_state: Arc<Gauge>,
}

impl ResilienceObs {
    fn new(registry: &Registry) -> ResilienceObs {
        let c = |name: &str| registry.counter(name, &[]);
        ResilienceObs {
            retries: c("pcp.resilience.retries"),
            spilled: c("pcp.resilience.values_spilled"),
            evicted: c("pcp.resilience.values_evicted"),
            recovered: c("pcp.resilience.values_recovered"),
            gap_markers: c("pcp.resilience.gap_markers"),
            breaker_opens: c("pcp.resilience.breaker_opens"),
            spill_pending: registry.gauge("pcp.resilience.spill_pending", &[]),
            breaker_state: registry.gauge("pcp.resilience.breaker_state", &[]),
        }
    }
}

/// One report parked in the spill buffer.
struct SpilledReport {
    point: Point,
    values: u64,
    attempts: u32,
    /// The report's trace, kept open while parked: it terminates when
    /// the entry is recovered, evicted, lost, or sealed at run end.
    trace: Option<TraceHandle>,
}

/// The unbuffered shipping path: target sampler → network → host DB.
pub struct Shipper<'a> {
    db: &'a Database,
    link: LinkSpec,
    /// Mean end-to-end service capacity, in field values per second.
    pub capacity_values_per_s: f64,
    /// Relative jitter of the per-window capacity.
    pub capacity_jitter: f64,
    window_s: f64,
    current_window: i64,
    values_in_window: f64,
    window_capacity: f64,
    noise: NoiseSource,
    stats: ShipperStats,
    obs: Option<TransportObs>,
    // --- fault injection + resilience (inert by default) ---
    fault: Option<FaultSchedule>,
    rescfg: Option<ResilienceConfig>,
    robs: Option<ResilienceObs>,
    spill: VecDeque<SpilledReport>,
    breaker: CircuitBreaker,
    backoff_s: f64,
    next_retry_s: f64,
    outage_since: Option<f64>,
    window_offered: u64,
    window_failed: u64,
    lossy_windows: u32,
    clean_windows: u32,
    stride: u64,
}

impl<'a> Shipper<'a> {
    /// Default end-to-end service capacity (values/s) of the paper's host
    /// stack (PCP PDU handling + InfluxDB insert over the 100 Mbit link).
    /// Table III's skx rows saturate around 7–12 k inserted values/s.
    pub const DEFAULT_CAPACITY: f64 = 11_000.0;

    /// New shipper writing into `db` over `link`, with windowed capacity.
    pub fn new(db: &'a Database, link: LinkSpec, window_s: f64, seed_labels: &[&str]) -> Self {
        Self::try_new(db, link, window_s, seed_labels).expect("window must be positive")
    }

    /// Like [`Shipper::new`] but returns a typed error for a non-finite
    /// or non-positive window instead of panicking.
    pub fn try_new(
        db: &'a Database,
        link: LinkSpec,
        window_s: f64,
        seed_labels: &[&str],
    ) -> Result<Self, PcpError> {
        require_positive("window_s", window_s)?;
        Ok(Shipper {
            db,
            link,
            capacity_values_per_s: Self::DEFAULT_CAPACITY,
            capacity_jitter: 0.25,
            window_s,
            current_window: i64::MIN,
            values_in_window: 0.0,
            window_capacity: 0.0,
            noise: NoiseSource::from_labels(seed_labels),
            stats: ShipperStats::default(),
            obs: None,
            fault: None,
            rescfg: None,
            robs: None,
            spill: VecDeque::new(),
            breaker: CircuitBreaker::new(1, 0.0),
            backoff_s: 0.0,
            next_retry_s: f64::NEG_INFINITY,
            outage_since: None,
            window_offered: 0,
            window_failed: 0,
            lossy_windows: 0,
            clean_windows: 0,
            stride: 1,
        })
    }

    /// Validate and set the capacity model (the fields are public for
    /// ablation sweeps; this is the checked path).
    pub fn set_capacity(&mut self, values_per_s: f64, jitter: f64) -> Result<(), PcpError> {
        require_positive("capacity_values_per_s", values_per_s)?;
        require_non_negative("capacity_jitter", jitter)?;
        self.capacity_values_per_s = values_per_s;
        self.capacity_jitter = jitter;
        Ok(())
    }

    /// Attach an observability registry; every subsequent [`Shipper::ship`]
    /// updates the `pcp.transport.*` counters and gauges in it.
    pub fn with_obs(mut self, registry: Arc<Registry>) -> Self {
        self.obs = Some(TransportObs::new(registry));
        self.ensure_resilience_obs();
        self
    }

    /// Attach a fault schedule evaluated against the virtual clock on
    /// every ship. An empty schedule is behaviour-identical to none.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.set_fault_schedule(schedule);
        self
    }

    /// Attach/replace the fault schedule in place.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.fault = Some(schedule);
    }

    /// Enable the resilient transport mode. Panics on an invalid config;
    /// use [`Shipper::try_with_resilience`] for the typed-error path.
    pub fn with_resilience(self, cfg: ResilienceConfig) -> Self {
        self.try_with_resilience(cfg)
            .expect("bad resilience config")
    }

    /// Enable the resilient transport mode, validating the config.
    pub fn try_with_resilience(mut self, cfg: ResilienceConfig) -> Result<Self, PcpError> {
        cfg.validate()?;
        self.breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_s);
        self.rescfg = Some(cfg);
        self.ensure_resilience_obs();
        Ok(self)
    }

    fn ensure_resilience_obs(&mut self) {
        if self.robs.is_none() {
            if let (Some(o), Some(_)) = (&self.obs, &self.rescfg) {
                self.robs = Some(ResilienceObs::new(&o.registry));
            }
        }
    }

    /// True when a [`ResilienceConfig`] is attached.
    pub fn is_resilient(&self) -> bool {
        self.rescfg.is_some()
    }

    /// Current circuit-breaker state (always `Closed` in default mode).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Tick stride the adaptive degradation currently suggests: sample
    /// every `n`-th tick. Always 1 in default mode.
    pub fn suggested_stride(&self) -> u64 {
        self.stride
    }

    /// The attached observability registry, if any.
    pub fn obs_registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Probability that an on-time report still reads as batched zeros at
    /// this sampling frequency: 0 at ≤6 Hz, rising toward ~0.4 at 32 Hz
    /// (the stale-read artefact of §V-A).
    pub fn zero_probability(freq_hz: f64) -> f64 {
        if freq_hz <= 6.0 {
            0.0
        } else {
            0.42 * (1.0 - (-(freq_hz - 6.0) / 20.0).exp())
        }
    }

    /// Ship one report (a [`Point`] carrying one field per instance) sampled
    /// at `t` with sampling frequency `freq_hz`.
    pub fn ship(&mut self, t: f64, point: Point, freq_hz: f64) -> ShipOutcome {
        self.ship_traced(t, point, freq_hz, None)
    }

    /// Like [`Shipper::ship`] but carrying an optional trace context.
    /// The shipper owns the trace from here on: every terminal fate —
    /// inserted, zeroed, lost, evicted, recovered, spill_pending —
    /// finishes the trace with a matching status, and fault paths
    /// upgrade unsampled traces when the tracer's `sample_on_fault`
    /// policy is set. The context survives spill parking and replays, so
    /// one tree shows the report's whole journey.
    pub fn ship_traced(
        &mut self,
        t: f64,
        point: Point,
        freq_hz: f64,
        ctx: Option<TraceContext>,
    ) -> ShipOutcome {
        let before = self.stats;
        let tr = ctx.and_then(|c| {
            self.obs
                .as_ref()
                .and_then(|o| o.registry.tracer())
                .map(|tracer| (tracer, c))
        });
        let outcome = self.ship_inner(t, point, freq_hz, tr);
        self.stats.breaker_opens = self.breaker.opens;
        self.export_obs(before);
        outcome
    }

    /// A sampling tick passed without a ship (adaptive degradation is
    /// skipping ticks): give the resilient path a chance to drain its
    /// spill buffer. No-op in default mode.
    pub fn idle_tick(&mut self, t: f64) {
        if self.rescfg.is_none() {
            return;
        }
        let before = self.stats;
        self.drain_spill(t);
        self.stats.breaker_opens = self.breaker.opens;
        self.export_obs(before);
    }

    fn export_obs(&mut self, before: ShipperStats) {
        let s = self.stats;
        if let Some(o) = &self.obs {
            o.reports_offered
                .add(s.reports_offered - before.reports_offered);
            o.values_offered
                .add(s.values_offered - before.values_offered);
            o.values_inserted
                .add(s.values_inserted - before.values_inserted);
            o.values_zeroed.add(s.values_zeroed - before.values_zeroed);
            o.values_lost.add(s.values_lost - before.values_lost);
            o.bytes_shipped.add(s.bytes_shipped - before.bytes_shipped);
            let fill = if self.window_capacity > 0.0 {
                self.values_in_window / self.window_capacity
            } else {
                0.0
            };
            o.window_fill.set(fill);
            o.loss_pct.set(s.loss_pct());
        }
        if let Some(r) = &self.robs {
            r.retries.add(s.retries - before.retries);
            r.spilled.add(s.values_spilled - before.values_spilled);
            r.evicted.add(s.values_evicted - before.values_evicted);
            r.recovered
                .add(s.values_recovered - before.values_recovered);
            r.gap_markers.add(s.gap_markers - before.gap_markers);
            r.breaker_opens.add(s.breaker_opens - before.breaker_opens);
            r.spill_pending.set(s.values_spill_pending as f64);
            r.breaker_state.set(match self.breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 1.0,
                BreakerState::Open => 2.0,
            });
        }
    }

    fn fault_state_at(&self, t: f64) -> FaultState {
        self.fault
            .as_ref()
            .map(|f| f.state_at(t))
            .unwrap_or_else(FaultState::healthy)
    }

    /// Roll the capacity window; in resilient mode also close the books
    /// on the previous window for adaptive degradation.
    fn roll_window(&mut self, t: f64) {
        let w = (t / self.window_s).floor() as i64;
        if w != self.current_window {
            self.evaluate_window();
            self.current_window = w;
            self.values_in_window = 0.0;
            self.window_capacity = self.capacity_values_per_s
                * self.window_s
                * (1.0 + self.noise.normal(0.0, self.capacity_jitter)).max(0.1);
        }
    }

    /// Adaptive frequency degradation: after `degrade_windows` consecutive
    /// lossy windows the suggested tick stride doubles (capped); after as
    /// many clean windows it halves back toward 1.
    fn evaluate_window(&mut self) {
        let Some(cfg) = self.rescfg else { return };
        if self.window_offered == 0 {
            return;
        }
        let loss = 100.0 * self.window_failed as f64 / self.window_offered as f64;
        if loss >= cfg.degrade_loss_pct {
            self.clean_windows = 0;
            self.lossy_windows += 1;
            if self.lossy_windows >= cfg.degrade_windows {
                self.lossy_windows = 0;
                self.stride = (self.stride * 2).min(cfg.max_stride);
            }
        } else {
            self.lossy_windows = 0;
            self.clean_windows += 1;
            if self.clean_windows >= cfg.degrade_windows {
                self.clean_windows = 0;
                self.stride = (self.stride / 2).max(1);
            }
        }
        self.window_offered = 0;
        self.window_failed = 0;
    }

    fn ship_inner(
        &mut self,
        t: f64,
        point: Point,
        freq_hz: f64,
        tr: Option<TraceHandle>,
    ) -> ShipOutcome {
        let values = point.field_count() as u64;
        self.stats.reports_offered += 1;
        self.stats.values_offered += values;
        let t_ns = (t * 1e9) as u64;

        let fault = self.fault_state_at(t);
        if self.rescfg.is_some() {
            self.drain_spill(t);
        }

        // Roll the capacity window.
        self.roll_window(t);
        self.window_offered += values;
        self.values_in_window += values as f64;

        // Link down (partition / flap): nothing crosses.
        if !fault.link_up {
            return self.fail_or_spill(t, point, values, tr, "link_down");
        }

        // Windowed service capacity, degraded by active faults.
        if self.values_in_window > self.window_capacity * fault.capacity_factor {
            return self.fail_or_spill(t, point, values, tr, "over_capacity");
        }

        self.stats.bytes_shipped += point.wire_size() as u64 + self.link.overhead_bytes as u64;

        // Stale-read zeros at high frequency. (Drawn here so the noise
        // stream is bit-identical to the pre-fault-injection code.)
        let read_zero = self.noise.happens(Self::zero_probability(freq_hz));

        // DB path: circuit breaker, then backend brown-out.
        if self.rescfg.is_some() && !self.breaker.allow(t) {
            return self.fail_or_spill(t, point, values, tr, "breaker_open");
        }
        if fault.backend_availability < 1.0 && !self.noise.happens(fault.backend_availability) {
            if self.rescfg.is_some() {
                self.breaker.record_failure(t);
            }
            return self.fail_or_spill(t, point, values, tr, "backend_down");
        }
        if self.rescfg.is_some() {
            self.breaker.record_success();
        }

        if read_zero {
            let mut zeroed = point.clone();
            for v in zeroed.fields.values_mut() {
                *v = pmove_tsdb::FieldValue::Float(0.0);
            }
            let (ok, end_ns) = self.deliver(t_ns, zeroed, values, &tr);
            if ok {
                self.stats.values_zeroed += values;
                self.note_success(t);
                if let Some((tracer, ctx)) = &tr {
                    tracer.finish_trace(*ctx, end_ns, "zeroed");
                }
                return ShipOutcome::InsertedZero;
            }
            self.stats.values_lost += values;
            if let Some((tracer, ctx)) = upgrade_on_fault(tr, t_ns) {
                tracer.finish_trace(ctx, end_ns, "lost");
            }
            return ShipOutcome::Lost;
        }

        let (ok, end_ns) = self.deliver(t_ns, point, values, &tr);
        if ok {
            self.stats.values_inserted += values;
            self.note_success(t);
            if let Some((tracer, ctx)) = &tr {
                tracer.finish_trace(*ctx, end_ns, "inserted");
            }
            ShipOutcome::Inserted
        } else {
            self.stats.values_lost += values;
            if let Some((tracer, ctx)) = upgrade_on_fault(tr, t_ns) {
                tracer.finish_trace(ctx, end_ns, "lost");
            }
            ShipOutcome::Lost
        }
    }

    /// Write `point` to the DB, laying out the modeled fetch + attempt +
    /// ingest spans under the trace when one is attached. Returns whether
    /// the write landed plus the modeled end timestamp.
    fn deliver(
        &self,
        t_ns: u64,
        point: Point,
        values: u64,
        tr: &Option<TraceHandle>,
    ) -> (bool, u64) {
        match tr {
            Some((tracer, ctx)) if ctx.sampled => {
                let fetch = tracer.child(*ctx, "pcp.fetch", t_ns);
                tracer.end_span(fetch, t_ns + FETCH_NS);
                let att_start = t_ns + FETCH_NS;
                let att = tracer.child(*ctx, "pcp.ship_attempt", att_start);
                let wire_end = att_start + ATTEMPT_BASE_NS + ATTEMPT_PER_VALUE_NS * values;
                let (res, ingest_end) = self.db.write_point_traced(point, tracer, att, wire_end);
                let end_ns = ingest_end.max(wire_end);
                if res.is_ok() {
                    tracer.end_span(att, end_ns);
                } else {
                    tracer.end_span_status(att, end_ns, "db_rejected");
                }
                (res.is_ok(), end_ns)
            }
            _ => {
                let end_ns = t_ns + FETCH_NS + ATTEMPT_BASE_NS + ATTEMPT_PER_VALUE_NS * values;
                (self.db.write_point(point).is_ok(), end_ns)
            }
        }
    }

    /// A report could not be delivered at `t`. Default mode: lost, as the
    /// paper measures. Resilient mode: park it in the bounded spill
    /// buffer, evicting the oldest entries when full.
    fn fail_or_spill(
        &mut self,
        t: f64,
        point: Point,
        values: u64,
        tr: Option<TraceHandle>,
        reason: &str,
    ) -> ShipOutcome {
        let t_ns = (t * 1e9) as u64;
        // A failed delivery is a fault site: upgrade unsampled traces so
        // the flight recorder always holds the interesting journeys.
        let tr = upgrade_on_fault(tr, t_ns);
        if let Some((tracer, ctx)) = &tr {
            let att = tracer.child(*ctx, "pcp.ship_attempt", t_ns);
            tracer.end_span_status(att, t_ns + ATTEMPT_BASE_NS, reason);
        }
        let Some(cfg) = self.rescfg else {
            self.stats.values_lost += values;
            if let Some((tracer, ctx)) = &tr {
                tracer.finish_trace(*ctx, t_ns + ATTEMPT_BASE_NS, "lost");
            }
            return ShipOutcome::Lost;
        };
        self.window_failed += values;
        if self.outage_since.is_none() {
            self.outage_since = Some(t);
        }
        if values > cfg.spill_capacity_values {
            // Could never fit; count it lost rather than churn the buffer.
            self.stats.values_lost += values;
            if let Some((tracer, ctx)) = &tr {
                tracer.finish_trace(*ctx, t_ns + ATTEMPT_BASE_NS, "lost");
            }
            return ShipOutcome::Lost;
        }
        while self.stats.values_spill_pending + values > cfg.spill_capacity_values {
            let old = self.spill.pop_front().expect("pending implies entries");
            self.stats.values_spill_pending -= old.values;
            self.stats.values_evicted += old.values;
            if let Some((tracer, ctx)) = old.trace {
                tracer.finish_trace(ctx, t_ns, "evicted");
            }
        }
        if let Some((tracer, ctx)) = &tr {
            let park = tracer.child(*ctx, "pcp.spill_park", t_ns + ATTEMPT_BASE_NS);
            tracer.end_span(park, t_ns + ATTEMPT_BASE_NS);
        }
        self.spill.push_back(SpilledReport {
            point,
            values,
            attempts: 0,
            trace: tr,
        });
        self.stats.values_spilled += values;
        self.stats.values_spill_pending += values;
        ShipOutcome::Spilled
    }

    /// Try to replay spilled reports, oldest first, respecting the retry
    /// backoff, the circuit breaker, link state, and window capacity.
    fn drain_spill(&mut self, t: f64) {
        let Some(cfg) = self.rescfg else { return };
        if self.spill.is_empty() || t < self.next_retry_s {
            return;
        }
        let fault = self.fault_state_at(t);
        if !fault.link_up || !self.breaker.allow(t) {
            return;
        }
        self.roll_window(t);
        let t_ns = (t * 1e9) as u64;
        while let Some(front) = self.spill.front() {
            if self.values_in_window + front.values as f64
                > self.window_capacity * fault.capacity_factor
            {
                break;
            }
            self.stats.retries += 1;
            let backend_ok =
                fault.backend_availability >= 1.0 || self.noise.happens(fault.backend_availability);
            if !backend_ok {
                self.breaker.record_failure(t);
                let front = self.spill.front_mut().expect("checked non-empty");
                front.attempts += 1;
                if let Some((tracer, ctx)) = &front.trace {
                    let retry = tracer.child(*ctx, "pcp.retry", t_ns);
                    tracer.end_span_status(retry, t_ns + RETRY_NS, "backend_down");
                }
                if front.attempts >= cfg.max_retries {
                    let dead = self.spill.pop_front().expect("checked non-empty");
                    self.stats.values_spill_pending -= dead.values;
                    self.stats.values_lost += dead.values;
                    if let Some((tracer, ctx)) = dead.trace {
                        tracer.finish_trace(ctx, t_ns + RETRY_NS, "lost");
                    }
                }
                // Capped exponential backoff with deterministic jitter.
                self.backoff_s =
                    (self.backoff_s * 2.0).clamp(cfg.backoff_base_s, cfg.backoff_cap_s);
                let jitter = 1.0 + cfg.backoff_jitter * (self.noise.uniform() - 0.5);
                self.next_retry_s = t + self.backoff_s * jitter;
                return;
            }
            self.breaker.record_success();
            let entry = self.spill.pop_front().expect("checked non-empty");
            self.values_in_window += entry.values as f64;
            self.stats.values_spill_pending -= entry.values;
            self.stats.bytes_shipped +=
                entry.point.wire_size() as u64 + self.link.overhead_bytes as u64;
            match &entry.trace {
                Some((tracer, ctx)) if ctx.sampled => {
                    let retry = tracer.child(*ctx, "pcp.retry", t_ns);
                    let (res, ingest_end) =
                        self.db
                            .write_point_traced(entry.point, tracer, retry, t_ns + RETRY_NS);
                    let end_ns = ingest_end.max(t_ns + RETRY_NS);
                    tracer.end_span(retry, end_ns);
                    if res.is_ok() {
                        self.stats.values_inserted += entry.values;
                        self.stats.values_recovered += entry.values;
                        tracer.finish_trace(*ctx, end_ns, "recovered");
                    } else {
                        self.stats.values_lost += entry.values;
                        tracer.finish_trace(*ctx, end_ns, "lost");
                    }
                }
                _ => {
                    let res = self.db.write_point(entry.point);
                    if res.is_ok() {
                        self.stats.values_inserted += entry.values;
                        self.stats.values_recovered += entry.values;
                    } else {
                        self.stats.values_lost += entry.values;
                    }
                    if let Some((tracer, ctx)) = entry.trace {
                        let status = if res.is_ok() { "recovered" } else { "lost" };
                        tracer.finish_trace(ctx, t_ns + RETRY_NS, status);
                    }
                }
            }
            self.backoff_s = 0.0;
            self.next_retry_s = t;
            self.note_success(t);
        }
    }

    /// Close the trace of every report still parked in the spill buffer
    /// with status `spill_pending` — called at the end of a run so no
    /// trace is left open when the flight recorder is read.
    pub fn seal_pending_traces(&mut self, t: f64) {
        let t_ns = (t * 1e9) as u64;
        for entry in &mut self.spill {
            if let Some((tracer, ctx)) = entry.trace.take() {
                tracer.finish_trace(ctx, t_ns, "spill_pending");
            }
        }
    }

    /// First successful insert after an outage: write one gap-marker
    /// point covering `[outage_start, t)` so queries can distinguish
    /// "lost" from "not sampled".
    fn note_success(&mut self, t: f64) {
        let Some(cfg) = self.rescfg else { return };
        if let Some(start) = self.outage_since.take() {
            if cfg.gap_markers {
                let gap = Point::new(GAP_MEASUREMENT)
                    .timestamp((t * 1e9) as i64)
                    .field("gap_start_s", start)
                    .field("gap_end_s", t);
                if self.db.write_point(gap).is_ok() {
                    self.stats.gap_markers += 1;
                }
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ShipperStats {
        self.stats
    }

    /// The link used.
    pub fn link(&self) -> LinkSpec {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_hwsim::network::FaultKind;

    fn report(ts: i64, fields: usize) -> Point {
        let mut p = Point::new("perfevent_hwcounters_test")
            .tag("tag", "o1")
            .timestamp(ts);
        for i in 0..fields {
            p = p.field(format!("_cpu{i}"), 5.0 + i as f64);
        }
        p
    }

    #[test]
    fn low_rate_everything_inserted() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["t1"]);
        for i in 0..20 {
            let out = s.ship(i as f64 * 0.5, report(i, 16), 2.0);
            assert_eq!(out, ShipOutcome::Inserted);
        }
        assert_eq!(s.stats().values_inserted, 320);
        assert_eq!(s.stats().loss_pct(), 0.0);
        assert_eq!(db.stats().points_inserted, 20);
    }

    #[test]
    fn overload_loses_values() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t2"]);
        // 88-field reports at 32 Hz × 6 metrics: offered ≈ 16.9k values/s,
        // well over the ~11k capacity.
        let mut t = 0.0;
        for _ in 0..(32 * 10) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 88), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        assert!(st.loss_pct() > 15.0, "loss {}", st.loss_pct());
        assert!(st.loss_plus_zero_pct() > st.loss_pct());
        assert!(st.values_zeroed > 0);
    }

    #[test]
    fn small_domain_low_loss_but_zeros_at_high_freq() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t3"]);
        // icl-like: 16-field reports at 32 Hz × 6 metrics ≈ 3k values/s.
        let mut t = 0.0;
        for _ in 0..(32 * 10) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 16), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        assert!(st.loss_pct() < 8.0, "loss {}", st.loss_pct());
        let zero_frac = 100.0 * st.values_zeroed as f64 / st.values_offered as f64;
        assert!(zero_frac > 20.0, "zeros {zero_frac}");
    }

    #[test]
    fn no_zeros_at_low_frequency() {
        assert_eq!(Shipper::zero_probability(2.0), 0.0);
        assert_eq!(Shipper::zero_probability(6.0), 0.0);
        assert!(Shipper::zero_probability(8.0) > 0.0);
        assert!(Shipper::zero_probability(32.0) > Shipper::zero_probability(8.0));
    }

    #[test]
    fn zeroed_points_store_zero_fields() {
        let db = Database::new("host");
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 64.0, &["t4"]);
        // Force many ships at very high frequency; some will be zeroed.
        for i in 0..200 {
            s.ship(i as f64 / 64.0, report(i, 4), 64.0);
        }
        assert!(s.stats().values_zeroed > 0);
        let zeros = db.stats().zero_values_inserted;
        assert_eq!(zeros, s.stats().values_zeroed);
        let r = db
            .query("SELECT \"_cpu0\" FROM \"perfevent_hwcounters_test\"")
            .unwrap();
        assert!(r.rows.iter().any(|row| row.values["_cpu0"] == Some(0.0)));
    }

    #[test]
    fn obs_counters_mirror_stats_and_conserve() {
        let db = Database::new("host");
        let reg = Registry::shared();
        let mut s =
            Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["t5"]).with_obs(reg.clone());
        assert!(s.obs_registry().is_some());
        let mut t = 0.0;
        for _ in 0..(32 * 5) {
            for m in 0..6 {
                s.ship(t, report((t * 1e9) as i64 + m, 88), 32.0);
            }
            t += 1.0 / 32.0;
        }
        let st = s.stats();
        let snap = reg.snapshot();
        for (name, want) in [
            ("pcp.transport.reports_offered", st.reports_offered),
            ("pcp.transport.values_offered", st.values_offered),
            ("pcp.transport.values_inserted", st.values_inserted),
            ("pcp.transport.values_zeroed", st.values_zeroed),
            ("pcp.transport.values_lost", st.values_lost),
            ("pcp.transport.bytes_shipped", st.bytes_shipped),
        ] {
            assert_eq!(snap.counter(name, &[]), Some(want), "{name}");
        }
        // Conservation holds in the exported counters, not just the stats.
        assert_eq!(
            snap.counter("pcp.transport.values_offered", &[]).unwrap(),
            st.values_inserted + st.values_zeroed + st.values_lost
        );
        assert_eq!(
            snap.gauge("pcp.transport.loss_pct", &[]),
            Some(st.loss_pct())
        );
        // Default mode registers no resilience series at all.
        assert!(snap.counter("pcp.resilience.retries", &[]).is_none());
    }

    #[test]
    fn stats_ratios() {
        let st = ShipperStats {
            reports_offered: 10,
            values_offered: 100,
            values_inserted: 60,
            values_zeroed: 15,
            values_lost: 25,
            bytes_shipped: 1000,
            ..ShipperStats::default()
        };
        assert_eq!(st.loss_pct(), 25.0);
        assert_eq!(st.loss_plus_zero_pct(), 40.0);
        assert_eq!(ShipperStats::default().loss_pct(), 0.0);
    }

    #[test]
    fn stats_ratios_zero_offered_and_overflow_edges() {
        // Zero offered: both ratios must be 0, not NaN.
        let empty = ShipperStats::default();
        assert_eq!(empty.loss_pct(), 0.0);
        assert_eq!(empty.loss_plus_zero_pct(), 0.0);
        assert!(empty.conserved());
        // u64 extremes: the sum lost+zeroed would overflow with plain `+`;
        // the saturating path must stay finite and ≤ ~200 %.
        let extreme = ShipperStats {
            values_offered: u64::MAX,
            values_lost: u64::MAX,
            values_zeroed: u64::MAX,
            ..ShipperStats::default()
        };
        let pct = extreme.loss_plus_zero_pct();
        assert!(pct.is_finite());
        assert!((99.0..=101.0).contains(&pct), "saturated pct {pct}");
        assert!(extreme.loss_pct().is_finite());
        // accounted() saturates instead of wrapping.
        assert_eq!(extreme.accounted(), u64::MAX);
    }

    #[test]
    fn invalid_inputs_rejected_with_typed_errors() {
        let db = Database::new("host");
        assert!(Shipper::try_new(&db, LinkSpec::mbit_100(), 0.0, &["v"]).is_err());
        assert!(Shipper::try_new(&db, LinkSpec::mbit_100(), f64::NAN, &["v"]).is_err());
        let mut s = Shipper::try_new(&db, LinkSpec::mbit_100(), 0.5, &["v"]).unwrap();
        assert!(s.set_capacity(f64::INFINITY, 0.1).is_err());
        assert!(s.set_capacity(-5.0, 0.1).is_err());
        assert!(s.set_capacity(1000.0, f64::NAN).is_err());
        assert!(s.set_capacity(1000.0, 0.1).is_ok());
        assert_eq!(s.capacity_values_per_s, 1000.0);
        let bad = ResilienceConfig {
            backoff_base_s: -1.0,
            ..ResilienceConfig::default()
        };
        assert!(s.try_with_resilience(bad).is_err());
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_to_none() {
        let run = |with_schedule: bool| {
            let db = Database::new("host");
            let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["ident"]);
            if with_schedule {
                s.set_fault_schedule(FaultSchedule::none());
            }
            let mut t = 0.0;
            for _ in 0..(32 * 5) {
                for m in 0..6 {
                    s.ship(t, report((t * 1e9) as i64 + m, 88), 32.0);
                }
                t += 1.0 / 32.0;
            }
            s.stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn link_down_without_resilience_loses_everything() {
        let db = Database::new("host");
        let schedule = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
        let mut s =
            Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["down"]).with_fault_schedule(schedule);
        for i in 0..10 {
            assert_eq!(s.ship(i as f64 * 0.5, report(i, 8), 2.0), ShipOutcome::Lost);
        }
        let st = s.stats();
        assert_eq!(st.values_lost, 80);
        assert_eq!(st.values_inserted, 0);
        assert!(st.conserved());
        assert_eq!(db.stats().points_inserted, 0);
    }

    #[test]
    fn resilient_mode_spills_during_outage_and_recovers_after() {
        let db = Database::new("host");
        // Link down for the first 5 s, healthy afterwards.
        let schedule = FaultSchedule::none().with_window(0.0, 5.0, FaultKind::LinkDown);
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["res1"])
            .with_fault_schedule(schedule)
            .with_resilience(ResilienceConfig::default());
        let mut t = 0.25;
        let mut i = 0;
        while t < 10.0 {
            let out = s.ship(t, report(i, 8), 2.0);
            if t < 5.0 {
                assert_eq!(out, ShipOutcome::Spilled, "t={t}");
            }
            i += 1;
            t += 0.5;
        }
        let st = s.stats();
        assert!(st.values_spilled > 0);
        assert!(st.values_recovered > 0, "spill drained after recovery");
        assert_eq!(st.values_spill_pending, 0, "fully drained");
        assert_eq!(st.values_lost, 0);
        assert!(st.conserved(), "{st:?}");
        // Exactly one outage → exactly one gap marker, stored in the DB.
        assert_eq!(st.gap_markers, 1);
        let gaps = db
            .query(&format!("SELECT \"gap_end_s\" FROM \"{GAP_MEASUREMENT}\""))
            .unwrap();
        assert_eq!(gaps.rows.len(), 1);
    }

    #[test]
    fn spill_buffer_evicts_oldest_when_full() {
        let db = Database::new("host");
        let schedule = FaultSchedule::none().with_window(0.0, 1000.0, FaultKind::LinkDown);
        let cfg = ResilienceConfig {
            spill_capacity_values: 32, // room for 4 reports of 8 values
            ..ResilienceConfig::default()
        };
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["res2"])
            .with_fault_schedule(schedule)
            .with_resilience(cfg);
        for i in 0..10 {
            s.ship(i as f64 * 0.5, report(i, 8), 2.0);
        }
        let st = s.stats();
        assert_eq!(st.values_spilled, 80);
        assert_eq!(st.values_spill_pending, 32);
        assert_eq!(st.values_evicted, 48);
        assert!(st.conserved(), "{st:?}");
    }

    #[test]
    fn brownout_opens_breaker_and_resilient_mode_conserves() {
        let db = Database::new("host");
        // Hard brown-out: backend rejects every write for 20 s.
        let schedule =
            FaultSchedule::none().with_window(0.0, 20.0, FaultKind::BackendBrownout(0.0));
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["res3"])
            .with_fault_schedule(schedule)
            .with_resilience(ResilienceConfig::default());
        let mut t = 0.25;
        let mut i = 0;
        while t < 30.0 {
            s.ship(t, report(i, 8), 2.0);
            i += 1;
            t += 0.5;
        }
        let st = s.stats();
        assert!(st.breaker_opens >= 1, "breaker tripped: {st:?}");
        assert!(st.retries > 0);
        assert!(st.values_recovered > 0, "drained after the brown-out");
        assert!(st.conserved(), "{st:?}");
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn sustained_loss_degrades_stride_and_recovery_restores_it() {
        let db = Database::new("host");
        // Bandwidth crushed to 0.1 % for 60 s (per-window capacity below a
        // single 16-value report), then healthy.
        let schedule =
            FaultSchedule::none().with_window(0.0, 60.0, FaultKind::BandwidthDegraded(0.001));
        let cfg = ResilienceConfig {
            spill_capacity_values: 64,
            ..ResilienceConfig::default()
        };
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["res4"])
            .with_fault_schedule(schedule)
            .with_resilience(cfg);
        assert_eq!(s.suggested_stride(), 1);
        let mut t = 0.25;
        let mut i = 0;
        while t < 60.0 {
            s.ship(t, report(i, 16), 2.0);
            i += 1;
            t += 0.5;
        }
        assert!(s.suggested_stride() > 1, "stride degraded under loss");
        while t < 140.0 {
            s.ship(t, report(i, 16), 2.0);
            i += 1;
            t += 0.5;
        }
        assert_eq!(s.suggested_stride(), 1, "stride recovered");
        assert!(s.stats().conserved(), "{:?}", s.stats());
    }

    #[test]
    fn resilience_obs_exports_counters_and_gauges() {
        let db = Database::new("host");
        let reg = Registry::shared();
        let schedule = FaultSchedule::none().with_window(0.0, 5.0, FaultKind::LinkDown);
        let mut s = Shipper::new(&db, LinkSpec::mbit_100(), 0.5, &["res5"])
            .with_obs(reg.clone())
            .with_fault_schedule(schedule)
            .with_resilience(ResilienceConfig::default());
        let mut t = 0.25;
        let mut i = 0;
        while t < 10.0 {
            s.ship(t, report(i, 8), 2.0);
            i += 1;
            t += 0.5;
        }
        let st = s.stats();
        let snap = reg.snapshot();
        for (name, want) in [
            ("pcp.resilience.values_spilled", st.values_spilled),
            ("pcp.resilience.values_evicted", st.values_evicted),
            ("pcp.resilience.values_recovered", st.values_recovered),
            ("pcp.resilience.retries", st.retries),
            ("pcp.resilience.gap_markers", st.gap_markers),
            ("pcp.resilience.breaker_opens", st.breaker_opens),
        ] {
            assert_eq!(snap.counter(name, &[]), Some(want), "{name}");
        }
        assert_eq!(
            snap.gauge("pcp.resilience.spill_pending", &[]),
            Some(st.values_spill_pending as f64)
        );
        assert_eq!(snap.gauge("pcp.resilience.breaker_state", &[]), Some(0.0));
        // Conservation holds across transport + resilience counters.
        let offered = snap.counter("pcp.transport.values_offered", &[]).unwrap();
        let inserted = snap.counter("pcp.transport.values_inserted", &[]).unwrap();
        let zeroed = snap.counter("pcp.transport.values_zeroed", &[]).unwrap();
        let lost = snap.counter("pcp.transport.values_lost", &[]).unwrap();
        let evicted = snap.counter("pcp.resilience.values_evicted", &[]).unwrap();
        assert_eq!(
            offered,
            inserted + zeroed + lost + evicted + st.values_spill_pending
        );
    }
}
