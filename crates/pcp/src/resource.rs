//! Agent resource-usage models (Fig. 6 of the paper).
//!
//! Measured shapes being reproduced:
//! * **memory** is flat regardless of metric count or frequency, with
//!   `pmdaproc` the largest (big instance domain);
//! * **CPU** and **network** scale linearly with sampling frequency and
//!   the number of shipped values, with a stall-induced dip around 4–8
//!   reports/s on large machines (PCP fails to keep perfect pace without
//!   buffering);
//! * **disk** (host side) scales with inserted values.

use pmove_hwsim::disk::DiskSpec;

/// Resource usage of one agent over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentUsage {
    /// CPU utilization (fraction of one core).
    pub cpu_fraction: f64,
    /// Resident memory in bytes (flat).
    pub rss_bytes: f64,
    /// Network bytes per second produced.
    pub net_bytes_per_s: f64,
    /// Host-side disk bytes per second caused.
    pub disk_bytes_per_s: f64,
}

/// Static per-agent cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCost {
    /// Agent name.
    pub name: &'static str,
    /// Flat resident memory (bytes).
    pub rss_bytes: f64,
    /// CPU seconds to produce one sampled value.
    pub cpu_s_per_value: f64,
    /// Wire bytes per sampled value (payload + share of headers).
    pub bytes_per_value: f64,
}

/// The four agents of Fig. 6.
pub fn agent_costs() -> [AgentCost; 4] {
    [
        AgentCost {
            name: "pmcd",
            rss_bytes: 9.0e6,
            cpu_s_per_value: 4.0e-6,
            bytes_per_value: 28.0,
        },
        AgentCost {
            name: "pmdaperfevent",
            rss_bytes: 6.5e6,
            cpu_s_per_value: 9.0e-6, // PMU reads via perf syscalls cost more
            bytes_per_value: 0.0,    // ships through pmcd
        },
        AgentCost {
            name: "pmdalinux",
            rss_bytes: 7.5e6,
            cpu_s_per_value: 3.0e-6,
            bytes_per_value: 0.0,
        },
        AgentCost {
            name: "pmdaproc",
            rss_bytes: 26.0e6, // larger instance domain (paper §V-B)
            cpu_s_per_value: 6.0e-6,
            bytes_per_value: 0.0,
        },
    ]
}

/// The under-utilization dip: PCP stalls around 4–8 reports/s on large
/// domains and fails to sample at pace, so CPU/network fall below the
/// linear trend (Fig. 6's 4/8-per-second anomaly). Returns the pace
/// efficiency in (0, 1].
pub fn pace_efficiency(freq_hz: f64, values_per_report: u64) -> f64 {
    let large_domain = values_per_report >= 50;
    if large_domain && (4.0..16.0).contains(&freq_hz) {
        0.82
    } else if large_domain && freq_hz >= 16.0 {
        0.9
    } else {
        1.0
    }
}

/// Compute one agent's usage when sampling `values_per_report` values at
/// `freq_hz` reports per second.
pub fn usage(cost: &AgentCost, freq_hz: f64, values_per_report: u64) -> AgentUsage {
    let eff = pace_efficiency(freq_hz, values_per_report);
    let values_per_s = freq_hz * values_per_report as f64 * eff;
    AgentUsage {
        cpu_fraction: values_per_s * cost.cpu_s_per_value,
        rss_bytes: cost.rss_bytes,
        net_bytes_per_s: values_per_s * cost.bytes_per_value,
        disk_bytes_per_s: if cost.name == "pmcd" {
            // Host-side DB appends ≈ 30 bytes/value in 512 B blocks.
            values_per_s * 30.0
        } else {
            0.0
        },
    }
}

/// Host disk busy fraction caused by telemetry appends.
pub fn host_disk_busy(disk: &DiskSpec, disk_bytes_per_s: f64) -> f64 {
    (disk_bytes_per_s / disk.write_throughput(512)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_flat_across_frequencies() {
        for cost in agent_costs() {
            let u1 = usage(&cost, 1.0, 50);
            let u32 = usage(&cost, 32.0, 50);
            assert_eq!(u1.rss_bytes, u32.rss_bytes);
        }
    }

    #[test]
    fn pmdaproc_uses_most_memory() {
        let costs = agent_costs();
        let proc_mem = costs
            .iter()
            .find(|c| c.name == "pmdaproc")
            .unwrap()
            .rss_bytes;
        for c in &costs {
            if c.name != "pmdaproc" {
                assert!(c.rss_bytes < proc_mem);
            }
        }
    }

    #[test]
    fn cpu_and_network_scale_linearly() {
        let pmcd = agent_costs()[0];
        let u2 = usage(&pmcd, 2.0, 20);
        let u4 = usage(&pmcd, 4.0, 20);
        // Small domain: no dip, exact 2x.
        assert!((u4.cpu_fraction / u2.cpu_fraction - 2.0).abs() < 1e-9);
        assert!((u4.net_bytes_per_s / u2.net_bytes_per_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pace_dip_on_large_domains() {
        // 50-metric × large-domain case dips at 4–8 reports/s.
        assert_eq!(pace_efficiency(2.0, 88), 1.0);
        assert!(pace_efficiency(4.0, 88) < 1.0);
        assert!(pace_efficiency(8.0, 88) < 1.0);
        assert!(pace_efficiency(8.0, 10) == 1.0); // small domain unaffected
        let pmcd = agent_costs()[0];
        let u2 = usage(&pmcd, 2.0, 88);
        let u4 = usage(&pmcd, 4.0, 88);
        assert!(u4.net_bytes_per_s < 2.0 * u2.net_bytes_per_s);
    }

    #[test]
    fn only_pmcd_causes_host_disk_io() {
        for cost in agent_costs() {
            let u = usage(&cost, 8.0, 50);
            if cost.name == "pmcd" {
                assert!(u.disk_bytes_per_s > 0.0);
            } else {
                assert_eq!(u.disk_bytes_per_s, 0.0);
            }
        }
    }

    #[test]
    fn disk_busy_fraction_bounded() {
        let d = DiskSpec::sata("sda");
        assert!(host_disk_busy(&d, 10.0) < 0.01);
        assert_eq!(host_disk_busy(&d, 1e12), 1.0);
    }
}
