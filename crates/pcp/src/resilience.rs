//! Opt-in resilient transport mode.
//!
//! The paper's pipeline is deliberately unbuffered (§V-A): whatever the
//! shipping path cannot absorb within a sampling window is gone, which is
//! what produces Table III. Production monitoring stacks cannot afford
//! that under real faults, so this module adds an *opt-in* resilience
//! layer on top of the same shipping path:
//!
//! * a bounded **spill buffer** with drop-oldest semantics,
//! * **retry with capped exponential backoff** and deterministic jitter,
//! * a **circuit breaker** on the DB path,
//! * **adaptive frequency degradation** under sustained loss, and
//! * **gap markers** written on recovery so queries can tell "lost"
//!   from "not sampled".
//!
//! Everything is driven by the virtual clock and the shipper's seeded
//! noise source, so resilient runs replay exactly. The default mode —
//! no [`ResilienceConfig`] attached — is bit-identical to the paper's
//! unbuffered behaviour.

use crate::error::{require_finite, require_non_negative, require_positive, PcpError};

/// Tuning for the resilient transport mode. All fields are validated by
/// [`ResilienceConfig::validate`]; `Default` gives a sane production-ish
/// profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Spill buffer bound, in field values. When full, the *oldest*
    /// spilled report is evicted (counted, not silently dropped).
    pub spill_capacity_values: u64,
    /// Re-send attempts per spilled report before it is declared lost.
    pub max_retries: u32,
    /// First retry backoff (virtual seconds).
    pub backoff_base_s: f64,
    /// Backoff ceiling (virtual seconds).
    pub backoff_cap_s: f64,
    /// Relative deterministic jitter applied to each backoff delay.
    pub backoff_jitter: f64,
    /// Consecutive DB failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Time the breaker stays open before probing again (virtual seconds).
    pub breaker_cooldown_s: f64,
    /// Per-window loss percentage that counts as a "lossy" window for
    /// adaptive degradation.
    pub degrade_loss_pct: f64,
    /// Consecutive lossy windows before the tick stride doubles (and
    /// consecutive clean windows before it halves back).
    pub degrade_windows: u32,
    /// Upper bound on the tick stride (1 = never skip).
    pub max_stride: u64,
    /// Write `pmove_gap` marker points on recovery.
    pub gap_markers: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            spill_capacity_values: 4096,
            max_retries: 6,
            backoff_base_s: 0.25,
            backoff_cap_s: 4.0,
            backoff_jitter: 0.2,
            breaker_threshold: 5,
            breaker_cooldown_s: 2.0,
            degrade_loss_pct: 50.0,
            degrade_windows: 3,
            max_stride: 8,
            gap_markers: true,
        }
    }
}

impl ResilienceConfig {
    /// Reject non-finite or out-of-range tuning values with a typed error
    /// instead of letting NaN leak into backoff arithmetic.
    pub fn validate(&self) -> Result<(), PcpError> {
        require_positive("backoff_base_s", self.backoff_base_s)?;
        require_positive("backoff_cap_s", self.backoff_cap_s)?;
        if self.backoff_cap_s < self.backoff_base_s {
            return Err(PcpError::InvalidConfig {
                field: "backoff_cap_s",
                value: self.backoff_cap_s,
                reason: "must be >= backoff_base_s",
            });
        }
        require_non_negative("backoff_jitter", self.backoff_jitter)?;
        if self.backoff_jitter > 1.0 {
            return Err(PcpError::InvalidConfig {
                field: "backoff_jitter",
                value: self.backoff_jitter,
                reason: "must be <= 1",
            });
        }
        require_positive("breaker_cooldown_s", self.breaker_cooldown_s)?;
        require_finite("degrade_loss_pct", self.degrade_loss_pct)?;
        if !(0.0..=100.0).contains(&self.degrade_loss_pct) {
            return Err(PcpError::InvalidConfig {
                field: "degrade_loss_pct",
                value: self.degrade_loss_pct,
                reason: "must be within 0..=100",
            });
        }
        if self.breaker_threshold == 0 {
            return Err(PcpError::InvalidConfig {
                field: "breaker_threshold",
                value: 0.0,
                reason: "must be >= 1",
            });
        }
        if self.degrade_windows == 0 {
            return Err(PcpError::InvalidConfig {
                field: "degrade_windows",
                value: 0.0,
                reason: "must be >= 1",
            });
        }
        if self.max_stride == 0 {
            return Err(PcpError::InvalidConfig {
                field: "max_stride",
                value: 0.0,
                reason: "must be >= 1",
            });
        }
        Ok(())
    }
}

/// Circuit breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are counted.
    Closed,
    /// DB path disabled until the cooldown elapses.
    Open,
    /// One probe request is allowed through; its outcome decides.
    HalfOpen,
}

/// Circuit breaker on the DB insert path. Opens after
/// `threshold` consecutive failures, stays open for `cooldown_s` of
/// virtual time, then half-opens to probe; a probe success closes it,
/// a probe failure re-opens it.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_s: f64,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_s: f64,
    /// Closed/HalfOpen → Open transitions.
    pub opens: u64,
    /// Open/HalfOpen → Closed transitions.
    pub closes: u64,
    /// Open → HalfOpen transitions.
    pub half_opens: u64,
}

impl CircuitBreaker {
    /// New closed breaker.
    pub fn new(threshold: u32, cooldown_s: f64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown_s,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_s: 0.0,
            opens: 0,
            closes: 0,
            half_opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request proceed at virtual time `t`? Transitions Open →
    /// HalfOpen when the cooldown has elapsed.
    pub fn allow(&mut self, t: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if t - self.opened_at_s >= self.cooldown_s {
                    self.state = BreakerState::HalfOpen;
                    self.half_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful DB operation.
    pub fn record_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.closes += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed DB operation at virtual time `t`.
    pub fn record_failure(&mut self, t: f64) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_s = t;
            self.opens += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ResilienceConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = ResilienceConfig {
            backoff_base_s: f64::NAN,
            ..ResilienceConfig::default()
        };
        assert!(c.validate().is_err());
        c.backoff_base_s = 1.0;
        c.backoff_cap_s = 0.5;
        assert!(c.validate().is_err());
        c.backoff_cap_s = 2.0;
        c.backoff_jitter = 1.5;
        assert!(c.validate().is_err());
        c.backoff_jitter = 0.1;
        c.degrade_loss_pct = 120.0;
        assert!(c.validate().is_err());
        c.degrade_loss_pct = 50.0;
        c.max_stride = 0;
        assert!(c.validate().is_err());
        c.max_stride = 4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let mut b = CircuitBreaker::new(3, 2.0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0.0);
        b.record_failure(0.1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0.2);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 1);
        // Blocked during cooldown.
        assert!(!b.allow(1.0));
        // Half-opens after cooldown; probe success closes it.
        assert!(b.allow(2.3));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_opens, 1);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes, 1);
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(3, 1.0);
        for i in 0..3 {
            b.record_failure(i as f64 * 0.1);
        }
        assert!(b.allow(2.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A single failure in half-open trips the breaker again.
        b.record_failure(2.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 2);
        assert!(!b.allow(2.5));
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, 1.0);
        b.record_failure(0.0);
        b.record_failure(0.1);
        b.record_success();
        b.record_failure(0.2);
        b.record_failure(0.3);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
