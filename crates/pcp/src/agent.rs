//! The agent abstraction: every PMDA reads some metrics from the target.

use crate::metric::MetricDesc;

/// One sampled value: instance/field name + value.
pub type Sample = (String, f64);

/// A PCP metric agent (PMDA).
pub trait Agent {
    /// Agent name (`pmdalinux`, `pmdaperfevent`, `pmdaproc`).
    fn name(&self) -> &str;

    /// Metrics this agent can serve.
    fn metrics(&self) -> Vec<MetricDesc>;

    /// Sample one metric over the window `[t_prev, t_now)` of virtual
    /// seconds; returns one value per instance.
    ///
    /// PCP semantics: counters report the count observed in the window
    /// (the delta the DB stores per sample); gauges report the value at
    /// `t_now`.
    fn sample(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Vec<Sample>;
}

/// A trivial agent serving constant values — used by tests and as a
/// template for custom PMDAs.
pub struct ConstantAgent {
    /// Agent name.
    pub agent_name: String,
    /// Served metrics with their constant values.
    pub values: Vec<(MetricDesc, f64)>,
}

impl Agent for ConstantAgent {
    fn name(&self) -> &str {
        &self.agent_name
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        self.values.iter().map(|(m, _)| m.clone()).collect()
    }

    fn sample(&mut self, metric: &str, _t_prev: f64, _t_now: f64) -> Vec<Sample> {
        self.values
            .iter()
            .filter(|(m, _)| m.name == metric)
            .map(|(_, v)| ("value".to_string(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::InstanceDomain;

    #[test]
    fn constant_agent_serves_its_metrics() {
        let mut a = ConstantAgent {
            agent_name: "const".into(),
            values: vec![(
                MetricDesc::new("x.y", InstanceDomain::Singular, "test"),
                42.0,
            )],
        };
        assert_eq!(a.name(), "const");
        assert_eq!(a.metrics().len(), 1);
        assert_eq!(a.sample("x.y", 0.0, 1.0), vec![("value".to_string(), 42.0)]);
        assert!(a.sample("nosuch", 0.0, 1.0).is_empty());
    }
}
