//! The agent abstraction: every PMDA reads some metrics from the target.

use crate::metric::MetricDesc;

/// One sampled value: instance/field name + value.
pub type Sample = (String, f64);

/// A PCP metric agent (PMDA).
pub trait Agent {
    /// Agent name (`pmdalinux`, `pmdaperfevent`, `pmdaproc`).
    fn name(&self) -> &str;

    /// Metrics this agent can serve.
    fn metrics(&self) -> Vec<MetricDesc>;

    /// Sample one metric over the window `[t_prev, t_now)` of virtual
    /// seconds; returns one value per instance.
    ///
    /// PCP semantics: counters report the count observed in the window
    /// (the delta the DB stores per sample); gauges report the value at
    /// `t_now`.
    fn sample(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Vec<Sample>;

    /// Liveness probe driven by the supervisor: `false` means the agent
    /// process has crashed and needs a restart. Healthy by default, so
    /// existing agents need no changes.
    fn heartbeat(&mut self, _t_now: f64) -> bool {
        true
    }

    /// Restart a crashed agent at virtual time `t_now`. The default is a
    /// no-op; crash-capable agents reset their state here.
    fn restart(&mut self, _t_now: f64) {}
}

/// A trivial agent serving constant values — used by tests and as a
/// template for custom PMDAs.
pub struct ConstantAgent {
    /// Agent name.
    pub agent_name: String,
    /// Served metrics with their constant values.
    pub values: Vec<(MetricDesc, f64)>,
}

impl Agent for ConstantAgent {
    fn name(&self) -> &str {
        &self.agent_name
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        self.values.iter().map(|(m, _)| m.clone()).collect()
    }

    fn sample(&mut self, metric: &str, _t_prev: f64, _t_now: f64) -> Vec<Sample> {
        self.values
            .iter()
            .filter(|(m, _)| m.name == metric)
            .map(|(_, v)| ("value".to_string(), *v))
            .collect()
    }
}

/// A crash-capable test agent: serves like [`ConstantAgent`] until the
/// virtual clock reaches `crash_at_s`, then its heartbeat fails and it
/// stops serving samples until the supervisor restarts it. The crash is
/// one-shot, so runs replay deterministically.
pub struct FlakyAgent {
    /// Agent name.
    pub agent_name: String,
    /// Served metrics with their constant values.
    pub values: Vec<(MetricDesc, f64)>,
    /// Virtual time at which the agent crashes.
    pub crash_at_s: f64,
    crashed: bool,
    crashes: u64,
}

impl FlakyAgent {
    /// New agent crashing at `crash_at_s`.
    pub fn new(
        agent_name: impl Into<String>,
        values: Vec<(MetricDesc, f64)>,
        crash_at_s: f64,
    ) -> FlakyAgent {
        FlakyAgent {
            agent_name: agent_name.into(),
            values,
            crash_at_s,
            crashed: false,
            crashes: 0,
        }
    }

    /// How many times this agent has crashed.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }
}

impl Agent for FlakyAgent {
    fn name(&self) -> &str {
        &self.agent_name
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        self.values.iter().map(|(m, _)| m.clone()).collect()
    }

    fn sample(&mut self, metric: &str, _t_prev: f64, _t_now: f64) -> Vec<Sample> {
        if self.crashed {
            return Vec::new();
        }
        self.values
            .iter()
            .filter(|(m, _)| m.name == metric)
            .map(|(_, v)| ("value".to_string(), *v))
            .collect()
    }

    fn heartbeat(&mut self, t_now: f64) -> bool {
        if !self.crashed && t_now >= self.crash_at_s {
            self.crashed = true;
            self.crashes += 1;
        }
        !self.crashed
    }

    fn restart(&mut self, _t_now: f64) {
        self.crashed = false;
        // One-shot: it will not crash again after the restart.
        self.crash_at_s = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::InstanceDomain;

    #[test]
    fn constant_agent_serves_its_metrics() {
        let mut a = ConstantAgent {
            agent_name: "const".into(),
            values: vec![(
                MetricDesc::new("x.y", InstanceDomain::Singular, "test"),
                42.0,
            )],
        };
        assert_eq!(a.name(), "const");
        assert_eq!(a.metrics().len(), 1);
        assert_eq!(a.sample("x.y", 0.0, 1.0), vec![("value".to_string(), 42.0)]);
        assert!(a.sample("nosuch", 0.0, 1.0).is_empty());
        // Default liveness: always healthy, restart is a no-op.
        assert!(a.heartbeat(100.0));
        a.restart(100.0);
    }

    #[test]
    fn flaky_agent_crashes_and_restarts() {
        let desc = MetricDesc::new("f.x", InstanceDomain::Singular, "test");
        let mut a = FlakyAgent::new("flaky", vec![(desc, 7.0)], 5.0);
        assert!(a.heartbeat(4.9));
        assert_eq!(a.sample("f.x", 4.0, 4.5).len(), 1);
        assert!(!a.heartbeat(5.0), "crashed at 5 s");
        assert!(a.sample("f.x", 5.0, 5.5).is_empty());
        assert_eq!(a.crashes(), 1);
        a.restart(6.0);
        assert!(a.heartbeat(100.0), "stays up after restart");
        assert_eq!(a.sample("f.x", 100.0, 100.5).len(), 1);
        assert_eq!(a.crashes(), 1);
    }
}
