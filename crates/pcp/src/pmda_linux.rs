//! `pmdalinux`: software/system-state metrics from the simulated OS.

use crate::agent::{Agent, Sample};
use crate::metric::{InstanceDomain, MetricDesc};
use pmove_hwsim::system_state::SystemState;
use pmove_hwsim::MachineSpec;

/// The Linux kernel-metrics agent.
pub struct LinuxAgent {
    state: SystemState,
    total_mem_bytes: f64,
    disk_names: Vec<String>,
}

impl LinuxAgent {
    /// Agent for a machine.
    pub fn new(spec: MachineSpec) -> Self {
        let total_mem_bytes = spec.mem_gb as f64 * 1e9;
        let disk_names = spec.disks.iter().map(|d| d.name.clone()).collect();
        let state = SystemState::new(spec);
        LinuxAgent {
            state,
            total_mem_bytes,
            disk_names,
        }
    }

    /// Mutable access to the system state, so Scenario B can mark threads
    /// busy during pinned kernel executions.
    pub fn state_mut(&mut self) -> &mut SystemState {
        &mut self.state
    }
}

impl Agent for LinuxAgent {
    fn name(&self) -> &str {
        "pmdalinux"
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        vec![
            MetricDesc::new("kernel.all.load", InstanceDomain::Singular, "load average"),
            MetricDesc::new(
                "kernel.all.nprocs",
                InstanceDomain::Singular,
                "process count",
            ),
            MetricDesc::new("kernel.all.intr", InstanceDomain::Singular, "interrupts/s"),
            MetricDesc::new(
                "kernel.all.pswitch",
                InstanceDomain::Singular,
                "context switches/s",
            ),
            MetricDesc::new(
                "kernel.percpu.cpu.idle",
                InstanceDomain::PerCpu,
                "per-CPU idle",
            ),
            MetricDesc::new(
                "kernel.percpu.cpu.user",
                InstanceDomain::PerCpu,
                "per-CPU user",
            ),
            MetricDesc::new(
                "kernel.percpu.cpu.sys",
                InstanceDomain::PerCpu,
                "per-CPU system",
            ),
            MetricDesc::new("mem.util.used", InstanceDomain::Singular, "used memory"),
            MetricDesc::new("mem.util.free", InstanceDomain::Singular, "free memory"),
            MetricDesc::new(
                "mem.numa.alloc_hit",
                InstanceDomain::PerNode,
                "NUMA local hits",
            ),
            MetricDesc::new(
                "disk.dev.write_bytes",
                InstanceDomain::PerDisk,
                "bytes written",
            ),
            MetricDesc::new("disk.dev.read_bytes", InstanceDomain::PerDisk, "bytes read"),
            MetricDesc::new(
                "network.interface.out.bytes",
                InstanceDomain::PerNic,
                "bytes sent",
            ),
            MetricDesc::new(
                "network.interface.in.bytes",
                InstanceDomain::PerNic,
                "bytes received",
            ),
        ]
    }

    fn sample(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Vec<Sample> {
        let snap = self.state.snapshot(t_now);
        let dt = (t_now - t_prev).max(0.0);
        match metric {
            "kernel.all.load" => vec![("value".into(), snap.load_avg)],
            "kernel.all.nprocs" => vec![("value".into(), snap.n_procs as f64)],
            "kernel.all.intr" => vec![("value".into(), snap.intr_rate * dt)],
            "kernel.all.pswitch" => vec![("value".into(), snap.pswitch_rate * dt)],
            "mem.util.free" => vec![(
                "value".into(),
                (self.total_mem_bytes - snap.mem_used_bytes).max(0.0),
            )],
            "kernel.percpu.cpu.sys" => snap
                .cpu_idle
                .iter()
                .enumerate()
                // System time: a small slice of the non-idle time.
                .map(|(i, idle)| (format!("_cpu{i}"), 0.1 * (1.0 - idle) * dt))
                .collect(),
            "disk.dev.write_bytes" => snap
                .disk_write_bps
                .iter()
                .enumerate()
                .map(|(i, bps)| (self.disk_names[i].clone(), bps * dt))
                .collect(),
            "disk.dev.read_bytes" => snap
                .disk_read_bps
                .iter()
                .enumerate()
                .map(|(i, bps)| (self.disk_names[i].clone(), bps * dt))
                .collect(),
            "network.interface.out.bytes" => {
                vec![("eth0".into(), snap.nic_out_bps * dt)]
            }
            "network.interface.in.bytes" => {
                vec![("eth0".into(), snap.nic_in_bps * dt)]
            }
            "kernel.percpu.cpu.idle" => snap
                .cpu_idle
                .iter()
                .enumerate()
                // Idle *time* accumulated in the window, PCP-style.
                .map(|(i, idle)| (format!("_cpu{i}"), idle * dt))
                .collect(),
            "kernel.percpu.cpu.user" => snap
                .cpu_idle
                .iter()
                .enumerate()
                .map(|(i, idle)| (format!("_cpu{i}"), (1.0 - idle) * dt))
                .collect(),
            "mem.util.used" => vec![("value".into(), snap.mem_used_bytes)],
            "mem.numa.alloc_hit" => snap
                .numa_alloc_hit
                .iter()
                .enumerate()
                .map(|(i, v)| (format!("_node{i}"), v * dt))
                .collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_expected_metrics() {
        let a = LinuxAgent::new(MachineSpec::icl());
        let names: Vec<String> = a.metrics().iter().map(|m| m.name.clone()).collect();
        assert!(names.contains(&"kernel.percpu.cpu.idle".to_string()));
        assert!(names.contains(&"mem.numa.alloc_hit".to_string()));
    }

    #[test]
    fn percpu_domain_matches_machine() {
        let mut a = LinuxAgent::new(MachineSpec::icl());
        let s = a.sample("kernel.percpu.cpu.idle", 0.0, 1.0);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].0, "_cpu0");
        assert!(s.iter().all(|(_, v)| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn busy_threads_reflected() {
        let mut a = LinuxAgent::new(MachineSpec::icl());
        a.state_mut().set_kernel_busy(&[(0, 1.0)]);
        let s = a.sample("kernel.percpu.cpu.idle", 0.0, 1.0);
        assert!(s[0].1 < 0.05);
        assert!(s[5].1 > 0.5);
    }

    #[test]
    fn unknown_metric_empty() {
        let mut a = LinuxAgent::new(MachineSpec::icl());
        assert!(a.sample("bogus.metric", 0.0, 1.0).is_empty());
    }

    #[test]
    fn idle_scales_with_window() {
        let mut a = LinuxAgent::new(MachineSpec::icl());
        let s1 = a.sample("kernel.percpu.cpu.idle", 0.0, 1.0);
        let s2 = a.sample("kernel.percpu.cpu.idle", 0.0, 2.0);
        assert!(s2[3].1 > s1[3].1);
    }
}
