//! `pmdaperfevent`: samples PMU counters during kernel executions.
//!
//! The agent is configured with a set of hardware events (subject to the
//! per-thread counter-bank capacity — excess events multiplex) and attached
//! to zero or more [`Execution`]s. Each sample reads the per-instance event
//! counts accumulated in the window, with counter noise applied.

use crate::agent::{Agent, Sample};
use crate::metric::MetricDesc;
use pmove_hwsim::noise::NoiseSource;
use pmove_hwsim::pmu::{CounterBank, Domain, EventCatalog};
use pmove_hwsim::{Execution, MachineSpec, Quantity};

/// The PMU-sampling agent.
pub struct PerfEventAgent {
    spec: MachineSpec,
    catalog: EventCatalog,
    bank: CounterBank,
    events: Vec<String>,
    executions: Vec<(Execution, Option<Vec<u32>>)>,
    noise: NoiseSource,
    /// Relative per-read noise scale (base, before frequency scaling).
    pub noise_base: f64,
    /// Effective sampling frequency (drives noise scaling); set by the
    /// sampling loop.
    pub freq_hz: f64,
}

impl PerfEventAgent {
    /// Agent for a machine with an initial event set. Unknown events are
    /// ignored (libpfm4 would reject them at configuration time).
    pub fn new(spec: MachineSpec, events: &[&str]) -> Self {
        let catalog = EventCatalog::for_arch(spec.arch);
        let mut bank = CounterBank::for_arch(spec.arch, spec.threads_per_core > 1);
        let mut accepted = Vec::new();
        for e in events {
            if catalog.supports(e) {
                bank.program(e);
                accepted.push(e.to_string());
            }
        }
        let noise = NoiseSource::from_labels(&[&spec.key, "perfevent"]);
        PerfEventAgent {
            spec,
            catalog,
            bank,
            events: accepted,
            executions: Vec::new(),
            noise,
            noise_base: 0.002,
            freq_hz: 1.0,
        }
    }

    /// Attach an execution whose counters this agent will observe. The
    /// execution's active threads map to OS threads 0..N in order.
    pub fn attach(&mut self, exec: Execution) {
        self.executions.push((exec, None));
    }

    /// Attach an execution pinned to specific OS threads: `affinity[k]` is
    /// the OS thread running the execution's k-th active thread (the
    /// pinning scripts of Scenario B produce exactly this mapping).
    pub fn attach_pinned(&mut self, exec: Execution, affinity: Vec<u32>) {
        self.executions.push((exec, Some(affinity)));
    }

    /// Drop all attached executions.
    pub fn detach_all(&mut self) {
        self.executions.clear();
    }

    /// Whether the configured events exceed the counter bank (multiplexing).
    pub fn is_multiplexing(&self) -> bool {
        self.bank.is_multiplexing()
    }

    /// Configured (accepted) event names.
    pub fn configured_events(&self) -> &[String] {
        &self.events
    }

    fn quantity_of(&self, event: &str) -> Option<(Quantity, Domain)> {
        self.catalog.get(event).map(|d| (d.quantity, d.domain))
    }
}

impl Agent for PerfEventAgent {
    fn name(&self) -> &str {
        "pmdaperfevent"
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        self.events
            .iter()
            .filter_map(|e| {
                self.catalog.get(e).map(|def| {
                    MetricDesc::perfevent(
                        e,
                        def.description.clone(),
                        def.domain == Domain::PerPackage,
                    )
                })
            })
            .collect()
    }

    fn sample(&mut self, metric: &str, t_prev: f64, t_now: f64) -> Vec<Sample> {
        let Some(event) = metric.strip_prefix("perfevent.hwcounters.") else {
            return Vec::new();
        };
        let Some((quantity, domain)) = self.quantity_of(event) else {
            return Vec::new();
        };
        match domain {
            Domain::PerThread => {
                let threads = self.spec.total_threads();
                let mut out = Vec::with_capacity(threads as usize);
                for i in 0..threads {
                    let mut true_count = 0.0;
                    for (exec, affinity) in &self.executions {
                        // Which of the execution's active threads runs on
                        // OS thread i?
                        let active_idx = match affinity {
                            Some(aff) => aff.iter().position(|&c| c == i).map(|k| k as u32),
                            None => Some(i),
                        };
                        if let Some(k) = active_idx {
                            true_count +=
                                exec.thread_quantity_in_window(quantity, k, t_prev, t_now);
                        }
                    }
                    // Multiplexing bias + per-read counter noise.
                    let phase = self.noise.uniform();
                    let observed = self.bank.observed_count(true_count, phase)
                        * self.noise.counter_factor(self.noise_base, self.freq_hz);
                    out.push((format!("_cpu{i}"), observed));
                }
                out
            }
            Domain::PerPackage => {
                let sockets = self.spec.sockets;
                let mut out = Vec::with_capacity(sockets as usize);
                for s in 0..sockets {
                    let mut v = 0.0;
                    for (exec, _) in &self.executions {
                        v += exec.quantity_in_window(quantity, t_prev, t_now) / sockets as f64;
                    }
                    let observed = v * self
                        .noise
                        .counter_factor(self.noise_base * 0.5, self.freq_hz);
                    out.push((format!("_node{s}"), observed));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::InstanceDomain;
    use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
    use pmove_hwsim::vendor::IsaExt;
    use pmove_hwsim::ExecModel;

    fn agent_with_exec() -> PerfEventAgent {
        let spec = MachineSpec::csl();
        let mut agent = PerfEventAgent::new(
            spec.clone(),
            &[
                "FP_ARITH:SCALAR_DOUBLE",
                "MEM_INST_RETIRED:ALL_LOADS",
                "RAPL_ENERGY_PKG",
            ],
        );
        let profile = KernelProfile::named("k")
            .with_threads(4)
            .with_flops(IsaExt::Scalar, Precision::F64, 1_000_000)
            .with_mem(500_000, 100_000, IsaExt::Scalar)
            .with_working_set(64 << 20);
        let exec = ExecModel::new(spec).run(&profile, 1.0);
        agent.attach(exec);
        agent
    }

    #[test]
    fn rejects_unsupported_events() {
        let a = PerfEventAgent::new(MachineSpec::csl(), &["NOT_AN_EVENT", "RAPL_ENERGY_PKG"]);
        assert_eq!(a.configured_events(), &["RAPL_ENERGY_PKG".to_string()]);
    }

    #[test]
    fn per_thread_sampling_covers_all_cpus() {
        let mut a = agent_with_exec();
        let s = a.sample("perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE", 0.0, 100.0);
        assert_eq!(s.len(), 56);
        // Only the 4 kernel threads observe counts.
        let active: Vec<&Sample> = s.iter().filter(|(_, v)| *v > 0.0).collect();
        assert_eq!(active.len(), 4);
        // Total ≈ 1e6 scalar FP instructions (1 op each) within noise.
        let total: f64 = s.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0e6).abs() < 5e4, "total {total}");
    }

    #[test]
    fn per_package_sampling() {
        let mut a = agent_with_exec();
        let s = a.sample("perfevent.hwcounters.RAPL_ENERGY_PKG", 0.0, 100.0);
        assert_eq!(s.len(), 1); // CSL is single-socket
        assert!(s[0].1 > 0.0);
        assert_eq!(s[0].0, "_node0");
    }

    #[test]
    fn window_outside_execution_reads_zero_counts() {
        let mut a = agent_with_exec();
        let s = a.sample("perfevent.hwcounters.MEM_INST_RETIRED:ALL_LOADS", 0.0, 0.5);
        let total: f64 = s.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 0.0); // execution starts at t=1.0
    }

    #[test]
    fn multiplexing_detected_when_events_exceed_bank() {
        // CSL with SMT: 4 programmable counters; 5 per-thread events.
        let a = PerfEventAgent::new(
            MachineSpec::csl(),
            &[
                "FP_ARITH:SCALAR_DOUBLE",
                "FP_ARITH:256B_PACKED_DOUBLE",
                "FP_ARITH:512B_PACKED_DOUBLE",
                "MEM_INST_RETIRED:ALL_LOADS",
                "MEM_INST_RETIRED:ALL_STORES",
            ],
        );
        assert!(a.is_multiplexing());
    }

    #[test]
    fn metrics_expose_perfevent_namespace() {
        let a = agent_with_exec();
        let m = a.metrics();
        assert!(m
            .iter()
            .all(|d| d.name.starts_with("perfevent.hwcounters.")));
        assert!(m.iter().any(|d| d.indom == InstanceDomain::PerPackage));
        assert!(m.iter().any(|d| d.indom == InstanceDomain::PerCpu));
    }

    #[test]
    fn detach_clears_counts() {
        let mut a = agent_with_exec();
        a.detach_all();
        let s = a.sample("perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE", 0.0, 100.0);
        assert!(s.iter().all(|(_, v)| *v == 0.0));
    }
}
