//! `pcp-pmda-nvidia`: GPU software telemetry through NVML (§III-D).
//!
//! "To address this, we used pcp-pmda-nvidia for collecting SWTelemetry,
//! essentially capturing every metric supported by NVML." The agent
//! serves the NVML metric catalog for every attached device, with
//! deterministic utilization waves plus the load imposed by registered
//! GPU kernel executions.

use crate::agent::{Agent, Sample};
use crate::metric::{InstanceDomain, MetricDesc};
use pmove_hwsim::gpu::{nvml_metrics, GpuSpec};
use pmove_hwsim::noise::stable_hash;

/// A GPU kernel burst visible to the NVML metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuActivity {
    /// Device index.
    pub device: usize,
    /// Start time (virtual seconds).
    pub start_s: f64,
    /// End time.
    pub end_s: f64,
    /// GPU utilization fraction during the burst.
    pub sm_util: f64,
    /// Device memory used by the burst, bytes.
    pub mem_bytes: f64,
}

/// The NVIDIA agent.
pub struct NvidiaAgent {
    devices: Vec<GpuSpec>,
    activities: Vec<GpuActivity>,
    seed: u64,
}

impl NvidiaAgent {
    /// Agent for a set of devices.
    pub fn new(devices: Vec<GpuSpec>) -> Self {
        let seed = stable_hash(&["nvidia", &devices.len().to_string()]);
        NvidiaAgent {
            devices,
            activities: Vec::new(),
            seed,
        }
    }

    /// Register a kernel burst (the wrapper-script flow of §III-D).
    pub fn record_activity(&mut self, activity: GpuActivity) {
        self.activities.push(activity);
    }

    fn wave(&self, t: f64, channel: u64) -> f64 {
        let p = ((self.seed ^ channel.wrapping_mul(0x9E37_79B9)) % 1000) as f64 / 1000.0;
        (0.5 + 0.45 * (0.2 * t + p * std::f64::consts::TAU).sin()).clamp(0.0, 1.0)
    }

    fn active_load(&self, device: usize, t: f64) -> (f64, f64) {
        self.activities
            .iter()
            .filter(|a| a.device == device && a.start_s <= t && t < a.end_s)
            .fold((0.0, 0.0), |(u, m), a| {
                ((u + a.sm_util).min(1.0), m + a.mem_bytes)
            })
    }
}

impl Agent for NvidiaAgent {
    fn name(&self) -> &str {
        "pmdanvidia"
    }

    fn metrics(&self) -> Vec<MetricDesc> {
        nvml_metrics()
            .iter()
            .map(|(name, desc)| MetricDesc::new(*name, InstanceDomain::PerGpu, *desc))
            .collect()
    }

    fn sample(&mut self, metric: &str, _t_prev: f64, t_now: f64) -> Vec<Sample> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, dev)| {
                let (kernel_util, kernel_mem) = self.active_load(i, t_now);
                let idle_mem = dev.memory_mb as f64 * 1024.0 * 1024.0 * 0.03;
                let v = match metric {
                    "nvidia.memused" => idle_mem + kernel_mem,
                    "nvidia.memtotal" => dev.memory_mb as f64 * 1024.0 * 1024.0,
                    "nvidia.gpuactive" => {
                        100.0 * (0.02 * self.wave(t_now, i as u64) + kernel_util).min(1.0)
                    }
                    "nvidia.memactive" => 100.0 * (0.01 + 0.8 * kernel_util).min(1.0),
                    "nvidia.temp" => {
                        35.0 + 40.0 * kernel_util + 3.0 * self.wave(t_now, 7 + i as u64)
                    }
                    "nvidia.power" => 40.0 + 210.0 * kernel_util,
                    "nvidia.clock.sm" => 1_400.0 - 100.0 * kernel_util,
                    "nvidia.clock.mem" => 850.0,
                    "nvidia.procs" => self
                        .activities
                        .iter()
                        .filter(|a| a.device == i && a.start_s <= t_now && t_now < a.end_s)
                        .count() as f64,
                    _ => return (format!("_gpu{i}"), f64::NAN),
                };
                (format!("_gpu{i}"), v)
            })
            .filter(|(_, v)| !v.is_nan())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> NvidiaAgent {
        NvidiaAgent::new(vec![GpuSpec::gv100(), GpuSpec::a100()])
    }

    #[test]
    fn serves_full_nvml_catalog_per_device() {
        let mut a = agent();
        assert_eq!(a.metrics().len(), nvml_metrics().len());
        let s = a.sample("nvidia.memtotal", 0.0, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "_gpu0");
        assert_eq!(s[0].1, 34359.0 * 1024.0 * 1024.0);
        assert!(a.sample("nvidia.bogus", 0.0, 1.0).is_empty());
    }

    #[test]
    fn idle_device_is_quiet() {
        let mut a = agent();
        let util = a.sample("nvidia.gpuactive", 0.0, 5.0);
        assert!(util.iter().all(|(_, v)| *v < 3.0), "{util:?}");
        let power = a.sample("nvidia.power", 0.0, 5.0);
        assert!(power.iter().all(|(_, v)| (35.0..60.0).contains(v)));
    }

    #[test]
    fn kernel_activity_shows_up_in_every_metric() {
        let mut a = agent();
        a.record_activity(GpuActivity {
            device: 0,
            start_s: 10.0,
            end_s: 20.0,
            sm_util: 0.9,
            mem_bytes: 8e9,
        });
        // During the burst on gpu0 only.
        let util = a.sample("nvidia.gpuactive", 14.0, 15.0);
        assert!(util[0].1 > 85.0, "{util:?}");
        assert!(util[1].1 < 5.0);
        let power = a.sample("nvidia.power", 14.0, 15.0);
        assert!(power[0].1 > 200.0);
        let mem = a.sample("nvidia.memused", 14.0, 15.0);
        assert!(mem[0].1 > 8e9);
        let temp = a.sample("nvidia.temp", 14.0, 15.0);
        assert!(temp[0].1 > 65.0);
        let procs = a.sample("nvidia.procs", 14.0, 15.0);
        assert_eq!(procs[0].1, 1.0);
        // After the burst everything relaxes.
        let util = a.sample("nvidia.gpuactive", 24.0, 25.0);
        assert!(util[0].1 < 5.0);
    }

    #[test]
    fn utilization_saturates_at_100() {
        let mut a = agent();
        for _ in 0..3 {
            a.record_activity(GpuActivity {
                device: 0,
                start_s: 0.0,
                end_s: 10.0,
                sm_util: 0.6,
                mem_bytes: 1e9,
            });
        }
        let util = a.sample("nvidia.gpuactive", 0.0, 5.0);
        assert!(util[0].1 <= 100.0);
    }
}
