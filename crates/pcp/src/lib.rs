//! # pmove-pcp — sampler-agent framework
//!
//! Stand-in for Performance Co-Pilot, the metric collection/transport layer
//! the paper builds on (§III-A). The essential behaviours it reproduces:
//!
//! * a **metric namespace** with instance domains (`kernel.percpu.cpu.idle`
//!   has one instance per logical CPU; RAPL one per package) — [`metric`];
//! * **agents** (`pmdalinux`, `pmdaperfevent`, `pmdaproc`, coordinated by
//!   `pmcd`) that read metrics from a simulated machine — [`agent`],
//!   [`pmda_linux`], [`pmda_perfevent`], [`pmda_proc`], [`pmcd`];
//! * an **unbuffered sampling loop**: PCP samples and ships; nothing is
//!   queued. When shipment/insertion cannot keep up within a sampling
//!   period, data points are *lost* or arrive as *batched zeros* — the
//!   central mechanism behind Table III — [`sampler`], [`transport`];
//! * **agent resource accounting** (CPU, memory, network, disk) matching
//!   the shapes of Fig. 6: flat memory, linear CPU/network/disk in
//!   sampling frequency — [`resource`].

pub mod agent;
pub mod error;
pub mod metric;
pub mod pmcd;
pub mod pmda_linux;
pub mod pmda_nvidia;
pub mod pmda_perfevent;
pub mod pmda_proc;
pub mod replication;
pub mod resilience;
pub mod resource;
pub mod sampler;
pub mod transport;

pub use agent::{Agent, ConstantAgent, FlakyAgent};
pub use error::PcpError;
pub use metric::{InstanceDomain, MetricDesc};
pub use pmcd::{AgentHealth, Pmcd};
pub use replication::{
    run_replicated, ReplSamplingReport, ReplShipOutcome, ReplShipper, ReplStats,
};
pub use resilience::{BreakerState, CircuitBreaker, ResilienceConfig};
pub use sampler::{SamplingConfig, SamplingLoop, SamplingReport};
pub use transport::{ShipOutcome, Shipper, ShipperStats, GAP_MEASUREMENT};
