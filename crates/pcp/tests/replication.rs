//! Replication convergence property tests — the PR's headline invariant:
//! after a fault schedule ends and repair rounds run, an R-quorum read
//! through the parallel query engine is bit-identical (`f64::to_bits`)
//! to a single-node sequential oracle that received every offered point,
//! and the widened 6-term conservation equation
//! (offered == inserted + zeroed + lost + pending + evicted + hinted)
//! stays balanced throughout.
//!
//! Node kills are bounded by RF − W (one victim at RF=3, W=2), matching
//! the fault budget quorum replication is supposed to absorb. Case count
//! defaults to 64 (each case runs 3 replicas + repair + queries) and is
//! raised in CI via `PMOVE_REPL_CASES`.

use pmove_hwsim::FaultSchedule;
use pmove_pcp::{ReplShipper, ReplStats};
use pmove_tsdb::repl::{ReplConfig, ReplicaSet};
use pmove_tsdb::{Database, ExecMode, Point, Query};
use proptest::prelude::*;

fn repl_cases() -> u32 {
    std::env::var("PMOVE_REPL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Field value stream with adversarial payloads: ordinary magnitudes plus
/// occasional signed zeros and NaNs, so "bit-identical" is tested against
/// the cases where `==` would lie.
fn value(seed: &mut u64) -> f64 {
    let v = next(seed);
    match v % 23 {
        0 => -0.0,
        1 => f64::NAN,
        _ => (v % 1_000_000) as f64 / 7.0,
    }
}

fn report(t_ns: i64, metric: usize, domain: usize, seed: &mut u64) -> Point {
    let mut p = Point::new(format!("m{metric}"))
        .tag("tag", "repl")
        .timestamp(t_ns);
    for i in 0..domain {
        p = p.field(format!("_cpu{i}"), value(seed));
    }
    p
}

#[derive(Clone, Copy)]
struct Case {
    seed: u64,
    domain: usize,
    n_metrics: usize,
    duration_s: u32,
    victim: usize,
}

/// 4 Hz keeps `Shipper::zero_probability` at exactly 0, so the oracle and
/// the replicated pipeline see the identical value stream (the stale-read
/// zero artefact is exercised separately in the coordinator unit tests).
const FREQ_HZ: f64 = 4.0;

/// One full run: the oracle receives every offered point; the coordinator
/// routes the same stream through quorum writes under the case's fault
/// schedule, then heals (heartbeats → hint replay, anti-entropy → repair).
fn run_case(case: &Case) -> (ReplStats, u64) {
    let oracle = Database::new("oracle");
    let set = ReplicaSet::in_memory(
        "repl",
        ReplConfig {
            hint_capacity_values: 1 << 20,
            ..ReplConfig::default()
        },
    )
    .unwrap();
    // Fault budget: exactly one victim replica (RF − W = 1) draws a
    // random schedule — partitions, brown-outs, degraded bandwidth.
    let mut schedules = vec![FaultSchedule::none(); set.len()];
    schedules[case.victim] = FaultSchedule::random(case.seed, case.duration_s as f64);
    let fault_tail = schedules[case.victim].last_fault_end_s();
    let mut coord =
        ReplShipper::new(&set, schedules, &["repl", &format!("{:x}", case.seed)]).unwrap();

    let ticks = (case.duration_s as f64 * FREQ_HZ) as u32;
    let mut value_seed = case.seed;
    for tick in 0..ticks {
        let t = (tick + 1) as f64 / FREQ_HZ;
        coord.heartbeat(t);
        for m in 0..case.n_metrics {
            let p = report((t * 1e9) as i64 + m as i64, m, case.domain, &mut value_seed);
            oracle.write_point(p.clone()).unwrap();
            coord.ship(t, p, FREQ_HZ);
        }
    }
    // The schedule is over: heartbeats see every replica, lift any
    // quarantine, and replay the parked hints.
    let t_end = (case.duration_s as f64).max(fault_tail) + 1.0;
    for k in 0..3 {
        coord.heartbeat(t_end + k as f64);
    }
    let stats = coord.stats();

    // Anti-entropy: replicas must converge bit-identically.
    let repair = set.repair_until_converged(4).unwrap();
    assert!(repair.converged, "repair did not converge: {repair:?}");

    // R-quorum read through the parallel engine vs the sequential oracle.
    let reachable = coord.reachable();
    let mut compared = 0u64;
    for m in 0..case.n_metrics {
        let cols: Vec<String> = (0..case.domain).map(|i| format!("\"_cpu{i}\"")).collect();
        let text = format!("SELECT {} FROM \"m{m}\"", cols.join(", "));
        let q = Query::parse(&text).unwrap();
        let want = oracle.query_with_mode(&q, ExecMode::Sequential).unwrap();
        let got = set
            .quorum_read_with_mode(&q, &reachable, ExecMode::Parallel(4))
            .unwrap();
        assert_eq!(want.rows.len(), got.rows.len(), "row count for m{m}");
        for (a, b) in want.rows.iter().zip(&got.rows) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.values.len(), b.values.len());
            for (col, va) in &a.values {
                let vb = &b.values[col];
                assert_eq!(
                    va.map(f64::to_bits),
                    vb.map(f64::to_bits),
                    "column {col} diverged at ts {}",
                    a.timestamp
                );
                compared += 1;
            }
        }
    }
    (stats, compared)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(repl_cases()))]

    /// Headline invariant: quorum reads after repair are bit-identical to
    /// the oracle, conservation balances with all six terms, and nothing
    /// is lost when kills stay within the RF − W budget.
    #[test]
    fn quorum_reads_converge_to_oracle_after_repair(
        seed in any::<u64>(),
        domain in 1usize..=12,
        n_metrics in 1usize..=3,
        duration_s in 2u32..=6,
        victim in 0usize..3,
    ) {
        let case = Case { seed, domain, n_metrics, duration_s, victim };
        let (st, compared) = run_case(&case);
        prop_assert!(
            st.conserved(),
            "offered={} != accounted={} ({st:?})",
            st.values_offered, st.accounted()
        );
        let expected =
            (case.duration_s as f64 * FREQ_HZ) as u64 * case.n_metrics as u64 * case.domain as u64;
        prop_assert_eq!(st.values_offered, expected);
        // 4 Hz: no stale-read zeros; generous hints + healed replica: no
        // loss, no evictions, every ledger hint replayed.
        prop_assert_eq!(st.values_zeroed, 0);
        prop_assert_eq!(st.values_lost, 0);
        prop_assert_eq!(st.values_evicted, 0);
        prop_assert_eq!(st.values_hinted, 0);
        prop_assert_eq!(st.values_inserted, expected);
        prop_assert_eq!(st.values_spill_pending, 0);
        prop_assert!(compared > 0, "comparison must cover actual cells");

        // Bit-reproducibility: the same case replays to identical stats.
        let (st2, compared2) = run_case(&case);
        prop_assert_eq!(st, st2, "replicated run is not deterministic");
        prop_assert_eq!(compared, compared2);
    }

    /// Fault-free control: a healthy replica set needs no repair at all —
    /// every write lands on all RF replicas and the Merkle roots already
    /// agree when the run ends.
    #[test]
    fn healthy_runs_need_no_repair(
        seed in any::<u64>(),
        domain in 1usize..=8,
        n_metrics in 1usize..=2,
    ) {
        let set = ReplicaSet::in_memory("repl", ReplConfig::default()).unwrap();
        let schedules = vec![FaultSchedule::none(); set.len()];
        let mut coord = ReplShipper::new(&set, schedules, &["ctrl"]).unwrap();
        let mut value_seed = seed;
        for tick in 0..16u32 {
            let t = (tick + 1) as f64 / FREQ_HZ;
            coord.heartbeat(t);
            for m in 0..n_metrics {
                let p = report((t * 1e9) as i64 + m as i64, m, domain, &mut value_seed);
                coord.ship(t, p, FREQ_HZ);
            }
        }
        let st = coord.stats();
        prop_assert!(st.conserved());
        prop_assert_eq!(st.quorum_write_failures, 0);
        prop_assert_eq!(st.hints_queued, 0);
        prop_assert_eq!(st.failovers, 0);
        prop_assert!(set.converged(), "healthy run already bit-identical");
        let repair = set.repair_until_converged(2).unwrap();
        prop_assert_eq!(repair.rounds, 0);
        prop_assert_eq!(repair.ranges_repaired, 0);
    }
}
