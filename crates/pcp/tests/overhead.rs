//! Instrumentation overhead budget: running the sampling loop with the
//! observability registry attached must cost < 5 % wall-clock over the
//! uninstrumented loop. Runs are interleaved and the minimum of several
//! repetitions is compared, so scheduler noise cancels rather than
//! accumulates.

use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::MachineSpec;
use pmove_obs::{Registry, TraceConfig, Tracer};
use pmove_pcp::pmda_linux::LinuxAgent;
use pmove_pcp::{Pmcd, SamplingConfig, SamplingLoop, Shipper};
use pmove_tsdb::Database;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Both tests time the same loop; running them concurrently would let
/// each inflate the other's wall-clock. Taken for a test's full body.
static BENCH_LOCK: Mutex<()> = Mutex::new(());

fn run_once(instrumented: bool) -> std::time::Duration {
    run_once_traced(instrumented, None)
}

fn run_once_traced(instrumented: bool, trace_rate: Option<f64>) -> std::time::Duration {
    let spec = MachineSpec::csl();
    let metrics: Vec<String> = vec![
        "kernel.all.load".into(),
        "kernel.percpu.cpu.idle".into(),
        "kernel.percpu.cpu.user".into(),
        "kernel.percpu.cpu.sys".into(),
        "mem.util.used".into(),
        "mem.util.free".into(),
    ];
    let db = Database::new("host");
    let mut pmcd = Pmcd::new();
    pmcd.register(Box::new(LinuxAgent::new(spec)));
    let mut shipper = Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["ovh"]);
    if instrumented {
        let reg = Registry::shared();
        shipper = shipper.with_obs(reg.clone());
        pmcd.set_obs(&reg);
        if let Some(rate) = trace_rate {
            reg.set_tracer(Arc::new(Tracer::new(
                42,
                TraceConfig {
                    sample_rate: rate,
                    ..TraceConfig::default()
                },
            )));
        }
    }
    let config = SamplingConfig::new(metrics, 32.0, 0.0, 60.0);
    let start = Instant::now();
    let report = SamplingLoop::run(&config, &mut pmcd, &mut shipper);
    let elapsed = start.elapsed();
    assert_eq!(report.ticks, 32 * 60);
    elapsed
}

#[test]
fn overhead_stays_bounded() {
    let _serial = BENCH_LOCK.lock().unwrap();
    // Warm-up both paths (allocator, code pages).
    run_once(false);
    run_once(true);
    let mut plain = Vec::new();
    let mut observed = Vec::new();
    for _ in 0..5 {
        plain.push(run_once(false));
        observed.push(run_once(true));
    }
    let min_plain = plain.iter().min().unwrap().as_secs_f64();
    let min_observed = observed.iter().min().unwrap().as_secs_f64();
    let ratio = min_observed / min_plain;
    assert!(
        ratio < 1.05,
        "instrumented sampler {ratio:.4}x slower than uninstrumented \
         (plain {min_plain:.6}s, observed {min_observed:.6}s); budget is 5%"
    );
}

#[test]
fn tracing_at_rate_zero_stays_bounded() {
    let _serial = BENCH_LOCK.lock().unwrap();
    // A tracer attached with sampling disabled is the cheapest tracing
    // configuration users can leave on in production; it must fit the
    // same 5% budget, measured against the registry-instrumented loop.
    run_once(true);
    run_once_traced(true, Some(0.0));
    let mut plain = Vec::new();
    let mut traced = Vec::new();
    for _ in 0..5 {
        plain.push(run_once(true));
        traced.push(run_once_traced(true, Some(0.0)));
    }
    let min_plain = plain.iter().min().unwrap().as_secs_f64();
    let min_traced = traced.iter().min().unwrap().as_secs_f64();
    let ratio = min_traced / min_plain;
    assert!(
        ratio < 1.05,
        "tracer at sample_rate=0 {ratio:.4}x slower than tracer-less \
         instrumented loop (plain {min_plain:.6}s, traced {min_traced:.6}s); budget is 5%"
    );
}
