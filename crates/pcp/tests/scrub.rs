//! End-to-end integrity property tests — the PR's headline invariant:
//! seeded latent bit-rot on one replica of an RF=3 durable set is
//! detected by the background scrubber, quarantined (moved aside, never
//! deleted), and read-repaired from the R-quorum, so that quorum reads
//! through the parallel engine are bit-identical (`f64::to_bits`) to an
//! uncorrupted single-node oracle — with the widened 8-term conservation
//! ledger (offered + corrupted == inserted + zeroed + lost + pending +
//! evicted + hinted + repaired + corrupt_pending) balanced throughout.
//!
//! Corruption is bounded to RF − W = 1 victim replica, matching the
//! budget quorum replication absorbs. Case count defaults to 32 (each
//! case runs 3 durable replicas + scrub + repair + queries) and is
//! raised in CI via `PMOVE_SCRUB_CASES`.

use pmove_hwsim::FaultSchedule;
use pmove_pcp::{ReplShipper, ReplStats};
use pmove_tsdb::repl::{IntegrityReport, ReplConfig, ReplicaSet};
use pmove_tsdb::store::{RotSchedule, ScrubConfig, StoreOptions};
use pmove_tsdb::{Database, ExecMode, Point, Query, TsdbError};
use proptest::prelude::*;

fn scrub_cases() -> u32 {
    std::env::var("PMOVE_SCRUB_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Field value stream with adversarial payloads: ordinary magnitudes plus
/// occasional signed zeros and NaNs, so "bit-identical after repair" is
/// tested against the cases where `==` would lie.
fn value(seed: &mut u64) -> f64 {
    let v = next(seed);
    match v % 23 {
        0 => -0.0,
        1 => f64::NAN,
        _ => (v % 1_000_000) as f64 / 7.0,
    }
}

fn report(t_ns: i64, metric: usize, domain: usize, seed: &mut u64) -> Point {
    let mut p = Point::new(format!("m{metric}"))
        .tag("tag", "scrub")
        .timestamp(t_ns);
    for i in 0..domain {
        p = p.field(format!("_cpu{i}"), value(seed));
    }
    p
}

#[derive(Clone, Copy)]
struct Case {
    seed: u64,
    domain: usize,
    n_metrics: usize,
    duration_s: u32,
    victim: usize,
}

/// 4 Hz keeps `Shipper::zero_probability` at exactly 0, so the oracle and
/// the replicated pipeline see the identical value stream.
const FREQ_HZ: f64 = 4.0;
/// Full-store verification period handed to every scrubber.
const SCRUB_PERIOD_S: f64 = 2.0;

/// Chunks stay where flushes put them: thresholds high enough that no
/// automatic flush or compaction moves data under the rot schedule.
fn manual_opts() -> StoreOptions {
    StoreOptions {
        flush_threshold_rows: 1_000_000,
        compact_min_chunks: 1_000_000,
    }
}

/// One full run: healthy links throughout; every point lands on all RF
/// replicas and the oracle. Mid-run and end-of-run flushes turn the
/// replicas' memtables into durable chunks, a single seeded bit flip rots
/// the victim's chunk namespace, then scrub sweeps run until the damage
/// is found, quarantined, and read-repaired from the healthy quorum.
fn run_case(case: &Case) -> (ReplStats, IntegrityReport, u64) {
    let oracle = Database::new("oracle");
    let (set, _) = ReplicaSet::durable(
        "scrub",
        ReplConfig {
            hint_capacity_values: 1 << 20,
            ..ReplConfig::default()
        },
        case.seed,
        manual_opts(),
    )
    .unwrap();
    let schedules = vec![FaultSchedule::none(); set.len()];
    let mut coord =
        ReplShipper::new(&set, schedules, &["scrub", &format!("{:x}", case.seed)]).unwrap();

    let ticks = (case.duration_s as f64 * FREQ_HZ) as u32;
    let mut value_seed = case.seed;
    for tick in 0..ticks {
        let t = (tick + 1) as f64 / FREQ_HZ;
        coord.heartbeat(t);
        for m in 0..case.n_metrics {
            let p = report((t * 1e9) as i64 + m as i64, m, case.domain, &mut value_seed);
            oracle.write_point(p.clone()).unwrap();
            coord.ship(t, p, FREQ_HZ);
        }
        // Mid-run flush: two chunks per replica, so the flip can land in
        // either generation of durable data.
        if tick == ticks / 2 {
            for r in set.replicas() {
                r.flush().unwrap();
            }
        }
    }
    for r in set.replicas() {
        r.flush().unwrap();
    }

    // Latent rot: one seeded single-bit flip in the victim's chunk
    // namespace (a single flip always breaks the CRC; multiple random
    // flips could land on the same bit twice and cancel).
    let rot = RotSchedule::random(case.seed, 1, 0.0, case.duration_s as f64).with_prefix("chunk-");
    set.disks()[case.victim].schedule_rot(rot);
    let fired = set.disks()[case.victim].advance_rot(case.duration_s as f64 + 1.0);
    assert_eq!(fired.len(), 1, "rot event must fire after the flushes");

    // Scrub sweeps over two full periods: detection, quarantine, rebuild,
    // and anti-entropy repair all happen inside the sweep loop.
    let mut scrubbers = set.scrubbers(ScrubConfig {
        full_pass_period_s: SCRUB_PERIOD_S,
        ..ScrubConfig::default()
    });
    let mut total = IntegrityReport::default();
    let mut t = case.duration_s as f64 + 2.0;
    let t_end = t + 2.0 * SCRUB_PERIOD_S;
    while t <= t_end {
        let r = coord.scrub_and_repair(&mut scrubbers, t, 4).unwrap();
        assert!(r.converged, "sweep at t={t} left the set diverged");
        total.files_checked += r.files_checked;
        total.bytes_verified += r.bytes_verified;
        total.chunks_quarantined += r.chunks_quarantined;
        total.cells_corrupted += r.cells_corrupted;
        total.cells_repaired += r.cells_repaired;
        t += 0.5;
    }

    // R-quorum read through the parallel engine vs the sequential oracle.
    let reachable = coord.reachable();
    let mut compared = 0u64;
    for m in 0..case.n_metrics {
        let cols: Vec<String> = (0..case.domain).map(|i| format!("\"_cpu{i}\"")).collect();
        let text = format!("SELECT {} FROM \"m{m}\"", cols.join(", "));
        let q = Query::parse(&text).unwrap();
        let want = oracle.query_with_mode(&q, ExecMode::Sequential).unwrap();
        let got = set
            .quorum_read_with_mode(&q, &reachable, ExecMode::Parallel(4))
            .unwrap();
        assert_eq!(want.rows.len(), got.rows.len(), "row count for m{m}");
        for (a, b) in want.rows.iter().zip(&got.rows) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.values.len(), b.values.len());
            for (col, va) in &a.values {
                let vb = &b.values[col];
                assert_eq!(
                    va.map(f64::to_bits),
                    vb.map(f64::to_bits),
                    "column {col} diverged at ts {}",
                    a.timestamp
                );
                compared += 1;
            }
        }
    }
    (coord.stats(), total, compared)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(scrub_cases()))]

    /// Headline invariant: latent rot within the RF − W budget is fully
    /// detected and quarantined by the scrubber, read-repair restores the
    /// victim bit-identically from the healthy quorum, and the widened
    /// conservation ledger balances with nothing left pending.
    #[test]
    fn rot_is_detected_quarantined_and_repaired_bit_identically(
        seed in any::<u64>(),
        domain in 1usize..=8,
        n_metrics in 1usize..=3,
        duration_s in 2u32..=4,
        victim in 0usize..3,
    ) {
        let case = Case { seed, domain, n_metrics, duration_s, victim };
        let (st, total, compared) = run_case(&case);

        // The flip landed in a durable chunk: the scrubber must find it
        // within one full pass, quarantine it, and repair every cell.
        prop_assert!(total.chunks_quarantined >= 1, "rot was never detected");
        prop_assert!(total.cells_corrupted > 0, "quarantine dropped no cells");
        prop_assert_eq!(total.cells_repaired, total.cells_corrupted);

        // Widened ledger: corrupted widens the left side, repaired
        // balances it on the right, and nothing stays pending.
        prop_assert!(
            st.conserved(),
            "offered={} + corrupted={} != accounted={} ({st:?})",
            st.values_offered, st.values_corrupted, st.accounted()
        );
        prop_assert_eq!(st.values_corrupted, total.cells_corrupted);
        prop_assert_eq!(st.values_repaired, total.cells_repaired);
        prop_assert_eq!(st.values_corrupt_pending, 0);
        prop_assert_eq!(st.values_lost, 0);
        prop_assert!(compared > 0, "comparison must cover actual cells");

        // Bit-reproducibility: the same case replays to identical stats.
        let (st2, total2, compared2) = run_case(&case);
        prop_assert_eq!(st, st2, "scrubbed run is not deterministic");
        prop_assert_eq!(total, total2);
        prop_assert_eq!(compared, compared2);
    }

    /// No-fault control: with no rot scheduled the scrubber verifies the
    /// whole store and finds nothing — zero quarantines, zero repair
    /// traffic, and the ledger never grows its corruption terms.
    #[test]
    fn clean_stores_scrub_without_repair_traffic(
        seed in any::<u64>(),
        domain in 1usize..=6,
        n_metrics in 1usize..=2,
    ) {
        let (set, _) = ReplicaSet::durable(
            "clean",
            ReplConfig::default(),
            seed,
            manual_opts(),
        ).unwrap();
        let schedules = vec![FaultSchedule::none(); set.len()];
        let mut coord = ReplShipper::new(&set, schedules, &["ctrl"]).unwrap();
        let mut value_seed = seed;
        for tick in 0..16u32 {
            let t = (tick + 1) as f64 / FREQ_HZ;
            coord.heartbeat(t);
            for m in 0..n_metrics {
                let p = report((t * 1e9) as i64 + m as i64, m, domain, &mut value_seed);
                coord.ship(t, p, FREQ_HZ);
            }
        }
        for r in set.replicas() {
            r.flush().unwrap();
        }
        let mut scrubbers = set.scrubbers(ScrubConfig {
            full_pass_period_s: SCRUB_PERIOD_S,
            ..ScrubConfig::default()
        });
        let mut t = 5.0;
        let mut bytes = 0u64;
        while t <= 5.0 + 2.0 * SCRUB_PERIOD_S {
            let r = coord.scrub_and_repair(&mut scrubbers, t, 4).unwrap();
            prop_assert_eq!(r.chunks_quarantined, 0);
            prop_assert_eq!(r.cells_corrupted, 0);
            prop_assert_eq!(r.cells_repaired, 0);
            prop_assert_eq!(r.repair.ranges_repaired, 0, "clean scrub moved data");
            bytes += r.bytes_verified;
            t += 0.5;
        }
        prop_assert!(bytes > 0, "scrubber verified nothing");
        let st = coord.stats();
        prop_assert!(st.conserved());
        prop_assert_eq!(st.values_corrupted, 0);
        prop_assert_eq!(st.values_repaired, 0);
        prop_assert!(set.converged());
    }
}

/// Regression: rebuilding after a quarantine must bump the query-cache
/// write versions, so a query that was answered (and cached) before the
/// corruption cannot be served stale afterwards. The victim's only chunk
/// vanishes into quarantine, so the post-rebuild query errors with
/// `UnknownMeasurement` — a stale cache hit would have returned the old
/// rows instead.
#[test]
fn quarantine_rebuild_invalidates_cached_queries() {
    let (set, _) = ReplicaSet::durable("cache", ReplConfig::default(), 77, manual_opts()).unwrap();
    let db = set.replica(1);
    let mut seed = 77u64;
    for t in 0..12 {
        db.write_point(report(t * 1_000_000_000, 0, 3, &mut seed))
            .unwrap();
    }
    db.flush().unwrap().unwrap();
    // Warm the result cache.
    let q = "SELECT \"_cpu0\" FROM \"m0\"";
    assert_eq!(db.query(q).unwrap().rows.len(), 12);
    // Rot the only chunk, scrub until quarantined, rebuild.
    set.disks()[1].schedule_rot(RotSchedule::none().at(1.0, 1).with_prefix("chunk-"));
    set.disks()[1].advance_rot(1.0);
    let mut scrubber = pmove_tsdb::store::Scrubber::new(ScrubConfig {
        full_pass_period_s: SCRUB_PERIOD_S,
        ..ScrubConfig::default()
    });
    let mut t = 2.0;
    while db.quarantined_chunks().is_empty() {
        db.scrub_tick(&mut scrubber, t).unwrap();
        t += 0.5;
        assert!(t < 60.0, "scrub never found the rotted chunk");
    }
    db.rebuild_from_store().unwrap();
    // All rows lived in the quarantined chunk: the measurement is gone.
    // A stale cache hit would have answered with the 12 old rows.
    assert!(matches!(db.query(q), Err(TsdbError::UnknownMeasurement(_))));
}
