//! End-to-end backup/restore property tests — the PR's headline
//! invariant: under random ingest, clean-stop crashes on the primary,
//! latent rot on the primary's chunks, and a snapshot generation captured
//! mid-stream, a point-in-time restore at any fence T onto a fresh store
//! is bit-identical (`f64::to_bits`) to the oracle's prefix at T, with
//! the restore conservation ledger (snapshot + replayed == restored +
//! deduped) balanced — and a corrupted backup is *detected and refused*
//! with a typed error, never silently restored.
//!
//! Case count defaults to 32 and is raised in CI via
//! `PMOVE_BACKUP_CASES`.

use pmove_tsdb::repl::{ReplConfig, ReplicaSet};
use pmove_tsdb::store::{
    chunk_name, list_generations, restore_at, restore_replay_all, BackupError, ColumnValue,
    FaultMode, FaultPlan, MemDisk, RotSchedule, RowRecord, StoreOptions, TsStore, Vfs,
};
use pmove_tsdb::Point;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn backup_cases() -> u32 {
    std::env::var("PMOVE_BACKUP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Adversarial payloads: ordinary magnitudes plus signed zeros and NaNs,
/// so "bit-identical restore" is tested where `==` would lie.
fn value(seed: &mut u64) -> f64 {
    let v = next(seed);
    match v % 23 {
        0 => -0.0,
        1 => f64::NAN,
        _ => (v % 1_000_000) as f64 / 7.0,
    }
}

/// Chunks move only when the test says so.
fn manual_opts() -> StoreOptions {
    StoreOptions {
        flush_threshold_rows: 1_000_000,
        compact_min_chunks: 1_000_000,
    }
}

fn batch(b: u64, rows_per_batch: usize, seed: &mut u64) -> Vec<RowRecord> {
    (0..rows_per_batch)
        .map(|i| {
            // Occasional timestamp collisions exercise last-write-wins
            // dedup on the replay path.
            let ts = if next(seed).is_multiple_of(11) && b > 0 {
                (b as i64 - 1) * 100 + i as i64
            } else {
                b as i64 * 100 + i as i64
            };
            RowRecord::new(
                format!("s{}", next(seed) % 3),
                format!("f{}", i % 2),
                ts,
                ColumnValue::F64(value(seed)),
            )
        })
        .collect()
}

/// The oracle's view of a store: last-write-wins cell map, floats keyed
/// by bits.
type CellMap = BTreeMap<(String, String, i64), u64>;

fn cells_of(rows: &[RowRecord]) -> CellMap {
    let mut m = CellMap::new();
    for r in rows {
        let bits = match r.value {
            ColumnValue::F64(x) => x.to_bits(),
            _ => unreachable!("this test writes only f64 cells"),
        };
        m.insert((r.series.clone(), r.field.clone(), r.ts), bits);
    }
    m
}

#[derive(Clone, Copy, Debug)]
struct Case {
    seed: u64,
    n_batches: u64,
    rows_per_batch: usize,
    flush_every: u64,
    backup_after: u64,
    crash_after: Option<u64>,
    rot_primary: bool,
}

/// Outcome of one driven run, everything needed for the PITR checks.
struct RunOutcome {
    dest: MemDisk,
    /// Oracle prefix per fence: `oracle_at[i]` is the cell map after the
    /// batch committed at vts `fences[i]`.
    fences: Vec<i64>,
    oracle_at: Vec<CellMap>,
    generations: usize,
}

/// Drive a store through the case's schedule. Crashes use `CleanStop` on
/// a commit boundary, so an errored commit leaves no trace and the oracle
/// stays exact; the store is reopened and the archiver re-attached (its
/// catch-up re-archives the surviving WAL tail, which restore dedups).
fn run_case(case: &Case) -> RunOutcome {
    let primary = MemDisk::new(case.seed | 1);
    let dest = MemDisk::new((case.seed ^ 0xBACC) | 1);
    let (mut store, _) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
    store
        .enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>)
        .unwrap();

    let mut value_seed = case.seed;
    let mut oracle = CellMap::new();
    let mut fences = Vec::new();
    let mut oracle_at = Vec::new();
    let mut generations = 0usize;
    let mut crashed = false;

    for b in 0..case.n_batches {
        let vts = (b as i64 + 1) * 1_000;
        store.note_time(vts);
        let rows = batch(b, case.rows_per_batch, &mut value_seed);

        if !crashed && case.crash_after == Some(b) {
            // Clean stop on the very next disk op: the commit fails
            // all-or-nothing, the batch is never acknowledged.
            primary.schedule_fault(FaultPlan {
                crash_at_op: primary.ops_done() + 1,
                mode: FaultMode::CleanStop,
            });
            store.append(&rows);
            assert!(store.commit().is_err(), "commit under crash must fail");
            primary.restart();
            drop(store);
            let (s, _) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
            store = s;
            store.note_time(vts);
            store
                .enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>)
                .unwrap();
            crashed = true;
            // The batch was not acknowledged: the oracle never saw it,
            // and neither fence nor generation advances for it.
            continue;
        }

        store.append(&rows);
        store.commit().unwrap();
        oracle.extend(cells_of(&rows));
        fences.push(vts);
        oracle_at.push(oracle.clone());

        if case.flush_every > 0 && (b + 1) % case.flush_every == 0 {
            store.flush().unwrap();
        }
        if b == case.backup_after {
            store.backup_now().unwrap();
            generations += 1;
        }
    }
    // Latent rot on the primary's live chunks *after* the run: the backup
    // bytes live on their own disk, so a restore must not be confused by
    // a rotting primary.
    if case.rot_primary {
        primary.schedule_rot(RotSchedule::none().at(1.0, 1).with_prefix("chunk-"));
        primary.advance_rot(2.0);
    }
    RunOutcome {
        dest,
        fences,
        oracle_at,
        generations,
    }
}

/// Restore the backup at `t_vts` onto a fresh disk and return the
/// restored cell map plus the conservation report.
fn restore_cells(
    dest: &MemDisk,
    t_vts: i64,
    scratch_seed: u64,
) -> (CellMap, pmove_tsdb::store::RestoreReport) {
    let scratch = MemDisk::new(scratch_seed | 1);
    let report = restore_at(dest, Arc::new(scratch.clone()) as Arc<dyn Vfs>, t_vts).unwrap();
    let (mut restored, _) = TsStore::open(Arc::new(scratch), manual_opts()).unwrap();
    (cells_of(&restored.scan().unwrap()), report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(backup_cases()))]

    /// Headline invariant: restore-at-T equals the oracle prefix at T,
    /// bit for bit, for every committed fence T — through crashes, rot,
    /// and a mid-stream snapshot — and the restore ledger balances.
    #[test]
    fn restore_at_any_fence_is_bit_identical_to_oracle_prefix(
        seed in any::<u64>(),
        n_batches in 4u64..=10,
        rows_per_batch in 1usize..=5,
        flush_every in 0u64..=3,
        backup_frac in 0u64..=2,
        crash_sel in 0u64..=8,
        rot_primary in any::<bool>(),
    ) {
        // 0 = no crash; otherwise a clean stop before batch (sel - 1).
        let crash = crash_sel.checked_sub(1);
        let case = Case {
            seed,
            n_batches,
            rows_per_batch,
            flush_every,
            backup_after: backup_frac * n_batches / 3,
            crash_after: crash.map(|c| c % n_batches),
            rot_primary,
        };
        let out = run_case(&case);
        prop_assert!(out.generations >= 1 || case.crash_after == Some(case.backup_after));
        prop_assert!(!out.fences.is_empty(), "no batch ever committed");

        // Every committed fence is a valid PITR target; check the final
        // fence plus one interior fence to bound runtime.
        let last = out.fences.len() - 1;
        let mid = last / 2;
        for &i in &[mid, last] {
            let (got, report) = restore_cells(&out.dest, out.fences[i], seed ^ i as u64);
            let want = &out.oracle_at[i];
            prop_assert_eq!(
                &got, want,
                "restore at fence {} (vts {}) diverged from the oracle prefix",
                i, out.fences[i]
            );
            prop_assert!(
                report.conserved(),
                "ledger unbalanced at fence {}: {:?}",
                i, report
            );
            // restored_rows counts physical rows (adopted chunk rows plus
            // distinct replayed cells); LWW collisions inside the chunk
            // set mean it can exceed the distinct-cell count, never trail
            // it.
            prop_assert!(report.restored_rows >= want.len() as u64);
        }

        // Bit-reproducibility: the same case replays identically.
        let out2 = run_case(&case);
        prop_assert_eq!(out.fences, out2.fences);
        prop_assert_eq!(out.oracle_at.last(), out2.oracle_at.last());
        let t = *out.fences.last().unwrap();
        let (a, _) = restore_cells(&out.dest, t, seed ^ 0xA5);
        let (b, _) = restore_cells(&out2.dest, t, seed ^ 0xA5);
        prop_assert_eq!(a, b, "same-seed restores are not bit-identical");
    }

    /// Corrupted-backup safety: flip one byte anywhere in the backup
    /// destination (manifest, snapshot chunk, or archive segment) and a
    /// restore must either refuse with a typed error or produce a store
    /// that is bit-identical to *some committed oracle prefix* — the full
    /// one when the flipped byte lies in data the restore never touches,
    /// or a shorter fence when the flip mimics a torn final-segment tail
    /// (byte-indistinguishable from a destination crash mid-append, which
    /// restore must tolerate). What it must never do is return a state
    /// matching no prefix. Corruption in bytes whose integrity carries a
    /// witness — a chunk the chosen generation references — is always a
    /// refusal.
    #[test]
    fn corrupted_backups_are_refused_or_harmless_never_wrong(
        seed in any::<u64>(),
        n_batches in 3u64..=6,
        rows_per_batch in 2usize..=4,
    ) {
        let case = Case {
            seed,
            n_batches,
            rows_per_batch,
            flush_every: 2,
            backup_after: n_batches - 1,
            crash_after: None,
            rot_primary: false,
        };
        let out = run_case(&case);
        let t = *out.fences.last().unwrap();
        let want = out.oracle_at.last().unwrap();

        // Arbitrary victim byte anywhere on the destination.
        let mut names = out.dest.list().unwrap();
        names.retain(|n| n.contains("chunk-") || n.starts_with("archive/") || n.contains("manifest"));
        prop_assert!(!names.is_empty(), "backup destination holds no payload files");
        names.sort();
        let victim = names[(seed as usize) % names.len()].clone();
        let mut data = out.dest.read(&victim).unwrap();
        prop_assert!(!data.is_empty());
        let at = (seed as usize / 7) % data.len();
        data[at] ^= 1 << (seed % 8);
        let mut f = out.dest.create(&victim).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();

        let scratch = MemDisk::new(seed | 1);
        match restore_at(&out.dest, Arc::new(scratch.clone()) as Arc<dyn Vfs>, t) {
            Err(
                BackupError::NoBackup
                | BackupError::ManifestCorrupt { .. }
                | BackupError::ChunkCorrupt { .. }
                | BackupError::ArchiveCorrupt { .. }
                | BackupError::ArchiveGap { .. }
                | BackupError::ArchiveDecode { .. },
            ) => {}
            Err(other) => prop_assert!(
                false,
                "unexpected refusal for victim {}: {:?}", victim, other
            ),
            Ok(_) => {
                // The restore accepted the bytes: the result must be a
                // bit-exact committed prefix — usually the full oracle
                // (flip outside everything read), possibly an earlier
                // fence (flip forged a torn tail on the last segment).
                let (mut restored, _) =
                    TsStore::open(Arc::new(scratch), manual_opts()).unwrap();
                let got = cells_of(&restored.scan().unwrap());
                let is_prefix = got.is_empty()
                    || out.oracle_at.iter().any(|m| m == &got);
                prop_assert!(
                    is_prefix,
                    "corruption in {} restored a state matching no oracle prefix:\n got {:?}\nwant (full) {:?}",
                    victim, got, want
                );
            }
        }

        // Guaranteed-refusal half: corrupt a chunk the chosen generation
        // references — the restore verifies every referenced chunk, so
        // this must always be a typed refusal, never a restored store.
        let out2 = run_case(&case);
        let gens = list_generations(&out2.dest).unwrap();
        prop_assert_eq!(gens.len(), 1);
        let needed = format!("gen-{:08}/{}", gens[0].gen, gens[0].chunks[0].name);
        let mut data = out2.dest.read(&needed).unwrap();
        let at = (seed as usize / 3) % data.len();
        data[at] ^= 0x40;
        let mut f = out2.dest.create(&needed).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        let scratch2 = MemDisk::new(seed | 1);
        match restore_at(&out2.dest, Arc::new(scratch2) as Arc<dyn Vfs>, t) {
            Err(BackupError::ChunkCorrupt { .. } | BackupError::ManifestCorrupt { .. }) => {}
            other => prop_assert!(
                false,
                "corrupt referenced chunk {} was not refused: {:?}",
                needed,
                other.map(|r| format!("{r:?}"))
            ),
        }
    }

    /// Crash-during-backup: the destination disk dies mid-snapshot. The
    /// torn generation must be invisible (no valid manifest), the live
    /// store untouched, and the next backup tick must produce a complete
    /// generation that restores faithfully.
    #[test]
    fn torn_backup_generation_is_invisible_and_recoverable(
        seed in any::<u64>(),
        n_batches in 3u64..=6,
        crash_op_offset in 1u64..=6,
    ) {
        let primary = MemDisk::new(seed | 1);
        let dest = MemDisk::new((seed ^ 0xDEAD) | 1);
        let (mut store, _) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
        store.enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>).unwrap();
        let mut value_seed = seed;
        let mut oracle = CellMap::new();
        for b in 0..n_batches {
            store.note_time((b as i64 + 1) * 1_000);
            let rows = batch(b, 3, &mut value_seed);
            store.append(&rows);
            store.commit().unwrap();
            oracle.extend(cells_of(&rows));
            store.flush().unwrap();
        }
        let live_before = cells_of(&store.scan().unwrap());

        // Kill the destination a few ops into the snapshot copy.
        dest.schedule_fault(FaultPlan {
            crash_at_op: dest.ops_done() + crash_op_offset,
            mode: FaultMode::TornTail,
        });
        prop_assert!(store.backup_now().is_err(), "backup must surface the dest crash");
        dest.restart();

        // Torn generation: no valid manifest committed.
        prop_assert!(list_generations(&dest).unwrap().is_empty());
        // Live store untouched by the failed backup.
        prop_assert_eq!(&cells_of(&store.scan().unwrap()), &live_before);
        // The chunk pins were released: compaction may proceed.
        store.append(&[RowRecord::new("s0", "f0", 999_999, ColumnValue::F64(1.5))]);
        store.note_time((n_batches as i64 + 1) * 1_000);
        store.commit().unwrap();
        store.flush().unwrap();
        store.compact(None).unwrap();
        for seq in 0..n_batches {
            prop_assert!(
                !primary.exists(&chunk_name(seq)).unwrap(),
                "aborted backup left chunk {} pinned", seq
            );
        }

        // Next tick: a complete generation that restores bit-exactly.
        let report = store.backup_now().unwrap();
        prop_assert!(report.chunks >= 1);
        let gens = list_generations(&dest).unwrap();
        prop_assert_eq!(gens.len(), 1);
        prop_assert_eq!(gens[0].gen, report.gen);
        let (got, rr) = restore_cells(&dest, i64::MAX, seed ^ 0x51);
        prop_assert_eq!(&got, &cells_of(&store.scan().unwrap()));
        prop_assert!(rr.conserved(), "{:?}", rr);
    }
}

/// Restore-from-snapshot does real work: with a generation present, the
/// restore copies chunks and replays only the archive tail beyond the
/// fence, while an archive-only replay (`restore_replay_all`) walks every
/// record. Both agree bit-exactly; the snapshot path replays strictly
/// fewer records. This is the correctness half of the ≥5x bench gate.
#[test]
fn snapshot_restore_agrees_with_full_replay_and_replays_less() {
    let primary = MemDisk::new(0x00C0_FFEE | 1);
    let dest = MemDisk::new(0xBEEF | 1);
    let (mut store, _) = TsStore::open(Arc::new(primary), manual_opts()).unwrap();
    store
        .enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>)
        .unwrap();
    let mut seed = 7u64;
    for b in 0..20u64 {
        store.note_time((b as i64 + 1) * 1_000);
        store.append(&batch(b, 4, &mut seed));
        store.commit().unwrap();
        if b % 4 == 3 {
            store.flush().unwrap();
        }
        if b == 15 {
            store.backup_now().unwrap();
        }
    }
    let t = 21_000i64;
    let scratch_a = MemDisk::new(3);
    let snap = restore_at(&dest, Arc::new(scratch_a.clone()) as Arc<dyn Vfs>, t).unwrap();
    let scratch_b = MemDisk::new(5);
    let full = restore_replay_all(&dest, Arc::new(scratch_b.clone()) as Arc<dyn Vfs>, t).unwrap();
    assert!(snap.gen.is_some(), "snapshot path must use the generation");
    assert!(
        full.gen.is_none(),
        "replay-all path must ignore generations"
    );
    assert!(
        snap.replayed_records < full.replayed_records,
        "snapshot restore replayed {} records, full replay {}",
        snap.replayed_records,
        full.replayed_records
    );
    let (mut a, _) = TsStore::open(Arc::new(scratch_a), manual_opts()).unwrap();
    let (mut b, _) = TsStore::open(Arc::new(scratch_b), manual_opts()).unwrap();
    assert_eq!(
        cells_of(&a.scan().unwrap()),
        cells_of(&b.scan().unwrap()),
        "snapshot restore and full replay disagree"
    );
    assert!(snap.conserved() && full.conserved());
}

/// Replica bootstrap-from-backup: a replaced replica catches up from the
/// newest backup plus the Merkle delta, converging bit-identically with
/// its peers without a full re-sync.
#[test]
fn replica_bootstraps_from_backup_and_merkle_delta() {
    let (mut set, _) = ReplicaSet::durable("dr", ReplConfig::default(), 99, manual_opts()).unwrap();
    let dest = MemDisk::new(0xD0_0D | 1);
    set.replica(0)
        .enable_backup(Arc::new(dest.clone()) as Arc<dyn Vfs>)
        .unwrap()
        .unwrap();
    let mut seed = 99u64;
    // Phase 1: writes reach all replicas; replica 0 archives them.
    for t in 0..30i64 {
        set.replica(0).note_time(t * 1_000);
        let mut p = Point::new("m0").tag("tag", "dr").timestamp(t * 1_000);
        p = p.field("_cpu0", value(&mut seed));
        for r in set.replicas() {
            r.write_point(p.clone()).unwrap();
        }
        if t == 20 {
            for r in set.replicas() {
                r.flush().unwrap();
            }
            set.replica(0).backup_now().unwrap().unwrap();
        }
    }
    assert!(set.converged());
    // Replica 2's node is lost entirely; replace it from the backup.
    // The backup fence is at t=20, the peers are at t=29: bootstrap must
    // restore the snapshot+archive prefix, then stream only the delta.
    let (restore, repair) = set
        .bootstrap_from_backup(2, &dest, manual_opts(), 0x5EED, i64::MAX, 4)
        .unwrap();
    assert!(restore.restored_rows > 0, "bootstrap restored nothing");
    assert!(restore.conserved());
    assert!(repair.converged, "post-bootstrap anti-entropy diverged");
    assert!(
        set.converged(),
        "replica set not bit-identical after bootstrap"
    );
    // The new node answers queries identically to its peers.
    let q = "SELECT \"_cpu0\" FROM \"m0\"";
    let want = set.replica(0).query(q).unwrap();
    let got = set.replica(2).query(q).unwrap();
    assert_eq!(want.rows.len(), got.rows.len());
    for (a, b) in want.rows.iter().zip(&got.rows) {
        assert_eq!(a.timestamp, b.timestamp);
        assert_eq!(
            a.values["_cpu0"].map(f64::to_bits),
            b.values["_cpu0"].map(f64::to_bits)
        );
    }
}
