//! Crash-recovery property of the columnar batch path: a batch rides
//! **one** WAL frame and one group commit, so a seeded MemDisk crash
//! mid-frame must leave recovery with the whole batch or none of it —
//! never a prefix. The dropped batch is retried (last-write-wins makes
//! the retry idempotent even if the frame secretly survived), after
//! which the recovered database is bit-identical to an uncrashed oracle,
//! the widened 8-term conservation ledger balances at every stage, and
//! no `pmove_gap` markers appear: an un-acknowledged batch is not data
//! loss, it is a retryable rejection.

use std::sync::Arc;

use pmove_pcp::ReplStats;
use pmove_tsdb::store::{FaultMode, FaultPlan, MemDisk, StoreOptions, Vfs};
use pmove_tsdb::{Database, FieldValue, Point, TsdbError, GAP_MEASUREMENT};

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Adversarial payloads: ordinary magnitudes plus signed zeros and NaNs,
/// so "bit-identical after recovery" is tested where `==` would lie.
fn value(seed: &mut u64) -> f64 {
    let v = next(seed);
    match v % 23 {
        0 => -0.0,
        1 => f64::NAN,
        _ => (v % 1_000_000) as f64 / 7.0,
    }
}

const POINTS_PER_BATCH: usize = 24;
const FIELDS_PER_POINT: usize = 3;

/// Batch `i` writes its own measurement (`b{i}`), so "whole batch or
/// none" reads directly off per-measurement row counts after recovery.
fn batch(i: usize, seed: &mut u64) -> Vec<Point> {
    (0..POINTS_PER_BATCH)
        .map(|k| {
            let mut p = Point::new(format!("b{i}"))
                .tag("host", format!("h{}", k % 4))
                .timestamp(k as i64 * 1_000);
            for f in 0..FIELDS_PER_POINT {
                p = p.field(format!("_cpu{f}"), value(seed));
            }
            p
        })
        .collect()
}

fn rows_of(db: &Database, measurement: &str) -> usize {
    match db.query(&format!("SELECT * FROM \"{measurement}\"")) {
        Ok(r) => r.rows.len(),
        Err(TsdbError::UnknownMeasurement(_)) => 0,
        Err(e) => panic!("unexpected query error: {e:?}"),
    }
}

/// Bit-exact rendering of every stored cell.
fn cells(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    db.for_each_cell(&mut |key, ts, field, v| {
        let bits = match v {
            FieldValue::Float(x) => format!("{:016x}", x.to_bits()),
            other => format!("{other:?}"),
        };
        let _ = writeln!(s, "{} {ts} {field}={bits}", key.canonical());
    });
    s
}

/// One crash case: two batches land, the third crashes `op_offset`
/// operations into its group commit. Returns whether the torn frame
/// survived recovery whole (true) or was dropped whole (false).
fn run_case(seed: u64, op_offset: u64, mode: FaultMode) -> bool {
    let values_per_batch = (POINTS_PER_BATCH * FIELDS_PER_POINT) as u64;
    let mut ledger = ReplStats::default();

    let disk = MemDisk::new(seed);
    let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
    let (db, _) = Database::open("batch", vfs.clone(), StoreOptions::default()).unwrap();

    let mut value_seed = seed;
    let batches: Vec<Vec<Point>> = (0..3).map(|i| batch(i, &mut value_seed)).collect();

    for b in &batches[..2] {
        let out = db.write_batch(b.clone()).unwrap();
        assert!(out.all_accepted());
        ledger.reports_offered += 1;
        ledger.values_offered += values_per_batch;
        ledger.values_inserted += values_per_batch;
    }
    assert!(ledger.conserved());

    // The crash lands inside batch 2's single WAL frame / group commit.
    disk.schedule_fault(FaultPlan {
        crash_at_op: disk.ops_done() + op_offset,
        mode,
    });
    let err = db.write_batch(batches[2].clone());
    assert!(err.is_err(), "commit on a crashed disk must fail");
    assert!(disk.crashed());
    // Un-acknowledged: the caller parks the batch for retry. In ledger
    // terms the values are hinted, not lost — still fully accounted.
    ledger.reports_offered += 1;
    ledger.values_offered += values_per_batch;
    ledger.values_hinted += values_per_batch;
    assert!(ledger.conserved(), "crash left the ledger unbalanced");
    drop(db);

    // Restart and recover. The torn frame is admitted whole (its bytes
    // and CRC all reached the platter) or dropped whole (torn tail fails
    // the frame CRC) — never replayed as a prefix.
    disk.restart();
    let (db, report) = Database::open("batch", vfs, StoreOptions::default()).unwrap();
    assert_eq!(rows_of(&db, "b0"), POINTS_PER_BATCH);
    assert_eq!(rows_of(&db, "b1"), POINTS_PER_BATCH);
    let b2_rows = rows_of(&db, "b2");
    assert!(
        b2_rows == 0 || b2_rows == POINTS_PER_BATCH,
        "recovery admitted a prefix of the batch: {b2_rows} of {POINTS_PER_BATCH} rows (seed {seed}, offset {op_offset}, {mode:?})"
    );
    let survived = b2_rows == POINTS_PER_BATCH;
    if survived {
        ledger.values_inserted += values_per_batch;
        ledger.values_hinted -= values_per_batch;
    }
    assert!(ledger.conserved());

    // A torn commit is not corruption: nothing was quarantined, and no
    // gap markers blame the dropped batch for "lost" data.
    assert_eq!(report.chunks_skipped, 0);
    assert!(db.quarantined_chunks().is_empty());
    assert!(matches!(
        db.query(&format!("SELECT * FROM \"{GAP_MEASUREMENT}\"")),
        Err(TsdbError::UnknownMeasurement(_))
    ));

    // Retry the whole batch: idempotent if it survived (last write wins
    // on identical cells), completing if it was dropped.
    let out = db.write_batch(batches[2].clone()).unwrap();
    assert!(out.all_accepted());
    assert_eq!(rows_of(&db, "b2"), POINTS_PER_BATCH);
    if !survived {
        ledger.values_inserted += values_per_batch;
        ledger.values_hinted -= values_per_batch;
    }
    assert!(ledger.conserved(), "retry left the ledger unbalanced");
    assert_eq!(ledger.values_hinted, 0);
    assert_eq!(ledger.values_lost, 0);

    // The recovered-and-retried state is bit-identical to an uncrashed
    // oracle ingesting the same stream row-at-a-time.
    let oracle = Database::new("oracle");
    let mut oracle_seed = seed;
    for i in 0..3 {
        for p in batch(i, &mut oracle_seed) {
            oracle.write_point(p).unwrap();
        }
    }
    assert_eq!(cells(&db), cells(&oracle), "recovered cells diverged");

    // Still no gap markers after the retry.
    assert!(matches!(
        db.query(&format!("SELECT * FROM \"{GAP_MEASUREMENT}\"")),
        Err(TsdbError::UnknownMeasurement(_))
    ));
    survived
}

/// Seeded sweep over crash positions inside the frame write and the
/// commit sync, torn-tail and clean-stop damage models. Each case
/// asserts the whole-OR-none disjunction; the sweep asserts the drop
/// side actually occurs (a crash mid-commit that always persisted the
/// frame would mean the fault never landed). The survive side — bytes
/// fully durable before the crash — is pinned by
/// `acknowledged_batches_survive_clean_crash` below; a torn tail
/// landing on exactly the full frame length is possible but
/// astronomically rare, so it is not required here.
#[test]
fn torn_batch_frame_recovers_whole_or_none() {
    let mut dropped = 0u32;
    for seed in 0..10u64 {
        for op_offset in 1..=2 {
            for mode in [FaultMode::TornTail, FaultMode::CleanStop] {
                if !run_case(seed, op_offset, mode) {
                    dropped += 1;
                }
            }
        }
    }
    assert!(dropped > 0, "no crash ever dropped the batch frame");
}

/// A crash between batches (frame fully committed) loses nothing: the
/// next open recovers every acknowledged batch.
#[test]
fn acknowledged_batches_survive_clean_crash() {
    let disk = MemDisk::new(99);
    let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
    let (db, _) = Database::open("batch", vfs.clone(), StoreOptions::default()).unwrap();
    let mut seed = 99u64;
    for i in 0..3 {
        assert!(db.write_batch(batch(i, &mut seed)).unwrap().all_accepted());
    }
    drop(db);
    disk.schedule_fault(FaultPlan {
        crash_at_op: disk.ops_done() + 1,
        mode: FaultMode::CleanStop,
    });
    disk.restart();
    let (db, _) = Database::open("batch", vfs, StoreOptions::default()).unwrap();
    for i in 0..3 {
        assert_eq!(rows_of(&db, &format!("b{i}")), POINTS_PER_BATCH);
    }
}
