//! Property test: transport loss-conservation is an identity, not a
//! statistic. Whatever the sampling frequency, instance-domain size, or
//! payload, every value offered to the transport is accounted for as
//! inserted, zeroed, or lost — in the private stats AND in the exported
//! `pcp.transport.*` counters, and the two views agree exactly.

use pmove_hwsim::network::LinkSpec;
use pmove_obs::Registry;
use pmove_pcp::Shipper;
use pmove_tsdb::{Database, Point};
use proptest::prelude::*;

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn report(t_ns: i64, metric: usize, domain: usize, seed: &mut u64) -> Point {
    let mut p = Point::new(format!("perfevent_hwcounters_m{metric}"))
        .tag("tag", "prop")
        .timestamp(t_ns);
    for i in 0..domain {
        p = p.field(format!("_cpu{i}"), (next(seed) % 1_000_000) as f64);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_for_any_run(
        seed in any::<u64>(),
        freq in 1u32..=64,
        domain in 1usize..=96,
        n_metrics in 1usize..=6,
        duration_s in 1u32..=5,
    ) {
        let mut s = seed;
        let freq_hz = freq as f64;
        let db = Database::new("host");
        let reg = Registry::shared();
        let mut shipper = Shipper::new(
            &db,
            LinkSpec::mbit_100(),
            1.0 / freq_hz,
            &["prop", &format!("{seed:x}")],
        )
        .with_obs(reg.clone());

        let ticks = freq * duration_s;
        let mut t = 0.0;
        for _ in 0..ticks {
            for m in 0..n_metrics {
                shipper.ship(t, report((t * 1e9) as i64 + m as i64, m, domain, &mut s), freq_hz);
            }
            t += 1.0 / freq_hz;
        }

        let st = shipper.stats();
        // The identity itself.
        prop_assert_eq!(
            st.values_offered,
            st.values_inserted + st.values_zeroed + st.values_lost,
            "stats imbalance at freq={} domain={} metrics={}",
            freq, domain, n_metrics
        );
        // Everything the sampler produced was offered.
        prop_assert_eq!(st.values_offered, ticks as u64 * n_metrics as u64 * domain as u64);
        // The exported counters are the same numbers, not a parallel estimate.
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("pcp.transport.values_offered", &[]), Some(st.values_offered));
        prop_assert_eq!(snap.counter("pcp.transport.values_inserted", &[]), Some(st.values_inserted));
        prop_assert_eq!(snap.counter("pcp.transport.values_zeroed", &[]), Some(st.values_zeroed));
        prop_assert_eq!(snap.counter("pcp.transport.values_lost", &[]), Some(st.values_lost));
        // Nothing phantom: the DB can never hold more than was accounted.
        prop_assert!(st.values_inserted + st.values_zeroed <= st.values_offered);
    }
}
