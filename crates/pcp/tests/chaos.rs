//! Chaos property tests: the transport's loss-conservation identity must
//! survive *arbitrary* injected faults — link flaps, bandwidth collapse,
//! backend brown-outs — with the resilient mode on or off, and every run
//! must replay bit-identically from its seed. A separate property pins
//! the Table III contract: an attached-but-empty fault schedule changes
//! nothing about the default transport.
//!
//! Case count defaults to 256 and is raised in CI's chaos job via the
//! `PMOVE_CHAOS_CASES` environment variable.

use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::FaultSchedule;
use pmove_obs::{Registry, TraceConfig, Tracer};
use pmove_pcp::{ResilienceConfig, Shipper, ShipperStats};
use pmove_tsdb::{Database, Point};
use proptest::prelude::*;
use std::sync::Arc;

fn chaos_cases() -> u32 {
    std::env::var("PMOVE_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

fn trace_cases() -> u32 {
    std::env::var("PMOVE_TRACE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn report(t_ns: i64, metric: usize, domain: usize, seed: &mut u64) -> Point {
    let mut p = Point::new(format!("perfevent_hwcounters_m{metric}"))
        .tag("tag", "chaos")
        .timestamp(t_ns);
    for i in 0..domain {
        p = p.field(format!("_cpu{i}"), (next(seed) % 1_000_000) as f64);
    }
    p
}

struct Case {
    seed: u64,
    freq: u32,
    domain: usize,
    n_metrics: usize,
    duration_s: u32,
}

/// One full run; returns the final stats and the DB row count.
fn run(
    case: &Case,
    fault: Option<FaultSchedule>,
    resilience: Option<ResilienceConfig>,
) -> (ShipperStats, usize) {
    let freq_hz = case.freq as f64;
    let db = Database::new("host");
    let mut shipper = Shipper::new(
        &db,
        LinkSpec::mbit_100(),
        1.0 / freq_hz,
        &["chaos", &format!("{:x}", case.seed)],
    );
    let fault_tail_s = fault.as_ref().map(|f| f.last_fault_end_s()).unwrap_or(0.0);
    if let Some(schedule) = fault {
        shipper = shipper.with_fault_schedule(schedule);
    }
    if let Some(cfg) = resilience {
        shipper = shipper.with_resilience(cfg);
    }
    let ticks = case.freq * case.duration_s;
    let mut value_seed = case.seed;
    let mut t = 0.0;
    for _ in 0..ticks {
        for m in 0..case.n_metrics {
            shipper.ship(
                t,
                report((t * 1e9) as i64 + m as i64, m, case.domain, &mut value_seed),
                freq_hz,
            );
        }
        t += 1.0 / freq_hz;
    }
    // Give the resilient transport idle time after the schedule ends so
    // spilled reports get their retry chances against a healthy backend.
    if resilience.is_some() {
        let end_s = case.duration_s as f64;
        let tail = fault_tail_s.max(end_s);
        let mut t_idle = end_s;
        while t_idle <= tail + 10.0 {
            shipper.idle_tick(t_idle);
            t_idle += 0.5;
        }
    }
    (shipper.stats(), db.total_rows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// The 5-term identity holds under any fault schedule, resilient or
    /// not, and the whole run replays bit-identically from its seed.
    #[test]
    fn conservation_survives_arbitrary_faults(
        seed in any::<u64>(),
        freq in 1u32..=32,
        domain in 1usize..=64,
        n_metrics in 1usize..=4,
        duration_s in 2u32..=6,
        resilient in any::<bool>(),
        spill_capacity in 64u64..=8192,
    ) {
        let case = Case { seed, freq, domain, n_metrics, duration_s };
        let fault = FaultSchedule::random(seed, duration_s as f64);
        let resilience = resilient.then(|| ResilienceConfig {
            spill_capacity_values: spill_capacity,
            ..ResilienceConfig::default()
        });

        let (st, rows) = run(&case, Some(fault.clone()), resilience);
        prop_assert!(
            st.conserved(),
            "offered={} != accounted={} (inserted={} zeroed={} lost={} pending={} evicted={}) fault={:?}",
            st.values_offered, st.accounted(), st.values_inserted, st.values_zeroed,
            st.values_lost, st.values_spill_pending, st.values_evicted, fault
        );
        // Everything the sampler produced was offered.
        let expected = (freq * duration_s) as u64 * n_metrics as u64 * domain as u64;
        prop_assert_eq!(st.values_offered, expected);
        // Without resilience there is no spill machinery to populate.
        if !resilient {
            prop_assert_eq!(st.values_spilled, 0);
            prop_assert_eq!(st.values_spill_pending, 0);
            prop_assert_eq!(st.values_evicted, 0);
            prop_assert_eq!(st.values_recovered, 0);
            prop_assert_eq!(st.retries, 0);
        }
        // The DB never holds more report rows than inserted values imply.
        prop_assert!(rows as u64 <= st.values_inserted + st.values_zeroed + st.gap_markers * 2);

        // Determinism: the identical configuration replays to identical
        // stats and identical DB contents.
        let (st2, rows2) = run(&case, Some(fault), resilience);
        prop_assert_eq!(st, st2, "chaos run is not deterministic per seed");
        prop_assert_eq!(rows, rows2);
    }

    /// Table III contract: attaching an *empty* schedule (and no
    /// resilience) leaves the default transport bit-identical — same
    /// stats, same rows — so the paper-mode loss model is untouched by
    /// the chaos machinery.
    #[test]
    fn empty_schedule_reproduces_default_mode_exactly(
        seed in any::<u64>(),
        freq in 1u32..=64,
        domain in 1usize..=64,
        n_metrics in 1usize..=4,
        duration_s in 1u32..=4,
    ) {
        let case = Case { seed, freq, domain, n_metrics, duration_s };
        let (plain, plain_rows) = run(&case, None, None);
        let (scheduled, scheduled_rows) = run(&case, Some(FaultSchedule::none()), None);
        prop_assert_eq!(plain, scheduled);
        prop_assert_eq!(plain_rows, scheduled_rows);
        prop_assert_eq!(plain.values_spilled, 0);
        prop_assert_eq!(plain.gap_markers, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(trace_cases()))]

    /// Trace conservation under chaos: with head sampling at 1.0, every
    /// offered report's trace terminates exactly once — in a terminal
    /// status from the allowed set — and no span is left open (an
    /// `unclosed` span marks an orphan and fails the property).
    #[test]
    fn every_trace_terminates_under_arbitrary_faults(
        seed in any::<u64>(),
        freq in 1u32..=16,
        domain in 1usize..=32,
        n_metrics in 1usize..=4,
        duration_s in 2u32..=5,
        resilient in any::<bool>(),
        spill_capacity in 64u64..=4096,
    ) {
        let case = Case { seed, freq, domain, n_metrics, duration_s };
        let fault = FaultSchedule::random(seed, duration_s as f64);
        let resilience = resilient.then(|| ResilienceConfig {
            spill_capacity_values: spill_capacity,
            ..ResilienceConfig::default()
        });

        let freq_hz = case.freq as f64;
        let registry = Registry::shared();
        let tracer = Arc::new(Tracer::new(seed, TraceConfig {
            sample_rate: 1.0,
            sample_on_fault: true,
            ring_capacity: 100_000, // retain every trace for the audit
        }));
        registry.set_tracer(tracer.clone());
        let db = Database::new("host");
        let mut shipper = Shipper::new(
            &db,
            LinkSpec::mbit_100(),
            1.0 / freq_hz,
            &["chaos", &format!("{:x}", case.seed)],
        )
        .with_obs(registry.clone())
        .with_fault_schedule(fault.clone());
        if let Some(cfg) = resilience {
            shipper = shipper.with_resilience(cfg);
        }

        let ticks = case.freq * case.duration_s;
        let mut value_seed = case.seed;
        let mut t = 0.0;
        let mut offered_reports = 0u64;
        for _ in 0..ticks {
            for m in 0..case.n_metrics {
                let ctx = tracer.start_trace("pcp.sample", (t * 1e9) as u64);
                shipper.ship_traced(
                    t,
                    report((t * 1e9) as i64 + m as i64, m, case.domain, &mut value_seed),
                    freq_hz,
                    Some(ctx),
                );
                offered_reports += 1;
            }
            t += 1.0 / freq_hz;
        }
        let end_s = case.duration_s as f64;
        if resilience.is_some() {
            let tail = fault.last_fault_end_s().max(end_s);
            let mut t_idle = end_s;
            while t_idle <= tail + 10.0 {
                shipper.idle_tick(t_idle);
                t_idle += 0.5;
            }
        }
        shipper.seal_pending_traces(end_s);

        let stats = tracer.stats();
        prop_assert_eq!(stats.started, offered_reports);
        prop_assert_eq!(
            stats.started, stats.finished,
            "started != finished: some trace never terminated"
        );
        prop_assert_eq!(tracer.active_count(), 0, "open traces after seal");
        let trees = tracer.flight_recorder();
        prop_assert_eq!(trees.len() as u64, offered_reports);
        const TERMINAL: [&str; 6] =
            ["inserted", "zeroed", "lost", "evicted", "recovered", "spill_pending"];
        for tree in &trees {
            prop_assert!(
                TERMINAL.contains(&tree.terminal_status()),
                "trace {} ended in unexpected status {:?}\n{}",
                tree.id, tree.terminal_status(), tree.render()
            );
            prop_assert!(
                !tree.has_unclosed_spans(),
                "orphaned span in trace {}\n{}",
                tree.id, tree.render()
            );
        }
        // Trace-side conservation mirrors the value-side identity: the
        // sum of traced terminal values matches the transport ledger.
        let st = shipper.stats();
        prop_assert!(st.conserved());
    }
}
