//! Golden pins for the parallel query engine.
//!
//! The Table III and live-CARM (Fig. 9) reproductions run every query
//! through the engine's *default* execution mode — the parallel sharded
//! executor — so their outputs are byte-compared here against the
//! captured `docs/results/*` files produced before the engine existed.
//! A third test drives the Table III transport workload into one database
//! with the query cache enabled, proving that cached reads never go
//! stale across interleaved ingest and that the loss-conservation audit
//! still balances.

use pmove_obs::{ConservationCell, Registry};
use pmove_tsdb::query::Projection;
use pmove_tsdb::{Database, ExecMode, Query};

const TABLE3_GOLDEN: &str = include_str!("../../../docs/results/table3.txt");
const FIG9_GOLDEN: &str = include_str!("../../../docs/results/fig9.txt");

/// Table III through the default (parallel) engine is byte-identical to
/// the captured reference output, audit line included.
#[test]
fn table3_output_matches_captured_golden() {
    assert!(matches!(
        Database::new("probe").exec_mode(),
        ExecMode::Parallel(_)
    ));
    let (rows, audit) = pmove_bench::table3::run_audited();
    let n = audit.verify().expect("audit balances");
    let text = format!(
        "{}\nconservation audit: {n}/{n} cells balanced (offered == inserted + zeroed + lost)\n",
        pmove_bench::table3::format(&rows)
    );
    assert_eq!(text, TABLE3_GOLDEN);
}

/// The live-CARM scenario (Fig. 9) — the query-heaviest path in the repo:
/// field discovery plus per-field windowed sums for three kernels — is
/// byte-identical through the parallel engine.
#[test]
fn fig9_live_carm_output_matches_captured_golden() {
    let result = pmove_bench::fig9::run();
    assert_eq!(pmove_bench::fig9::format(&result), FIG9_GOLDEN);
}

/// Interleave Table III ingest with cached queries: a cell's writes must
/// invalidate earlier cached results (no stale points), repeated reads
/// must serve identical bytes from cache, and the transport conservation
/// audit must balance with the cache enabled.
#[test]
fn cache_enabled_run_stays_fresh_and_conserves() {
    let registry = Registry::shared();
    let db = Database::with_obs("host", registry.clone());
    db.set_query_cache_capacity(64);

    let row1 = pmove_bench::table3::run_cell_into(&db, Some(registry.clone()), "icl", 8.0, 4);
    let q = Query {
        projections: vec![Projection::Wildcard],
        measurement: "perfevent_hwcounters_UNHALTED_CORE_CYCLES".into(),
        tag_filters: Vec::new(),
        time_start: None,
        time_end: None,
        group_by_time: None,
    };
    let r1 = db.query_parsed(&q).unwrap();
    assert!(!r1.rows.is_empty());
    // Second read is served from cache — identical, and counted as a hit.
    let r1b = db.query_parsed(&q).unwrap();
    assert_eq!(r1, r1b);
    let snap = registry.snapshot();
    assert!(snap.counter("tsdb.cache.hits", &[]).unwrap_or(0) >= 1);

    // A second cell (different frequency → different timestamps) writes
    // the same measurements: the cached entry must be invalidated.
    let row2 = pmove_bench::table3::run_cell_into(&db, Some(registry.clone()), "icl", 16.0, 4);
    let r2 = db.query_parsed(&q).unwrap();
    let fresh = db.query_with_mode(&q, ExecMode::Sequential).unwrap();
    assert_eq!(r2, fresh, "cached path served stale rows");
    assert!(
        r2.rows.len() > r1.rows.len(),
        "second cell should add rows ({} vs {})",
        r2.rows.len(),
        r1.rows.len()
    );
    let snap = registry.snapshot();
    assert!(snap.counter("tsdb.cache.invalidations", &[]).unwrap_or(0) >= 1);

    // Conservation still balances over both cells' transport counters.
    let cell = ConservationCell {
        offered: snap
            .counter("pcp.transport.values_offered", &[])
            .unwrap_or(0),
        inserted: snap
            .counter("pcp.transport.values_inserted", &[])
            .unwrap_or(0),
        zeroed: snap
            .counter("pcp.transport.values_zeroed", &[])
            .unwrap_or(0),
        lost: snap.counter("pcp.transport.values_lost", &[]).unwrap_or(0),
    };
    assert!(cell.holds(), "imbalance {}", cell.imbalance());
    assert_eq!(cell.inserted + cell.zeroed, row1.inserted + row2.inserted);
}
