//! Pin the deterministic region of the causal-tracing reproduction to
//! its captured golden (`docs/results/tracing.txt`, everything before
//! the overhead marker), and assert the acceptance shape directly: the
//! fault-injected trace crosses the retry path, the quorum write fans
//! out to W replica spans nesting WAL group commit + shard ingest, the
//! critical-path analyzer attributes >= 90% of latency, and the induced
//! p99 regression pages at the same virtual timestamp every run.

use pmove_bench::tracing::{format, run, OVERHEAD_MARKER};

const GOLDEN: &str = include_str!("../../../docs/results/tracing.txt");

#[test]
fn tracing_report_matches_golden() {
    let rendered = format(&run());
    let expected = GOLDEN
        .split(OVERHEAD_MARKER)
        .next()
        .expect("golden contains the overhead marker")
        .trim_end_matches('\n');
    assert_eq!(
        rendered.trim_end_matches('\n'),
        expected,
        "deterministic tracing report drifted from docs/results/tracing.txt; \
         regenerate with `cargo run --release -p pmove-bench --bin tracing`"
    );
}

#[test]
fn tracing_report_has_the_acceptance_shape() {
    let r = run();

    // Resilient transport: the recovered trace crossed spill + retry and
    // re-entered the ingest path.
    for span in ["pcp.sample", "pcp.spill_park", "pcp.retry", "tsdb.ingest"] {
        assert!(
            r.resilient_tree.contains(span),
            "{span}\n{}",
            r.resilient_tree
        );
    }
    assert!(
        r.resilient_tree.contains("status=recovered"),
        "{}",
        r.resilient_tree
    );

    // Replicated path: quorum fan-out with at least W=2 acked replica
    // writes, each nesting the WAL group commit and the shard ingest.
    assert!(
        r.replicated_tree.contains("repl.quorum_write"),
        "{}",
        r.replicated_tree
    );
    let acked = r.replicated_tree.matches("repl.replica_write").count();
    assert!(
        acked >= 2,
        "expected >= W replica spans\n{}",
        r.replicated_tree
    );
    for span in ["store.wal.group_commit", "tsdb.shard_ingest"] {
        assert!(
            r.replicated_tree.contains(span),
            "{span}\n{}",
            r.replicated_tree
        );
    }

    // Critical path + attribution floor.
    assert!(
        r.critical_path.contains("critical path"),
        "{}",
        r.critical_path
    );
    assert!(
        r.attributed >= 0.90,
        "analyzer attributed {:.2}% < 90%",
        r.attributed * 100.0
    );

    // The induced regression pages, at a virtual-clock timestamp.
    assert!(r.paged, "{}", r.slo_timeline);
    assert!(
        r.slo_timeline
            .contains("t=3000000000ns ingest_p99 ok -> page"),
        "{}",
        r.slo_timeline
    );
}
