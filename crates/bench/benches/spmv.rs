//! Criterion benches: real SpMV implementations across matrix classes and
//! reorderings — the host-side performance companion to Figs. 7/8.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pmove_spmv::merge::spmv_merge;
use pmove_spmv::reorder::Reordering;
use pmove_spmv::row::{spmv_row_parallel, spmv_seq};
use pmove_spmv::suite::SuiteMatrix;
use pmove_spmv::verify::test_vector;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_algorithms");
    group.sample_size(20);
    for m in [SuiteMatrix::Hugetrace00020, SuiteMatrix::HumanGene1] {
        let a = m.generate(0.5);
        let x = test_vector(a.cols);
        let mut y = vec![0.0; a.rows];
        group.bench_with_input(BenchmarkId::new("seq", m.name()), &a, |b, a| {
            b.iter(|| spmv_seq(black_box(a), &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("row_parallel", m.name()), &a, |b, a| {
            b.iter(|| spmv_row_parallel(black_box(a), &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("merge", m.name()), &a, |b, a| {
            b.iter(|| spmv_merge(black_box(a), &x, &mut y, 16))
        });
    }
    group.finish();
}

fn bench_reorderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_reorderings");
    group.sample_size(20);
    let base = SuiteMatrix::Hugetrace00020.generate(0.5);
    for strat in [
        Reordering::None,
        Reordering::Rcm,
        Reordering::Degree,
        Reordering::Random(7),
    ] {
        let a = strat.apply(&base);
        let x = test_vector(a.cols);
        let mut y = vec![0.0; a.rows];
        group.bench_function(BenchmarkId::new("row_parallel", strat.label()), |b| {
            b.iter(|| spmv_row_parallel(black_box(&a), &x, &mut y))
        });
    }
    group.finish();
}

fn bench_rcm_itself(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder_cost");
    group.sample_size(10);
    let a = SuiteMatrix::Hugetrace00020.generate(0.5);
    group.bench_function("rcm_permutation", |b| {
        b.iter(|| pmove_spmv::reorder::rcm_permutation(black_box(&a)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_reorderings,
    bench_rcm_itself
);
criterion_main!(benches);
