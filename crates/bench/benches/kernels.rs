//! Criterion benches: the runnable likwid-style kernels and HPCG — real
//! host-side numbers next to the simulated target figures.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pmove_kernels::hpcg;
use pmove_kernels::StreamKernel;

fn bench_stream_kernels(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("stream_kernels");
    group.sample_size(20);
    for k in StreamKernel::fig4_set() {
        group.throughput(Throughput::Bytes(k.op_counts(n as u64).total_bytes()));
        group.bench_function(k.name(), |b| b.iter(|| black_box(k.run(n))));
    }
    group.finish();
}

fn bench_hpcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpcg");
    group.sample_size(10);
    group.bench_function("solve_12cubed", |b| {
        b.iter(|| black_box(hpcg::run_hpcg(12, 12, 12, 25, 1e-8)))
    });
    group.bench_function("build_operator_16cubed", |b| {
        b.iter(|| black_box(hpcg::build_operator(16, 16, 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_stream_kernels, bench_hpcg);
criterion_main!(benches);
