//! Criterion benches: storage-engine hot paths — group commit, chunk
//! flush, and crash recovery (WAL replay vs chunk load).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmove_tsdb::store::{ColumnValue, MemDisk, RowRecord, StoreOptions, TsStore, Vfs};
use std::sync::Arc;

fn rows(n: usize) -> Vec<RowRecord> {
    (0..n)
        .map(|i| {
            RowRecord::new(
                format!("perfevent_hwcounters_cycles,tag=obs{}", i % 4),
                format!("_cpu{}", i % 16),
                (i as i64) * 1_000,
                ColumnValue::F64(1e9 + i as f64),
            )
        })
        .collect()
}

fn manual_opts() -> StoreOptions {
    StoreOptions {
        flush_threshold_rows: usize::MAX,
        compact_min_chunks: usize::MAX,
    }
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_wal");
    for &batch in &[16usize, 256] {
        group.bench_function(format!("group_commit_{batch}_rows"), |b| {
            let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(1));
            let (mut store, _) = TsStore::open(vfs, manual_opts()).unwrap();
            let batch_rows = rows(batch);
            b.iter(|| {
                store.append(black_box(&batch_rows));
                store.commit().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    c.bench_function("store_flush_8k_rows", |b| {
        let payload = rows(8192);
        b.iter(|| {
            let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(2));
            let (mut store, _) = TsStore::open(vfs, manual_opts()).unwrap();
            store.append(&payload);
            store.commit().unwrap();
            black_box(store.flush().unwrap())
        })
    });
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");

    // A disk holding 8k rows only in the WAL.
    let wal_vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(3));
    {
        let (mut store, _) = TsStore::open(wal_vfs.clone(), manual_opts()).unwrap();
        store.append(&rows(8192));
        store.commit().unwrap();
    }
    group.bench_function("wal_replay_8k_rows", |b| {
        b.iter(|| TsStore::open(black_box(wal_vfs.clone()), manual_opts()).unwrap())
    });

    // The same rows frozen into one compressed chunk.
    let chunk_vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(4));
    {
        let (mut store, _) = TsStore::open(chunk_vfs.clone(), manual_opts()).unwrap();
        store.append(&rows(8192));
        store.commit().unwrap();
        store.flush().unwrap();
    }
    group.bench_function("chunk_load_8k_rows", |b| {
        b.iter(|| TsStore::open(black_box(chunk_vfs.clone()), manual_opts()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_group_commit, bench_flush, bench_recovery);
criterion_main!(benches);
