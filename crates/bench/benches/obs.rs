//! Criterion benches: the observability substrate's hot paths. These are
//! the operations sprinkled through the sampling/ingest loops, so their
//! cost bounds the instrumentation overhead budget (< 5 %, enforced by
//! `overhead_stays_bounded` in `crates/pcp`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmove_obs::{latency_buckets, Registry};

fn bench_counter(c: &mut Criterion) {
    let reg = Registry::new();
    let counter = reg.counter("bench.counter", &[("host", "skx")]);
    c.bench_function("obs_counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    c.bench_function("obs_counter_add", |b| {
        b.iter(|| black_box(&counter).add(black_box(88)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let reg = Registry::new();
    let hist = reg.histogram("bench.latency_ns", &[], latency_buckets());
    let mut i = 0u64;
    c.bench_function("obs_histogram_record", |b| {
        b.iter(|| {
            hist.record(black_box(1_000 + (i % 977) * 13));
            i += 1;
        })
    });
}

fn bench_span(c: &mut Criterion) {
    let reg = Registry::new();
    let mut t = 0u64;
    c.bench_function("obs_span_enter_exit", |b| {
        b.iter(|| {
            let guard = reg.span_enter(black_box("bench.span"), t);
            guard.finish(t + 1_000);
            t += 1_000;
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let reg = Registry::new();
    for i in 0..32 {
        reg.counter("bench.c", &[("i", &i.to_string())]).add(i);
    }
    reg.histogram("bench.h", &[], latency_buckets()).record(500);
    reg.record_span("bench.s", 0, 10);
    c.bench_function("obs_registry_snapshot_32_metrics", |b| {
        b.iter(|| black_box(reg.snapshot()))
    });
}

criterion_group!(
    benches,
    bench_counter,
    bench_histogram,
    bench_span,
    bench_snapshot
);
criterion_main!(benches);
