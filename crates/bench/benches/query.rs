//! Criterion benches: the parallel sharded query engine vs the
//! sequential reference — 1 vs N threads, cold vs warm result cache —
//! over the Table III telemetry corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmove_bench::query::{build_corpus, workload};
use pmove_tsdb::ExecMode;

fn bench_exec_modes(c: &mut Criterion) {
    let db = build_corpus();
    let queries = workload(&db);
    let mut group = c.benchmark_group("query_engine");

    group.bench_function("sequential_cold", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(db.query_arc_with_mode(q, ExecMode::Sequential).unwrap());
            }
        })
    });
    for threads in [1usize, 2, 8] {
        group.bench_function(format!("parallel_{threads}_cold"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(
                        db.query_arc_with_mode(q, ExecMode::Parallel(threads))
                            .unwrap(),
                    );
                }
            })
        });
    }

    db.set_query_cache_capacity(queries.len() + 16);
    // Fill pass, then every timed iteration serves from cache.
    for q in &queries {
        let _ = db.query_arc_with_mode(q, ExecMode::Parallel(8)).unwrap();
    }
    group.bench_function("parallel_8_warm_cache", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(db.query_arc_with_mode(q, ExecMode::Parallel(8)).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exec_modes);
criterion_main!(benches);
