//! Criterion benches: knowledge-base construction, persistence, views and
//! abstraction-layer evaluation — the framework's own overheads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmove_core::abstraction::presets::builtin_layer;
use pmove_core::kb::builder::build_kb;
use pmove_core::kb::{store, views};
use pmove_core::probe::ProbeReport;
use pmove_hwsim::Machine;

fn bench_kb_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kb");
    group.sample_size(10);
    let skx = Machine::preset("skx").unwrap();
    let report = ProbeReport::collect(&skx);
    group.bench_function("probe_skx", |b| {
        b.iter(|| ProbeReport::collect(black_box(&skx)))
    });
    group.bench_function("build_kb_skx", |b| {
        b.iter(|| build_kb(black_box(&report)).unwrap())
    });
    let kb = build_kb(&report).unwrap();
    group.bench_function("insert_kb_docdb", |b| {
        b.iter(|| {
            let db = pmove_docdb::Database::new("bench");
            store::insert_kb(&db, black_box(&kb)).unwrap()
        })
    });
    group.bench_function("subtree_view_socket", |b| {
        let socket = kb.by_name("socket0").unwrap().id.clone();
        b.iter(|| views::subtree(black_box(&kb), &socket))
    });
    group.bench_function("level_view_threads", |b| {
        b.iter(|| views::level(black_box(&kb), "thread"))
    });
    group.finish();
}

fn bench_abstraction(c: &mut Criterion) {
    let layer = builtin_layer();
    c.bench_function("abstraction_formula_eval", |b| {
        b.iter(|| {
            layer
                .evaluate(black_box("skx"), "TOTAL_DP_FLOPS", |_| Some(1234.5))
                .unwrap()
        })
    });
}

fn bench_docdb(c: &mut Criterion) {
    use serde_json::json;
    let db = pmove_docdb::Database::new("bench");
    let col = db.collection("docs");
    col.create_index("@type");
    for i in 0..5000 {
        col.insert_one(json!({
            "@type": if i % 3 == 0 { "Interface" } else { "Telemetry" },
            "name": format!("c{i}"),
            "value": i,
        }))
        .unwrap();
    }
    let mut group = c.benchmark_group("docdb");
    group.bench_function("indexed_find", |b| {
        b.iter(|| col.find(black_box(&json!({"@type": "Interface"}))).unwrap())
    });
    group.bench_function("scan_find_range", |b| {
        b.iter(|| {
            col.find(black_box(&json!({"value": {"$gt": 4900}})))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kb_build, bench_abstraction, bench_docdb);
criterion_main!(benches);
