//! Criterion benches: time-series database ingest and query paths — the
//! DB-side capacity that Table III's loss model abstracts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmove_tsdb::{Database, Point};

fn make_point(i: usize, fields: usize) -> Point {
    let mut p = Point::new("perfevent_hwcounters_bench")
        .tag("tag", format!("obs{}", i % 4))
        .timestamp(i as i64);
    for f in 0..fields {
        p = p.field(format!("_cpu{f}"), (i * f) as f64);
    }
    p
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb_ingest");
    for &fields in &[16usize, 88] {
        group.bench_function(format!("write_point_{fields}_fields"), |b| {
            let db = Database::new("bench");
            let mut i = 0usize;
            b.iter(|| {
                db.write_point(black_box(make_point(i, fields))).unwrap();
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let db = Database::new("bench");
    for i in 0..10_000 {
        db.write_point(make_point(i, 16)).unwrap();
    }
    let mut group = c.benchmark_group("tsdb_query");
    group.bench_function("tag_filtered_select", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT \"_cpu0\", \"_cpu1\" FROM \"perfevent_hwcounters_bench\" WHERE tag='obs1'",
            ))
            .unwrap()
        })
    });
    group.bench_function("aggregated_group_by", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT mean(\"_cpu0\") FROM \"perfevent_hwcounters_bench\" WHERE tag='obs1' GROUP BY time(1000)",
            ))
            .unwrap()
        })
    });
    group.finish();
}

fn bench_line_protocol(c: &mut Criterion) {
    let line = pmove_tsdb::line_protocol::render(&make_point(7, 16));
    c.bench_function("line_protocol_parse", |b| {
        b.iter(|| pmove_tsdb::line_protocol::parse(black_box(&line)).unwrap())
    });
}

criterion_group!(benches, bench_ingest, bench_query, bench_line_protocol);
criterion_main!(benches);
