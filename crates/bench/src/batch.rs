//! Batch-ingest and rollup-tier benchmark — the PR's two acceptance
//! gates:
//!
//! * **Ingest**: 1M+ series (×[`POINTS_PER_SERIES`] samples, a
//!   series-major backfill stream) spread across the 16 hash shards,
//!   pushed through the per-shard [`pmove_tsdb::BatchIngester`] queues
//!   (size-triggered flushes, one group-commit WAL frame per batch)
//!   against the same stream written row-at-a-time, both over a durable
//!   `MemDisk` with identical bulk-load store options. Only the write
//!   calls are timed — point construction is identical for both paths
//!   and excluded. Gate: batched points/sec ≥ 3× row-at-a-time.
//! * **Query**: a 1-hour aggregate window (`GROUP BY time(60s)`) over a
//!   hot measurement, answered from the materialized 60 s rollup tier vs
//!   the raw scan on an identical tier-less database. Results are
//!   bit-compared before anything is timed. Gate: tier-served speedup
//!   ≥ 5× raw.
//!
//! The rollup conservation audit (tier rows ≥ raw rows, dirty queue
//! drained) is checked alongside, so the speedup can never come from
//! dropping points.

use pmove_obs::Registry;
use pmove_tsdb::store::{MemDisk, StoreOptions, Vfs};
use pmove_tsdb::{
    BatchConfig, BatchIngester, ColumnarBatch, Database, ExecMode, FieldValue, Point, Query,
    RollupConfig,
};
use std::sync::Arc;
use std::time::Instant;

/// Batch size the ingest queues flush at (points per WAL frame).
pub const BATCH_POINTS: usize = 8_192;
/// Full-scale series count (smoke runs shrink by `scale`).
pub const FULL_SERIES: usize = 1_050_000;
/// Samples per series in the backfill stream. Series-major order, so a
/// series' samples usually share a batch and the columnar path interns
/// the series once for all of them.
pub const POINTS_PER_SERIES: usize = 4;
/// Hot-measurement layout: `HOT_SERIES` series × `HOT_POINTS` points at
/// 1 s spacing — one hour of telemetry for the query gate.
pub const HOT_SERIES: usize = 10;
/// Points per hot series (1 Hz × 1 h).
pub const HOT_POINTS: usize = 3_600;
/// Acceptance gate on the ingest path.
pub const INGEST_SPEEDUP_FLOOR: f64 = 3.0;
/// Acceptance gate on the tier-served query path.
pub const ROLLUP_SPEEDUP_FLOOR: f64 = 5.0;

/// Everything the bin prints, gates on, and pins.
#[derive(Debug, Clone)]
pub struct BatchBenchReport {
    /// Unique series ingested in the throughput phase.
    pub series: usize,
    /// Points ingested per path in the throughput phase.
    pub points: usize,
    /// Distinct shards the ingest stream spreads over (must be all 16).
    pub shards: usize,
    /// Row-at-a-time ingest CPU wall time, milliseconds.
    pub row_wall_ms: f64,
    /// Row-at-a-time modeled WAL sync time (one padded block per
    /// point on the paper's SATA device), milliseconds.
    pub row_sync_ms: f64,
    /// Batched ingest CPU wall time, milliseconds.
    pub batch_wall_ms: f64,
    /// Batched modeled WAL sync time (one group commit per batch),
    /// milliseconds.
    pub batch_sync_ms: f64,
    /// Row-at-a-time points/sec over wall + modeled sync.
    pub row_pps: f64,
    /// Batched points/sec over wall + modeled sync.
    pub batch_pps: f64,
    /// WAL frames the batched path committed.
    pub wal_frames: u64,
    /// Timed passes per query configuration.
    pub reps: usize,
    /// Raw-scan total for the 1 h aggregate, milliseconds.
    pub raw_query_ms: f64,
    /// Tier-served total for the same aggregate, milliseconds.
    pub tier_query_ms: f64,
    /// Rows scanned per raw pass (all hot rows).
    pub rows_per_raw_pass: u64,
    /// Tier cells behind each tier-served pass.
    pub tier_cells: u64,
    /// Tier-vs-raw results were bit-identical before timing.
    pub bit_identical: bool,
    /// Rollup conservation audit balanced after the tick.
    pub audit_conserved: bool,
}

impl BatchBenchReport {
    /// Batched over row-at-a-time points/sec.
    pub fn ingest_speedup(&self) -> f64 {
        self.batch_pps / self.row_pps
    }

    /// Raw-scan over tier-served wall time.
    pub fn rollup_speedup(&self) -> f64 {
        self.raw_query_ms / self.tier_query_ms
    }
}

/// The backfill stream: for each series (unique tag), its
/// `POINTS_PER_SERIES` samples back to back. Both ingest paths consume
/// the identical sequence.
fn ingest_points(series: usize) -> impl Iterator<Item = Point> {
    (0..series).flat_map(|s| {
        (0..POINTS_PER_SERIES).map(move |k| {
            Point::new("ingest")
                .tag("s", format!("{s:07}"))
                .field("v", FieldValue::Float(s as f64 * 0.5 + k as f64 * 0.25))
                .timestamp(k as i64 * 1_000_000_000)
        })
    })
}

fn hot_points() -> Vec<Point> {
    let mut points = Vec::with_capacity(HOT_SERIES * HOT_POINTS);
    for t in 0..HOT_POINTS {
        for s in 0..HOT_SERIES {
            points.push(
                Point::new("hot")
                    .tag("cpu", format!("{s:02}"))
                    .field("v", FieldValue::Float((t * 31 + s * 7) as f64 * 0.125))
                    .timestamp(t as i64 * 1_000_000_000),
            );
        }
    }
    points
}

/// Durable database over a seeded in-memory disk, tuned for bulk load
/// (large memtable, compaction deferred past the run) — identically for
/// both paths, so the comparison isolates the write path itself. The
/// registry captures the `wal.commit_ns` histogram, whose sum is the
/// path's total modeled sync time on the paper's SATA device.
fn durable_db(name: &str, seed: u64) -> (Database, Arc<Registry>) {
    let vfs: Arc<dyn Vfs> = Arc::new(MemDisk::new(seed));
    let opts = StoreOptions {
        flush_threshold_rows: 262_144,
        compact_min_chunks: usize::MAX,
    };
    let registry = Registry::shared();
    let (db, _) = Database::open_with_obs(name, vfs, opts, registry.clone()).unwrap();
    (db, registry)
}

/// Total modeled WAL group-commit time recorded by `db` so far, ns.
fn modeled_commit_total(registry: &Registry, db: &str) -> u64 {
    registry
        .snapshot()
        .histogram("wal.commit_ns", &[("db", db)])
        .map_or(0, |h| h.sum)
}

fn canon(r: &pmove_tsdb::QueryResult) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{:?}\n", r.columns);
    for row in &r.rows {
        let _ = write!(s, "{}:", row.timestamp);
        for (k, v) in &row.values {
            match v {
                Some(x) => {
                    let _ = write!(s, " {k}={:016x}", x.to_bits());
                }
                None => {
                    let _ = write!(s, " {k}=null");
                }
            }
        }
        s.push('\n');
    }
    s
}

/// Run the benchmark. `scale` shrinks the series count for smoke runs
/// (1.0 = the full 1M-series experiment).
pub fn run(scale: f64) -> BatchBenchReport {
    let series = ((FULL_SERIES as f64 * scale) as usize).max(8_192);
    let points = series * POINTS_PER_SERIES;
    let reps = if scale >= 1.0 { 200 } else { 40 };

    // Shard spread of the stream, measured on a sample batch. Batches
    // flushed by the per-shard queues are single-shard by construction;
    // the gate is about the workload covering every shard.
    let sample: Vec<Point> = ingest_points(series).take(BATCH_POINTS).collect();
    let shards = ColumnarBatch::build(sample).shard_spread();

    // --- Ingest phase: row-at-a-time baseline -------------------------
    // Points are constructed chunk by chunk outside the timed region;
    // only the write calls accumulate wall time. Total path time is
    // wall (CPU) + modeled device time for every WAL sync.
    let (row_db, row_reg) = durable_db("row", 1);
    let mut row_wall_ns: u128 = 0;
    let mut stream = ingest_points(series);
    loop {
        let chunk: Vec<Point> = stream.by_ref().take(BATCH_POINTS).collect();
        if chunk.is_empty() {
            break;
        }
        let t = Instant::now();
        for p in chunk {
            row_db.write_point(p).unwrap();
        }
        row_wall_ns += t.elapsed().as_nanos();
    }
    assert_eq!(row_db.total_rows(), points);
    let row_sync_ns = modeled_commit_total(&row_reg, "row");
    // Free the baseline's memtable + WAL bytes before the batch build.
    drop(row_db);

    // --- Ingest phase: columnar batches -------------------------------
    let (batch_db, batch_reg) = durable_db("batch", 2);
    let mut ingester = BatchIngester::new(BatchConfig {
        max_points: BATCH_POINTS,
        max_age: 1_000_000_000,
    });
    let mut wal_frames = 0u64;
    let mut batch_wall_ns: u128 = 0;
    let mut stream = ingest_points(series);
    let mut now = 0i64;
    loop {
        let chunk: Vec<Point> = stream.by_ref().take(BATCH_POINTS).collect();
        if chunk.is_empty() {
            break;
        }
        let t = Instant::now();
        for p in chunk {
            now += 1;
            if let Some(ready) = ingester.offer(p, now) {
                let out = batch_db.write_batch(ready).unwrap();
                assert!(out.all_accepted());
                wal_frames += 1;
            }
        }
        batch_wall_ns += t.elapsed().as_nanos();
    }
    let t = Instant::now();
    for ready in ingester.flush_all() {
        let out = batch_db.write_batch(ready).unwrap();
        assert!(out.all_accepted());
        wal_frames += 1;
    }
    batch_wall_ns += t.elapsed().as_nanos();
    assert_eq!(batch_db.total_rows(), points);
    let batch_sync_ns = modeled_commit_total(&batch_reg, "batch");
    drop(batch_db);

    // --- Query phase: raw scan vs materialized 60 s tier ---------------
    let hot = hot_points();
    let raw_db = Database::new("raw");
    raw_db.set_exec_mode(ExecMode::Parallel(8));
    raw_db.set_query_cache_capacity(0);
    let tier_db = Database::new("tier");
    tier_db.set_exec_mode(ExecMode::Parallel(8));
    tier_db.set_query_cache_capacity(0);
    tier_db.enable_rollups(RollupConfig::default());
    for chunk in hot.chunks(BATCH_POINTS) {
        assert!(raw_db.write_batch(chunk.to_vec()).unwrap().all_accepted());
        assert!(tier_db.write_batch(chunk.to_vec()).unwrap().all_accepted());
    }
    let report = tier_db.rollup_tick().unwrap();
    assert!(report.rows_folded > 0);
    let audit = tier_db.rollup_audit().unwrap();

    // The 1 h dashboard aggregate: count/max per 60 s bucket.
    let q = Query::parse(
        "SELECT count(\"v\"), max(\"v\") FROM \"hot\" \
         WHERE time >= 0 AND time < 3600000000000 GROUP BY time(60000000000)",
    )
    .unwrap();
    let bit_identical =
        canon(&tier_db.query_parsed(&q).unwrap()) == canon(&raw_db.query_parsed(&q).unwrap());

    let time_pass = |db: &Database| -> u128 {
        let t = Instant::now();
        for _ in 0..reps {
            let _ = std::hint::black_box(db.query_parsed(&q).unwrap());
        }
        t.elapsed().as_nanos()
    };
    let raw_query_ns = time_pass(&raw_db);
    let tier_query_ns = time_pass(&tier_db);

    let row_total_ns = row_wall_ns as f64 + row_sync_ns as f64;
    let batch_total_ns = batch_wall_ns as f64 + batch_sync_ns as f64;
    BatchBenchReport {
        series,
        points,
        shards,
        row_wall_ms: row_wall_ns as f64 / 1e6,
        row_sync_ms: row_sync_ns as f64 / 1e6,
        batch_wall_ms: batch_wall_ns as f64 / 1e6,
        batch_sync_ms: batch_sync_ns as f64 / 1e6,
        row_pps: points as f64 / (row_total_ns / 1e9),
        batch_pps: points as f64 / (batch_total_ns / 1e9),
        wal_frames,
        reps,
        raw_query_ms: raw_query_ns as f64 / 1e6,
        tier_query_ms: tier_query_ns as f64 / 1e6,
        rows_per_raw_pass: (HOT_SERIES * HOT_POINTS) as u64,
        tier_cells: tier_db.rollup_cell_count(),
        bit_identical,
        audit_conserved: audit.conserved(),
    }
}

/// Render the report for `docs/results/batch.txt`.
pub fn format(r: &BatchBenchReport) -> String {
    let mut out = String::from("BATCH INGEST + ROLLUP TIERS\n\n");
    out.push_str(&format!(
        "ingest: {} series x {POINTS_PER_SERIES} samples = {} points, durable MemDisk,\n        {} WAL frames, stream spread over {} shards\n",
        r.series, r.points, r.wal_frames, r.shards
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>14} {:>14}\n",
        "path", "cpu_ms", "disk_sync_ms", "points/sec"
    ));
    out.push_str(&format!(
        "{:<18} {:>12.1} {:>14.1} {:>14.0}\n",
        "row-at-a-time", r.row_wall_ms, r.row_sync_ms, r.row_pps
    ));
    out.push_str(&format!(
        "{:<18} {:>12.1} {:>14.1} {:>14.0}\n",
        "columnar batches", r.batch_wall_ms, r.batch_sync_ms, r.batch_pps
    ));
    out.push_str(&format!(
        "ingest speedup: {:.2}x (gate >= {INGEST_SPEEDUP_FLOOR}x)\n\n",
        r.ingest_speedup()
    ));
    out.push_str(&format!(
        "query: 1h count/max per 60s bucket over {} hot rows, {} passes\n",
        r.rows_per_raw_pass, r.reps
    ));
    out.push_str(&format!(
        "{:<24} {:>12}\n{:<24} {:>12.2}\n{:<24} {:>12.2}\n",
        "path", "total_ms", "raw scan", r.raw_query_ms, "60s rollup tier", r.tier_query_ms
    ));
    out.push_str(&format!(
        "rollup speedup: {:.2}x (gate >= {ROLLUP_SPEEDUP_FLOOR}x), {} tier cells\n",
        r.rollup_speedup(),
        r.tier_cells
    ));
    out.push_str(&format!(
        "tier results bit-identical to raw: {}; rollup audit conserved: {}\n",
        r.bit_identical, r.audit_conserved
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_meets_the_gates() {
        let r = run(0.01);
        assert!(r.series >= 8_192);
        assert_eq!(r.points, r.series * POINTS_PER_SERIES);
        assert_eq!(r.shards, pmove_tsdb::DEFAULT_SHARD_COUNT);
        assert!(r.bit_identical, "tier-served rows diverged from raw");
        assert!(r.audit_conserved, "rollup audit unbalanced");
        assert!(
            r.ingest_speedup() >= INGEST_SPEEDUP_FLOOR,
            "ingest speedup {:.2}x",
            r.ingest_speedup()
        );
        assert!(
            r.rollup_speedup() >= ROLLUP_SPEEDUP_FLOOR,
            "rollup speedup {:.2}x",
            r.rollup_speedup()
        );
        let text = format(&r);
        assert!(text.contains("columnar batches"));
        assert!(text.contains("rollup speedup"));
    }
}
