//! Fig. 8: live-CARM panel during MKL and Merge SpMV on hugetrace-00020,
//! original and RCM-reordered, on the CSL system.
//!
//! Expected placements: for each algorithm the RCM run yields higher
//! performance than the original; MKL sits above Merge (AVX-512 vs
//! scalar).

use pmove_core::carm::microbench::construct_carm;
use pmove_core::carm::{CarmModel, LiveCarm, LiveCarmPoint};
use pmove_core::profiles::spmv_profile;
use pmove_core::telemetry::pinning::PinningStrategy;
use pmove_core::telemetry::scenario_b::ProfileRequest;
use pmove_core::PMoveDaemon;
use pmove_spmv::profile::SpmvAlgorithm;
use pmove_spmv::reorder::Reordering;
use pmove_spmv::suite::SuiteMatrix;

/// One phase of the Fig. 8 panel (the colored squares in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Algorithm label (`mkl` / `merge`).
    pub algo: String,
    /// Reordering label (`none` / `rcm`).
    pub reorder: String,
    /// Live-CARM trajectory of this phase.
    pub points: Vec<LiveCarmPoint>,
    /// Mean achieved GFLOP/s over the phase.
    pub mean_gflops: f64,
    /// Mean arithmetic intensity over the phase.
    pub mean_ai: f64,
}

/// Experiment output: the CARM plus the four phases.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// The constructed CARM of the target.
    pub carm: CarmModel,
    /// The four execution phases.
    pub phases: Vec<Phase>,
}

impl Fig8Result {
    /// Mean GFLOP/s of one (algo, reorder) phase.
    pub fn gflops_of(&self, algo: &str, reorder: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.algo == algo && p.reorder == reorder)
            .map(|p| p.mean_gflops)
            .unwrap_or(0.0)
    }
}

/// Run the experiment at a matrix scale.
pub fn run(scale: f64) -> Fig8Result {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("csl preset");
    let threads = daemon.machine.spec.total_cores();
    let carm = construct_carm(&daemon.machine, threads);
    let layer = daemon.layer.clone();
    let live = LiveCarm::new(&layer, "csl");

    let matrix = SuiteMatrix::Hugetrace00020.generate(scale);
    let mut phases = Vec::new();
    for reorder in [Reordering::None, Reordering::Rcm] {
        let a = reorder.apply(&matrix);
        for algo in [SpmvAlgorithm::Mkl, SpmvAlgorithm::Merge] {
            let per_iter_bytes = (a.nnz() as f64 * 2.5 + a.rows as f64) * 8.0;
            let iterations =
                ((daemon.machine.spec.dram_bw_total() * 2.0 / per_iter_bytes) as u64).max(1);
            let request = ProfileRequest {
                profile: spmv_profile(&a, algo, &daemon.machine.spec, threads, iterations),
                command: format!("spmv --algo {} --reorder {}", algo.label(), reorder.label()),
                generic_events: vec!["TOTAL_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
                freq_hz: 8.0,
                pinning: PinningStrategy::Balanced,
            };
            let outcome = daemon.profile(&request).expect("profiling succeeds");
            let points = live
                .trajectory(&daemon.ts, &outcome.observation.id, 0.25)
                .expect("trajectory");
            let (mean_ai, mean_gflops) = crate::fig9::steady_state_means(&points);
            phases.push(Phase {
                algo: algo.label().to_string(),
                reorder: reorder.label().to_string(),
                points,
                mean_gflops,
                mean_ai,
            });
        }
    }
    Fig8Result { carm, phases }
}

/// Render the panel (summary plus ASCII plot).
pub fn format(r: &Fig8Result) -> String {
    let mut out = String::from("FIG 8: live-CARM during SpMV (hugetrace-00020, CSL)\n");
    for p in &r.phases {
        out.push_str(&format!(
            "  {:<6} {:<5}  mean AI {:.4} flops/B, mean {:.1} GF/s, {} samples\n",
            p.algo,
            p.reorder,
            p.mean_ai,
            p.mean_gflops,
            p.points.len()
        ));
    }
    let all: Vec<LiveCarmPoint> = r.phases.iter().flat_map(|p| p.points.clone()).collect();
    out.push_str(&pmove_core::carm::plot::render(&r.carm, &all, 72, 20));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static Fig8Result {
        static CACHE: OnceLock<Fig8Result> = OnceLock::new();
        CACHE.get_or_init(|| run(2.0))
    }

    #[test]
    fn rcm_yields_higher_performance_per_algorithm() {
        let r = result();
        assert!(
            r.gflops_of("mkl", "rcm") > r.gflops_of("mkl", "none"),
            "mkl: rcm {} vs none {}",
            r.gflops_of("mkl", "rcm"),
            r.gflops_of("mkl", "none")
        );
        assert!(r.gflops_of("merge", "rcm") > r.gflops_of("merge", "none"));
    }

    #[test]
    fn mkl_above_merge() {
        let r = result();
        assert!(r.gflops_of("mkl", "none") > r.gflops_of("merge", "none"));
        assert!(r.gflops_of("mkl", "rcm") > r.gflops_of("merge", "rcm"));
    }

    #[test]
    fn points_sit_under_the_carm_roofs() {
        let r = result();
        for p in &r.phases {
            for pt in &p.points {
                if pt.gflops <= 0.0 {
                    continue;
                }
                // Every live point must be attainable under some roof.
                assert!(
                    r.carm.bounding_level(pt.ai, pt.gflops).is_some(),
                    "point ({}, {}) above all roofs",
                    pt.ai,
                    pt.gflops
                );
            }
        }
    }

    #[test]
    fn spmv_ai_is_low_as_expected() {
        // SpMV intensity sits well below 1 flop/byte.
        let r = result();
        for p in &r.phases {
            assert!(p.mean_ai > 0.01 && p.mean_ai < 0.5, "{p:?}");
        }
    }

    #[test]
    fn format_renders_plot() {
        let text = format(result());
        assert!(text.contains("live-CARM"));
        assert!(text.contains("●"));
    }
}
