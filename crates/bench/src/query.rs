//! Query-engine benchmark: the Table III telemetry corpus queried through
//! the sequential reference executor and the parallel sharded engine at
//! 1/2/8 threads, cold and with a warm result cache.
//!
//! The corpus is real shipped telemetry — both Table III hosts at 32 Hz ×
//! 6 metrics (the lossiest cells) — and the workload mirrors what the
//! dashboards and live-CARM panels actually issue: raw field scans,
//! per-field windowed sums, and min/max/mean summaries per measurement.
//! Every mode's results are bit-compared against the sequential
//! reference before its timing counts.

use pmove_tsdb::aggregate::AggregateFn;
use pmove_tsdb::query::Projection;
use pmove_tsdb::{Database, ExecMode, Query};
use std::time::Instant;

/// Timing for one engine configuration.
#[derive(Debug, Clone)]
pub struct ModeTiming {
    /// Display label.
    pub label: String,
    /// Total wall time for `reps` passes over the workload, milliseconds.
    pub total_ms: f64,
    /// Sequential-cold total over this total.
    pub speedup: f64,
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct QueryBenchReport {
    /// Number of distinct queries in the workload.
    pub queries: usize,
    /// Passes over the workload per timed mode.
    pub reps: usize,
    /// Rows in the corpus.
    pub corpus_rows: usize,
    /// One timing per mode, sequential-cold first.
    pub modes: Vec<ModeTiming>,
    /// Cache hits observed during the warm pass.
    pub cache_hits: u64,
    /// Cache misses (cold fills) observed before the warm pass.
    pub cache_misses: u64,
}

impl QueryBenchReport {
    /// Speedup of the best engine configuration over sequential cold.
    pub fn best_speedup(&self) -> f64 {
        self.modes.iter().map(|m| m.speedup).fold(0.0, f64::max)
    }

    /// Warm-cache hit rate over the warm pass.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Build the corpus: both Table III hosts' lossiest cells shipped into
/// one database (optionally observed, so cache counters are readable).
pub fn build_corpus_with(registry: Option<std::sync::Arc<pmove_obs::Registry>>) -> Database {
    let db = match registry {
        Some(reg) => Database::with_obs("qbench", reg),
        None => Database::new("qbench"),
    };
    db.set_query_cache_capacity(0);
    for host in ["skx", "icl"] {
        crate::table3::run_cell_into(&db, None, host, 32.0, 6);
    }
    db
}

/// [`build_corpus_with`] without observability.
pub fn build_corpus() -> Database {
    build_corpus_with(None)
}

/// The dashboard-shaped query workload over every telemetry measurement.
pub fn workload(db: &Database) -> Vec<Query> {
    let mut queries = Vec::new();
    for measurement in db.measurements() {
        if !measurement.starts_with("perfevent_hwcounters_") {
            continue;
        }
        let raw = Query {
            projections: vec![Projection::Wildcard],
            measurement: measurement.clone(),
            tag_filters: Vec::new(),
            time_start: None,
            time_end: None,
            group_by_time: None,
        };
        let columns = db
            .query_with_mode(&raw, ExecMode::Sequential)
            .map(|r| r.columns)
            .unwrap_or_default();
        queries.push(raw);
        // Live-CARM shape: per-field windowed sums (125 ms buckets).
        for field in &columns {
            queries.push(Query {
                projections: vec![Projection::Aggregate(AggregateFn::Sum, field.clone())],
                measurement: measurement.clone(),
                tag_filters: Vec::new(),
                time_start: None,
                time_end: None,
                group_by_time: Some(125_000_000),
            });
        }
        // Summary panel shape: min/max/mean of the first field over a
        // bounded window.
        if let Some(field) = columns.first() {
            queries.push(Query {
                projections: vec![
                    Projection::Aggregate(AggregateFn::Min, field.clone()),
                    Projection::Aggregate(AggregateFn::Max, field.clone()),
                    Projection::Aggregate(AggregateFn::Mean, field.clone()),
                ],
                measurement: measurement.clone(),
                tag_filters: Vec::new(),
                time_start: Some(0),
                time_end: Some(5_000_000_000),
                group_by_time: None,
            });
        }
    }
    queries
}

fn canon(r: &pmove_tsdb::QueryResult) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{:?}\n", r.columns);
    for row in &r.rows {
        let _ = write!(s, "{}:", row.timestamp);
        for (k, v) in &row.values {
            match v {
                Some(x) => {
                    let _ = write!(s, " {k}={:016x}", x.to_bits());
                }
                None => {
                    let _ = write!(s, " {k}=null");
                }
            }
        }
        s.push('\n');
    }
    s
}

/// One timed pass: every query through `mode`, results returned shared
/// (no defensive clone) exactly as the dashboard render path consumes
/// them.
fn pass(db: &Database, queries: &[Query], mode: ExecMode) -> u128 {
    let t = Instant::now();
    for q in queries {
        let _ = std::hint::black_box(db.query_arc_with_mode(q, mode).unwrap());
    }
    t.elapsed().as_nanos()
}

/// Run the benchmark. `reps` passes per mode (the workload itself is
/// ~100 queries over the two-host corpus).
pub fn run(reps: usize) -> QueryBenchReport {
    let registry = pmove_obs::Registry::shared();
    let db = build_corpus_with(Some(registry.clone()));
    let queries = workload(&db);
    let corpus_rows = db.total_rows();

    // Bit-identity sanity gate before anything is timed.
    for q in &queries {
        let want = canon(&db.query_with_mode(q, ExecMode::Sequential).unwrap());
        for threads in [1, 2, 8] {
            let got = canon(&db.query_with_mode(q, ExecMode::Parallel(threads)).unwrap());
            assert_eq!(got, want, "mode divergence on {}", q.normalized());
        }
    }

    let mut modes = Vec::new();
    let seq: u128 = (0..reps)
        .map(|_| pass(&db, &queries, ExecMode::Sequential))
        .sum();
    modes.push(ModeTiming {
        label: "sequential cold".into(),
        total_ms: seq as f64 / 1e6,
        speedup: 1.0,
    });
    for threads in [1usize, 2, 8] {
        let t: u128 = (0..reps)
            .map(|_| pass(&db, &queries, ExecMode::Parallel(threads)))
            .sum();
        modes.push(ModeTiming {
            label: format!("parallel({threads}) cold"),
            total_ms: t as f64 / 1e6,
            speedup: seq as f64 / t as f64,
        });
    }

    // Warm cache: size it to the workload, fill once (uncounted), then
    // every timed pass serves from cache.
    db.set_query_cache_capacity(queries.len() + 16);
    let _fill = pass(&db, &queries, ExecMode::Parallel(8));
    let warm: u128 = (0..reps)
        .map(|_| pass(&db, &queries, ExecMode::Parallel(8)))
        .sum();
    modes.push(ModeTiming {
        label: "parallel(8) warm cache".into(),
        total_ms: warm as f64 / 1e6,
        speedup: seq as f64 / warm as f64,
    });

    let snap = registry.snapshot();
    QueryBenchReport {
        queries: queries.len(),
        reps,
        corpus_rows,
        modes,
        cache_hits: snap.counter("tsdb.cache.hits", &[]).unwrap_or(0),
        cache_misses: snap.counter("tsdb.cache.misses", &[]).unwrap_or(0),
    }
}

/// Render the report for `docs/results/query.txt`.
pub fn format(r: &QueryBenchReport) -> String {
    let mut out = String::from("QUERY ENGINE: Table III corpus (skx+icl @32Hz, 6 metrics)\n");
    out.push_str(&format!(
        "{} rows, {} queries/pass, {} passes/mode; all modes bit-identical to sequential\n\n",
        r.corpus_rows, r.queries, r.reps
    ));
    out.push_str(&format!(
        "{:<24} {:>10} {:>9}\n",
        "mode", "total_ms", "speedup"
    ));
    for m in &r.modes {
        out.push_str(&format!(
            "{:<24} {:>10.2} {:>8.2}x\n",
            m.label, m.total_ms, m.speedup
        ));
    }
    out.push_str(&format!(
        "\nwarm-cache pass: {} hits, {} cold fills, hit rate {:.1}%\n",
        r.cache_hits,
        r.cache_misses,
        100.0 * r.hit_rate()
    ));
    out.push_str(&format!("best mode speedup: {:.2}x\n", r.best_speedup()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_covers_every_telemetry_measurement() {
        let db = build_corpus();
        let queries = workload(&db);
        let telemetry = db
            .measurements()
            .iter()
            .filter(|m| m.starts_with("perfevent_hwcounters_"))
            .count();
        // Raw + summary + at least one per-field sum per measurement.
        assert!(telemetry >= 6, "corpus has {telemetry} measurements");
        assert!(queries.len() >= telemetry * 3);
    }

    #[test]
    fn report_formats_and_warm_cache_dominates() {
        let r = run(2);
        let text = format(&r);
        assert!(text.contains("sequential cold"));
        assert!(text.contains("parallel(8) warm cache"));
        // reps=2 warm passes hit; the single fill pass misses → 2/3.
        assert!(r.hit_rate() > 0.6, "hit rate {}", r.hit_rate());
        // The warm cache must carry the >=2x acceptance gate even on a
        // single-core runner.
        assert!(
            r.best_speedup() >= 2.0,
            "best speedup {:.2}x",
            r.best_speedup()
        );
    }
}
