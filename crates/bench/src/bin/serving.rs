//! Print (and capture) the serving-layer load experiment: steady-state
//! coalescing/cache efficiency plus the induced-overload admission run.
//!
//! Everything is driven on the virtual clock from a fixed seed, so the
//! full-scale output is deterministic and pinned in
//! `docs/results/serving.txt`. `PMOVE_SERVE_SMOKE=1` shrinks the virtual
//! durations tenfold for CI; smoke runs gate but do not rewrite the
//! pinned results.

use pmove_serve::{Priority, ServingConfig};
use std::io::Write;

fn main() {
    let smoke = std::env::var("PMOVE_SERVE_SMOKE").is_ok();
    let scale = if smoke { 0.1 } else { 1.0 };
    let out = pmove_bench::serving::run(scale);
    let text = pmove_bench::serving::format(&out);
    print!("{text}");
    if !smoke {
        if let Ok(mut f) = std::fs::File::create("docs/results/serving.txt") {
            let _ = f.write_all(text.as_bytes());
        }
    }

    let slo = ServingConfig::default().slo_p99_ns;
    let steady = &out.steady.report;
    let overload = &out.overload.report;
    let mut failed = false;
    let mut gate = |ok: bool, msg: String| {
        if !ok {
            println!("GATE FAILED: {msg}");
            failed = true;
        }
    };

    gate(
        steady.conserved(),
        format!("steady conservation: {steady:?}"),
    );
    gate(
        overload.conserved(),
        format!("overload conservation: {overload:?}"),
    );
    gate(
        steady.coalescing_ratio() >= pmove_bench::serving::COALESCING_FLOOR,
        format!(
            "steady coalescing ratio {:.2} under the {}x floor",
            steady.coalescing_ratio(),
            pmove_bench::serving::COALESCING_FLOOR
        ),
    );
    gate(
        steady.interactive.p99_ns < slo && steady.background.p99_ns < slo,
        format!(
            "steady p99 over the {slo} ns SLO (interactive {}, background {})",
            steady.interactive.p99_ns, steady.background.p99_ns
        ),
    );
    gate(
        !out.steady.alerted,
        "steady run fired the serving_p99 burn-rate alert".into(),
    );
    gate(
        steady.fairness_served() > 0.95,
        format!("steady fairness {:.4} under 0.95", steady.fairness_served()),
    );
    gate(
        overload.shed > 0,
        "overload run never shed: the flood did not overload".into(),
    );
    gate(
        overload
            .shed_events
            .iter()
            .all(|e| e.priority == Priority::Background),
        "overload shed interactive traffic".into(),
    );
    gate(
        overload.interactive.p99_ns < slo,
        format!(
            "overload interactive p99 {} ns broke the {slo} ns SLO",
            overload.interactive.p99_ns
        ),
    );

    if failed {
        std::process::exit(1);
    }
}
