//! Reproduce Fig. 5: profiling time overhead.

fn main() {
    let cells = pmove_bench::fig5::run("csl", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
    print!("{}", pmove_bench::fig5::format(&cells));
}
