//! Reproduce Fig. 4: sampling accuracy vs ground truth.

fn main() {
    let rows = pmove_bench::fig4::run(
        &["skx", "icl", "zen3"],
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
    );
    print!("{}", pmove_bench::fig4::format(&rows));
}
