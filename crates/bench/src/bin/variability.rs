//! Run the DVFS/AVX-throttling variability study (extension).

fn main() {
    for key in ["csl", "icl", "zen3"] {
        let spec = pmove_hwsim::MachineSpec::preset(key).expect("preset");
        let rows = pmove_bench::variability::isa_sweep(&spec);
        println!("{}", pmove_bench::variability::format(key, &rows));
    }
}
