//! Print (and capture) the loss-vs-RF curve: the chaos workload through
//! the quorum coordinator while the primary sits out a 20 s partition.

use std::io::Write;

fn main() {
    let cells = pmove_bench::replication::run();
    let table = pmove_bench::replication::format(&cells);
    print!("{table}");
    if let Ok(mut f) = std::fs::File::create("docs/results/replication.txt") {
        let _ = f.write_all(table.as_bytes());
    }
    // Hard gates: conservation and convergence everywhere; the majority
    // quorum must lose strictly less than the single-node baseline.
    let mut failed = false;
    for c in &cells {
        if !c.conserved {
            println!("rf={}: conservation VIOLATED", c.rf);
            failed = true;
        }
        if !c.converged {
            println!("rf={}: replicas did not converge after repair", c.rf);
            failed = true;
        }
    }
    let rf1 = cells.iter().find(|c| c.rf == 1);
    let rf3 = cells.iter().find(|c| c.rf == 3);
    if let (Some(rf1), Some(rf3)) = (rf1, rf3) {
        if rf3.loss_pct() >= rf1.loss_pct() {
            println!(
                "RF=3/W=2 did not beat RF=1 ({:.2}% vs {:.2}%)",
                rf3.loss_pct(),
                rf1.loss_pct()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
