//! Reproduce the query-engine benchmark: Table III corpus through the
//! sequential reference and the parallel sharded engine, cold and with a
//! warm result cache. Exits non-zero if the best engine configuration
//! fails the >=2x speedup gate.

fn main() {
    let report = pmove_bench::query::run(5);
    print!("{}", pmove_bench::query::format(&report));
    if report.best_speedup() < 2.0 {
        println!(
            "\nspeedup gate FAILED: best {:.2}x < 2x",
            report.best_speedup()
        );
        std::process::exit(1);
    }
}
