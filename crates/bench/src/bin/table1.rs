//! Reproduce Table I: Intel vs AMD PMU event mapping.

fn main() {
    let rows = pmove_bench::table1::run();
    print!("{}", pmove_bench::table1::format(&rows));
}
