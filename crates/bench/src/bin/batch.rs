//! Print (and capture) the batch-ingest + rollup-tier benchmark: 1M+
//! series through the columnar write path vs row-at-a-time, and the 1 h
//! aggregate served from the 60 s tier vs a raw scan.
//!
//! `PMOVE_BENCH_SMOKE=1` shrinks the series count ~100× for CI; smoke
//! runs gate but do not rewrite the pinned `docs/results/batch.txt`.

use std::io::Write;

fn main() {
    let smoke = std::env::var("PMOVE_BENCH_SMOKE").is_ok();
    let scale = if smoke { 0.01 } else { 1.0 };
    let r = pmove_bench::batch::run(scale);
    let text = pmove_bench::batch::format(&r);
    print!("{text}");
    if !smoke {
        if let Ok(mut f) = std::fs::File::create("docs/results/batch.txt") {
            let _ = f.write_all(text.as_bytes());
        }
    }

    let mut failed = false;
    let mut gate = |ok: bool, msg: String| {
        if !ok {
            println!("GATE FAILED: {msg}");
            failed = true;
        }
    };
    gate(
        r.bit_identical,
        "tier-served aggregate diverged from the raw scan".into(),
    );
    gate(
        r.audit_conserved,
        "rollup conservation audit unbalanced".into(),
    );
    gate(
        r.shards == pmove_tsdb::DEFAULT_SHARD_COUNT,
        format!(
            "batches spread over {} shards, expected {}",
            r.shards,
            pmove_tsdb::DEFAULT_SHARD_COUNT
        ),
    );
    gate(
        r.ingest_speedup() >= pmove_bench::batch::INGEST_SPEEDUP_FLOOR,
        format!(
            "ingest speedup {:.2}x under the {}x floor",
            r.ingest_speedup(),
            pmove_bench::batch::INGEST_SPEEDUP_FLOOR
        ),
    );
    gate(
        r.rollup_speedup() >= pmove_bench::batch::ROLLUP_SPEEDUP_FLOOR,
        format!(
            "rollup speedup {:.2}x under the {}x floor",
            r.rollup_speedup(),
            pmove_bench::batch::ROLLUP_SPEEDUP_FLOOR
        ),
    );
    if failed {
        std::process::exit(1);
    }
}
