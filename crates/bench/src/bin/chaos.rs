//! Print the chaos table: loss and recovery under injected faults with
//! the resilient transport mode off vs. on.

fn main() {
    let reports = pmove_bench::chaos::run();
    print!("{}", pmove_bench::chaos::format(&reports));
    // Hard gates: conservation everywhere; resilience must strictly
    // reduce the damage of every schedule.
    let mut failed = false;
    for pair in reports.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        if !off.conserved || !on.conserved {
            println!("{}: conservation VIOLATED", off.schedule);
            failed = true;
        }
        if on.lost + on.evicted >= off.lost + off.evicted {
            println!(
                "{}: resilient mode did not reduce losses ({} vs {})",
                off.schedule,
                on.lost + on.evicted,
                off.lost + off.evicted
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
