//! Reproduce Fig. 9: live-CARM during likwid benchmarks on CSL.

fn main() {
    let result = pmove_bench::fig9::run();
    print!("{}", pmove_bench::fig9::format(&result));
}
