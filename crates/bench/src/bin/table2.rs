//! Reproduce Table II: probed platform specifications.

fn main() {
    let reports = pmove_bench::table2::run();
    print!("{}", pmove_bench::table2::format(&reports));
}
