//! Run the ablation studies (capacity, multiplexing, partition skew).

fn main() {
    print!("{}", pmove_bench::ablation::format_all());
}
