//! Reproduce Table III: sampling throughput and losses, plus the
//! loss-conservation audit over every cell.

fn main() {
    let (rows, audit) = pmove_bench::table3::run_audited();
    print!("{}", pmove_bench::table3::format(&rows));
    match audit.verify() {
        Ok(n) => println!(
            "\nconservation audit: {n}/{n} cells balanced (offered == inserted + zeroed + lost)"
        ),
        Err(e) => {
            println!("\nconservation audit FAILED: {e}");
            std::process::exit(1);
        }
    }
}
