//! Reproduce Table III: sampling throughput and losses.

fn main() {
    let rows = pmove_bench::table3::run();
    print!("{}", pmove_bench::table3::format(&rows));
}
