//! Print (and capture) the latent-rot integrity table: seeded bit flips
//! on one durable replica vs. a single background scrub pass plus
//! read-repair from the healthy quorum.

use std::io::Write;

fn main() {
    let cells = pmove_bench::scrub::run();
    let table = pmove_bench::scrub::format(&cells);
    print!("{table}");
    if let Ok(mut f) = std::fs::File::create("docs/results/scrub.txt") {
        let _ = f.write_all(table.as_bytes());
    }
    // Hard gates: 100% detection within one scrub pass, full repair with
    // a balanced widened ledger, bit-identical quorum reads everywhere,
    // and zero quarantine/repair traffic in the no-fault control.
    let mut failed = false;
    for c in &cells {
        if !c.detected_within_pass {
            println!(
                "flips={}: only {} of {} rotted chunks detected within one pass",
                c.flips, c.chunks_quarantined, c.chunks_rotted
            );
            failed = true;
        }
        if c.cells_repaired != c.cells_corrupted || c.corrupt_pending != 0 {
            println!(
                "flips={}: repair incomplete ({} corrupted, {} repaired, {} pending)",
                c.flips, c.cells_corrupted, c.cells_repaired, c.corrupt_pending
            );
            failed = true;
        }
        if !c.conserved {
            println!("flips={}: widened conservation VIOLATED", c.flips);
            failed = true;
        }
        if !c.bit_identical {
            println!("flips={}: quorum reads diverge from the oracle", c.flips);
            failed = true;
        }
        if !c.converged {
            println!("flips={}: replicas did not converge", c.flips);
            failed = true;
        }
    }
    if let Some(ctrl) = cells.iter().find(|c| c.flips == 0) {
        if ctrl.chunks_quarantined != 0 || ctrl.ranges_repaired != 0 {
            println!(
                "control: clean store produced quarantines ({}) or repair traffic ({})",
                ctrl.chunks_quarantined, ctrl.ranges_repaired
            );
            failed = true;
        }
        if ctrl.bytes_verified == 0 {
            println!("control: scrubber verified no bytes");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
