//! Print (and capture) the causal-tracing reproduction: golden trace
//! trees from fault-injected runs, critical-path attribution, the
//! deterministic SLO alert timeline, and the tracing overhead table.
//!
//! Everything before [`pmove_bench::tracing::OVERHEAD_MARKER`] is
//! deterministic and pinned byte-for-byte by the `tracing_golden` test;
//! the overhead table after it is wall-clock-measured and only gated.

use std::io::Write;

fn main() {
    let report = pmove_bench::tracing::run();
    let golden = pmove_bench::tracing::format(&report);
    let rows = pmove_bench::tracing::overhead_rows(5);
    let overhead = pmove_bench::tracing::format_overhead(&rows);
    let full = format!("{golden}\n{overhead}");
    print!("{full}");
    if let Ok(mut f) = std::fs::File::create("docs/results/tracing.txt") {
        let _ = f.write_all(full.as_bytes());
    }

    let mut failed = false;
    if report.attributed < 0.90 {
        println!(
            "critical-path analyzer attributed only {:.2}% of latency (floor 90%)",
            report.attributed * 100.0
        );
        failed = true;
    }
    if !report.paged {
        println!("induced ingest p99 regression did not fire the fast-burn page");
        failed = true;
    }
    // The default configuration ships without a tracer; a tracer attached
    // at sample_rate=0 (sampling disabled) must stay inside the same 5%
    // overhead budget the observability registry is held to.
    if let Some((label, ratio)) = rows.iter().find(|(l, _)| l == "sample_rate=0") {
        if *ratio >= 1.05 {
            println!("{label} costs {ratio:.4}x over the no-tracer baseline; budget is 5%");
            failed = true;
        }
    } else {
        println!("overhead table is missing the sample_rate=0 row");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
