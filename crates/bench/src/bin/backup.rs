//! Print (and capture) the backup & disaster-recovery table: snapshot
//! restore vs full archive replay, archiver ingest overhead, and the
//! scheduled bit-exact restore drill.

use std::io::Write;

fn main() {
    let smoke = pmove_bench::backup::smoke();
    let cell = pmove_bench::backup::run();
    let table = pmove_bench::backup::format(&cell);
    print!("{table}");
    // Only full-scale runs pin the results table — a smoke run would
    // overwrite it with a tenth-scale workload.
    if !smoke {
        if let Ok(mut f) = std::fs::File::create("docs/results/backup.txt") {
            let _ = f.write_all(table.as_bytes());
        }
    }
    // Hard gates: restoring from the newest snapshot must beat replaying
    // the whole archive by >= 5x (wall time and records replayed), the
    // archiver must cost < 5% ingest time, both restore paths must agree
    // with the live store bit-for-bit with balanced ledgers, and the
    // scheduled drill must report a bit-exact restore with zero errors.
    // Smoke mode keeps the deterministic gates (record counts, bit
    // identity, ledger, drill) but skips the wall-clock gates — a
    // tenth-scale run is too short to time meaningfully under CI load.
    let mut failed = false;
    if !smoke && cell.speedup < 5.0 {
        println!(
            "snapshot restore only {:.1}x faster than full replay (gate: >= 5x)",
            cell.speedup
        );
        failed = true;
    }
    if cell.snap_replayed * 5 > cell.full_replayed {
        println!(
            "snapshot path replayed {} of {} archived records (gate: <= 1/5)",
            cell.snap_replayed, cell.full_replayed
        );
        failed = true;
    }
    if !smoke && cell.overhead_pct >= 5.0 {
        println!(
            "archiver ingest overhead {:.2}% (gate: < 5%)",
            cell.overhead_pct
        );
        failed = true;
    }
    if !cell.bit_identical {
        println!("restored stores diverge from the live store");
        failed = true;
    }
    if !cell.conserved {
        println!("restore conservation ledger VIOLATED");
        failed = true;
    }
    if !cell.drill_ok {
        println!("scheduled restore drill failed");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
