//! Reproduce Fig. 8: live-CARM during SpMV on CSL.

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(4.0);
    let result = pmove_bench::fig8::run(scale);
    print!("{}", pmove_bench::fig8::format(&result));
}
