//! Reproduce Table IV: the sparse-matrix suite.

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(1.0);
    let rows = pmove_bench::table4::run(scale);
    print!("{}", pmove_bench::table4::format(&rows));
}
