//! Print the storage-engine table: chunk compression ratio and modeled
//! recovery time on Table III sampling workloads.

fn main() {
    let reports = pmove_bench::storage::run();
    print!("{}", pmove_bench::storage::format(&reports));
    let worst = reports
        .iter()
        .map(pmove_bench::storage::StorageReport::compression_ratio)
        .fold(0.0f64, f64::max);
    println!("\nworst compression ratio: {:.1}% of raw", 100.0 * worst);
    if worst > 0.5 {
        println!("compression target MISSED (chunks must be <=50% of raw)");
        std::process::exit(1);
    }
}
