//! Reproduce Fig. 6: PCP agent resource usage.

fn main() {
    let rows = pmove_bench::fig6::run(&[1.0, 2.0, 4.0, 8.0, 16.0]);
    print!("{}", pmove_bench::fig6::format(&rows));
}
