//! # pmove-bench — experiment drivers and reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§V). Each module
//! exposes a structured `run*` API plus a `format_*` renderer; the `bin/`
//! binaries print the rendered output, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! | module | reproduces |
//! |---|---|
//! | [`table1`] | Table I — Intel vs AMD PMU event mapping |
//! | [`table2`] | Table II — platform specifications (probe output) |
//! | [`table3`] | Table III — sampling throughput and losses |
//! | [`table4`] | Table IV — the sparse-matrix suite |
//! | [`fig4`]   | Fig. 4 — sampled-vs-ground-truth relative errors |
//! | [`fig5`]   | Fig. 5 — profiling time overhead |
//! | [`fig6`]   | Fig. 6 — PCP agent resource usage |
//! | [`fig7`]   | Fig. 7 — live PMU events during SpMV (MKL vs Merge) |
//! | [`fig8`]   | Fig. 8 — live-CARM during SpMV |
//! | [`fig9`]   | Fig. 9 — live-CARM during likwid benchmarks |
//! | [`storage`] | storage engine — chunk compression and recovery time |
//! | [`batch`]  | columnar batch ingest + rollup-tier query gates |

pub mod ablation;
pub mod backup;
pub mod batch;
pub mod chaos;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod query;
pub mod replication;
pub mod scrub;
pub mod serving;
pub mod storage;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod tracing;
pub mod variability;
