//! Table IV: the sparse-matrix suite — original SuiteSparse metadata plus
//! the generated stand-ins actually used by the experiments.

use pmove_spmv::suite::SuiteMatrix;

/// One row: original metadata + stand-in statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// SuiteSparse matrix name.
    pub name: String,
    /// SuiteSparse group.
    pub group: String,
    /// Original rows/cols.
    pub original_rows: u64,
    /// Original non-zeros.
    pub original_nnz: u64,
    /// Stand-in rows.
    pub standin_rows: usize,
    /// Stand-in non-zeros.
    pub standin_nnz: usize,
    /// Stand-in nnz/row.
    pub standin_nnz_per_row: f64,
}

/// Build the table at a given stand-in scale.
pub fn run(scale: f64) -> Vec<Row> {
    SuiteMatrix::all()
        .iter()
        .map(|m| {
            let a = m.generate(scale);
            Row {
                name: m.name().to_string(),
                group: m.group().to_string(),
                original_rows: m.original_rows(),
                original_nnz: m.original_nnz(),
                standin_rows: a.rows,
                standin_nnz: a.nnz(),
                standin_nnz_per_row: a.mean_row_nnz(),
            }
        })
        .collect()
}

/// Render the table.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::from("TABLE IV: sparse matrices (originals and generated stand-ins)\n");
    out.push_str(&format!(
        "{:<18} {:<11} {:>11} {:>8} | {:>9} {:>10} {:>8}\n",
        "Name", "Group", "Orig rows", "Orig nnz", "Gen rows", "Gen nnz", "nnz/row"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:<11} {:>11} {:>8.1}M | {:>9} {:>10} {:>8.1}\n",
            r.name,
            r.group,
            r.original_rows,
            r.original_nnz as f64 / 1e6,
            r.standin_rows,
            r.standin_nnz,
            r.standin_nnz_per_row,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows_with_paper_metadata() {
        let rows = run(0.3);
        assert_eq!(rows.len(), 5);
        let huge = rows.iter().find(|r| r.name == "hugetrace-00020").unwrap();
        assert_eq!(huge.original_rows, 16_002_413);
        assert_eq!(huge.group, "DIMACS10");
        assert!(huge.standin_rows > 100);
        let text = format(&rows);
        assert!(text.contains("Belcastro"));
        assert!(text.contains("human_gene1"));
    }
}
