//! Table III: data points expected vs observed at the host DB, by
//! sampling frequency and metric count, on skx (88 threads/report) and
//! icl (16 threads/report).
//!
//! Reproduces the experiment of §V-A: `pmdaperfevent` samples metrics that
//! are highly unlikely to report zero (cycles, instructions, µops, ...)
//! while a kernel keeps every hardware thread busy; the unbuffered
//! shipping path loses points under load and delivers batched zeros at
//! high frequency.

use pmove_hwsim::kernel_profile::{KernelProfile, Precision};
use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::vendor::Vendor;
use pmove_hwsim::{ExecModel, Machine};
use pmove_obs::{ConservationAudit, ConservationCell, Registry};
use pmove_pcp::pmda_perfevent::PerfEventAgent;
use pmove_pcp::{Pmcd, SamplingConfig, SamplingLoop, Shipper};
use pmove_tsdb::Database;

/// Experiment duration in (virtual) seconds — Expected values in the
/// paper's table correspond to 10 s runs.
pub const DURATION_S: f64 = 10.0;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Target host key.
    pub host: String,
    /// Sampling frequency (samples/s).
    pub freq: f64,
    /// Number of metrics sampled.
    pub n_metrics: usize,
    /// Field values expected at the DB.
    pub expected: u64,
    /// Field values inserted (including batched zeros).
    pub inserted: u64,
    /// Zero field values inserted.
    pub zeros: u64,
}

impl Row {
    /// %L: lost values over expected.
    pub fn loss_pct(&self) -> f64 {
        100.0 * (self.expected - self.inserted) as f64 / self.expected as f64
    }

    /// L+Z%: lost plus zeroed over expected.
    pub fn loss_plus_zero_pct(&self) -> f64 {
        100.0 * ((self.expected - self.inserted) + self.zeros) as f64 / self.expected as f64
    }

    /// Tput: inserted data points per second.
    pub fn tput(&self) -> f64 {
        self.inserted as f64 / DURATION_S
    }

    /// A.Tput: actually useful (non-zero) data points per second.
    pub fn actual_tput(&self) -> f64 {
        (self.inserted - self.zeros) as f64 / DURATION_S
    }
}

/// Metrics "highly unlikely to report zero" per vendor, in priority order.
pub fn busy_metrics(machine: &Machine, n: usize) -> Vec<String> {
    let names: &[&str] = match machine.spec.arch.vendor() {
        Vendor::Intel => &[
            "UNHALTED_CORE_CYCLES",
            "INSTRUCTION_RETIRED",
            "UOPS_DISPATCHED",
            "MEM_INST_RETIRED:ALL_LOADS",
            "MEM_INST_RETIRED:ALL_STORES",
            "FP_ARITH:SCALAR_DOUBLE",
        ],
        Vendor::Amd => &[
            "CYCLES_NOT_IN_HALT",
            "RETIRED_INSTRUCTIONS",
            "LS_DISPATCH:LD_DISPATCH",
            "LS_DISPATCH:STORE_DISPATCH",
            "RETIRED_SSE_AVX_FLOPS:ANY",
            "L1_DATA_CACHE_MISS",
        ],
    };
    names.iter().take(n).map(|s| s.to_string()).collect()
}

/// A kernel keeping every thread busy for the full experiment window.
fn busy_kernel(machine: &Machine) -> KernelProfile {
    let spec = &machine.spec;
    // Size memory traffic to fill ~1.5× the experiment duration.
    let bytes = spec.dram_bw_total() * DURATION_S * 1.5;
    let elems = (bytes / 8.0) as u64;
    KernelProfile::named("table3_busy")
        .with_threads(spec.total_threads())
        .with_flops(spec.arch.widest_isa(), Precision::F64, elems)
        .with_mem(elems * 2 / 3, elems / 3, spec.arch.widest_isa())
        .with_working_set(1 << 34)
}

/// Run one cell of the table.
pub fn run_cell(host: &str, freq: f64, n_metrics: usize) -> Row {
    run_cell_audited(host, freq, n_metrics).0
}

/// Ship one cell's samples into a caller-provided database (possibly a
/// durable one), optionally observed through `registry`. This is the body
/// shared by [`run_cell_audited`] and the storage-engine bench, which
/// replays the same workload over the WAL/chunk store.
pub fn run_cell_into(
    db: &Database,
    registry: Option<std::sync::Arc<Registry>>,
    host: &str,
    freq: f64,
    n_metrics: usize,
) -> Row {
    let machine = Machine::preset(host).expect("known host");
    let events = busy_metrics(&machine, n_metrics);
    let refs: Vec<&str> = events.iter().map(String::as_str).collect();
    let mut agent = PerfEventAgent::new(machine.spec.clone(), &refs);
    agent.freq_hz = freq;
    let exec = ExecModel::new(machine.spec.clone()).run(&busy_kernel(&machine), 0.0);
    agent.attach(exec);

    let mut shipper = Shipper::new(
        db,
        LinkSpec::mbit_100(),
        1.0 / freq,
        &[host, &format!("t3-{freq}-{n_metrics}")],
    );
    if let Some(reg) = registry {
        shipper = shipper.with_obs(reg);
    }
    let mut pmcd = Pmcd::new();
    pmcd.set_tag("tag", format!("table3-{host}-{freq}-{n_metrics}"));
    pmcd.register(Box::new(agent));
    let metrics: Vec<String> = events
        .iter()
        .map(|e| format!("perfevent.hwcounters.{e}"))
        .collect();
    let config = SamplingConfig::new(metrics, freq, 0.0, DURATION_S);
    let report = SamplingLoop::run(&config, &mut pmcd, &mut shipper);
    Row {
        host: host.to_string(),
        freq,
        n_metrics,
        expected: report.expected_values,
        inserted: report.transport.values_inserted + report.transport.values_zeroed,
        zeros: report.transport.values_zeroed,
    }
}

/// [`run_cell`] with the transport observed through `pmove-obs`: the cell's
/// conservation counters come from the exported self-telemetry (not the
/// transport's private stats), so the audit exercises the same numbers a
/// self-dashboard would show.
pub fn run_cell_audited(host: &str, freq: f64, n_metrics: usize) -> (Row, ConservationCell) {
    let registry = Registry::shared();
    let db = Database::new("host");
    let row = run_cell_into(&db, Some(registry.clone()), host, freq, n_metrics);

    let snap = registry.snapshot();
    let cell = ConservationCell {
        offered: snap
            .counter("pcp.transport.values_offered", &[])
            .unwrap_or(0),
        inserted: snap
            .counter("pcp.transport.values_inserted", &[])
            .unwrap_or(0),
        zeroed: snap
            .counter("pcp.transport.values_zeroed", &[])
            .unwrap_or(0),
        lost: snap.counter("pcp.transport.values_lost", &[]).unwrap_or(0),
    };
    (row, cell)
}

/// Run the whole table (skx and icl × {2, 8, 32} Hz × {4, 5, 6} metrics).
pub fn run() -> Vec<Row> {
    run_audited().0
}

/// Run the whole table with a loss-conservation audit: one
/// [`ConservationCell`] per table cell, named `host/freqHz/nm`.
pub fn run_audited() -> (Vec<Row>, ConservationAudit) {
    let mut rows = Vec::new();
    let mut audit = ConservationAudit::new();
    for host in ["skx", "icl"] {
        for freq in [2.0, 8.0, 32.0] {
            for mt in [4, 5, 6] {
                let (row, cell) = run_cell_audited(host, freq, mt);
                audit.record(&format!("{host}/{freq}Hz/{mt}m"), cell);
                rows.push(row);
            }
        }
    }
    (rows, audit)
}

/// Render the table.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::from("TABLE III: data points expected/observed at the host DB\n");
    out.push_str(&format!(
        "{:<5} {:>5} {:>4} {:>11} {:>11} {:>10} {:>6} {:>6} {:>9} {:>9}\n",
        "Host", "Freq", "#mt", "Expected", "Inserted", "Zeros", "%L", "L+Z%", "Tput", "A.Tput"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<5} {:>5} {:>4} {:>11.2e} {:>11.2e} {:>10.2e} {:>6.1} {:>6.1} {:>9.1} {:>9.1}\n",
            r.host,
            r.freq,
            r.n_metrics,
            r.expected as f64,
            r.inserted as f64,
            r.zeros as f64,
            r.loss_pct(),
            r.loss_plus_zero_pct(),
            r.tput(),
            r.actual_tput(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_counts_match_paper_formula() {
        // skx @ 2 Hz × 4 metrics × 88 threads × 10 s = 7040 (Table III).
        let r = run_cell("skx", 2.0, 4);
        assert_eq!(r.expected, 7040);
        let r = run_cell("icl", 2.0, 4);
        assert_eq!(r.expected, 1280);
    }

    #[test]
    fn low_frequency_losses_are_negligible() {
        let r = run_cell("skx", 2.0, 6);
        assert!(r.loss_pct() < 8.0, "loss {}", r.loss_pct());
        assert_eq!(r.zeros, 0, "no batched zeros at 2 Hz");
        let r = run_cell("icl", 2.0, 5);
        assert!(r.loss_pct() < 4.0);
    }

    #[test]
    fn skx_high_frequency_loses_many_points() {
        // "more than half of the data points are lost in transmission on
        // skx" (loss+zeros) at 32 Hz.
        let r = run_cell("skx", 32.0, 5);
        assert!(r.loss_pct() > 10.0, "loss {}", r.loss_pct());
        assert!(
            r.loss_plus_zero_pct() > 40.0,
            "L+Z {}",
            r.loss_plus_zero_pct()
        );
        assert!(r.zeros > 0);
    }

    #[test]
    fn icl_small_domain_low_loss_but_zeros() {
        // icl at 32 Hz: ~2-3 % loss but ~1/3 of points are zeros.
        let r = run_cell("icl", 32.0, 6);
        assert!(r.loss_pct() < 10.0, "loss {}", r.loss_pct());
        let zero_frac = 100.0 * r.zeros as f64 / r.expected as f64;
        assert!(zero_frac > 15.0, "zeros {zero_frac}%");
    }

    #[test]
    fn loss_correlates_with_domain_size() {
        // skx (88 fields/report) loses a larger share than icl (16).
        let skx = run_cell("skx", 32.0, 6);
        let icl = run_cell("icl", 32.0, 6);
        assert!(skx.loss_pct() > icl.loss_pct());
    }

    #[test]
    fn throughput_accounting_consistent() {
        let r = run_cell("icl", 8.0, 6);
        assert!(r.actual_tput() <= r.tput());
        assert!((r.tput() - r.inserted as f64 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn every_cell_conserves_offered_values_exactly() {
        // A lossy cell (skx @ 32 Hz sheds >half its points) still balances:
        // every offered value is inserted, zeroed, or lost — never unaccounted.
        let (row, cell) = run_cell_audited("skx", 32.0, 5);
        assert!(cell.holds(), "imbalance {}", cell.imbalance());
        assert!(cell.lost > 0, "cell should actually lose points");
        assert_eq!(cell.inserted + cell.zeroed, row.inserted);
        let mut audit = ConservationAudit::new();
        audit.record("skx/32Hz/5m", cell);
        assert_eq!(audit.verify(), Ok(1));
    }

    #[test]
    fn formatting_contains_all_rows() {
        let rows = vec![run_cell("icl", 2.0, 4)];
        let text = format(&rows);
        assert!(text.contains("icl"));
        assert!(text.contains("1.28e3"));
    }
}
