//! Chaos-replication experiment: loss vs. replication factor under a
//! fixed partition schedule.
//!
//! The Table III shipping workload runs through the quorum coordinator
//! while replica 0 — the initial primary — is partitioned for a third of
//! the run. Each cell sweeps the replication factor with the majority
//! write quorum `W = RF/2 + 1` and a bounded hint queue, so the curve
//! shows exactly what extra replicas buy: at RF=1 the partition parks
//! every write as a ledger hint until drop-oldest eviction turns the
//! overflow into loss; at RF>=3 the surviving majority keeps acking
//! quorum writes and the partition costs nothing but hint traffic.

use pmove_hwsim::{FaultKind, FaultSchedule};
use pmove_pcp::ReplShipper;
use pmove_tsdb::repl::{ReplConfig, ReplicaSet};
use pmove_tsdb::Point;

/// Experiment duration in virtual seconds.
pub const DURATION_S: f64 = 60.0;
/// Sampling frequency (samples/s) — below the stale-read-zero threshold.
pub const FREQ_HZ: f64 = 4.0;
/// Partition window on replica 0 (seconds into the run).
pub const PARTITION: (f64, f64) = (20.0, 40.0);
/// Instance-domain size per report (a 16-thread icl-style target).
const DOMAIN: usize = 16;
/// Metrics shipped per tick.
const N_METRICS: usize = 4;
/// Bounded per-replica hint queue (field values). The partition offers
/// ~5120 values, so the RF=1 cell must evict.
const HINT_CAPACITY: u64 = 2048;
/// Replication factors swept.
pub const RF_SWEEP: [usize; 4] = [1, 2, 3, 5];

/// One cell of the loss-vs-RF curve.
#[derive(Debug, Clone)]
pub struct ReplCell {
    /// Replication factor.
    pub rf: usize,
    /// Write quorum (majority of `rf`).
    pub w: usize,
    /// Field values offered by the sampler.
    pub offered: u64,
    /// Values acknowledged by a W-quorum (incl. hint-replay graduations).
    pub inserted: u64,
    /// Values lost outright.
    pub lost: u64,
    /// Ledger values evicted from a hint queue by drop-oldest overflow.
    pub evicted: u64,
    /// Hint entries replayed when the replica's heartbeat returned.
    pub replayed: u64,
    /// Ledger values still parked as hints at the end (should be 0).
    pub hinted: u64,
    /// Primary promotions after quarantine.
    pub failovers: u64,
    /// Whether the 6-term conservation identity held.
    pub conserved: bool,
    /// Anti-entropy rounds to bit-identical convergence after the run.
    pub repair_rounds: u64,
    /// Cells streamed by those rounds.
    pub cells_streamed: u64,
    /// Whether the replicas converged within the round budget.
    pub converged: bool,
}

impl ReplCell {
    /// Values lost or evicted, as a percentage of offered.
    pub fn loss_pct(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        100.0 * (self.lost + self.evicted) as f64 / self.offered as f64
    }
}

/// Deterministic per-cell value stream (SplitMix64).
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one cell: the fixed workload at `rf` replicas, primary
/// partitioned for [`PARTITION`], majority write quorum.
pub fn run_cell(rf: usize) -> ReplCell {
    let w = rf / 2 + 1;
    let cfg = ReplConfig {
        replication_factor: rf,
        write_quorum: w,
        read_quorum: w,
        hint_capacity_values: HINT_CAPACITY,
        ..ReplConfig::default()
    };
    let set = ReplicaSet::in_memory("chaosrepl", cfg).unwrap();
    let mut schedules = vec![FaultSchedule::none(); rf];
    schedules[0] = FaultSchedule::none().with_window(PARTITION.0, PARTITION.1, FaultKind::LinkDown);
    let mut coord = ReplShipper::new(&set, schedules, &["chaosrepl", &format!("rf{rf}")]).unwrap();

    let ticks = (DURATION_S * FREQ_HZ) as u64;
    let mut value_seed = 0xC4A0_5EED ^ ticks;
    for tick in 0..ticks {
        let t = tick as f64 / FREQ_HZ;
        coord.heartbeat(t);
        for m in 0..N_METRICS {
            let mut p = Point::new(format!("perfevent_hwcounters_m{m}"))
                .tag("tag", "chaos")
                .timestamp((t * 1e9) as i64 + m as i64);
            for i in 0..DOMAIN {
                p = p.field(
                    format!("_cpu{i}"),
                    (next(&mut value_seed) % 1_000_000) as f64,
                );
            }
            coord.ship(t, p, FREQ_HZ);
        }
    }
    // Idle tail: heartbeats only, so the revived replica replays the
    // hints that survived the bounded queue.
    let mut t = DURATION_S;
    while t <= DURATION_S + 10.0 {
        coord.heartbeat(t);
        t += 0.25;
    }

    let st = coord.stats();
    let repair = set.repair_until_converged(8).unwrap();
    ReplCell {
        rf,
        w,
        offered: st.values_offered,
        inserted: st.values_inserted + st.values_zeroed,
        lost: st.values_lost,
        evicted: st.values_evicted,
        replayed: st.hints_replayed,
        hinted: st.values_hinted,
        failovers: st.failovers,
        conserved: st.conserved(),
        repair_rounds: repair.rounds,
        cells_streamed: repair.cells_streamed,
        converged: repair.converged,
    }
}

/// Sweep every RF in [`RF_SWEEP`] under the same schedule and workload.
pub fn run() -> Vec<ReplCell> {
    RF_SWEEP.iter().map(|&rf| run_cell(rf)).collect()
}

/// Render the loss-vs-RF table.
pub fn format(cells: &[ReplCell]) -> String {
    let mut out =
        String::from("REPLICATION: quorum writes under a 20 s primary partition, loss vs. RF\n");
    out.push_str(&format!(
        "{:<5} {:<3} {:>8} {:>8} {:>6} {:>8} {:>9} {:>7} {:>5} {:>7} {:>8} {:>5}\n",
        "RF",
        "W",
        "Offered",
        "Insert",
        "Lost",
        "Evicted",
        "Replayed",
        "Failov",
        "Cons",
        "Loss%",
        "Repair",
        "Conv"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<5} {:<3} {:>8} {:>8} {:>6} {:>8} {:>9} {:>7} {:>5} {:>7.2} {:>8} {:>5}\n",
            c.rf,
            c.w,
            c.offered,
            c.inserted,
            c.lost,
            c.evicted,
            c.replayed,
            c.failovers,
            if c.conserved { "ok" } else { "VIOL" },
            c.loss_pct(),
            format!("{}r/{}c", c.repair_rounds, c.cells_streamed),
            if c.converged { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_replication_beats_the_single_node_baseline() {
        let cells = run();
        let rf1 = cells.iter().find(|c| c.rf == 1).unwrap();
        let rf3 = cells.iter().find(|c| c.rf == 3).unwrap();
        for c in &cells {
            assert!(c.conserved, "rf={}: conservation violated", c.rf);
            assert!(c.converged, "rf={}: replicas did not converge", c.rf);
            assert_eq!(c.hinted, 0, "rf={}: hints left parked", c.rf);
            assert_eq!(c.offered, rf1.offered, "same workload everywhere");
        }
        assert!(
            rf1.lost + rf1.evicted > 0,
            "the partition must actually hurt the single node"
        );
        assert!(
            rf3.loss_pct() < rf1.loss_pct(),
            "RF=3/W=2 must lose strictly less than RF=1 ({} vs {})",
            rf3.loss_pct(),
            rf1.loss_pct()
        );
        assert_eq!(rf3.lost + rf3.evicted, 0, "majority quorum loses nothing");
        assert!(rf1.failovers == 0, "single node has nowhere to fail over");
        assert!(rf3.failovers > 0, "partitioned primary must be failed over");
    }

    #[test]
    fn replication_cells_are_deterministic() {
        let a = run_cell(3);
        let b = run_cell(3);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.inserted, b.inserted);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.evicted, b.evicted);
        assert_eq!(a.replayed, b.replayed);
        assert_eq!(a.cells_streamed, b.cells_streamed);
    }
}
