//! Fig. 6: system resource usage of metric shipment on skx — per-agent
//! CPU, memory, network and disk versus sampling frequency, for a 50-metric
//! configuration.

use pmove_hwsim::MachineSpec;
use pmove_pcp::resource::{agent_costs, host_disk_busy, usage, AgentUsage};

/// Values per sampling tick for the paper's 50-metric skx configuration:
/// 40 singular + 3 per-cpu (88 instances) + 4 per-node + 3 per-disk
/// metrics ≈ 320 values, matching the reported 15 937 data points per
/// 50-metric sweep cycle.
pub fn values_per_report(spec: &MachineSpec) -> u64 {
    40 + 3 * spec.total_threads() as u64 + 4 * spec.sockets as u64 + 3 * spec.disks.len() as u64
}

/// One agent's usage at one frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageRow {
    /// Agent name.
    pub agent: String,
    /// Sampling frequency (reports/s).
    pub freq: f64,
    /// Usage numbers.
    pub usage: AgentUsage,
    /// Host-disk busy fraction caused.
    pub disk_busy: f64,
}

/// Run the sweep on skx for the given frequencies.
pub fn run(freqs: &[f64]) -> Vec<UsageRow> {
    let spec = MachineSpec::skx();
    let vpr = values_per_report(&spec);
    let disk = &spec.disks[0];
    let mut out = Vec::new();
    for &f in freqs {
        for cost in agent_costs() {
            let u = usage(&cost, f, vpr);
            out.push(UsageRow {
                agent: cost.name.to_string(),
                freq: f,
                usage: u,
                disk_busy: host_disk_busy(disk, u.disk_bytes_per_s),
            });
        }
    }
    out
}

/// Render the figure data.
pub fn format(rows: &[UsageRow]) -> String {
    let vpr = values_per_report(&MachineSpec::skx());
    let mut out =
        format!("FIG 6: PCP agent resource usage on skx (50 metrics, {vpr} values/report)\n");
    out.push_str(&format!(
        "{:<15} {:>6} {:>8} {:>9} {:>11} {:>11} {:>9}\n",
        "Agent", "Freq", "CPU %", "RSS MB", "Net KB/s", "Disk KB/s", "DiskBusy"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>6} {:>8.3} {:>9.1} {:>11.2} {:>11.2} {:>8.1}%\n",
            r.agent,
            r.freq,
            100.0 * r.usage.cpu_fraction,
            r.usage.rss_bytes / 1e6,
            r.usage.net_bytes_per_s / 1024.0,
            r.usage.disk_bytes_per_s / 1024.0,
            100.0 * r.disk_busy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_flat_cpu_linear() {
        let rows = run(&[1.0, 2.0, 16.0]);
        let pmcd = |f: f64| {
            rows.iter()
                .find(|r| r.agent == "pmcd" && r.freq == f)
                .unwrap()
                .clone()
        };
        // Memory flat.
        assert_eq!(pmcd(1.0).usage.rss_bytes, pmcd(16.0).usage.rss_bytes);
        // CPU roughly linear outside the dip region (1 → 2 Hz).
        let r1 = pmcd(1.0).usage.cpu_fraction;
        let r2 = pmcd(2.0).usage.cpu_fraction;
        assert!((r2 / r1 - 2.0).abs() < 0.05, "ratio {}", r2 / r1);
    }

    #[test]
    fn dip_at_4_to_8_reports_per_second() {
        // The paper's under-utilization anomaly: 4 and 8 reports/s on skx
        // fall below the linear network trend.
        let rows = run(&[2.0, 4.0, 8.0]);
        let net = |f: f64| {
            rows.iter()
                .find(|r| r.agent == "pmcd" && r.freq == f)
                .unwrap()
                .usage
                .net_bytes_per_s
        };
        assert!(net(4.0) < 2.0 * net(2.0) * 0.95, "no dip at 4/s");
        assert!(net(8.0) < 4.0 * net(2.0) * 0.95, "no dip at 8/s");
    }

    #[test]
    fn pmdaproc_has_largest_memory() {
        let rows = run(&[1.0]);
        let proc_mem = rows
            .iter()
            .find(|r| r.agent == "pmdaproc")
            .unwrap()
            .usage
            .rss_bytes;
        for r in &rows {
            if r.agent != "pmdaproc" {
                assert!(r.usage.rss_bytes < proc_mem);
            }
        }
    }

    #[test]
    fn disk_io_small_but_growing() {
        let rows = run(&[1.0, 16.0]);
        let disk = |f: f64| {
            rows.iter()
                .find(|r| r.agent == "pmcd" && r.freq == f)
                .unwrap()
                .usage
                .disk_bytes_per_s
        };
        assert!(disk(16.0) > disk(1.0));
        // Even at 16 reports/s the host disk is far from saturated.
        let busy = rows
            .iter()
            .find(|r| r.agent == "pmcd" && r.freq == 16.0)
            .unwrap()
            .disk_busy;
        assert!(busy < 1.0);
    }

    #[test]
    fn values_per_report_consistent() {
        // 40 + 3·88 + 4·2 + 3·4 = 324 ≈ the paper's 319/report.
        let v = values_per_report(&MachineSpec::skx());
        assert!((300..=340).contains(&v), "{v}");
    }

    #[test]
    fn format_covers_all_agents() {
        let text = format(&run(&[1.0]));
        for a in ["pmcd", "pmdaperfevent", "pmdalinux", "pmdaproc"] {
            assert!(text.contains(a));
        }
    }
}
