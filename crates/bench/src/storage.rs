//! Storage-engine experiments: chunk compression ratio and modeled
//! crash-recovery time on the Table III sampling workload.
//!
//! The workload is the same perfevent shipping loop Table III measures,
//! pointed at a *durable* database over the deterministic in-memory disk.
//! Two power-cycles are measured: one with the WAL intact (row-by-row
//! replay) and one after a flush (compressed-chunk load), so the report
//! shows both ends of the recovery spectrum.

use crate::table3;
use pmove_tsdb::store::{ChunkInfo, MemDisk, RecoveryReport, StoreOptions, Vfs};
use pmove_tsdb::Database;
use std::sync::Arc;

/// One storage-engine measurement cell.
#[derive(Debug, Clone)]
pub struct StorageReport {
    /// Target host key.
    pub host: String,
    /// Sampling frequency (samples/s).
    pub freq: f64,
    /// Number of metrics sampled.
    pub n_metrics: usize,
    /// Field values acknowledged at the database.
    pub values_inserted: u64,
    /// Durable WAL bytes before the flush.
    pub wal_bytes: u64,
    /// The chunk the memtable froze into.
    pub chunk: ChunkInfo,
    /// Recovery with the WAL intact (replay every acknowledged row).
    pub wal_recovery: RecoveryReport,
    /// Recovery after the flush (load the compressed chunk).
    pub chunk_recovery: RecoveryReport,
}

impl StorageReport {
    /// Chunk bytes over raw in-memory row footprint (lower is better).
    pub fn compression_ratio(&self) -> f64 {
        self.chunk.bytes as f64 / self.chunk.raw_bytes as f64
    }
}

/// Manual-control store options: no auto-flush, no auto-compaction, so
/// the bench decides exactly when the memtable freezes.
fn opts_manual() -> StoreOptions {
    StoreOptions {
        flush_threshold_rows: usize::MAX,
        compact_min_chunks: usize::MAX,
    }
}

/// Run one cell of the storage table.
pub fn run_cell(host: &str, freq: f64, n_metrics: usize) -> StorageReport {
    let disk = Arc::new(MemDisk::new(0xC0FFEE));
    let vfs: Arc<dyn Vfs> = disk.clone();
    let (db, _) = Database::open("influx", vfs.clone(), opts_manual()).expect("fresh disk");
    let row = table3::run_cell_into(&db, None, host, freq, n_metrics);
    let wal_bytes = disk.durable_bytes();
    drop(db);

    // Power-cycle with the WAL intact: recovery replays every row.
    disk.restart();
    let (db, wal_recovery) =
        Database::open("influx", vfs.clone(), opts_manual()).expect("WAL replay");
    let chunk = db
        .flush()
        .expect("flush after recovery")
        .expect("the workload produced rows");
    drop(db);

    // Power-cycle after the flush: recovery loads the chunk instead.
    disk.restart();
    let (_db, chunk_recovery) = Database::open("influx", vfs, opts_manual()).expect("chunk load");

    StorageReport {
        host: host.to_string(),
        freq,
        n_metrics,
        values_inserted: row.inserted,
        wal_bytes,
        chunk,
        wal_recovery,
        chunk_recovery,
    }
}

/// Run the storage table over a spread of Table III cells.
pub fn run() -> Vec<StorageReport> {
    [("icl", 8.0, 4), ("icl", 32.0, 6), ("skx", 8.0, 6)]
        .into_iter()
        .map(|(host, freq, mt)| run_cell(host, freq, mt))
        .collect()
}

/// Render the table.
pub fn format(reports: &[StorageReport]) -> String {
    let mut out = String::from("STORAGE: chunk compression and modeled recovery time\n");
    out.push_str(&format!(
        "{:<5} {:>5} {:>4} {:>9} {:>10} {:>10} {:>10} {:>7} {:>12} {:>12}\n",
        "Host",
        "Freq",
        "#mt",
        "Values",
        "WAL B",
        "Raw B",
        "Chunk B",
        "C/R%",
        "RecWAL ms",
        "RecChunk ms"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<5} {:>5} {:>4} {:>9} {:>10} {:>10} {:>10} {:>7.1} {:>12.3} {:>12.3}\n",
            r.host,
            r.freq,
            r.n_metrics,
            r.values_inserted,
            r.wal_bytes,
            r.chunk.raw_bytes,
            r.chunk.bytes,
            100.0 * r.compression_ratio(),
            r.wal_recovery.modeled_ns as f64 / 1e6,
            r.chunk_recovery.modeled_ns as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_compress_below_half_of_raw_on_table3_workload() {
        let r = run_cell("icl", 8.0, 4);
        assert!(r.values_inserted > 0);
        let chunk_input_rows = (r.chunk.rows + r.chunk.rows_deduped) as u64;
        assert_eq!(chunk_input_rows, r.wal_recovery.wal_rows);
        assert!(
            r.compression_ratio() <= 0.5,
            "chunk {} B vs raw {} B",
            r.chunk.bytes,
            r.chunk.raw_bytes
        );
    }

    #[test]
    fn chunk_recovery_is_cheaper_than_wal_replay() {
        let r = run_cell("icl", 8.0, 4);
        assert_eq!(r.wal_recovery.chunks_loaded, 0);
        assert!(r.wal_recovery.wal_rows > 0);
        assert_eq!(r.chunk_recovery.chunks_loaded, 1);
        assert_eq!(r.chunk_recovery.wal_rows, 0);
        assert!(r.wal_bytes > r.chunk.bytes, "the WAL is uncompressed");
        assert!(r.wal_recovery.modeled_ns >= r.chunk_recovery.modeled_ns);
    }

    #[test]
    fn same_cell_reports_identically_across_runs() {
        let a = run_cell("icl", 8.0, 4);
        let b = run_cell("icl", 8.0, 4);
        assert_eq!(a.wal_bytes, b.wal_bytes);
        assert_eq!(a.chunk, b.chunk);
        assert_eq!(a.wal_recovery, b.wal_recovery);
        assert_eq!(a.chunk_recovery, b.chunk_recovery);
    }
}
