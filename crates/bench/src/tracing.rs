//! End-to-end causal-tracing reproduction: golden trace trees from
//! fault-injected runs, critical-path attribution, the deterministic SLO
//! alert timeline, and the tracing overhead table.
//!
//! Everything except the overhead table derives from the virtual clock
//! and seeded generators, so the rendered report is byte-identical across
//! runs — the `tracing_golden` test pins it. The overhead table measures
//! wall-clock and is appended after [`OVERHEAD_MARKER`], outside the
//! golden region.

use pmove_core::PMoveDaemon;
use pmove_hwsim::network::LinkSpec;
use pmove_hwsim::{FaultKind, FaultSchedule, MachineSpec};
use pmove_obs::{AlertState, Registry, TraceConfig, TraceTree, Tracer};
use pmove_pcp::pmda_linux::LinuxAgent;
use pmove_pcp::{Pmcd, ResilienceConfig, SamplingConfig, SamplingLoop, Shipper};
use pmove_tsdb::Database;
use std::sync::Arc;
use std::time::Instant;

/// Separates the deterministic (golden) report from the measured
/// overhead table in `docs/results/tracing.txt`.
pub const OVERHEAD_MARKER: &str = "== tracing overhead (wall-clock, not golden) ==";

/// Deterministic outputs of the tracing reproduction.
pub struct TracingReport {
    /// A recovered-after-retry trace from the fault-injected resilient
    /// transport run (sampler → attempt → spill park → retry → ingest).
    pub resilient_tree: String,
    /// A quorum-write trace from the replicated run (sampler → quorum
    /// fan-out → per-replica WAL group commit + shard ingest).
    pub replicated_tree: String,
    /// Critical path + stage attribution of the replicated trace.
    pub critical_path: String,
    /// Fraction of the replicated trace's latency attributed to named
    /// stages (gate: >= 0.90).
    pub attributed: f64,
    /// Alert timeline from the induced ingest-latency regression.
    pub slo_timeline: String,
    /// Whether the fast-burn window paged on the induced regression.
    pub paged: bool,
}

fn find_tree<'a>(
    trees: &'a [TraceTree],
    status: &str,
    must_contain: &[&str],
) -> Option<&'a TraceTree> {
    trees.iter().find(|t| {
        t.terminal_status() == status
            && must_contain
                .iter()
                .all(|name| t.spans.iter().any(|s| s.name == *name))
    })
}

/// Fault-injected resilient run: a 10 s link outage mid-window forces
/// spills; the drain recovers them. Returns the first recovered trace
/// that crossed the retry path.
fn resilient_trace() -> String {
    let mut d = PMoveDaemon::for_preset("icl").expect("preset daemon");
    let tracer = d.enable_tracing(TraceConfig {
        ring_capacity: 4096,
        ..TraceConfig::default()
    });
    let fault = FaultSchedule::none().with_window(10.0, 20.0, FaultKind::LinkDown);
    let report = d.monitor_resilient(40.0, 1.0, ResilienceConfig::default(), Some(fault));
    assert!(report.transport.conserved(), "{:?}", report.transport);
    assert_eq!(tracer.active_count(), 0, "orphaned traces after drain");
    let trees = tracer.flight_recorder();
    let tree = find_tree(&trees, "recovered", &["pcp.retry", "tsdb.ingest"])
        .expect("a spilled report recovered through the retry path");
    tree.render()
}

/// Replicated run with the primary partitioned for the first half of the
/// window: quorum writes continue on the remaining replicas, missed
/// writes park as hints and replay on the heartbeat after recovery.
fn replicated_run() -> (String, String, f64) {
    let mut d = PMoveDaemon::for_preset_replicated("icl", 7).expect("replicated daemon");
    let tracer = d.enable_tracing(TraceConfig {
        ring_capacity: 4096,
        ..TraceConfig::default()
    });
    let mut schedules = vec![FaultSchedule::none(); 3];
    schedules[0] = FaultSchedule::none().with_window(0.0, 5.0, FaultKind::LinkDown);
    let out = d
        .monitor_replicated(10.0, 1.0, Some(schedules))
        .expect("replicated window");
    assert!(
        out.report.transport.conserved(),
        "{:?}",
        out.report.transport
    );
    assert_eq!(tracer.active_count(), 0, "orphaned traces after window");
    let trees = tracer.flight_recorder();
    let tree = find_tree(
        &trees,
        "inserted",
        &[
            "repl.quorum_write",
            "repl.replica_write",
            "store.wal.group_commit",
            "tsdb.shard_ingest",
        ],
    )
    .expect("a quorum write reached the WAL and shards");
    let attributed: f64 = tree.stage_attribution().iter().map(|s| s.fraction).sum();
    (tree.render(), tree.render_critical_path(), attributed)
}

/// Induce an ingest p99 regression after a healthy window and let the
/// fast burn window page. Deterministic: the transition timestamp is a
/// function of the virtual clock only.
fn slo_run() -> (String, bool) {
    let mut d = PMoveDaemon::for_preset("icl").expect("preset daemon");
    d.install_default_slos();
    d.monitor(2.0, 2.0);
    d.evaluate_slos();
    let h = d
        .obs
        .histogram("tsdb.ingest_ns", &[], pmove_obs::latency_buckets());
    for _ in 0..500 {
        h.record(2_000_000);
    }
    d.now_s += 1.0;
    let fired = d.evaluate_slos();
    let paged = fired
        .iter()
        .any(|t| t.slo == "ingest_p99" && t.to == AlertState::Page);
    (d.slo_timeline_report(), paged)
}

/// Run the full deterministic reproduction.
pub fn run() -> TracingReport {
    let resilient_tree = resilient_trace();
    let (replicated_tree, critical_path, attributed) = replicated_run();
    let (slo_timeline, paged) = slo_run();
    TracingReport {
        resilient_tree,
        replicated_tree,
        critical_path,
        attributed,
        slo_timeline,
        paged,
    }
}

/// Render the deterministic (golden) region of the report.
pub fn format(r: &TracingReport) -> String {
    let mut out = String::new();
    out.push_str("== fault-injected resilient transport: recovered trace ==\n");
    out.push_str(&r.resilient_tree);
    out.push_str("\n== replicated quorum write: end-to-end trace ==\n");
    out.push_str(&r.replicated_tree);
    out.push('\n');
    out.push_str(&r.critical_path);
    out.push_str(&format!(
        "attribution gate: {:.2}% of latency attributed to named stages (floor 90%)\n",
        r.attributed * 100.0
    ));
    out.push_str("\n== induced ingest p99 regression: alert timeline ==\n");
    out.push_str(&r.slo_timeline);
    out
}

/// One sampling run for the overhead table; `tracer_rate` of `None`
/// means no tracer attached (the default configuration).
fn overhead_run(tracer_rate: Option<f64>) -> std::time::Duration {
    let spec = MachineSpec::csl();
    let metrics: Vec<String> = vec![
        "kernel.all.load".into(),
        "kernel.percpu.cpu.idle".into(),
        "kernel.percpu.cpu.user".into(),
        "kernel.percpu.cpu.sys".into(),
        "mem.util.used".into(),
        "mem.util.free".into(),
    ];
    let db = Database::new("host");
    let mut pmcd = Pmcd::new();
    pmcd.register(Box::new(LinuxAgent::new(spec)));
    let reg = Registry::shared();
    let mut shipper =
        Shipper::new(&db, LinkSpec::mbit_100(), 1.0 / 32.0, &["ovh"]).with_obs(reg.clone());
    pmcd.set_obs(&reg);
    if let Some(rate) = tracer_rate {
        reg.set_tracer(Arc::new(Tracer::new(
            42,
            TraceConfig {
                sample_rate: rate,
                sample_on_fault: true,
                ring_capacity: 256,
            },
        )));
    }
    let config = SamplingConfig::new(metrics, 32.0, 0.0, 60.0);
    let start = Instant::now();
    let report = SamplingLoop::run(&config, &mut pmcd, &mut shipper);
    let elapsed = start.elapsed();
    assert_eq!(report.ticks, 32 * 60);
    elapsed
}

/// Measure the overhead of tracing per sampling rate against the
/// no-tracer baseline (interleaved, min-of-N so noise cancels). Returns
/// `(label, ratio)` rows.
pub fn overhead_rows(reps: usize) -> Vec<(String, f64)> {
    let rates: [Option<f64>; 4] = [None, Some(0.0), Some(0.1), Some(1.0)];
    let mut mins = vec![f64::INFINITY; rates.len()];
    // Warm-up (allocator, code pages) — twice, so the first measured
    // round is not the one paying one-time costs.
    for _ in 0..2 {
        for &r in &rates {
            overhead_run(r);
        }
    }
    for _ in 0..reps {
        for (i, &r) in rates.iter().enumerate() {
            mins[i] = mins[i].min(overhead_run(r).as_secs_f64());
        }
    }
    let base = mins[0];
    rates
        .iter()
        .zip(&mins)
        .map(|(r, m)| {
            let label = match r {
                None => "no tracer (default)".to_string(),
                Some(rate) => format!("sample_rate={rate}"),
            };
            (label, m / base)
        })
        .collect()
}

/// Render the overhead table.
pub fn format_overhead(rows: &[(String, f64)]) -> String {
    let mut out = format!("{OVERHEAD_MARKER}\n");
    out.push_str(&format!("{:<22} {:>10}\n", "configuration", "ratio"));
    for (label, ratio) in rows {
        out.push_str(&format!("{label:<22} {ratio:>9.4}x\n"));
    }
    out.push_str("gate: tracer attached at sample_rate=0 must stay under 1.05x\n");
    out
}
